//===- AutoCorres.h - The tool driver ---------------------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: runs the whole Fig 1 pipeline
///
///   C99 --parse--> Simpl --L1--> monadic --L2--> lifted locals
///       --HL--> split typed heaps --WA--> ideal arithmetic
///
/// per translation unit, producing for every function its most abstract
/// monadic specification, the per-phase artefacts, and a composed
/// end-to-end refinement theorem
///
///   ac_corres <output> SIMPL[f]
///
/// whose derivation chains the per-phase theorems through the AC.compose
/// axioms. Heap and word abstraction are selectable per function
/// (Secs 3.2, 4.6); functions that use type-unsafe idioms fall back
/// automatically.
///
/// The driver also measures the Table 5 statistics: CPU time split
/// between the parser stage and the abstraction stages, lines of
/// specification, and average term size for both outputs.
///
//===----------------------------------------------------------------------===//

#ifndef AC_CORE_AUTOCORRES_H
#define AC_CORE_AUTOCORRES_H

#include "heapabs/HeapAbs.h"
#include "monad/L1.h"
#include "monad/L2.h"
#include "wordabs/WordAbs.h"

#include <memory>
#include <set>

namespace ac::support {
class ThreadPool;
} // namespace ac::support

namespace ac::core {

class ResultCache;

/// Per-run options.
///
/// run() is reentrant: concurrent calls from different threads — the
/// verification daemon (service/Server.h) runs one per in-flight request
/// — share no mutable state beyond the process-wide hash-consing tables
/// and the axiom inventory, both of which are thread-safe and
/// content-addressed (an axiom name always determines its proposition,
/// so two programs can only ever re-register identical axioms).
struct ACOptions {
  /// Functions to keep on the byte-level heap (Sec 4.6).
  std::set<std::string> NoHeapAbs;
  /// Functions to keep on machine words (Sec 3.2).
  std::set<std::string> NoWordAbs;
  /// Worker threads for the abstraction stages. 0 = the AC_JOBS
  /// environment variable (1 when unset). Output is bit-identical at
  /// every job count; see core/CallGraph.h.
  unsigned Jobs = 0;
  /// Directory of the content-addressed abstraction cache
  /// (core/ResultCache.h). Empty falls back to $AC_CACHE_DIR (and
  /// AC_CACHE=1 enables ".ac-cache"); AC_CACHE=0 force-disables. When
  /// enabled, functions whose pipeline inputs are unchanged skip the
  /// whole abstraction chain and replay their cached rendered output,
  /// which is bit-identical to a cold run at any Jobs count.
  std::string CacheDir;
  /// A long-lived cache owned by the caller (the daemon's in-memory
  /// tier). When set it overrides CacheDir entirely: the run hits and
  /// fills this instance and never touches disk — persistence is the
  /// owner's business (e.g. a save on drain). Must outlive the run.
  ResultCache *SharedCache = nullptr;
  /// A warm worker pool owned by the caller. When set (and the run is
  /// parallel, Jobs != 1) the abstraction stages are scheduled onto it
  /// instead of spawning a pool per run; Jobs then only selects the
  /// parallel path and the pool's size is reported in ACStats::Jobs.
  /// Safe to share between concurrent runs. Must outlive the run.
  support::ThreadPool *SharedPool = nullptr;
  /// When non-empty, span tracing (support/Trace.h) is enabled for this
  /// run and the collected Chrome trace JSON is flushed here at the end.
  /// Empty falls back to $AC_TRACE. Flushing is best-effort: a trace
  /// that cannot be written warns and never fails the run.
  std::string TracePath;
  /// When non-empty, proof-certificate recording (hol/Cert.h) is enabled
  /// for this run and one certificate claiming every freshly derived
  /// end-to-end pipeline theorem (claim name = function name, in
  /// FunctionOrder) is written here at the end. Empty falls back to
  /// $AC_CERT. Cache-replayed functions have no live derivation and are
  /// skipped — re-run with the cache disabled to certify them. Writing
  /// is best-effort and never fails the run; see ACStats::CertsWritten.
  std::string CertPath;
  /// When non-empty, per-function certificates: each freshly derived
  /// function writes `<16-hex-key>.acpc` into this directory, where the
  /// key is the same content fingerprint that addresses the abstraction
  /// cache (core/Fingerprint.h) — a cert and a cache entry for the same
  /// key certify the same pipeline inputs. Empty falls back to
  /// $AC_CERT_DIR. Composable with CertPath.
  std::string CertDir;
};

/// Everything produced for one function.
struct FuncOutput {
  std::string Name;
  std::vector<std::string> ArgNames;
  std::vector<hol::TypeRef> FinalArgTys;
  hol::TypeRef FinalRetTy;

  hol::TermRef L1Term;
  hol::TermRef L2Body;
  hol::TermRef HLBody; ///< null if not lifted
  hol::TermRef WABody; ///< null if not abstracted
  bool HeapLifted = false;
  bool WordAbstracted = false;

  /// The most abstract body (WA > HL > L2); null on a cache hit.
  const hol::TermRef &finalBody() const {
    return WABody ? WABody : (HLBody ? HLBody : L2Body);
  }
  /// FunDefs key of the most abstract definition. Driven by the flags
  /// (not the term fields) so it also holds for cache-replayed outputs.
  std::string finalKey() const {
    return (WordAbstracted ? "wa:" : (HeapLifted ? "hl:" : "l2:")) + Name;
  }

  hol::Thm L1Corres, L2Corres, HLCorres, WACorres;
  /// ac_corres <final> SIMPL[f], composed through AC.compose.
  hol::Thm Pipeline;

  /// True when this output was replayed from the abstraction cache: the
  /// rendered artefacts below are authoritative and the term/theorem
  /// fields above are null (a cache hit serves rendering and statistics;
  /// re-run with the cache disabled to inspect live terms).
  bool FromCache = false;
  std::string CachedRender;
  std::string CachedL1, CachedL2, CachedHL, CachedWA;
  std::string CachedPipeline;
  unsigned CachedSpecLines = 0;
  unsigned CachedTermSize = 0;

  /// Rendered per-phase specs and composed-theorem proposition; computed
  /// from the live terms, or replayed verbatim on a cache hit.
  std::string l1Spec() const;
  std::string l2Spec() const;
  std::string hlSpec() const; ///< empty if not heap-lifted
  std::string waSpec() const; ///< empty if not word-abstracted
  std::string pipelineProp() const;
  /// Table 5 contributions of the final body.
  unsigned finalSpecLines() const;
  unsigned finalTermSize() const;
};

/// Table 5 statistics for one run.
struct ACStats {
  unsigned SourceLines = 0;
  unsigned NumFunctions = 0;
  double ParserSeconds = 0;
  /// CPU time of the parse + translation phase (single-threaded, so
  /// normally tracks ParserSeconds minus any time blocked off-CPU).
  double ParserCpuSeconds = 0;
  /// Summed per-thread CPU time of the abstraction stages — comparable
  /// to the paper's serial Table 5 column at any job count.
  double AutoCorresSeconds = 0;
  /// Elapsed wall-clock time of the abstraction stages (drops below
  /// AutoCorresSeconds when Jobs > 1 on a multi-core machine).
  double AutoCorresWallSeconds = 0;
  /// Worker threads the run actually used.
  unsigned Jobs = 1;
  unsigned ParserSpecLines = 0;
  unsigned ACSpecLines = 0;
  unsigned ParserTermSizeTotal = 0;
  unsigned ACTermSizeTotal = 0;
  /// Abstraction-cache accounting (all zero when the cache is disabled).
  bool CacheEnabled = false;
  unsigned CacheHits = 0;
  /// Misses split into first sights and invalidations: a miss for a
  /// function the cache already knows under a different key means its
  /// inputs (or a transitive callee's) changed.
  unsigned CacheMisses = 0;
  unsigned CacheInvalidations = 0;
  /// Damaged on-disk entries dropped by cache recovery this run (each one
  /// re-verifies instead of being served — corruption costs warmth only).
  unsigned CacheDroppedEntries = 0;
  /// Proof-certificate accounting (all zero unless CertPath / CertDir —
  /// or $AC_CERT / $AC_CERT_DIR — requested export this run).
  unsigned CertsWritten = 0; ///< certificate files successfully written
  unsigned CertClaims = 0;   ///< pipeline theorems claimed across them
  /// Functions whose derivation could not be exported: replayed from the
  /// abstraction cache (no live theorem), or minted before recording was
  /// enabled (a process-static rule cached without its replay payload).
  unsigned CertSkipped = 0;

  double parserAvgTermSize() const {
    return NumFunctions ? double(ParserTermSizeTotal) / NumFunctions : 0;
  }
  double acAvgTermSize() const {
    return NumFunctions ? double(ACTermSizeTotal) / NumFunctions : 0;
  }
};

/// One AutoCorres run over a translation unit.
class AutoCorres {
public:
  /// Runs the full pipeline; nullptr with diagnostics on failure.
  static std::unique_ptr<AutoCorres>
  run(const std::string &Source, DiagEngine &Diags,
      const ACOptions &Opts = ACOptions());

  const simpl::SimplProgram &program() const { return *Prog; }
  monad::InterpCtx &ctx() { return Ctx; }
  const heapabs::LiftedGlobals &lifted() const { return HL->lifted(); }
  heapabs::HeapAbstraction &heapAbs() { return *HL; }
  wordabs::WordAbstraction &wordAbs() { return *WA; }

  const FuncOutput *func(const std::string &Name) const {
    auto It = Funcs.find(Name);
    return It == Funcs.end() ? nullptr : &It->second;
  }
  const std::vector<std::string> &order() const {
    return Prog->FunctionOrder;
  }

  const ACStats &stats() const { return Stats; }

  /// Pretty-prints the final specification of one function, paper style:
  /// `name' arg1 ... argn == <body>`.
  std::string render(const std::string &Name) const;

private:
  AutoCorres() : Ctx(nullptr) {}

  std::unique_ptr<simpl::SimplProgram> Prog;
  monad::InterpCtx Ctx;
  std::map<std::string, monad::L1Result> L1;
  std::map<std::string, monad::L2Result> L2;
  std::unique_ptr<heapabs::HeapAbstraction> HL;
  std::unique_ptr<wordabs::WordAbstraction> WA;
  std::map<std::string, FuncOutput> Funcs;
  ACStats Stats;
};

} // namespace ac::core

#endif // AC_CORE_AUTOCORRES_H
