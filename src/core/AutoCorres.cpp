//===- AutoCorres.cpp -----------------------------------------------------===//

#include "core/AutoCorres.h"

#include "core/CallGraph.h"
#include "core/ResultCache.h"
#include "heapabs/HeapAbs.h"
#include "hol/Cert.h"
#include "hol/Names.h"
#include "hol/Print.h"
#include "simpl/PrintSimpl.h"
#include "support/Log.h"
#include "support/RuleProfile.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "wordabs/WordAbs.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <mutex>
#include <sstream>

using namespace ac;
using namespace ac::core;
using namespace ac::hol;
namespace nm = ac::hol::names;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

/// CPU time consumed by the calling thread, in seconds. Summed across
/// workers this gives the schedule-independent "abstraction effort"
/// number Table 5 reports, next to the wall clock.
double threadCpuSeconds() {
  timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) != 0)
    return 0;
  return double(TS.tv_sec) + double(TS.tv_nsec) * 1e-9;
}

/// ac_corres A S — the composed whole-pipeline refinement judgement.
TermRef mkAcCorres(const TermRef &A, const TermRef &S) {
  TermRef J = Term::mkConst(
      nm::ACCorres, funTys({typeOf(A), typeOf(S)}, boolTy()));
  return mkApps(J, {A, S});
}

/// The composition axioms: each phase theorem's *proposition* is a
/// premise; the conclusion is the composite claim. (The soundness of the
/// composition is exactly the transitivity-of-refinement argument of
/// Sec 2; registered once per judgement-shape in the inventory.)
Thm composeChain(const std::vector<Thm> &Phases, const TermRef &Final,
                 const TermRef &SimplC) {
  // Build `P1 --> ... --> Pn --> ac_corres Final SIMPL` and register it
  // as an instance-independent axiom is impossible (the propositions are
  // program-specific), so the axiom is stated with schematic premises
  // via the phase propositions themselves being instances. We derive the
  // composite through one generic axiom per arity by instantiating
  // schematic placeholders with the full phase propositions.
  TermRef Concl = mkAcCorres(Final, SimplC);
  // Generic axiom: ?p1 --> ... --> ?pn --> ?q, with q the composite.
  // That shape would be unsound for arbitrary q, so instead the axiom is
  // per-shape: it requires the premises to be the actual judgement
  // constants applied to shared terms. We encode this by building the
  // implication chain from the actual propositions and registering it as
  // a *derived-by-composition* oracle, keeping the phase theorems as
  // premises in the derivation tree via repeated mp.
  TermRef Chain = Concl;
  for (size_t I = Phases.size(); I-- > 0;)
    Chain = mkImp(Phases[I].prop(), Chain);
  Thm Impl = Kernel::oracle("refinement_composition", Chain);
  Thm Cur = Impl;
  for (const Thm &P : Phases)
    Cur = Kernel::mp(Cur, P);
  return Cur;
}

std::string envOrEmpty(const char *Name) {
  const char *V = std::getenv(Name);
  return V ? std::string(V) : std::string();
}

std::string hexKey16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

std::unique_ptr<AutoCorres> AutoCorres::run(const std::string &Source,
                                            DiagEngine &Diags,
                                            const ACOptions &Opts) {
  auto AC = std::unique_ptr<AutoCorres>(new AutoCorres());

  const std::string TracePath =
      !Opts.TracePath.empty() ? Opts.TracePath : support::Trace::envPath();
  // A traced run also profiles rules: the exported trace's `ruleProfile`
  // key carries per-rule fire counts, so AC_TRACE alone answers "which
  // rules carried this run" without a separate profiling pass. A
  // run-local trace restores the profiler's prior state on the way out.
  const bool ProfWasEnabled = support::RuleProfile::enabled();
  if (!TracePath.empty()) {
    support::RuleProfile::setEnabled(true);
    support::Trace::start();
  }

  // Certificate export: recording must be live before any theorem of
  // this run is minted, or `instantiate`/`spec` nodes lack their replay
  // payloads and their claims are unexportable. Sticky process-wide
  // (hol/Cert.h), so concurrent daemon runs cannot disable a neighbour's
  // recording.
  const std::string CertPath =
      !Opts.CertPath.empty() ? Opts.CertPath : envOrEmpty("AC_CERT");
  const std::string CertDir =
      !Opts.CertDir.empty() ? Opts.CertDir : envOrEmpty("AC_CERT_DIR");
  const bool WantCerts = !CertPath.empty() || !CertDir.empty();
  if (WantCerts)
    hol::CertLog::enable();

  support::Span RunSpan("ac.run");

  auto T0 = std::chrono::steady_clock::now();
  double PC0 = threadCpuSeconds();
  AC->Prog = simpl::parseAndTranslate(Source, Diags);
  if (!AC->Prog)
    return nullptr;
  AC->Stats.ParserSeconds = secondsSince(T0);
  AC->Stats.ParserCpuSeconds = threadCpuSeconds() - PC0;
  AC->Stats.SourceLines = AC->Prog->TU->SourceLines;
  AC->Stats.NumFunctions = AC->Prog->FunctionOrder.size();

  AC->Ctx = monad::InterpCtx(AC->Prog.get());

  unsigned Jobs =
      Opts.Jobs ? Opts.Jobs : support::ThreadPool::defaultJobs();
  AC->Stats.Jobs = Jobs;

  auto T1 = std::chrono::steady_clock::now();
  AC->HL =
      std::make_unique<heapabs::HeapAbstraction>(*AC->Prog, AC->Ctx);
  AC->WA = std::make_unique<wordabs::WordAbstraction>(AC->Ctx);

  const std::vector<std::string> &Order = AC->Prog->FunctionOrder;
  // Per-function sinks, indexed by source position so the merged stream
  // and the summed CPU time are identical under any schedule.
  std::vector<DiagEngine> FnDiags(Order.size());
  std::vector<double> FnCpuSeconds(Order.size(), 0);
  std::mutex OutputM; // guards AC->L1 / AC->L2 / AC->Funcs insertions

  // Content-addressed abstraction cache (opt-in): replay every function
  // whose fingerprint — Simpl body, options, and transitively its
  // callees' fingerprints — has a stored entry, and seed the HL/WA
  // result maps with the replayed signatures so that non-cached callers
  // still translate their calls exactly as a cold run would. The cache
  // is either this run's own (loaded from CacheDir, saved at the end) or
  // a caller-owned shared instance (the daemon's in-memory tier, which
  // persists across requests and is flushed by its owner).
  std::unique_ptr<ResultCache> OwnedCache;
  ResultCache *Cache = Opts.SharedCache;
  if (!Cache) {
    std::string CacheDir = ResultCache::resolveDir(Opts.CacheDir);
    if (!CacheDir.empty()) {
      OwnedCache = std::make_unique<ResultCache>(CacheDir);
      Cache = OwnedCache.get();
    }
  }
  std::map<std::string, uint64_t> Keys;
  std::vector<char> Hit(Order.size(), 0);
  if (Cache) {
    AC->Stats.CacheEnabled = true;
    AC->Stats.CacheDroppedEntries =
        static_cast<unsigned>(Cache->corruptDropped());
    {
      AC_SPAN("cache.fingerprint");
      Keys = computeFunctionKeys(*AC->Prog, Opts.NoHeapAbs, Opts.NoWordAbs);
    }
    for (size_t I = 0; I != Order.size(); ++I) {
      const std::string &Name = Order[I];
      CachedFuncRef E = Cache->lookup(Keys.at(Name));
      if (!E || E->Name != Name) {
        ++AC->Stats.CacheMisses;
        if (Cache->knowsFunction(Name))
          ++AC->Stats.CacheInvalidations;
        continue;
      }
      Hit[I] = 1;
      ++AC->Stats.CacheHits;
      AC->HL->seedCached(Name, E->HeapLifted);
      AC->WA->seedCached(Name, E->WAEngineAbstracted);
      FuncOutput Out;
      Out.Name = Name;
      Out.ArgNames = E->ArgNames;
      Out.HeapLifted = E->HeapLifted;
      Out.WordAbstracted = E->WordAbstracted;
      Out.FromCache = true;
      Out.CachedRender = E->Render;
      Out.CachedL1 = E->L1Spec;
      Out.CachedL2 = E->L2Spec;
      Out.CachedHL = E->HLSpec;
      Out.CachedWA = E->WASpec;
      Out.CachedPipeline = E->PipelineProp;
      Out.CachedSpecLines = E->SpecLines;
      Out.CachedTermSize = E->TermSize;
      // Replay the driver notes so the merged diagnostic stream is
      // byte-identical to a cold run.
      for (const std::string &Msg : E->Notes)
        FnDiags[I].note({}, Msg);
      AC->Funcs.emplace(Name, std::move(Out));
    }
  }

  // The whole L1 -> L2 -> HL -> WA chain for the function at \p OrderIdx.
  // Safe to run concurrently for different functions once their callees
  // are done (the call-graph schedule guarantees it); at Jobs=1 it is run
  // in FunctionOrder, which is exactly the serial pipeline.
  auto processFn = [&](size_t OrderIdx) {
    double C0 = threadCpuSeconds();
    const std::string &Name = Order[OrderIdx];
    support::Span FnSpan("core.fn");
    FnSpan.arg("fn", Name);
    const simpl::SimplFunc *F = AC->Prog->function(Name);

    monad::L1Result L1R = monad::convertL1(*AC->Prog, *F);
    AC->Ctx.installDef("l1:" + Name, L1R.Term);
    monad::L2Result L2R = monad::convertL2(*AC->Prog, *F);
    AC->Ctx.installDef("l2:" + Name, L2R.Def);

    FuncOutput Out;
    Out.Name = Name;
    Out.ArgNames = L2R.ArgNames;
    Out.L1Term = L1R.Term;
    Out.L1Corres = L1R.Corres;
    Out.L2Body = L2R.AppliedBody;
    Out.L2Corres = L2R.Corres;

    bool WantLift = Opts.NoHeapAbs.count(Name) == 0;
    const heapabs::HLResult &H =
        AC->HL->abstractFunction(*F, L2R, /*Lift=*/WantLift);
    if (H.Lifted) {
      Out.HeapLifted = true;
      Out.HLBody = H.AppliedBody;
      Out.HLCorres = H.Corres;
    } else if (WantLift) {
      FnDiags[OrderIdx].note(
          {}, "function '" + Name +
                  "' stays on the byte-level heap (no HL rule applied)");
    }

    wordabs::WAOptions WOpts;
    WOpts.Enabled = Opts.NoWordAbs.count(Name) == 0;
    const hol::TermRef &WAInput =
        H.Lifted ? H.AppliedBody : L2R.AppliedBody;
    const wordabs::WAResult &W = AC->WA->abstractFunction(
        Name, WAInput, L2R.ArgNames, L2R.ArgTys, WOpts);
    // Per-function selection (Sec 3.2): keep the machine-word version
    // when the ideal-arithmetic abstraction only adds coercion noise
    // (bit-twiddling code is the classic case).
    bool KeepWA =
        W.Abstracted &&
        termSize(W.AppliedBody) <= (termSize(WAInput) * 3) / 2 + 64;
    if (KeepWA) {
      Out.WordAbstracted = true;
      Out.WABody = W.AppliedBody;
      Out.WACorres = W.Corres;
      Out.FinalArgTys = W.AbsArgTys;
    } else {
      Out.FinalArgTys = L2R.ArgTys;
      if (WOpts.Enabled && !W.Abstracted)
        FnDiags[OrderIdx].note(
            {}, "function '" + Name +
                    "' stays on machine words (no WA rule applied)");
    }
    Out.FinalRetTy = Out.WordAbstracted
                         ? wordabs::absTy(L2R.RetTy)
                         : L2R.RetTy;

    // Compose the end-to-end theorem.
    std::vector<Thm> Phases;
    if (Out.WordAbstracted)
      Phases.push_back(Out.WACorres);
    if (Out.HeapLifted)
      Phases.push_back(Out.HLCorres);
    Phases.push_back(Out.L2Corres);
    Phases.push_back(Out.L1Corres);
    {
      AC_SPAN("core.compose");
      Out.Pipeline = composeChain(Phases, Out.finalBody(),
                                  monad::simplBodyConst(*F));
    }

    FnCpuSeconds[OrderIdx] = threadCpuSeconds() - C0;
    std::lock_guard<std::mutex> L(OutputM);
    AC->L1.emplace(Name, std::move(L1R));
    AC->L2.emplace(Name, std::move(L2R));
    AC->Funcs.emplace(Name, std::move(Out));
  };

  if (Jobs <= 1) {
    // Serial reference path: no pool, no scheduler.
    for (size_t I = 0; I != Order.size(); ++I)
      if (!Hit[I])
        processFn(I);
  } else {
    // One task per call-graph SCC; a task runs its members in serial
    // (FunctionOrder) order and becomes ready the moment its callee
    // components finish — no phase barriers. Cache-replayed functions
    // are skipped inside their task, so a fully cached SCC is a no-op
    // that merely releases its dependents.
    CallGraphSchedule Sched = buildCallGraphSchedule(*AC->Prog);
    std::map<std::string, size_t> OrderIdx;
    for (size_t I = 0; I != Order.size(); ++I)
      OrderIdx.emplace(Order[I], I);
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(Sched.SCCs.size());
    for (const std::vector<std::string> &SCC : Sched.SCCs)
      Tasks.push_back([&processFn, &OrderIdx, &SCC, &Hit] {
        for (const std::string &Name : SCC) {
          size_t I = OrderIdx.at(Name);
          if (!Hit[I])
            processFn(I);
        }
      });
    if (Opts.SharedPool) {
      // The daemon's warm pool: concurrent runs interleave their SCC
      // tasks on it; runTaskGraph keeps per-call bookkeeping, so the
      // schedules never interfere.
      AC->Stats.Jobs = Opts.SharedPool->jobs();
      runTaskGraph(*Opts.SharedPool, Tasks, Sched.Deps);
    } else {
      support::ThreadPool Pool(Jobs);
      runTaskGraph(Pool, Tasks, Sched.Deps);
    }
  }

  // Store every freshly computed result before the timing gate closes:
  // rendering the artefacts is part of what a warm run saves.
  if (Cache) {
    for (size_t I = 0; I != Order.size(); ++I) {
      if (Hit[I])
        continue;
      const std::string &Name = Order[I];
      const FuncOutput &Out = AC->Funcs.at(Name);
      CachedFunc E;
      E.Key = Keys.at(Name);
      E.Name = Name;
      E.HeapLifted = Out.HeapLifted;
      E.WAEngineAbstracted = AC->WA->results().at(Name).Abstracted;
      E.WordAbstracted = Out.WordAbstracted;
      E.ArgNames = Out.ArgNames;
      E.Render = AC->render(Name);
      E.L1Spec = Out.l1Spec();
      E.L2Spec = Out.l2Spec();
      E.HLSpec = Out.hlSpec();
      E.WASpec = Out.waSpec();
      E.PipelineProp = Out.pipelineProp();
      // Everything processFn reports is a driver note; replaying the
      // messages as notes reproduces the stream exactly.
      for (const Diagnostic &D : FnDiags[I].diagnostics())
        E.Notes.push_back(D.Message);
      E.SpecLines = Out.finalSpecLines();
      E.TermSize = Out.finalTermSize();
      Cache->insert(std::move(E));
    }
    if (OwnedCache)
      OwnedCache->save(); // best-effort; a failed save only costs warmth
  }

  AC->Stats.AutoCorresWallSeconds = secondsSince(T1);
  for (double S : FnCpuSeconds)
    AC->Stats.AutoCorresSeconds += S;
  for (const DiagEngine &D : FnDiags)
    Diags.merge(D);

  // Close the whole-run span before any flush: a still-open span would
  // miss this run's trace file and, after reset(), leak a stale ac.run
  // event into the next traced run in this process.
  RunSpan.end();

  // Certificate flush, outside the timed region like the trace flush:
  // claims walk only pointers the run already holds, so this is pure
  // serialisation + I/O and is best-effort — a cert that cannot be
  // written warns and never fails the run.
  if (WantCerts) {
    // Per-function certs are keyed like the abstraction cache; compute
    // the fingerprints if the cache did not already.
    if (!CertDir.empty() && Keys.empty() && !Order.empty())
      Keys = computeFunctionKeys(*AC->Prog, Opts.NoHeapAbs, Opts.NoWordAbs);
    if (!CertDir.empty()) {
      std::error_code EC;
      std::filesystem::create_directories(CertDir, EC); // best-effort
    }
    hol::CertWriter All;
    All.meta("generator", "autocorres-cpp");
    All.meta("functions", std::to_string(Order.size()));
    for (size_t I = 0; I != Order.size(); ++I) {
      const std::string &Name = Order[I];
      const FuncOutput &Out = AC->Funcs.at(Name);
      if (Out.FromCache) {
        ++AC->Stats.CertSkipped; // replayed render, no live derivation
        continue;
      }
      bool Claimed = false;
      if (!CertPath.empty())
        Claimed = All.claim(Name, Out.Pipeline);
      if (!CertDir.empty()) {
        hol::CertWriter One;
        One.meta("function", Name);
        const std::string Key = hexKey16(Keys.at(Name));
        One.meta("key", Key);
        if (One.claim(Name, Out.Pipeline)) {
          Claimed = true;
          const std::string FilePath = CertDir + "/" + Key + ".acpc";
          if (One.write(FilePath))
            ++AC->Stats.CertsWritten;
          else
            support::Log::warn("cert.write_failed", {{"path", FilePath}});
        }
      }
      if (Claimed)
        ++AC->Stats.CertClaims;
      else
        ++AC->Stats.CertSkipped; // minted before recording was enabled
    }
    if (!CertPath.empty()) {
      if (All.write(CertPath))
        ++AC->Stats.CertsWritten;
      else
        support::Log::warn("cert.write_failed", {{"path", CertPath}});
    }
  }

  if (!TracePath.empty()) {
    // The dumped profile covers the whole registered rule inventory, not
    // just the rules this input happened to exercise: fill in the
    // standard per-width/per-type families the run may not have minted,
    // then merge every WA./HL. axiom in as a zero row before flushing.
    wordabs::WordAbstraction::registerStandardRules();
    heapabs::HeapAbstraction::registerStandardRules();
    for (const auto &[N, P] : Inventory::instance().axioms())
      if (N.rfind("WA.", 0) == 0 || N.rfind("HL.", 0) == 0)
        support::RuleProfile::preregister(N);
    if (!support::Trace::flush(TracePath))
      support::Log::warn("trace.write_failed", {{"path", TracePath}});
    // A run-local trace (Opts.TracePath without ambient AC_TRACE) must
    // not leave collection running for the rest of the process.
    if (support::Trace::envPath().empty()) {
      support::Trace::stop();
      support::Trace::reset();
      if (!ProfWasEnabled)
        support::RuleProfile::setEnabled(false);
    }
  }

  // Table 5 metrics.
  for (const std::string &Name : AC->Prog->FunctionOrder) {
    const simpl::SimplFunc *F = AC->Prog->function(Name);
    AC->Stats.ParserSpecLines += simpl::simplSpecLines(*F);
    AC->Stats.ParserTermSizeTotal += F->Body->termSize();
    const FuncOutput &Out = AC->Funcs.at(Name);
    AC->Stats.ACSpecLines += Out.finalSpecLines() + 1;
    AC->Stats.ACTermSizeTotal += Out.finalTermSize();
  }
  return AC;
}

//===----------------------------------------------------------------------===//
// FuncOutput rendered views: live terms, or the cache replay.
//===----------------------------------------------------------------------===//

std::string FuncOutput::l1Spec() const {
  return FromCache ? CachedL1 : printTerm(L1Term);
}
std::string FuncOutput::l2Spec() const {
  return FromCache ? CachedL2 : printTerm(L2Body);
}
std::string FuncOutput::hlSpec() const {
  if (FromCache)
    return CachedHL;
  return HLBody ? printTerm(HLBody) : std::string();
}
std::string FuncOutput::waSpec() const {
  if (FromCache)
    return CachedWA;
  return WABody ? printTerm(WABody) : std::string();
}
std::string FuncOutput::pipelineProp() const {
  return FromCache ? CachedPipeline : printTerm(Pipeline.prop());
}
unsigned FuncOutput::finalSpecLines() const {
  return FromCache ? CachedSpecLines : specLines(finalBody());
}
unsigned FuncOutput::finalTermSize() const {
  return FromCache ? CachedTermSize : termSize(finalBody());
}

std::string AutoCorres::render(const std::string &Name) const {
  const FuncOutput *Out = func(Name);
  if (!Out)
    return "<unknown function>";
  if (Out->FromCache)
    return Out->CachedRender;
  std::ostringstream OS;
  OS << Name << "'";
  for (const std::string &A : Out->ArgNames)
    OS << " " << A;
  OS << " ==\n" << printTerm(Out->finalBody());
  return OS.str();
}
