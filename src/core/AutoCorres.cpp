//===- AutoCorres.cpp -----------------------------------------------------===//

#include "core/AutoCorres.h"

#include "core/CallGraph.h"
#include "hol/Names.h"
#include "hol/Print.h"
#include "simpl/PrintSimpl.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <ctime>
#include <mutex>
#include <sstream>

using namespace ac;
using namespace ac::core;
using namespace ac::hol;
namespace nm = ac::hol::names;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

/// CPU time consumed by the calling thread, in seconds. Summed across
/// workers this gives the schedule-independent "abstraction effort"
/// number Table 5 reports, next to the wall clock.
double threadCpuSeconds() {
  timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) != 0)
    return 0;
  return double(TS.tv_sec) + double(TS.tv_nsec) * 1e-9;
}

/// ac_corres A S — the composed whole-pipeline refinement judgement.
TermRef mkAcCorres(const TermRef &A, const TermRef &S) {
  TermRef J = Term::mkConst(
      nm::ACCorres, funTys({typeOf(A), typeOf(S)}, boolTy()));
  return mkApps(J, {A, S});
}

/// The composition axioms: each phase theorem's *proposition* is a
/// premise; the conclusion is the composite claim. (The soundness of the
/// composition is exactly the transitivity-of-refinement argument of
/// Sec 2; registered once per judgement-shape in the inventory.)
Thm composeChain(const std::vector<Thm> &Phases, const TermRef &Final,
                 const TermRef &SimplC) {
  // Build `P1 --> ... --> Pn --> ac_corres Final SIMPL` and register it
  // as an instance-independent axiom is impossible (the propositions are
  // program-specific), so the axiom is stated with schematic premises
  // via the phase propositions themselves being instances. We derive the
  // composite through one generic axiom per arity by instantiating
  // schematic placeholders with the full phase propositions.
  TermRef Concl = mkAcCorres(Final, SimplC);
  // Generic axiom: ?p1 --> ... --> ?pn --> ?q, with q the composite.
  // That shape would be unsound for arbitrary q, so instead the axiom is
  // per-shape: it requires the premises to be the actual judgement
  // constants applied to shared terms. We encode this by building the
  // implication chain from the actual propositions and registering it as
  // a *derived-by-composition* oracle, keeping the phase theorems as
  // premises in the derivation tree via repeated mp.
  TermRef Chain = Concl;
  for (size_t I = Phases.size(); I-- > 0;)
    Chain = mkImp(Phases[I].prop(), Chain);
  Thm Impl = Kernel::oracle("refinement_composition", Chain);
  Thm Cur = Impl;
  for (const Thm &P : Phases)
    Cur = Kernel::mp(Cur, P);
  return Cur;
}

} // namespace

std::unique_ptr<AutoCorres> AutoCorres::run(const std::string &Source,
                                            DiagEngine &Diags,
                                            const ACOptions &Opts) {
  auto AC = std::unique_ptr<AutoCorres>(new AutoCorres());

  auto T0 = std::chrono::steady_clock::now();
  AC->Prog = simpl::parseAndTranslate(Source, Diags);
  if (!AC->Prog)
    return nullptr;
  AC->Stats.ParserSeconds = secondsSince(T0);
  AC->Stats.SourceLines = AC->Prog->TU->SourceLines;
  AC->Stats.NumFunctions = AC->Prog->FunctionOrder.size();

  AC->Ctx = monad::InterpCtx(AC->Prog.get());

  unsigned Jobs =
      Opts.Jobs ? Opts.Jobs : support::ThreadPool::defaultJobs();
  AC->Stats.Jobs = Jobs;

  auto T1 = std::chrono::steady_clock::now();
  AC->HL =
      std::make_unique<heapabs::HeapAbstraction>(*AC->Prog, AC->Ctx);
  AC->WA = std::make_unique<wordabs::WordAbstraction>(AC->Ctx);

  const std::vector<std::string> &Order = AC->Prog->FunctionOrder;
  // Per-function sinks, indexed by source position so the merged stream
  // and the summed CPU time are identical under any schedule.
  std::vector<DiagEngine> FnDiags(Order.size());
  std::vector<double> FnCpuSeconds(Order.size(), 0);
  std::mutex OutputM; // guards AC->L1 / AC->L2 / AC->Funcs insertions

  // The whole L1 -> L2 -> HL -> WA chain for the function at \p OrderIdx.
  // Safe to run concurrently for different functions once their callees
  // are done (the call-graph schedule guarantees it); at Jobs=1 it is run
  // in FunctionOrder, which is exactly the serial pipeline.
  auto processFn = [&](size_t OrderIdx) {
    double C0 = threadCpuSeconds();
    const std::string &Name = Order[OrderIdx];
    const simpl::SimplFunc *F = AC->Prog->function(Name);

    monad::L1Result L1R = monad::convertL1(*AC->Prog, *F);
    AC->Ctx.installDef("l1:" + Name, L1R.Term);
    monad::L2Result L2R = monad::convertL2(*AC->Prog, *F);
    AC->Ctx.installDef("l2:" + Name, L2R.Def);

    FuncOutput Out;
    Out.Name = Name;
    Out.ArgNames = L2R.ArgNames;
    Out.L1Term = L1R.Term;
    Out.L1Corres = L1R.Corres;
    Out.L2Body = L2R.AppliedBody;
    Out.L2Corres = L2R.Corres;

    bool WantLift = Opts.NoHeapAbs.count(Name) == 0;
    const heapabs::HLResult &H =
        AC->HL->abstractFunction(*F, L2R, /*Lift=*/WantLift);
    if (H.Lifted) {
      Out.HeapLifted = true;
      Out.HLBody = H.AppliedBody;
      Out.HLCorres = H.Corres;
    } else if (WantLift) {
      FnDiags[OrderIdx].note(
          {}, "function '" + Name +
                  "' stays on the byte-level heap (no HL rule applied)");
    }

    wordabs::WAOptions WOpts;
    WOpts.Enabled = Opts.NoWordAbs.count(Name) == 0;
    const hol::TermRef &WAInput =
        H.Lifted ? H.AppliedBody : L2R.AppliedBody;
    const wordabs::WAResult &W = AC->WA->abstractFunction(
        Name, WAInput, L2R.ArgNames, L2R.ArgTys, WOpts);
    // Per-function selection (Sec 3.2): keep the machine-word version
    // when the ideal-arithmetic abstraction only adds coercion noise
    // (bit-twiddling code is the classic case).
    bool KeepWA =
        W.Abstracted &&
        termSize(W.AppliedBody) <= (termSize(WAInput) * 3) / 2 + 64;
    if (KeepWA) {
      Out.WordAbstracted = true;
      Out.WABody = W.AppliedBody;
      Out.WACorres = W.Corres;
      Out.FinalArgTys = W.AbsArgTys;
    } else {
      Out.FinalArgTys = L2R.ArgTys;
      if (WOpts.Enabled && !W.Abstracted)
        FnDiags[OrderIdx].note(
            {}, "function '" + Name +
                    "' stays on machine words (no WA rule applied)");
    }
    Out.FinalRetTy = Out.WordAbstracted
                         ? wordabs::absTy(L2R.RetTy)
                         : L2R.RetTy;

    // Compose the end-to-end theorem.
    std::vector<Thm> Phases;
    if (Out.WordAbstracted)
      Phases.push_back(Out.WACorres);
    if (Out.HeapLifted)
      Phases.push_back(Out.HLCorres);
    Phases.push_back(Out.L2Corres);
    Phases.push_back(Out.L1Corres);
    Out.Pipeline = composeChain(Phases, Out.finalBody(),
                                monad::simplBodyConst(*F));

    FnCpuSeconds[OrderIdx] = threadCpuSeconds() - C0;
    std::lock_guard<std::mutex> L(OutputM);
    AC->L1.emplace(Name, std::move(L1R));
    AC->L2.emplace(Name, std::move(L2R));
    AC->Funcs.emplace(Name, std::move(Out));
  };

  if (Jobs <= 1) {
    // Serial reference path: no pool, no scheduler.
    for (size_t I = 0; I != Order.size(); ++I)
      processFn(I);
  } else {
    // One task per call-graph SCC; a task runs its members in serial
    // (FunctionOrder) order and becomes ready the moment its callee
    // components finish — no phase barriers.
    CallGraphSchedule Sched = buildCallGraphSchedule(*AC->Prog);
    std::map<std::string, size_t> OrderIdx;
    for (size_t I = 0; I != Order.size(); ++I)
      OrderIdx.emplace(Order[I], I);
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(Sched.SCCs.size());
    for (const std::vector<std::string> &SCC : Sched.SCCs)
      Tasks.push_back([&processFn, &OrderIdx, &SCC] {
        for (const std::string &Name : SCC)
          processFn(OrderIdx.at(Name));
      });
    support::ThreadPool Pool(Jobs);
    runTaskGraph(Pool, Tasks, Sched.Deps);
  }

  AC->Stats.AutoCorresWallSeconds = secondsSince(T1);
  for (double S : FnCpuSeconds)
    AC->Stats.AutoCorresSeconds += S;
  for (const DiagEngine &D : FnDiags)
    Diags.merge(D);

  // Table 5 metrics.
  for (const std::string &Name : AC->Prog->FunctionOrder) {
    const simpl::SimplFunc *F = AC->Prog->function(Name);
    AC->Stats.ParserSpecLines += simpl::simplSpecLines(*F);
    AC->Stats.ParserTermSizeTotal += F->Body->termSize();
    const FuncOutput &Out = AC->Funcs.at(Name);
    AC->Stats.ACSpecLines += specLines(Out.finalBody()) + 1;
    AC->Stats.ACTermSizeTotal += termSize(Out.finalBody());
  }
  return AC;
}

std::string AutoCorres::render(const std::string &Name) const {
  const FuncOutput *Out = func(Name);
  if (!Out)
    return "<unknown function>";
  std::ostringstream OS;
  OS << Name << "'";
  for (const std::string &A : Out->ArgNames)
    OS << " " << A;
  OS << " ==\n" << printTerm(Out->finalBody());
  return OS.str();
}
