//===- CallGraph.cpp ------------------------------------------------------===//

#include "core/CallGraph.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ac;
using namespace ac::core;

static void collectCallees(const simpl::SimplStmtPtr &S,
                           const simpl::SimplProgram &Prog,
                           std::vector<std::string> &Out) {
  if (!S)
    return;
  if (S->kind() == simpl::SimplStmt::Kind::Call &&
      Prog.function(S->Callee) &&
      std::find(Out.begin(), Out.end(), S->Callee) == Out.end())
    Out.push_back(S->Callee);
  collectCallees(S->A, Prog, Out);
  collectCallees(S->B, Prog, Out);
}

std::vector<std::string>
ac::core::calleesOf(const simpl::SimplProgram &Prog,
                    const simpl::SimplFunc &F) {
  std::vector<std::string> Out;
  collectCallees(F.Body, Prog, Out);
  return Out;
}

CallGraphSchedule
ac::core::buildCallGraphSchedule(const simpl::SimplProgram &Prog) {
  const std::vector<std::string> &Order = Prog.FunctionOrder;
  unsigned N = static_cast<unsigned>(Order.size());

  std::map<std::string, unsigned> Idx;
  for (unsigned I = 0; I != N; ++I)
    Idx.emplace(Order[I], I);

  // Adjacency: caller -> callees, in deterministic first-call order.
  std::vector<std::vector<unsigned>> Adj(N);
  for (unsigned I = 0; I != N; ++I)
    for (const std::string &C : calleesOf(Prog, *Prog.function(Order[I])))
      Adj[I].push_back(Idx.at(C));

  // Iterative Tarjan. With edges pointing caller -> callee, an SCC is
  // emitted only after every SCC it reaches (its callees), so the output
  // is already in callee-first topological order. Roots are visited in
  // FunctionOrder and neighbours in first-call order, making the result
  // independent of anything but the program.
  constexpr unsigned None = ~0u;
  std::vector<unsigned> Index(N, None), Low(N, 0), CompOf(N, None);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  CallGraphSchedule Out;
  unsigned NextIndex = 0;

  struct Frame {
    unsigned V;
    size_t NextEdge = 0;
  };
  std::vector<Frame> Frames;

  for (unsigned Root = 0; Root != N; ++Root) {
    if (Index[Root] != None)
      continue;
    Frames.push_back({Root});
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      unsigned V = F.V;
      if (F.NextEdge == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      bool Descended = false;
      while (F.NextEdge < Adj[V].size()) {
        unsigned W = Adj[V][F.NextEdge++];
        if (Index[W] == None) {
          Frames.push_back({W});
          Descended = true;
          break;
        }
        if (OnStack[W])
          Low[V] = std::min(Low[V], Index[W]);
      }
      if (Descended)
        continue;
      if (Low[V] == Index[V]) {
        // V is an SCC root: pop its members.
        std::vector<unsigned> Members;
        for (;;) {
          unsigned W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          CompOf[W] = static_cast<unsigned>(Out.SCCs.size());
          Members.push_back(W);
          if (W == V)
            break;
        }
        // Members in FunctionOrder order = the serial processing order.
        std::sort(Members.begin(), Members.end());
        std::vector<std::string> Names;
        for (unsigned M : Members)
          Names.push_back(Order[M]);
        Out.SCCs.push_back(std::move(Names));
      }
      Frames.pop_back();
      if (!Frames.empty()) {
        Frame &P = Frames.back();
        Low[P.V] = std::min(Low[P.V], Low[V]);
      }
    }
  }

  // Condensation edges: each SCC depends on its callees' SCCs.
  Out.Deps.resize(Out.SCCs.size());
  for (unsigned V = 0; V != N; ++V) {
    for (unsigned W : Adj[V]) {
      unsigned CV = CompOf[V], CW = CompOf[W];
      assert(CW <= CV && "callee SCC must be emitted before its caller");
      if (CW != CV)
        Out.Deps[CV].push_back(CW);
    }
  }
  for (std::vector<unsigned> &D : Out.Deps) {
    std::sort(D.begin(), D.end());
    D.erase(std::unique(D.begin(), D.end()), D.end());
  }
  return Out;
}
