//===- CallGraph.h - Call-graph SCC scheduling ------------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling structure of the parallel abstraction pipeline. Each
/// function's abstraction (L1 -> L2 -> HL -> WA) depends only on its
/// callees' summaries, so the unit of scheduling is a strongly connected
/// component of the call graph: SCCs form a DAG, and an SCC can run the
/// moment every callee SCC has finished — no phase barriers.
///
/// Ordering is fully deterministic: functions inside an SCC appear in
/// `SimplProgram::FunctionOrder` order (the serial processing order), and
/// the SCC list itself is topological with callees first, matching the
/// visibility the serial pipeline gives each function. That is what makes
/// a parallel run produce bit-identical output to Jobs=1.
///
//===----------------------------------------------------------------------===//

#ifndef AC_CORE_CALLGRAPH_H
#define AC_CORE_CALLGRAPH_H

#include "simpl/Program.h"

#include <string>
#include <vector>

namespace ac::core {

/// The condensed (SCC) call graph of a translated program.
struct CallGraphSchedule {
  /// SCCs in callee-first topological order; each SCC lists its member
  /// functions in FunctionOrder order. Most SCCs are singletons —
  /// mutual recursion is the only way to get more.
  std::vector<std::vector<std::string>> SCCs;
  /// Deps[i] are indices of SCCs that must complete before SCC i starts
  /// (its callees' components, deduplicated, ascending).
  std::vector<std::vector<unsigned>> Deps;
};

/// Names of the functions \p F calls (deduplicated, in first-call order;
/// only calls to functions defined in \p Prog).
std::vector<std::string> calleesOf(const simpl::SimplProgram &Prog,
                                   const simpl::SimplFunc &F);

/// Builds the SCC condensation of the call graph, scheduling-ready.
CallGraphSchedule buildCallGraphSchedule(const simpl::SimplProgram &Prog);

} // namespace ac::core

#endif // AC_CORE_CALLGRAPH_H
