//===- ResultCache.cpp ----------------------------------------------------===//

#include "core/ResultCache.h"

#include "core/CallGraph.h"
#include "simpl/PrintSimpl.h"
#include "support/FaultInject.h"
#include "support/FileLock.h"
#include "support/Log.h"
#include "support/Trace.h"
#include "support/Fingerprint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace ac;
using namespace ac::core;
using support::FaultSite;
using support::Fingerprint;

// Persistence fault sites (docs/EXPERIMENTS.md has the inventory).
// `crash` and `bitflip` corrupt the *published* bytes — they prove the
// CRC recovery path; the other four fail the save cleanly and must leave
// the previously published file untouched.
static const FaultSite FaultSaveOpen("cache.save.open");
static const FaultSite FaultSaveWrite("cache.save.write");
static const FaultSite FaultSaveFsync("cache.save.fsync");
static const FaultSite FaultSaveRename("cache.save.rename");
static const FaultSite FaultSaveCrash("cache.save.crash");
static const FaultSite FaultSaveBitflip("cache.save.bitflip");

//===----------------------------------------------------------------------===//
// Directory resolution
//===----------------------------------------------------------------------===//

std::string ResultCache::resolveDir(const std::string &OptDir) {
  const char *Toggle = std::getenv("AC_CACHE");
  if (Toggle && std::string(Toggle) == "0")
    return "";
  if (!OptDir.empty())
    return OptDir;
  const char *EnvDir = std::getenv("AC_CACHE_DIR");
  if (EnvDir && *EnvDir)
    return EnvDir;
  if (Toggle && std::string(Toggle) == "1")
    return ".ac-cache";
  return "";
}

//===----------------------------------------------------------------------===//
// Load / save. Versioned text with length-prefixed blobs. Every entry
// ends with a CRC-32 of its serialized body, and the parser recovers
// per-entry: a damaged entry (torn write, truncation, bit flip) is
// dropped and the scan resyncs at the next "entry " line start, so one
// bad entry never takes out its intact neighbours.
//===----------------------------------------------------------------------===//

namespace {

std::string cacheFile(const std::string &Dir) {
  return Dir + "/accache-v" + std::to_string(ResultCache::FormatVersion) +
         ".txt";
}

/// The advisory lock guarding the cache file against concurrent
/// processes. One lock file per directory, version-independent.
std::string lockFile(const std::string &Dir) {
  return Dir + "/accache.lock";
}

// Strict cursor-based parsing over the whole file image. Strictness is
// deliberate: the only writer is writeEntry below, so any deviation from
// its exact byte layout *is* corruption, and failing fast hands control
// to the resync loop (the CRC would reject the entry anyway).

bool eatLit(const std::string &D, size_t &P, std::string_view Lit) {
  if (D.size() - P < Lit.size() || D.compare(P, Lit.size(), Lit) != 0)
    return false;
  P += Lit.size();
  return true;
}

/// A non-empty run of chars up to the next ' ' or '\n' (exclusive).
bool readWord(const std::string &D, size_t &P, std::string &Out) {
  size_t Start = P;
  while (P < D.size() && D[P] != ' ' && D[P] != '\n')
    ++P;
  if (P == Start)
    return false;
  Out.assign(D, Start, P - Start);
  return true;
}

bool readNum(const std::string &D, size_t &P, uint64_t &V) {
  size_t Start = P;
  V = 0;
  while (P < D.size() && D[P] >= '0' && D[P] <= '9') {
    if (V > (UINT64_MAX - 9) / 10)
      return false;
    V = V * 10 + static_cast<uint64_t>(D[P] - '0');
    ++P;
  }
  return P != Start;
}

/// "blob <len>\n<raw bytes>\n"; false on any mismatch or if \p len
/// overruns the image (truncated file).
bool readBlobAt(const std::string &D, size_t &P, std::string &Out) {
  uint64_t Len;
  if (!eatLit(D, P, "blob ") || !readNum(D, P, Len) || !eatLit(D, P, "\n"))
    return false;
  if (Len > D.size() - P)
    return false;
  Out.assign(D, P, Len);
  P += Len;
  return eatLit(D, P, "\n");
}

void writeBlob(std::ostream &Out, const std::string &S) {
  Out << "blob " << S.size() << "\n" << S << "\n";
}

/// Parses one entry whose "entry " keyword starts at \p P. On success
/// fills \p E, advances \p P past the trailing "end\n", and guarantees
/// the body bytes match the stored CRC. On failure \p P is unspecified —
/// the caller resyncs from the entry start.
bool parseEntryAt(const std::string &D, size_t &P, CachedFunc &E) {
  size_t Body = P;
  std::string Tok;
  if (!eatLit(D, P, "entry ") || !readWord(D, P, Tok) ||
      !Fingerprint::parseHex(Tok, E.Key) || !eatLit(D, P, "\n"))
    return false;
  if (!eatLit(D, P, "name ") || !readWord(D, P, E.Name) ||
      !eatLit(D, P, "\n"))
    return false;
  uint64_t HL, WAE, WA;
  if (!eatLit(D, P, "flags ") || !readNum(D, P, HL) || HL > 1 ||
      !eatLit(D, P, " ") || !readNum(D, P, WAE) || WAE > 1 ||
      !eatLit(D, P, " ") || !readNum(D, P, WA) || WA > 1 ||
      !eatLit(D, P, "\n"))
    return false;
  E.HeapLifted = HL != 0;
  E.WAEngineAbstracted = WAE != 0;
  E.WordAbstracted = WA != 0;
  uint64_t N;
  if (!eatLit(D, P, "args ") || !readNum(D, P, N) || N > 4096)
    return false;
  E.ArgNames.resize(N);
  for (std::string &A : E.ArgNames)
    if (!eatLit(D, P, " ") || !readWord(D, P, A))
      return false;
  if (!eatLit(D, P, "\n"))
    return false;
  uint64_t SL, TS;
  if (!eatLit(D, P, "stat ") || !readNum(D, P, SL) || SL > 0xffffffffu ||
      !eatLit(D, P, " ") || !readNum(D, P, TS) || TS > 0xffffffffu ||
      !eatLit(D, P, "\n"))
    return false;
  E.SpecLines = static_cast<unsigned>(SL);
  E.TermSize = static_cast<unsigned>(TS);
  if (!eatLit(D, P, "notes ") || !readNum(D, P, N) || N > 4096 ||
      !eatLit(D, P, "\n"))
    return false;
  E.Notes.resize(N);
  for (std::string &Note : E.Notes)
    if (!readBlobAt(D, P, Note))
      return false;
  for (std::string *S : {&E.Render, &E.L1Spec, &E.L2Spec, &E.HLSpec,
                         &E.WASpec, &E.PipelineProp})
    if (!readBlobAt(D, P, *S))
      return false;
  uint32_t Want;
  size_t BodyEnd = P;
  if (!eatLit(D, P, "crc ") || !readWord(D, P, Tok) ||
      !support::parseCrcHex(Tok, Want) || !eatLit(D, P, "\nend\n"))
    return false;
  return support::crc32(D.data() + Body, BodyEnd - Body) == Want;
}

/// Serializes \p E followed by the CRC-32 of exactly those bytes.
void writeEntry(std::ostream &Final, const CachedFunc &E) {
  std::ostringstream Out;
  Out << "entry " << Fingerprint::hex(E.Key) << "\n";
  Out << "name " << E.Name << "\n";
  Out << "flags " << (E.HeapLifted ? 1 : 0) << " "
      << (E.WAEngineAbstracted ? 1 : 0) << " "
      << (E.WordAbstracted ? 1 : 0) << "\n";
  Out << "args " << E.ArgNames.size();
  for (const std::string &A : E.ArgNames)
    Out << " " << A;
  Out << "\n";
  Out << "stat " << E.SpecLines << " " << E.TermSize << "\n";
  Out << "notes " << E.Notes.size() << "\n";
  for (const std::string &Note : E.Notes)
    writeBlob(Out, Note);
  for (const std::string *S : {&E.Render, &E.L1Spec, &E.L2Spec, &E.HLSpec,
                               &E.WASpec, &E.PipelineProp})
    writeBlob(Out, *S);
  std::string Body = Out.str();
  Final << Body << "crc " << support::crcHex(support::crc32(Body))
        << "\nend\n";
}

} // namespace

std::string core::serializeCachedFunc(const CachedFunc &E) {
  std::ostringstream Out;
  writeEntry(Out, E);
  return Out.str();
}

bool core::parseCachedFunc(const std::string &Blob, CachedFunc &Out) {
  size_t P = 0;
  return parseEntryAt(Blob, P, Out) && P == Blob.size();
}

namespace {

/// The next "entry " keyword at a line start, at or after \p From.
size_t findEntryStart(const std::string &D, size_t From) {
  for (size_t At = D.find("entry ", From); At != std::string::npos;
       At = D.find("entry ", At + 1))
    if (At == 0 || D[At - 1] == '\n')
      return At;
  return std::string::npos;
}

} // namespace

/// Parses the cache file at \p Path into \p Entries / \p KnownNames.
/// Damaged entries are dropped and counted in \p Dropped — one count per
/// contiguous damaged region, since resyncing through a torn entry whose
/// blob bytes happen to contain "entry " at a line start would otherwise
/// inflate the count for a single casualty.
static void readCacheFile(const std::string &Path,
                          std::map<uint64_t, CachedFuncRef> &Entries,
                          std::map<std::string, uint64_t> &KnownNames,
                          size_t &Dropped) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  const std::string D = Buf.str();
  size_t P = 0;
  uint64_t Version;
  if (!eatLit(D, P, "ACCACHE ") || !readNum(D, P, Version) ||
      !eatLit(D, P, "\n") || Version != ResultCache::FormatVersion)
    return; // stale or foreign file: every lookup misses
  bool InBadRegion = false;
  while (true) {
    size_t At = findEntryStart(D, P);
    if (At == std::string::npos)
      break;
    size_t Q = At;
    CachedFunc E;
    if (parseEntryAt(D, Q, E)) {
      KnownNames[E.Name] = E.Key;
      Entries[E.Key] = std::make_shared<const CachedFunc>(std::move(E));
      P = Q;
      InBadRegion = false;
    } else {
      if (!InBadRegion)
        ++Dropped;
      InBadRegion = true;
      P = At + 6; // resync at the next line-start "entry "
    }
  }
}

ResultCache::ResultCache(std::string D) : Dir(std::move(D)) { load(); }

void ResultCache::load() {
  if (Dir.empty())
    return; // memory-only tier
  AC_SPAN("cache.load");
  // Shared lock: concurrent readers overlap, but a mid-save writer can
  // never hand us a half-written file. Lockless fallback if the lock
  // file is unopenable (e.g. the directory does not exist yet).
  support::FileLock L = [&] {
    AC_SPAN("cache.lockwait");
    return support::FileLock::acquire(lockFile(Dir), /*Exclusive=*/false);
  }();
  size_t Dropped = 0;
  readCacheFile(cacheFile(Dir), Entries, KnownNames, Dropped);
  if (Dropped) {
    CorruptDropped += Dropped;
    // "dropped" is load-bearing: operators (and tier-1) grep for it.
    support::Log::warn(
        "cache.entries_dropped",
        {{"path", cacheFile(Dir)},
         {"dropped", static_cast<uint64_t>(Dropped)},
         {"kept", static_cast<uint64_t>(Entries.size())},
         {"msg", "dropped damaged cache entries; dropped functions "
                 "re-verify"}});
  }
}

CachedFuncRef ResultCache::lookup(uint64_t Key) const {
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Entries.find(Key);
    if (It != Entries.end())
      return It->second;
  }
  if (!Remote)
    return nullptr;
  // Remote fetch outside the mutex: a slow network round-trip must not
  // serialize concurrent local hits.
  CachedFunc E;
  if (!Remote->get(Key, E) || E.Key != Key)
    return nullptr;
  auto Ref = std::make_shared<const CachedFunc>(std::move(E));
  {
    std::lock_guard<std::mutex> L(M);
    ++RemoteHits;
    auto It = KnownNames.find(Ref->Name);
    if (It != KnownNames.end() && It->second != Key)
      Entries.erase(It->second);
    KnownNames[Ref->Name] = Key;
    Entries[Key] = Ref; // promote: next time it is a memory hit
  }
  return Ref;
}

size_t ResultCache::remoteHits() const {
  std::lock_guard<std::mutex> L(M);
  return RemoteHits;
}

bool ResultCache::knowsFunction(const std::string &Name) const {
  std::lock_guard<std::mutex> L(M);
  return KnownNames.count(Name) != 0;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> L(M);
  return Entries.size();
}

size_t ResultCache::corruptDropped() const {
  std::lock_guard<std::mutex> L(M);
  return CorruptDropped;
}

void ResultCache::insert(CachedFunc E) {
  CachedFuncRef Ref;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = KnownNames.find(E.Name);
    if (It != KnownNames.end() && It->second != E.Key)
      Entries.erase(It->second); // superseded: the inputs changed
    KnownNames[E.Name] = E.Key;
    uint64_t Key = E.Key;
    Ref = std::make_shared<const CachedFunc>(std::move(E));
    Entries[Key] = Ref;
  }
  // Write-through on miss: every freshly computed entry is published so
  // the next shard's cold miss becomes a remote hit. Outside the mutex
  // (network), best-effort (the tier may drop it).
  if (Remote)
    Remote->put(*Ref);
}

bool ResultCache::save() {
  if (Dir.empty())
    return true; // memory-only tier persists nothing
  AC_SPAN("cache.save");
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC); // best-effort

  // Exclusive lock for the whole read-merge-write: another process that
  // saved since our load must not lose its entries, and no reader may
  // observe a torn file. Own names win (we computed them more recently);
  // foreign-only names are carried over.
  support::FileLock Lock = [&] {
    AC_SPAN("cache.lockwait");
    return support::FileLock::acquire(lockFile(Dir), /*Exclusive=*/true);
  }();

  std::map<uint64_t, CachedFuncRef> Merged;
  std::map<std::string, uint64_t> MergedNames;
  size_t Dropped = 0;
  readCacheFile(cacheFile(Dir), Merged, MergedNames, Dropped);
  {
    std::lock_guard<std::mutex> L(M);
    CorruptDropped += Dropped;
    for (const auto &[Name, Key] : KnownNames) {
      auto It = MergedNames.find(Name);
      if (It != MergedNames.end() && It->second != Key)
        Merged.erase(It->second);
      MergedNames[Name] = Key;
      Merged[Key] = Entries.at(Key);
    }
  }

  // Serialize the whole image up front: fault injection below mutates
  // the finished byte string, and a single write keeps the temp-file
  // window minimal.
  std::string Image;
  {
    std::ostringstream Out;
    Out << "ACCACHE " << FormatVersion << "\n";
    for (const auto &[Key, E] : Merged)
      writeEntry(Out, *E);
    Image = Out.str();
  }

  // cache.save.crash: a torn image lands on the *published* path — the
  // state a power cut leaves on a filesystem that reordered data and
  // rename journal entries. The next load's per-entry recovery must cope.
  bool Torn = FaultSaveCrash.fire();
  if (Torn)
    Image.resize(Image.size() - Image.size() / 3);
  // cache.save.bitflip: silent single-bit corruption. The save itself
  // reports success; the *next load* must catch the entry by CRC.
  bool Flipped = FaultSaveBitflip.fire();
  if (Flipped && !Image.empty())
    Image[Image.size() / 2] ^= 0x20;

  // The temp name only needs to dodge concurrent savers of *other*
  // directories' files landing in shared tmp listings; hashing the entry
  // set keeps it deterministic per content. (Same-directory savers are
  // serialized by the lock above.)
  Fingerprint NameFP;
  for (const auto &[Key, E] : Merged)
    NameFP.u64(Key);
  std::string Tmp = cacheFile(Dir) + ".tmp." + Fingerprint::hex(NameFP.digest());

  if (FaultSaveOpen.fire())
    return false;
  int FD = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (FD < 0)
    return false;
  auto Fail = [&] {
    ::close(FD);
    std::remove(Tmp.c_str());
    return false;
  };
  if (FaultSaveWrite.fire()) {
    // Partial write then failure: the temp file is abandoned whole-cloth
    // and the published cache file stays intact.
    (void)!::write(FD, Image.data(), Image.size() / 2);
    return Fail();
  }
  const char *Ptr = Image.data();
  size_t Left = Image.size();
  while (Left) {
    ssize_t N = ::write(FD, Ptr, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Fail();
    }
    Ptr += N;
    Left -= static_cast<size_t>(N);
  }
  // fsync before rename: otherwise the rename can become durable while
  // the data is not — exactly the torn-file state the CRC recovery
  // exists for, but not one we should manufacture ourselves.
  if (FaultSaveFsync.fire() || ::fsync(FD) != 0)
    return Fail();
  ::close(FD);
  if (FaultSaveRename.fire() ||
      std::rename(Tmp.c_str(), cacheFile(Dir).c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  // A torn image did land (that is the point of the site), but the save
  // as a whole did not complete normally — report it like a crash would.
  return !Torn;
}

//===----------------------------------------------------------------------===//
// Fingerprinting
//===----------------------------------------------------------------------===//

namespace {

std::string typeName(const hol::TypeRef &T) {
  return T ? hol::typeStr(T) : "<void>";
}

/// Everything program-wide that shapes rendered output beyond a single
/// function's own body: record layouts (globals, structs, lifted_globals)
/// and the heap-type list that drives the split-heap field generation.
/// Per-function `<f>_state` records are hashed with their function.
uint64_t programSalt(const simpl::SimplProgram &Prog) {
  Fingerprint FP;
  FP.u32(ResultCache::FormatVersion);
  for (const auto &[Name, RI] : Prog.Records.all()) {
    if (Name.size() > 6 && Name.rfind("_state") == Name.size() - 6)
      continue;
    FP.str(Name);
    FP.u64(RI.Fields.size());
    for (const auto &[FName, FTy] : RI.Fields) {
      FP.str(FName);
      FP.str(typeName(FTy));
    }
  }
  FP.u64(Prog.HeapTypes.size());
  for (const hol::TypeRef &T : Prog.HeapTypes)
    FP.str(typeName(T));
  return FP.digest();
}

/// One function's own contribution: signature, locals (they shape the
/// Simpl state record), options, and the rendered Simpl body.
void hashFunction(Fingerprint &FP, const simpl::SimplFunc &F,
                  bool NoHL, bool NoWA) {
  FP.str(F.Name);
  FP.boolean(NoHL);
  FP.boolean(NoWA);
  FP.boolean(F.IsRecursive);
  FP.u64(F.Params.size());
  for (const auto &[Name, Ty] : F.Params) {
    FP.str(Name);
    FP.str(typeName(Ty));
  }
  FP.u64(F.Locals.size());
  for (const auto &[Name, Ty] : F.Locals) {
    FP.str(Name);
    FP.str(typeName(Ty));
  }
  FP.str(typeName(F.RetTy));
  FP.str(simpl::printSimplFunc(F));
}

} // namespace

std::map<std::string, uint64_t>
core::computeFunctionKeys(const simpl::SimplProgram &Prog,
                          const std::set<std::string> &NoHeapAbs,
                          const std::set<std::string> &NoWordAbs) {
  uint64_t Salt = programSalt(Prog);
  CallGraphSchedule Sched = buildCallGraphSchedule(Prog);

  std::map<std::string, size_t> SCCOf;
  for (size_t I = 0; I != Sched.SCCs.size(); ++I)
    for (const std::string &Name : Sched.SCCs[I])
      SCCOf.emplace(Name, I);

  std::map<std::string, uint64_t> Keys;
  // Callee-first topological order: external callee keys always exist.
  for (size_t I = 0; I != Sched.SCCs.size(); ++I) {
    Fingerprint FP(Salt);
    for (const std::string &Name : Sched.SCCs[I]) {
      const simpl::SimplFunc *F = Prog.function(Name);
      hashFunction(FP, *F, NoHeapAbs.count(Name) != 0,
                   NoWordAbs.count(Name) != 0);
      for (const std::string &Callee : calleesOf(Prog, *F)) {
        if (SCCOf.at(Callee) == I)
          continue; // intra-SCC: the member bodies above cover it
        FP.str(Callee);
        FP.u64(Keys.at(Callee));
      }
    }
    uint64_t SCCKey = FP.digest();
    for (const std::string &Name : Sched.SCCs[I]) {
      Fingerprint MF(SCCKey);
      MF.str(Name);
      Keys[Name] = MF.digest();
    }
  }
  return Keys;
}
