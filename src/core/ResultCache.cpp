//===- ResultCache.cpp ----------------------------------------------------===//

#include "core/ResultCache.h"

#include "core/CallGraph.h"
#include "simpl/PrintSimpl.h"
#include "support/FileLock.h"
#include "support/Fingerprint.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace ac;
using namespace ac::core;
using support::Fingerprint;

//===----------------------------------------------------------------------===//
// Directory resolution
//===----------------------------------------------------------------------===//

std::string ResultCache::resolveDir(const std::string &OptDir) {
  const char *Toggle = std::getenv("AC_CACHE");
  if (Toggle && std::string(Toggle) == "0")
    return "";
  if (!OptDir.empty())
    return OptDir;
  const char *EnvDir = std::getenv("AC_CACHE_DIR");
  if (EnvDir && *EnvDir)
    return EnvDir;
  if (Toggle && std::string(Toggle) == "1")
    return ".ac-cache";
  return "";
}

//===----------------------------------------------------------------------===//
// Load / save. Versioned text with length-prefixed blobs; any structural
// surprise stops the parse silently (entries read so far are kept, the
// rest are misses).
//===----------------------------------------------------------------------===//

namespace {

std::string cacheFile(const std::string &Dir) {
  return Dir + "/accache-v" + std::to_string(ResultCache::FormatVersion) +
         ".txt";
}

/// The advisory lock guarding the cache file against concurrent
/// processes. One lock file per directory, version-independent.
std::string lockFile(const std::string &Dir) {
  return Dir + "/accache.lock";
}

/// Reads "blob <len>\n<raw bytes>\n"; false on any mismatch.
bool readBlob(std::istream &In, std::string &Out) {
  std::string Tag;
  size_t Len;
  if (!(In >> Tag >> Len) || Tag != "blob")
    return false;
  if (In.get() != '\n')
    return false;
  Out.resize(Len);
  if (Len && !In.read(Out.data(), static_cast<std::streamsize>(Len)))
    return false;
  return In.get() == '\n';
}

void writeBlob(std::ostream &Out, const std::string &S) {
  Out << "blob " << S.size() << "\n" << S << "\n";
}

bool readEntry(std::istream &In, CachedFunc &E) {
  std::string Tag, Hex;
  if (!(In >> Tag >> Hex) || Tag != "entry" ||
      !Fingerprint::parseHex(Hex, E.Key))
    return false;
  if (!(In >> Tag >> E.Name) || Tag != "name")
    return false;
  int HL, WAE, WA;
  if (!(In >> Tag >> HL >> WAE >> WA) || Tag != "flags")
    return false;
  E.HeapLifted = HL != 0;
  E.WAEngineAbstracted = WAE != 0;
  E.WordAbstracted = WA != 0;
  size_t N;
  if (!(In >> Tag >> N) || Tag != "args" || N > 4096)
    return false;
  E.ArgNames.resize(N);
  for (std::string &A : E.ArgNames)
    if (!(In >> A))
      return false;
  if (!(In >> Tag >> E.SpecLines >> E.TermSize) || Tag != "stat")
    return false;
  if (!(In >> Tag >> N) || Tag != "notes" || N > 4096)
    return false;
  if (In.get() != '\n')
    return false;
  E.Notes.resize(N);
  for (std::string &Note : E.Notes)
    if (!readBlob(In, Note))
      return false;
  for (std::string *S : {&E.Render, &E.L1Spec, &E.L2Spec, &E.HLSpec,
                         &E.WASpec, &E.PipelineProp})
    if (!readBlob(In, *S))
      return false;
  if (!(In >> Tag) || Tag != "end")
    return false;
  return true;
}

void writeEntry(std::ostream &Out, const CachedFunc &E) {
  Out << "entry " << Fingerprint::hex(E.Key) << "\n";
  Out << "name " << E.Name << "\n";
  Out << "flags " << (E.HeapLifted ? 1 : 0) << " "
      << (E.WAEngineAbstracted ? 1 : 0) << " "
      << (E.WordAbstracted ? 1 : 0) << "\n";
  Out << "args " << E.ArgNames.size();
  for (const std::string &A : E.ArgNames)
    Out << " " << A;
  Out << "\n";
  Out << "stat " << E.SpecLines << " " << E.TermSize << "\n";
  Out << "notes " << E.Notes.size() << "\n";
  for (const std::string &Note : E.Notes)
    writeBlob(Out, Note);
  for (const std::string *S : {&E.Render, &E.L1Spec, &E.L2Spec, &E.HLSpec,
                               &E.WASpec, &E.PipelineProp})
    writeBlob(Out, *S);
  Out << "end\n";
}

} // namespace

/// Parses the cache file at \p Path into \p Entries / \p KnownNames.
/// Structural surprises stop the parse; entries read so far are kept.
static void readCacheFile(const std::string &Path,
                          std::map<uint64_t, CachedFuncRef> &Entries,
                          std::map<std::string, uint64_t> &KnownNames) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return;
  std::string Magic;
  unsigned Version;
  if (!(In >> Magic >> Version) || Magic != "ACCACHE" ||
      Version != ResultCache::FormatVersion)
    return; // stale or foreign file: every lookup misses
  CachedFunc E;
  while (readEntry(In, E)) {
    KnownNames[E.Name] = E.Key;
    Entries[E.Key] = std::make_shared<const CachedFunc>(std::move(E));
    E = CachedFunc();
  }
}

ResultCache::ResultCache(std::string D) : Dir(std::move(D)) { load(); }

void ResultCache::load() {
  if (Dir.empty())
    return; // memory-only tier
  // Shared lock: concurrent readers overlap, but a mid-save writer can
  // never hand us a half-written file. Lockless fallback if the lock
  // file is unopenable (e.g. the directory does not exist yet).
  support::FileLock L = support::FileLock::acquire(lockFile(Dir),
                                                   /*Exclusive=*/false);
  readCacheFile(cacheFile(Dir), Entries, KnownNames);
}

CachedFuncRef ResultCache::lookup(uint64_t Key) const {
  std::lock_guard<std::mutex> L(M);
  auto It = Entries.find(Key);
  return It == Entries.end() ? nullptr : It->second;
}

bool ResultCache::knowsFunction(const std::string &Name) const {
  std::lock_guard<std::mutex> L(M);
  return KnownNames.count(Name) != 0;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> L(M);
  return Entries.size();
}

void ResultCache::insert(CachedFunc E) {
  std::lock_guard<std::mutex> L(M);
  auto It = KnownNames.find(E.Name);
  if (It != KnownNames.end() && It->second != E.Key)
    Entries.erase(It->second); // superseded: the inputs changed
  KnownNames[E.Name] = E.Key;
  uint64_t Key = E.Key;
  Entries[Key] = std::make_shared<const CachedFunc>(std::move(E));
}

bool ResultCache::save() {
  if (Dir.empty())
    return true; // memory-only tier persists nothing
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC); // best-effort

  // Exclusive lock for the whole read-merge-write: another process that
  // saved since our load must not lose its entries, and no reader may
  // observe a torn file. Own names win (we computed them more recently);
  // foreign-only names are carried over.
  support::FileLock Lock = support::FileLock::acquire(lockFile(Dir),
                                                      /*Exclusive=*/true);

  std::map<uint64_t, CachedFuncRef> Merged;
  std::map<std::string, uint64_t> MergedNames;
  readCacheFile(cacheFile(Dir), Merged, MergedNames);
  {
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Name, Key] : KnownNames) {
      auto It = MergedNames.find(Name);
      if (It != MergedNames.end() && It->second != Key)
        Merged.erase(It->second);
      MergedNames[Name] = Key;
      Merged[Key] = Entries.at(Key);
    }
  }

  // The temp name only needs to dodge concurrent savers of *other*
  // directories' files landing in shared tmp listings; hashing the entry
  // set keeps it deterministic per content. (Same-directory savers are
  // serialized by the lock above.)
  Fingerprint NameFP;
  for (const auto &[Key, E] : Merged)
    NameFP.u64(Key);
  std::string Tmp = cacheFile(Dir) + ".tmp." + Fingerprint::hex(NameFP.digest());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << "ACCACHE " << FormatVersion << "\n";
    for (const auto &[Key, E] : Merged)
      writeEntry(Out, *E);
    if (!Out)
      return false;
  }
  if (std::rename(Tmp.c_str(), cacheFile(Dir).c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Fingerprinting
//===----------------------------------------------------------------------===//

namespace {

std::string typeName(const hol::TypeRef &T) {
  return T ? hol::typeStr(T) : "<void>";
}

/// Everything program-wide that shapes rendered output beyond a single
/// function's own body: record layouts (globals, structs, lifted_globals)
/// and the heap-type list that drives the split-heap field generation.
/// Per-function `<f>_state` records are hashed with their function.
uint64_t programSalt(const simpl::SimplProgram &Prog) {
  Fingerprint FP;
  FP.u32(ResultCache::FormatVersion);
  for (const auto &[Name, RI] : Prog.Records.all()) {
    if (Name.size() > 6 && Name.rfind("_state") == Name.size() - 6)
      continue;
    FP.str(Name);
    FP.u64(RI.Fields.size());
    for (const auto &[FName, FTy] : RI.Fields) {
      FP.str(FName);
      FP.str(typeName(FTy));
    }
  }
  FP.u64(Prog.HeapTypes.size());
  for (const hol::TypeRef &T : Prog.HeapTypes)
    FP.str(typeName(T));
  return FP.digest();
}

/// One function's own contribution: signature, locals (they shape the
/// Simpl state record), options, and the rendered Simpl body.
void hashFunction(Fingerprint &FP, const simpl::SimplFunc &F,
                  bool NoHL, bool NoWA) {
  FP.str(F.Name);
  FP.boolean(NoHL);
  FP.boolean(NoWA);
  FP.boolean(F.IsRecursive);
  FP.u64(F.Params.size());
  for (const auto &[Name, Ty] : F.Params) {
    FP.str(Name);
    FP.str(typeName(Ty));
  }
  FP.u64(F.Locals.size());
  for (const auto &[Name, Ty] : F.Locals) {
    FP.str(Name);
    FP.str(typeName(Ty));
  }
  FP.str(typeName(F.RetTy));
  FP.str(simpl::printSimplFunc(F));
}

} // namespace

std::map<std::string, uint64_t>
core::computeFunctionKeys(const simpl::SimplProgram &Prog,
                          const std::set<std::string> &NoHeapAbs,
                          const std::set<std::string> &NoWordAbs) {
  uint64_t Salt = programSalt(Prog);
  CallGraphSchedule Sched = buildCallGraphSchedule(Prog);

  std::map<std::string, size_t> SCCOf;
  for (size_t I = 0; I != Sched.SCCs.size(); ++I)
    for (const std::string &Name : Sched.SCCs[I])
      SCCOf.emplace(Name, I);

  std::map<std::string, uint64_t> Keys;
  // Callee-first topological order: external callee keys always exist.
  for (size_t I = 0; I != Sched.SCCs.size(); ++I) {
    Fingerprint FP(Salt);
    for (const std::string &Name : Sched.SCCs[I]) {
      const simpl::SimplFunc *F = Prog.function(Name);
      hashFunction(FP, *F, NoHeapAbs.count(Name) != 0,
                   NoWordAbs.count(Name) != 0);
      for (const std::string &Callee : calleesOf(Prog, *F)) {
        if (SCCOf.at(Callee) == I)
          continue; // intra-SCC: the member bodies above cover it
        FP.str(Callee);
        FP.u64(Keys.at(Callee));
      }
    }
    uint64_t SCCKey = FP.digest();
    for (const std::string &Name : Sched.SCCs[I]) {
      Fingerprint MF(SCCKey);
      MF.str(Name);
      Keys[Name] = MF.digest();
    }
  }
  return Keys;
}
