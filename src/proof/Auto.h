//===- Auto.h - The automated proof tactic ----------------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `auto` combination used throughout Sec 5: a sequent-style solver
/// with goal/hypothesis normalisation, if-then-else and disjunction case
/// splitting, fun_upd reasoning (the split-heap update rule), congruence
/// closure over equality hypotheses, linear arithmetic over ideal nat/int
/// (Fourier-Motzkin with integer tightening and div/mod elimination), and
/// backward chaining into a registered lemma library — including bounded
/// existential-witness search for the list-library proofs.
///
/// Successful proofs return theorems tagged with the "auto" oracle
/// (mirroring Isabelle's oracle mechanism for decision procedures); the
/// tactic itself is validated by the countermodel search `refute`, which
/// the test suite runs on both provable and unprovable goals.
///
/// Crucially for footnote 2 of the paper: on *word-level* goals the
/// arithmetic atoms stay opaque, so `auto` fails exactly where Isabelle's
/// does — and succeeds on the nat-level abstraction.
///
//===----------------------------------------------------------------------===//

#ifndef AC_PROOF_AUTO_H
#define AC_PROOF_AUTO_H

#include "hol/Thm.h"
#include "monad/Interp.h"

#include <optional>

namespace ac::proof {

struct AutoOptions {
  unsigned MaxSteps = 20000;  ///< total sequent expansions
  unsigned MaxDepth = 400;    ///< recursion depth
  bool WitnessSearch = true;  ///< enable existential witness enumeration
};

/// The tactic. Lemmas added with addLemma participate in backward
/// chaining (implications) and rewriting (equations).
class AutoProver {
public:
  AutoProver() = default;

  void addLemma(const hol::Thm &T) { Lemmas.push_back(T); }
  const std::vector<hol::Thm> &lemmas() const { return Lemmas; }

  /// Attempts to prove a closed boolean goal. On success the result is
  /// |- Goal via the "auto" oracle.
  std::optional<hol::Thm> prove(const hol::TermRef &Goal,
                                const AutoOptions &Opts = AutoOptions());

  /// Random countermodel search: returns true if an assignment of the
  /// goal's variables falsifies it. Used to validate both the tactic and
  /// the axiomatised lemma libraries.
  static bool refute(const hol::TermRef &Goal, monad::InterpCtx &Ctx,
                     unsigned Trials = 300, uint64_t Seed = 1);

private:
  std::vector<hol::Thm> Lemmas;
};

} // namespace ac::proof

#endif // AC_PROOF_AUTO_H
