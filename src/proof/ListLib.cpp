//===- ListLib.cpp --------------------------------------------------------===//

#include "proof/ListLib.h"

#include "hol/Names.h"

using namespace ac;
using namespace ac::proof;
using namespace ac::hol;
namespace nm = ac::hol::names;

TypeRef ListTheory::listTy() const { return hol::listTy(PtrTy); }

TermRef ListTheory::list(TermRef V, TermRef H, TermRef P,
                         TermRef Ps) const {
  TermRef C = Term::mkConst(
      std::string("List@") + RecName + "." + NextField,
      funTys({funTy(PtrTy, boolTy()), funTy(PtrTy, NodeTy), PtrTy,
              listTy()},
             boolTy()));
  return mkApps(C, {std::move(V), std::move(H), std::move(P),
                    std::move(Ps)});
}

TermRef ListTheory::len(TermRef V, TermRef H, TermRef P) const {
  TermRef C = Term::mkConst(
      std::string("listlen@") + RecName + "." + NextField,
      funTys({funTy(PtrTy, boolTy()), funTy(PtrTy, NodeTy), PtrTy},
             natTy()));
  return mkApps(C, {std::move(V), std::move(H), std::move(P)});
}

namespace {

TermRef V_(const char *N, TypeRef Ty) {
  return Term::mkVar(N, 0, std::move(Ty));
}

} // namespace

ListTheory ac::proof::makeListTheory(const std::string &RecName,
                                     const std::string &NextField) {
  ListTheory T;
  T.RecName = RecName;
  T.NextField = NextField;
  T.NodeTy = recordTy(RecName);
  T.PtrTy = ptrTy(T.NodeTy);

  TypeRef PT = T.PtrTy;
  TypeRef LT = T.listTy();
  TermRef Vv = V_("v", funTy(PT, boolTy()));
  TermRef Hv = V_("H", funTy(PT, T.NodeTy));
  TermRef Pv = V_("p", PT);
  TermRef Qv = V_("q", PT);
  TermRef Xv = V_("x", PT);
  TermRef Yv = V_("y", T.NodeTy);
  TermRef Ps = V_("ps", LT);
  TermRef Qs = V_("qs", LT);
  TermRef Xs = V_("xs", LT);
  TermRef NilT = Term::mkConst(nm::Nil, LT);
  auto ConsT = [&](TermRef H2, TermRef T2) {
    return mkApps(Term::mkConst(nm::Cons, funTys({PT, LT}, LT)),
                  {std::move(H2), std::move(T2)});
  };
  auto TlT = [&](TermRef L) {
    return Term::mkApp(Term::mkConst(nm::Tl, funTy(LT, LT)),
                       std::move(L));
  };
  auto MemberT = [&](TermRef E, TermRef L) {
    return mkApps(Term::mkConst(nm::Member, funTys({PT, LT}, boolTy())),
                  {std::move(E), std::move(L)});
  };
  auto DisjntT = [&](TermRef A, TermRef B) {
    return mkApps(Term::mkConst(nm::Disjnt, funTys({LT, LT}, boolTy())),
                  {std::move(A), std::move(B)});
  };
  auto RevT = [&](TermRef L) {
    return Term::mkApp(Term::mkConst(nm::Rev, funTy(LT, LT)),
                       std::move(L));
  };
  auto AppendT = [&](TermRef A, TermRef B) {
    return mkApps(Term::mkConst(nm::Append, funTys({LT, LT}, LT)),
                  {std::move(A), std::move(B)});
  };
  auto LengthT = [&](TermRef L) {
    return Term::mkApp(Term::mkConst(nm::Length, funTy(LT, natTy())),
                       std::move(L));
  };
  auto NextOf = [&](TermRef Node) {
    const hol::TypeRef FieldTy = PT;
    return mkFieldGet(RecName, NextField, FieldTy, T.NodeTy,
                      std::move(Node));
  };
  auto FunUpd = [&](TermRef F, TermRef At, TermRef To) {
    TermRef C = Term::mkConst(
        "fun_upd",
        funTys({funTy(PT, T.NodeTy), PT, T.NodeTy}, funTy(PT, T.NodeTy)));
    return mkApps(C, {std::move(F), std::move(At), std::move(To)});
  };
  auto Ax = [&](const std::string &Name, TermRef Prop) {
    // Qualified by record *and* field so the name determines the
    // proposition even when two concurrently-translated programs use the
    // same record name with different next-like fields (reentrancy).
    Thm A = Kernel::axiom("List." + RecName + "." + NextField + "." + Name,
                          std::move(Prop));
    T.Lemmas.push_back(A);
    return A;
  };

  // Unfolding equations.
  Ax("nil", mkEq(T.list(Vv, Hv, Pv, NilT), mkEq(Pv, mkNullPtr(T.NodeTy))));
  Ax("null",
     mkEq(T.list(Vv, Hv, mkNullPtr(T.NodeTy), Ps), mkEq(Ps, NilT)));
  Ax("cons",
     mkEq(T.list(Vv, Hv, Pv, ConsT(Xv, Xs)),
          mkConjs({mkEq(Pv, Xv), mkNot(mkEq(Xv, mkNullPtr(T.NodeTy))),
                   Term::mkApp(Vv, Xv),
                   T.list(Vv, Hv, NextOf(Term::mkApp(Hv, Xv)), Xs)})));

  // The step destruction: everything one loop iteration needs.
  Ax("step_D",
     mkImp(T.list(Vv, Hv, Pv, Ps),
           mkImp(mkNot(mkEq(Pv, mkNullPtr(T.NodeTy))),
                 mkConjs({Term::mkApp(Vv, Pv),
                          T.list(Vv, Hv, NextOf(Term::mkApp(Hv, Pv)),
                                 TlT(Ps)),
                          mkNot(MemberT(Pv, TlT(Ps))),
                          MemberT(Pv, Ps),
                          mkEq(RevT(Ps),
                               AppendT(RevT(TlT(Ps)),
                                       ConsT(Pv, NilT))),
                          mkEq(LengthT(Ps),
                               mkPlus(mkNumOf(natTy(), 1),
                                      LengthT(TlT(Ps))))}))));

  // Disjointness bookkeeping for the reversal invariant.
  Ax("disj_step_D",
     mkImp(T.list(Vv, Hv, Pv, Ps),
           mkImp(DisjntT(Ps, Qs),
                 mkImp(mkNot(mkEq(Pv, mkNullPtr(T.NodeTy))),
                       DisjntT(TlT(Ps), ConsT(Pv, Qs))))));

  // Disjointness gives non-membership on the other side.
  Ax("disj_mem_D",
     mkImp(DisjntT(Ps, Qs),
           mkImp(MemberT(Xv, Ps), mkNot(MemberT(Xv, Qs)))));

  // Heap updates outside the chain do not disturb it (the Sec 4.2
  // "updating parts of the heap disjoint to a read" principle, at the
  // List level).
  Ax("upd_intro",
     mkImp(mkNot(MemberT(Xv, Ps)),
           mkImp(T.list(Vv, Hv, Qv, Ps),
                 T.list(Vv, FunUpd(Hv, Xv, Yv), Qv, Ps))));

  // The measure: listlen agrees with the chain length, before and after
  // the iteration's update.
  Ax("len_eq_D",
     mkImp(T.list(Vv, Hv, Pv, Ps),
           mkEq(T.len(Vv, Hv, Pv), LengthT(Ps))));
  {
    TermRef Y2 = Term::mkFree("y!", T.NodeTy);
    TermRef Inner = mkEq(
        T.len(Vv, FunUpd(Hv, Pv, Y2), NextOf(Term::mkApp(Hv, Pv))),
        LengthT(TlT(Ps)));
    Ax("len_upd_D",
       mkImp(T.list(Vv, Hv, Pv, Ps),
             mkImp(mkNot(mkEq(Pv, mkNullPtr(T.NodeTy))),
                   mkAll("y!", T.NodeTy, Inner))));
  }

  // Pure list equations.
  Ax("disj_nil", mkEq(DisjntT(Ps, NilT), mkTrue()));
  Ax("append_nil", mkEq(AppendT(Ps, NilT), Ps));
  Ax("nil_append", mkEq(AppendT(NilT, Ps), Ps));
  Ax("append_assoc", mkEq(AppendT(AppendT(Ps, Qs), Xs),
                          AppendT(Ps, AppendT(Qs, Xs))));
  Ax("cons_append",
     mkEq(AppendT(ConsT(Xv, Ps), Qs), ConsT(Xv, AppendT(Ps, Qs))));
  Ax("rev_nil", mkEq(RevT(NilT), NilT));
  Ax("length_nil", mkEq(LengthT(NilT), mkNumOf(natTy(), 0)));

  return T;
}
