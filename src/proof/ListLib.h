//===- ListLib.h - Mehta & Nipkow's List theory, C-adapted ------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library of theorems about the List predicate that Sec 5.2 ports
/// from Mehta & Nipkow, adapted per the paper's three differences:
///
///   (i)  Null becomes the C NULL sentinel;
///   (ii) the predicate additionally asserts that every node is a valid
///        pointer ("we could adjust the definition of List to additionally
///        assert that all elements in the list are valid pointers");
///   (iii) a termination measure (the length of the remaining list) backs
///        total correctness.
///
/// `List v H p ps` says ps is the chain of nodes reachable from p through
/// the next-field of the split node heap H, all valid and distinct,
/// terminated by NULL. `listlen v H p` is its length (the measure).
///
/// The lemmas are registered as named axioms ("List.*"), each validated
/// by the countermodel search in the test suite — this library is the
/// Table 6 "List definitions" component.
///
//===----------------------------------------------------------------------===//

#ifndef AC_PROOF_LISTLIB_H
#define AC_PROOF_LISTLIB_H

#include "hol/Thm.h"

#include <string>
#include <vector>

namespace ac::proof {

/// A List theory instance for one node record and next-like field.
struct ListTheory {
  std::string RecName;   ///< e.g. "node_C"
  std::string NextField; ///< e.g. "next"
  hol::TypeRef NodeTy;   ///< record:node_C
  hol::TypeRef PtrTy;    ///< node_C ptr
  std::vector<hol::Thm> Lemmas;

  /// List v H p ps.
  hol::TermRef list(hol::TermRef V, hol::TermRef H, hol::TermRef P,
                    hol::TermRef Ps) const;
  /// listlen v H p.
  hol::TermRef len(hol::TermRef V, hol::TermRef H, hol::TermRef P) const;
  /// The type of node-pointer lists.
  hol::TypeRef listTy() const;
};

/// Builds (and registers the axioms of) the theory for one record/field.
ListTheory makeListTheory(const std::string &RecName,
                          const std::string &NextField);

} // namespace ac::proof

#endif // AC_PROOF_LISTLIB_H
