//===- Auto.cpp -----------------------------------------------------------===//

#include "proof/Auto.h"

#include "hol/GroundEval.h"
#include "hol/Names.h"
#include "hol/Print.h"
#include "hol/ProofState.h"

#include <cstdlib>
#include <map>

using namespace ac;
using namespace ac::proof;
using namespace ac::hol;
namespace nm = ac::hol::names;

//===----------------------------------------------------------------------===//
// Linear arithmetic (Fourier-Motzkin with integer tightening)
//===----------------------------------------------------------------------===//

namespace {

using Int = Int128;

/// A linear combination sum(Coeff[v] * atom_v) + Const.
struct Lin {
  std::map<unsigned, Int> Coeff;
  Int Const = 0;

  Lin operator+(const Lin &O) const {
    Lin R = *this;
    for (auto &[V, C] : O.Coeff) {
      R.Coeff[V] += C;
      if (R.Coeff[V] == 0)
        R.Coeff.erase(V);
    }
    R.Const += O.Const;
    return R;
  }
  Lin scaled(Int K) const {
    Lin R;
    if (K == 0)
      return R;
    for (auto &[V, C] : Coeff)
      R.Coeff[V] = C * K;
    R.Const = Const * K;
    return R;
  }
  Lin operator-(const Lin &O) const { return *this + O.scaled(-1); }
  bool isConst() const { return Coeff.empty(); }
};

/// Atom table: opaque numeric terms get variable ids.
class Atoms {
public:
  unsigned idOf(const TermRef &T) {
    for (size_t I = 0; I != Terms.size(); ++I)
      if (termEq(Terms[I], T))
        return I;
    Terms.push_back(T);
    return Terms.size() - 1;
  }
  const TermRef &term(unsigned I) const { return Terms[I]; }
  size_t size() const { return Terms.size(); }

private:
  std::vector<TermRef> Terms;
};

Int gcdI(Int A, Int B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B) {
    Int T = A % B;
    A = B;
    B = T;
  }
  return A;
}

Int floorDiv(Int A, Int B) {
  assert(B > 0);
  Int Q = A / B;
  if (A % B != 0 && A < 0)
    --Q;
  return Q;
}

/// The solver: constraints are `L <= 0`.
class LinArith {
public:
  /// Adds constraints from a boolean hypothesis; unparseable parts are
  /// ignored (sound: fewer facts).
  void addHyp(const TermRef &H, bool Negated = false);

  /// True if the constraint set is unsatisfiable over the integers
  /// (approximated by FM + tightening; sound for unsat).
  bool unsat();

private:
  Atoms AtomTab;
  std::vector<Lin> Rows; ///< each row: expr <= 0
  std::vector<TermRef> PendingAux;
  unsigned AuxVars = 0;
  bool Broken = false;

  std::optional<Lin> parse(const TermRef &T);
  void addRow(Lin L) { Rows.push_back(std::move(L)); }
  void addAtomBounds(unsigned Var, const TermRef &T);
};

std::optional<Lin> LinArith::parse(const TermRef &T) {
  if (T->isNum()) {
    Lin L;
    L.Const = T->value();
    return L;
  }
  std::vector<TermRef> Args;
  TermRef Head = stripApp(T, Args);
  // Unary minus over ideal int is linear.
  if (Head->isConst(nm::UMinus) && Args.size() == 1 &&
      typeOf(Args[0])->isCon("int")) {
    if (auto A = parse(Args[0]))
      return A->scaled(-1);
    return std::nullopt;
  }
  if (Head->isConst() && Args.size() == 2) {
    const std::string &N = Head->name();
    TypeRef Ty = typeOf(Args[0]);
    bool Ideal = Ty->isCon("nat") || Ty->isCon("int");
    if (Ideal && (N == nm::Plus || N == nm::Minus || N == nm::Times ||
                  N == nm::Div || N == nm::Mod)) {
      if (N == nm::Plus || N == nm::Minus) {
        auto A = parse(Args[0]);
        auto B = parse(Args[1]);
        if (!A || !B)
          return std::nullopt;
        if (N == nm::Plus)
          return *A + *B;
        // nat subtraction truncates: a - b is only linear when b <= a,
        // which we cannot assume. Treat nat-minus as an opaque atom with
        // bounds 0 <= (a - b) and (a - b) has no upper relation... be
        // conservative: opaque atom.
        if (Ty->isCon("nat")) {
          unsigned V = AtomTab.idOf(T);
          addAtomBounds(V, T);
          Lin L;
          L.Coeff[V] = 1;
          return L;
        }
        return *A - *B;
      }
      if (N == nm::Times) {
        auto A = parse(Args[0]);
        auto B = parse(Args[1]);
        if (A && A->isConst() && B)
          return B->scaled(A->Const);
        if (B && B->isConst() && A)
          return A->scaled(B->Const);
        // Nonlinear: opaque.
      }
      if (N == nm::Div && Args[1]->isNum() && Args[1]->value() > 0) {
        // q := a div k with k*q <= a <= k*q + (k-1) (exact for nat/int
        // with floor semantics; C-trunc int div of negatives is rarer —
        // restrict to nat to stay sound).
        if (Ty->isCon("nat")) {
          auto A = parse(Args[0]);
          if (A) {
            unsigned V = AtomTab.idOf(T);
            addAtomBounds(V, T);
            Lin Q;
            Q.Coeff[V] = 1;
            Int K = Args[1]->value();
            // k*q - a <= 0.
            addRow(Q.scaled(K) - *A);
            // a - k*q - (k-1) <= 0.
            Lin R = *A - Q.scaled(K);
            R.Const -= (K - 1);
            addRow(R);
            return Q;
          }
        }
      }
      if (N == nm::Mod && Args[1]->isNum() && Args[1]->value() > 0 &&
          Ty->isCon("nat")) {
        // r := a mod k with 0 <= r <= k-1.
        unsigned V = AtomTab.idOf(T);
        Lin R;
        R.Coeff[V] = 1;
        // r - (k-1) <= 0.
        Lin Up = R;
        Up.Const -= (Args[1]->value() - 1);
        addRow(Up);
        // -r <= 0.
        addRow(R.scaled(-1));
        // Exact decomposition a = k*(a div k) + (a mod k): route the
        // matching div through parse() (which adds its own bounds) and
        // link the two atoms.
        if (auto A = parse(Args[0])) {
          if (auto Q = parse(mkDiv(Args[0], Args[1]))) {
            Lin Zero = *A - Q->scaled(Args[1]->value()) - R;
            addRow(Zero);
            addRow(Zero.scaled(-1));
          }
        }
        return R;
      }
    }
  }
  // int coercion of a nat atom keeps the value.
  if (Head->isConst(nm::IntOfNat) && Args.size() == 1)
    return parse(Args[0]);
  // Opaque atom.
  TypeRef Ty = typeOf(T);
  if (!Ty->isCon("nat") && !Ty->isCon("int"))
    return std::nullopt;
  unsigned V = AtomTab.idOf(T);
  addAtomBounds(V, T);
  Lin L;
  L.Coeff[V] = 1;
  return L;
}

void LinArith::addAtomBounds(unsigned Var, const TermRef &T) {
  TypeRef Ty = typeOf(T);
  if (Ty->isCon("nat")) {
    Lin L;
    L.Coeff[Var] = -1; // -x <= 0.
    addRow(L);
  }
  // Squares are non-negative even over int (the one nonlinear fact FM
  // can use as a bound).
  {
    std::vector<TermRef> SqArgs;
    TermRef SqHead = stripApp(T, SqArgs);
    if (SqHead->isConst(nm::Times) && SqArgs.size() == 2 &&
        termEq(SqArgs[0], SqArgs[1]) && Ty->isCon("int")) {
      Lin L;
      L.Coeff[Var] = -1;
      addRow(L);
    }
  }
  // unat/sint images carry their machine ranges.
  std::vector<TermRef> Args;
  TermRef Head = stripApp(T, Args);
  if (Head->isConst(nm::Unat) && Args.size() == 1) {
    unsigned W = wordBits(typeOf(Args[0]));
    Lin L;
    L.Coeff[Var] = 1;
    L.Const = -wordMaxVal(W); // x - max <= 0.
    addRow(L);
  }
  if (Head->isConst(nm::Sint) && Args.size() == 1) {
    unsigned W = wordBits(typeOf(Args[0]));
    Lin Up;
    Up.Coeff[Var] = 1;
    Up.Const = -swordMaxVal(W);
    addRow(Up);
    Lin Lo;
    Lo.Coeff[Var] = -1;
    Lo.Const = swordMinVal(W);
    addRow(Lo);
  }
}

void LinArith::addHyp(const TermRef &H, bool Negated) {
  std::vector<TermRef> Args;
  TermRef Head = stripApp(H, Args);
  if (Head->isConst(nm::Not) && Args.size() == 1)
    return addHyp(Args[0], !Negated);
  if (Head->isConst(nm::Conj) && Args.size() == 2 && !Negated) {
    addHyp(Args[0], false);
    addHyp(Args[1], false);
    return;
  }
  if (Head->isConst(nm::Disj) && Args.size() == 2 && Negated) {
    addHyp(Args[0], true);
    addHyp(Args[1], true);
    return;
  }
  if (Args.size() != 2)
    return;
  const std::string &N = Head->name();
  if (N != nm::Less && N != nm::LessEq && N != nm::Eq)
    return;
  TypeRef Ty = typeOf(Args[0]);
  if (!Ty->isCon("nat") && !Ty->isCon("int"))
    return;
  auto A = parse(Args[0]);
  auto B = parse(Args[1]);
  if (!A || !B)
    return;
  if (N == nm::Eq) {
    if (Negated)
      return; // disequalities are handled by splitting upstream
    addRow(*A - *B);
    addRow(*B - *A);
    return;
  }
  if (!Negated) {
    if (N == nm::LessEq) {
      addRow(*A - *B); // a - b <= 0.
    } else {
      Lin L = *A - *B; // a < b  <=>  a - b + 1 <= 0 (integers).
      L.Const += 1;
      addRow(L);
    }
  } else {
    if (N == nm::LessEq) {
      Lin L = *B - *A; // !(a <= b)  <=>  b + 1 <= a.
      L.Const += 1;
      addRow(L);
    } else {
      addRow(*B - *A); // !(a < b)  <=>  b <= a.
    }
  }
}

bool LinArith::unsat() {
  if (Broken)
    return false;
  std::vector<Lin> Work = Rows;
  // Normalise rows: divide by the gcd of the coefficients, flooring the
  // constant (integer tightening).
  auto Tighten = [](Lin &L) {
    if (L.Coeff.empty())
      return;
    Int G = 0;
    for (auto &[V, C] : L.Coeff)
      G = gcdI(G, C);
    if (G > 1) {
      for (auto &[V, C] : L.Coeff)
        C /= G;
      // sum(c x) + k <= 0 with all c divisible: k <- ceil(k / g).
      Int K = L.Const;
      Int Q = floorDiv(-K, G); // largest Q with G*Q <= -K.
      L.Const = -Q;
    }
  };
  unsigned Guard = 0;
  while (Guard++ < 64) {
    for (Lin &L : Work)
      Tighten(L);
    // Contradiction?
    for (const Lin &L : Work)
      if (L.isConst() && L.Const > 0)
        return true;
    // Pick a variable to eliminate.
    std::map<unsigned, std::pair<unsigned, unsigned>> Counts;
    for (const Lin &L : Work)
      for (auto &[V, C] : L.Coeff)
        (C > 0 ? Counts[V].first : Counts[V].second)++;
    if (Counts.empty())
      return false;
    unsigned Best = Counts.begin()->first;
    size_t BestCost = SIZE_MAX;
    for (auto &[V, PN] : Counts) {
      size_t Cost = size_t(PN.first) * PN.second;
      if (Cost < BestCost) {
        BestCost = Cost;
        Best = V;
      }
    }
    if (BestCost > 400)
      return false; // blowup guard
    std::vector<Lin> Pos, Neg, Rest;
    for (const Lin &L : Work) {
      auto It = L.Coeff.find(Best);
      if (It == L.Coeff.end())
        Rest.push_back(L);
      else if (It->second > 0)
        Pos.push_back(L);
      else
        Neg.push_back(L);
    }
    for (const Lin &P : Pos)
      for (const Lin &Ng : Neg) {
        Int CP = P.Coeff.at(Best);
        Int CN = -Ng.Coeff.at(Best);
        Lin Combined = P.scaled(CN) + Ng.scaled(CP);
        Combined.Coeff.erase(Best);
        Rest.push_back(std::move(Combined));
      }
    Work = std::move(Rest);
    if (Work.size() > 4000)
      return false;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fast term simplification (non-kernel)
//===----------------------------------------------------------------------===//

namespace {

/// One conditional rewrite from a lemma: Conds => Lhs = Rhs.
struct Rewrite {
  std::vector<TermRef> Conds;
  TermRef Lhs, Rhs;
};

/// Turns All-quantified lemma propositions into schematic rules.
TermRef schematize(TermRef T, unsigned &Ctr) {
  TermRef Lam;
  while (destAll(T, Lam)) {
    TermRef V = Term::mkVar("z", Ctr++, Lam->type());
    T = betaNorm(Term::mkApp(Lam, V));
  }
  return T;
}

unsigned countOccurrences(const TermRef &T, const TermRef &Pat) {
  if (termEq(T, Pat))
    return 1;
  switch (T->kind()) {
  case Term::Kind::App:
    return countOccurrences(T->fun(), Pat) +
           countOccurrences(T->argTerm(), Pat);
  case Term::Kind::Lam:
    return countOccurrences(T->body(), Pat);
  default:
    return 0;
  }
}

bool constructorHead(const TermRef &T, std::string &Name) {
  std::vector<TermRef> Args;
  TermRef Head = stripApp(T, Args);
  if (!Head->isConst())
    return false;
  const std::string &N = Head->name();
  if (N == nm::Nil || N == nm::Cons || N == nm::NoneC || N == nm::SomeC ||
      N == nm::NullPtr || N == nm::True || N == nm::False ||
      N == nm::PairC) {
    Name = N;
    return true;
  }
  return false;
}

class Solver {
public:
  Solver(const std::vector<Thm> &Lemmas, const AutoOptions &Opts)
      : Opts(Opts) {
    unsigned Ctr = 0;
    for (const Thm &L : Lemmas) {
      TermRef P = schematize(freshenSchematics(L.prop(), 777), Ctr);
      std::vector<TermRef> Prems;
      TermRef Concl;
      stripImps(P, Prems, Concl);
      TermRef A, B;
      if (destEq(Concl, A, B) && Prems.empty()) {
        Rewrites.push_back({Prems, A, B});
        continue;
      }
      if (!Prems.empty()) {
        // Forward (destruction) use: when all premises match
        // hypotheses, the conclusion becomes a new hypothesis.
        ForwardRules.push_back(P);
      }
      if (!destEq(Concl, A, B))
        ChainRules.push_back(P);
    }
  }

  bool solve(std::vector<TermRef> Hyps, TermRef Concl, unsigned Depth);

private:
  const AutoOptions &Opts;
  std::vector<Rewrite> Rewrites;
  std::vector<TermRef> ChainRules;
  std::vector<TermRef> ForwardRules;
  unsigned Steps = 0;
  unsigned FreshCtr = 0;

  std::string fresh(const std::string &H) {
    return H + "$" + std::to_string(FreshCtr++);
  }

  bool budget() { return ++Steps <= Opts.MaxSteps; }

  //===------------------------------------------------------------------===//
  // Simplification
  //===------------------------------------------------------------------===//

  std::map<const Term *, TermRef> SimpCache;

  TermRef simp(const TermRef &T, unsigned Depth) {
    auto It = SimpCache.find(T.get());
    if (It != SimpCache.end())
      return It->second;
    TermRef Cur = betaNorm(T);
    for (unsigned I = 0; I != 12; ++I) {
      TermRef Next = simpOnce(Cur, Depth);
      if (Next.get() == Cur.get())
        break;
      Cur = Next;
    }
    if (SimpCache.size() < 100000) {
      SimpCache.emplace(T.get(), Cur);
      SimpCache.emplace(Cur.get(), Cur);
      // Keep the results alive so the raw-pointer keys stay valid.
      CacheKeepAlive.push_back(T);
      CacheKeepAlive.push_back(Cur);
    }
    return Cur;
  }
  std::vector<TermRef> CacheKeepAlive;

  std::map<const Term *, TermRef> OnceCache;

  TermRef simpOnce(const TermRef &T, unsigned Depth) {
    auto CIt = OnceCache.find(T.get());
    if (CIt != OnceCache.end())
      return CIt->second;
    TermRef R = simpOnceImpl(T, Depth);
    if (OnceCache.size() < 200000) {
      OnceCache.emplace(T.get(), R);
      CacheKeepAlive.push_back(T);
      CacheKeepAlive.push_back(R);
    }
    return R;
  }

  TermRef simpOnceImpl(const TermRef &T, unsigned Depth) {
    // Children first (not under binders for rewriting soundness of
    // condition solving; plain structural recursion is fine for the
    // unconditional core rules).
    TermRef Cur = T;
    switch (T->kind()) {
    case Term::Kind::App: {
      TermRef F = simpOnce(T->fun(), Depth);
      TermRef X = simpOnce(T->argTerm(), Depth);
      if (F.get() != T->fun().get() || X.get() != T->argTerm().get())
        Cur = betaNorm(Term::mkApp(F, X));
      break;
    }
    case Term::Kind::Lam: {
      TermRef B = simpOnce(T->body(), Depth);
      if (B.get() != T->body().get())
        Cur = Term::mkLam(T->name(), T->type(), B);
      break;
    }
    default:
      break;
    }

    std::vector<TermRef> Args;
    TermRef Head = stripApp(Cur, Args);

    if (Head->isConst()) {
      const std::string &N = Head->name();
      // Logic units.
      if (N == nm::Conj && Args.size() == 2) {
        if (Args[0]->isConst(nm::True))
          return Args[1];
        if (Args[1]->isConst(nm::True))
          return Args[0];
        if (Args[0]->isConst(nm::False) || Args[1]->isConst(nm::False))
          return mkFalse();
        if (termEq(Args[0], Args[1]))
          return Args[0];
      }
      if (N == nm::Disj && Args.size() == 2) {
        if (Args[0]->isConst(nm::False))
          return Args[1];
        if (Args[1]->isConst(nm::False))
          return Args[0];
        if (Args[0]->isConst(nm::True) || Args[1]->isConst(nm::True))
          return mkTrue();
      }
      if (N == nm::Not && Args.size() == 1) {
        if (Args[0]->isConst(nm::True))
          return mkFalse();
        if (Args[0]->isConst(nm::False))
          return mkTrue();
        std::vector<TermRef> NA;
        if (destConstApp(Args[0], nm::Not, 1, NA))
          return NA[0];
      }
      if (N == nm::Implies && Args.size() == 2) {
        if (Args[0]->isConst(nm::True))
          return Args[1];
        if (Args[0]->isConst(nm::False) || Args[1]->isConst(nm::True))
          return mkTrue();
      }
      if (N == nm::Ite && Args.size() == 3) {
        if (Args[0]->isConst(nm::True))
          return Args[1];
        if (Args[0]->isConst(nm::False))
          return Args[2];
        if (termEq(Args[1], Args[2]))
          return Args[1];
      }
      if (N == nm::Eq && Args.size() == 2) {
        if (termEq(Args[0], Args[1]))
          return mkTrue();
        // Distinct literals / distinct constructor heads.
        if (Args[0]->isNum() && Args[1]->isNum())
          return mkBoolLit(Args[0]->value() == Args[1]->value());
        std::string H1, H2;
        if (constructorHead(Args[0], H1) && constructorHead(Args[1], H2) &&
            H1 != H2)
          return mkFalse();
      }
      // fun_upd f x v y --> if y = x then v else f y.
      if (N == "fun_upd") {
        // Partially applied fun_upd is fine; rewrite only when applied.
      }
      // (Closed nodes only: the builders need typeable arguments; the
      // sequent loop opens binders before long, so nothing is lost.)
      if (Cur->isApp() && Cur->maxLoose() == 0) {
        std::vector<TermRef> OA;
        TermRef OHead = stripApp(Cur->fun(), OA);
        if (OHead->isConst("fun_upd") && OA.size() == 3) {
          TermRef Y = Cur->argTerm();
          return mkIte(mkEq(Y, OA[1]), OA[2],
                       betaNorm(Term::mkApp(OA[0], Y)));
        }
      }
      // Round-trip coercions collapse: unat (of_nat (unat t)) = unat t.
      if ((N == nm::Unat || N == nm::Sint) && Args.size() == 1) {
        std::vector<TermRef> OA;
        const char *OfC = N == nm::Unat ? nm::OfNat : nm::OfInt;
        if (destConstApp(Args[0], OfC, 1, OA)) {
          std::vector<TermRef> IA;
          if (destConstApp(OA[0], N.c_str(), 1, IA))
            return OA[0];
        }
      }
      if (N == nm::The && Args.size() == 1) {
        std::vector<TermRef> SA;
        if (destConstApp(Args[0], nm::SomeC, 1, SA))
          return SA[0];
      }
      // Record field access through updates:
      //   f (f_update g r) = g (f r);   f (h_update g r) = f r  (f != h).
      if (N.rfind("fld:", 0) == 0 && Args.size() == 1) {
        std::vector<TermRef> UA;
        TermRef UHead = stripApp(Args[0], UA);
        if (UHead->isConst() && UHead->name().rfind("upd:", 0) == 0 &&
            UA.size() == 2) {
          if (UHead->name().substr(4) == N.substr(4)) {
            // Same field: apply the update function to the old value.
            TermRef Old = Term::mkApp(Head, UA[1]);
            return betaNorm(Term::mkApp(UA[0], Old));
          }
          // Same record, different field: drop the update.
          size_t DotF = N.rfind('.');
          size_t DotU = UHead->name().rfind('.');
          if (N.substr(4, DotF - 4) ==
              UHead->name().substr(4, DotU - 4))
            return Term::mkApp(Head, UA[1]);
        }
      }
    }

    // Ground evaluation.
    if (!Cur->isNum() && !Cur->isConst() && Cur->maxLoose() == 0 &&
        !Cur->hasSchematic()) {
      if (auto G = groundEval(Cur)) {
        TermRef Lit = literalOf(*G);
        if (!termEq(Lit, Cur))
          return Lit;
      }
    }

    // Lemma equations (possibly conditional).
    if (Depth < Opts.MaxDepth)
      for (const Rewrite &RW : Rewrites) {
        std::optional<Subst> M = matchTerm(RW.Lhs, Cur);
        if (!M)
          continue;
        TermRef Rhs = M->apply(RW.Rhs);
        if (Rhs->hasSchematic())
          continue;
        bool CondsOk = true;
        for (const TermRef &C : RW.Conds) {
          TermRef CI = M->apply(C);
          if (CI->hasSchematic() ||
              !solve({}, CI, Depth + 20)) { // low-budget side solve
            CondsOk = false;
            break;
          }
        }
        if (CondsOk && !termEq(Rhs, Cur))
          return Rhs;
      }

    return Cur;
  }

  //===------------------------------------------------------------------===//
  // Closing checks
  //===------------------------------------------------------------------===//

  bool congruenceProves(const std::vector<TermRef> &Hyps,
                        const TermRef &A, const TermRef &B) {
    // Union-find over a small term universe.
    std::vector<TermRef> Univ{A, B};
    std::vector<std::pair<TermRef, TermRef>> Eqs;
    for (const TermRef &H : Hyps) {
      TermRef L, R;
      if (destEq(H, L, R)) {
        Eqs.emplace_back(L, R);
        Univ.push_back(L);
        Univ.push_back(R);
      }
    }
    auto Find = [&](const TermRef &T) -> int {
      for (size_t I = 0; I != Univ.size(); ++I)
        if (termEq(Univ[I], T))
          return I;
      return -1;
    };
    std::vector<unsigned> Parent(Univ.size());
    for (size_t I = 0; I != Univ.size(); ++I)
      Parent[I] = I;
    std::function<unsigned(unsigned)> Root = [&](unsigned X) -> unsigned {
      while (Parent[X] != X)
        X = Parent[X] = Parent[Parent[X]];
      return X;
    };
    for (auto &[L, R] : Eqs) {
      int LI = Find(L), RI = Find(R);
      if (LI >= 0 && RI >= 0)
        Parent[Root(LI)] = Root(RI);
    }
    int AI = Find(A), BI = Find(B);
    return AI >= 0 && BI >= 0 && Root(AI) == Root(BI);
  }

  /// Quick check whether linear arithmetic could possibly contribute.
  static bool mentionsArith(const TermRef &T) {
    if (T->isConst()) {
      const std::string &N = T->name();
      return N == nm::Less || N == nm::LessEq;
    }
    if (T->isNum())
      return true;
    if (T->isApp())
      return mentionsArith(T->fun()) || mentionsArith(T->argTerm());
    if (T->isLam())
      return mentionsArith(T->body());
    return false;
  }

  static bool numericEq(const TermRef &T) {
    TermRef A, B;
    if (!destEq(T, A, B))
      return false;
    TypeRef Ty = typeOf(A);
    return Ty->isCon("nat") || Ty->isCon("int");
  }

  bool closes(const std::vector<TermRef> &Hyps, const TermRef &Concl) {
    if (Concl->isConst(nm::True))
      return true;
    for (const TermRef &H : Hyps) {
      if (termEq(H, Concl))
        return true;
      if (H->isConst(nm::False))
        return true;
      std::vector<TermRef> NA;
      if (destConstApp(H, nm::Not, 1, NA))
        for (const TermRef &H2 : Hyps)
          if (termEq(H2, NA[0]))
            return true;
    }
    // Negated-conclusion membership: concl ~P with P in hyps handled
    // above symmetrically.
    std::vector<TermRef> CN;
    if (destConstApp(Concl, nm::Not, 1, CN))
      ; // falls through to linarith with the negation
    // Congruence.
    TermRef L, R;
    if (destEq(Concl, L, R) && congruenceProves(Hyps, L, R))
      return true;
    // Ground.
    if (Concl->maxLoose() == 0 && !Concl->hasSchematic())
      if (auto G = groundEval(Concl))
        if (G->IsBool && G->B)
          return true;
    // Linear arithmetic: hyps + !concl unsat. Only worth running when
    // something arithmetic is in sight.
    bool Arith = mentionsArith(Concl) ||
                 (Concl->maxLoose() == 0 && numericEq(Concl));
    if (!Arith)
      for (const TermRef &H : Hyps)
        if (mentionsArith(H) || numericEq(H)) {
          Arith = true;
          break;
        }
    if (!Arith)
      return false;
    LinArith LA;
    for (const TermRef &H : Hyps)
      LA.addHyp(H);
    LA.addHyp(Concl, /*Negated=*/true);
    return LA.unsat();
  }

  //===------------------------------------------------------------------===//
  // Split / witness search helpers
  //===------------------------------------------------------------------===//

  /// Finds an If subterm whose condition is closed (so the split is
  /// meaningful at the sequent level). Does not look under binders.
  TermRef findIte(const TermRef &T) {
    if (T->isLam())
      return nullptr;
    std::vector<TermRef> Args;
    TermRef Head = stripApp(T, Args);
    if (Head->isConst(nm::Ite) && Args.size() == 3 &&
        T->maxLoose() == 0)
      return T;
    for (const TermRef &A : Args)
      if (TermRef Found = findIte(A))
        return Found;
    return nullptr;
  }

  /// Replaces every occurrence of the specific If node by a branch.
  TermRef replaceIte(const TermRef &T, const TermRef &IfNode,
                     const TermRef &Branch) {
    if (termEq(T, IfNode))
      return Branch;
    switch (T->kind()) {
    case Term::Kind::App: {
      TermRef F = replaceIte(T->fun(), IfNode, Branch);
      TermRef X = replaceIte(T->argTerm(), IfNode, Branch);
      if (F.get() == T->fun().get() && X.get() == T->argTerm().get())
        return T;
      return Term::mkApp(F, X);
    }
    case Term::Kind::Lam: {
      TermRef B = replaceIte(T->body(), IfNode, Branch);
      if (B.get() == T->body().get())
        return T;
      return Term::mkLam(T->name(), T->type(), B);
    }
    default:
      return T;
    }
  }

  /// Collects witness candidates of type \p Ty from a term.
  void collectWitnesses(const TermRef &T, const TypeRef &Ty,
                        std::vector<TermRef> &Out) {
    if (T->maxLoose() == 0 && !T->isLam() && Out.size() < 24) {
      TypeRef TT = typeOf(T);
      if (typeEq(TT, Ty)) {
        for (const TermRef &O : Out)
          if (termEq(O, T))
            return void();
        Out.push_back(T);
      }
    }
    if (T->isApp()) {
      collectWitnesses(T->fun(), Ty, Out);
      collectWitnesses(T->argTerm(), Ty, Out);
    }
  }

public:
  bool solveEntry(const TermRef &Goal) { return solve({}, Goal, 0); }
};

bool Solver::solve(std::vector<TermRef> Hyps, TermRef Concl,
                   unsigned Depth) {
  if (!budget() || Depth > Opts.MaxDepth)
    return false;
  static const bool Trace = std::getenv("AC_AUTO_TRACE") != nullptr;
  if (Trace && Steps < 400) {
    std::string CS = printTerm(Concl);
    fprintf(stderr, "[%u/%u] %zu hyps: %.100s\n", Steps, Depth,
            Hyps.size(), CS.c_str());
  }

  // Normalise the conclusion.
  Concl = simp(Concl, Depth);
  {
    std::vector<TermRef> Args;
    TermRef Head = stripApp(Concl, Args);
    if (Concl->isConst(nm::True))
      return true;
    TermRef Lam;
    if (destAll(Concl, Lam)) {
      TermRef F = Term::mkFree(fresh("v"), Lam->type());
      return solve(std::move(Hyps), betaNorm(Term::mkApp(Lam, F)),
                   Depth + 1);
    }
    TermRef A, B;
    if (destImp(Concl, A, B)) {
      Hyps.push_back(A);
      return solve(std::move(Hyps), B, Depth + 1);
    }
    if (destConj(Concl, A, B)) {
      std::vector<TermRef> H2 = Hyps;
      return solve(std::move(H2), A, Depth + 1) &&
             solve(std::move(Hyps), B, Depth + 1);
    }
    std::vector<TermRef> NA;
    if (destConstApp(Concl, nm::Not, 1, NA)) {
      Hyps.push_back(NA[0]);
      return solve(std::move(Hyps), mkFalse(), Depth + 1);
    }
    (void)Head;
  }

  // Normalise hypotheses (one pass; new material loops through solve).
  for (size_t I = 0; I != Hyps.size(); ++I) {
    Hyps[I] = simp(Hyps[I], Depth);
    TermRef A, B;
    if (destConj(Hyps[I], A, B)) {
      Hyps[I] = A;
      Hyps.push_back(B);
      --I;
      continue;
    }
    std::vector<TermRef> EA;
    if (destConstApp(Hyps[I], nm::Ex, 1, EA) && EA[0]->isLam()) {
      TermRef F = Term::mkFree(fresh("w"), EA[0]->type());
      Hyps[I] = betaNorm(Term::mkApp(EA[0], F));
      --I;
      continue;
    }
    if (Hyps[I]->isConst(nm::False))
      return true;
    if (Hyps[I]->isConst(nm::True)) {
      Hyps.erase(Hyps.begin() + I);
      --I;
      continue;
    }
    // Equality substitution for variable hypotheses.
    if (destEq(Hyps[I], A, B)) {
      TermRef Var, Val;
      if (A->isFree() && !occursFree(B, A->name())) {
        Var = A;
        Val = B;
      } else if (B->isFree() && !occursFree(A, B->name())) {
        Var = B;
        Val = A;
      }
      if (Var) {
        for (TermRef &H : Hyps)
          H = betaNorm(substFree(H, Var->name(), Val));
        Concl = betaNorm(substFree(Concl, Var->name(), Val));
        return solve(std::move(Hyps), Concl, Depth + 1);
      }
    }
  }

  // Cheap closing checks before any saturation work.
  if (closes(Hyps, Concl))
    return true;

  // Forward saturation: destruction lemmas fire when all their premises
  // are present as hypotheses, contributing new facts (bounded rounds).
  for (unsigned Round = 0; Round != 3; ++Round) {
    if (Hyps.size() > 140)
      break;
    bool Added = false;
    for (const TermRef &Rule : ForwardRules) {
      std::vector<TermRef> Prems;
      TermRef RC;
      stripImps(Rule, Prems, RC);
      // Match premises against hypotheses (first-fit, depth-first).
      std::function<bool(size_t, Subst)> Match = [&](size_t I,
                                                     Subst S) -> bool {
        if (I == Prems.size()) {
          TermRef New = S.apply(RC);
          if (New->hasSchematic())
            return false;
          New = simp(New, Depth);
          for (const TermRef &H : Hyps)
            if (termEq(H, New))
              return false; // already known
          Hyps.push_back(New);
          Added = true;
          return true;
        }
        TermRef P = S.apply(Prems[I]);
        for (const TermRef &H : Hyps) {
          Subst S2 = S;
          if (unifyTerms(P, H, S2, /*RigidRight=*/true) &&
              Match(I + 1, std::move(S2)))
            return true;
        }
        return false;
      };
      Subst S0;
      Match(0, S0);
      if (!budget())
        return false;
    }
    if (!Added)
      break;
  }

  // Re-normalise any facts the saturation added (conjunctions etc.).
  for (size_t I = 0; I != Hyps.size(); ++I) {
    TermRef A, B;
    if (destConj(Hyps[I], A, B)) {
      Hyps[I] = A;
      Hyps.push_back(B);
      --I;
    }
  }

  // Bounded instantiation of universal hypotheses with goal subterms.
  if (Hyps.size() < 140) {
    size_t NHyps = Hyps.size();
    for (size_t I = 0; I != NHyps; ++I) {
      TermRef Lam;
      if (!destAll(Hyps[I], Lam) || !Lam->isLam())
        continue;
      std::vector<TermRef> Cands;
      collectWitnesses(Concl, Lam->type(), Cands);
      for (const TermRef &H : Hyps)
        if (Cands.size() < 8)
          collectWitnesses(H, Lam->type(), Cands);
      unsigned Used = 0;
      for (const TermRef &W : Cands) {
        if (Used++ == 6)
          break;
        TermRef Inst = simp(betaNorm(Term::mkApp(Lam, W)), Depth);
        bool Known = false;
        for (const TermRef &H : Hyps)
          if (termEq(H, Inst)) {
            Known = true;
            break;
          }
        if (!Known)
          Hyps.push_back(Inst);
      }
    }
  }

  // Equality-hypothesis rewriting: a hypothesis `L = R` with a compound,
  // closed L rewrites other occurrences of L (when R does not mention L,
  // which ensures progress). In-place fixpoint.
  for (unsigned Round = 0; Round != 10; ++Round) {
    bool Changed = false;
    for (size_t I = 0; I != Hyps.size(); ++I) {
      TermRef L, R;
      if (!destEq(Hyps[I], L, R))
        continue;
      if (L->isFree() || L->isNum() || L->maxLoose() != 0)
        continue;
      if (countOccurrences(R, L) != 0)
        continue;
      for (size_t J = 0; J != Hyps.size(); ++J) {
        if (J == I)
          continue;
        TermRef H2 = replaceIte(Hyps[J], L, R);
        if (H2.get() != Hyps[J].get()) {
          Hyps[J] = simp(H2, Depth);
          Changed = true;
        }
      }
      TermRef C2 = replaceIte(Concl, L, R);
      if (C2.get() != Concl.get()) {
        Concl = simp(C2, Depth);
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Rewriting may have exposed variable equalities (e.g. ps = Nil after
  // List v H NULL ps collapsed); substitute and restart.
  for (size_t I = 0; I != Hyps.size(); ++I) {
    TermRef A2, B2;
    if (!destEq(Hyps[I], A2, B2))
      continue;
    TermRef Var, Val;
    if (A2->isFree() && !occursFree(B2, A2->name())) {
      Var = A2;
      Val = B2;
    } else if (B2->isFree() && !occursFree(A2, B2->name())) {
      Var = B2;
      Val = A2;
    }
    if (Var) {
      Hyps.erase(Hyps.begin() + I);
      for (TermRef &H : Hyps)
        H = betaNorm(substFree(H, Var->name(), Val));
      Concl = betaNorm(substFree(Concl, Var->name(), Val));
      return solve(std::move(Hyps), Concl, Depth + 1);
    }
  }

  if (closes(Hyps, Concl))
    return true;

  // If-splitting (conclusion first, then hypotheses).
  {
    auto TrySplit = [&](const TermRef &Host, bool IsConcl,
                        size_t HypIdx) -> std::optional<bool> {
      TermRef IfNode = findIte(Host);
      if (!IfNode)
        return std::nullopt;
      std::vector<TermRef> IArgs;
      stripApp(IfNode, IArgs);
      TermRef C = IArgs[0];
      auto Branch = [&](const TermRef &CondHyp, const TermRef &Repl) {
        std::vector<TermRef> H2 = Hyps;
        TermRef NewConcl = Concl;
        if (IsConcl)
          NewConcl = replaceIte(Concl, IfNode, Repl);
        else
          H2[HypIdx] = replaceIte(H2[HypIdx], IfNode, Repl);
        H2.push_back(CondHyp);
        return solve(std::move(H2), NewConcl, Depth + 1);
      };
      return Branch(C, IArgs[1]) && Branch(mkNot(C), IArgs[2]);
    };
    if (auto R = TrySplit(Concl, true, 0))
      return *R;
    for (size_t I = 0; I != Hyps.size(); ++I)
      if (auto R = TrySplit(Hyps[I], false, I))
        return *R;
  }

  // Disjunction split in hypotheses.
  for (size_t I = 0; I != Hyps.size(); ++I) {
    std::vector<TermRef> DA;
    if (destConstApp(Hyps[I], nm::Disj, 2, DA)) {
      std::vector<TermRef> H1 = Hyps, H2 = Hyps;
      H1[I] = DA[0];
      H2[I] = DA[1];
      return solve(std::move(H1), Concl, Depth + 1) &&
             solve(std::move(H2), Concl, Depth + 1);
    }
  }

  // Numeric disequality split (for linear arithmetic completeness).
  for (size_t I = 0; I != Hyps.size(); ++I) {
    std::vector<TermRef> NA;
    if (destConstApp(Hyps[I], nm::Not, 1, NA)) {
      TermRef A, B;
      if (destEq(NA[0], A, B)) {
        TypeRef Ty = typeOf(A);
        if (Ty->isCon("nat") || Ty->isCon("int")) {
          std::vector<TermRef> H1 = Hyps, H2 = Hyps;
          H1[I] = mkLess(A, B);
          H2[I] = mkLess(B, A);
          return solve(std::move(H1), Concl, Depth + 1) &&
                 solve(std::move(H2), Concl, Depth + 1);
        }
      }
    }
  }

  // Numeric equality goals: prove both inequalities (completes the
  // linear-arithmetic story for equalities).
  {
    TermRef A2, B2;
    if (destEq(Concl, A2, B2)) {
      TypeRef Ty = typeOf(A2);
      if (Ty->isCon("nat") || Ty->isCon("int")) {
        std::vector<TermRef> H1 = Hyps, H2 = Hyps;
        if (solve(std::move(H1), mkLessEq(A2, B2), Depth + 1) &&
            solve(std::move(H2), mkLessEq(B2, A2), Depth + 1))
          return true;
      }
    }
  }

  // nat-subtraction split: a - b is max(a - b, 0); replace by a fresh
  // variable constrained per branch so linear arithmetic sees it.
  {
    std::function<TermRef(const TermRef &)> FindNatMinus =
        [&](const TermRef &T) -> TermRef {
      if (T->isLam())
        return nullptr;
      std::vector<TermRef> MA;
      TermRef MHead = stripApp(T, MA);
      if (MHead->isConst(nm::Minus) && MA.size() == 2 &&
          typeOf(MA[0])->isCon("nat") && T->maxLoose() == 0)
        return T;
      for (const TermRef &A2 : MA)
        if (TermRef F = FindNatMinus(A2))
          return F;
      return nullptr;
    };
    TermRef MinusNode;
    for (const TermRef &H : Hyps)
      if ((MinusNode = FindNatMinus(H)))
        break;
    if (!MinusNode)
      MinusNode = FindNatMinus(Concl);
    if (MinusNode) {
      std::vector<TermRef> MA;
      stripApp(MinusNode, MA);
      TermRef D = Term::mkFree(fresh("d"), natTy());
      auto Rep = [&](const TermRef &T) {
        return replaceIte(T, MinusNode, D);
      };
      std::vector<TermRef> H1, H2;
      for (const TermRef &H : Hyps) {
        H1.push_back(Rep(H));
        H2.push_back(Rep(H));
      }
      TermRef C1 = Rep(Concl), C2 = Rep(Concl);
      // Branch 1: b <= a, d + b = a.
      H1.push_back(mkLessEq(MA[1], MA[0]));
      H1.push_back(mkEq(mkPlus(D, MA[1]), MA[0]));
      // Branch 2: a < b, d = 0.
      H2.push_back(mkLess(MA[0], MA[1]));
      H2.push_back(mkEq(D, mkNumOf(natTy(), 0)));
      return solve(std::move(H1), C1, Depth + 1) &&
             solve(std::move(H2), C2, Depth + 1);
    }
  }

  // Existential witness search.
  {
    std::vector<TermRef> EA;
    if (Opts.WitnessSearch &&
        destConstApp(Concl, nm::Ex, 1, EA) && EA[0]->isLam()) {
      TypeRef WTy = EA[0]->type();
      std::vector<TermRef> Cands;
      // Priority candidates: unify the existential body's conjuncts
      // against hypotheses — a matching hypothesis proposes the witness
      // directly (e.g. `List v H next ?w` against `List v H next (tl ps)`
      // proposes tl ps).
      {
        TermRef WVar = Term::mkVar("w!cand", 990000, WTy);
        TermRef BodyW = betaNorm(Term::mkApp(EA[0], WVar));
        std::vector<TermRef> Conjs{BodyW};
        for (size_t I = 0; I != Conjs.size(); ++I) {
          TermRef A2, B2;
          if (destConj(Conjs[I], A2, B2)) {
            Conjs[I] = A2;
            Conjs.push_back(B2);
            --I;
            continue;
          }
          // Strip inner existentials for matching purposes.
          std::vector<TermRef> IEA;
          if (destConstApp(Conjs[I], nm::Ex, 1, IEA) && IEA[0]->isLam()) {
            Conjs[I] = betaNorm(Term::mkApp(
                IEA[0], Term::mkVar("w!inner", 990001, IEA[0]->type())));
            --I;
            continue;
          }
        }
        for (const TermRef &C : Conjs) {
          if (!C->hasSchematic())
            continue;
          for (const TermRef &H : Hyps) {
            Subst S2;
            if (!unifyTerms(C, H, S2, /*RigidRight=*/true))
              continue;
            if (const TermRef *W = S2.lookup("w!cand", 990000)) {
              TermRef WT = *W;
              if (!WT->hasSchematic() && WT->maxLoose() == 0) {
                bool Dup = false;
                for (const TermRef &O : Cands)
                  if (termEq(O, WT))
                    Dup = true;
                if (!Dup)
                  Cands.push_back(WT);
              }
            }
          }
        }
      }
      for (const TermRef &H : Hyps)
        collectWitnesses(H, WTy, Cands);
      collectWitnesses(Concl, WTy, Cands);
      // Numeric existentials: enumerate the numerals of the body plus a
      // small derived neighbourhood (v/2 catches doubling equations,
      // v±1 catches off-by-one bounds).
      if (WTy->isCon("nat") || WTy->isCon("int")) {
        std::vector<Int128> Vals{0, 1};
        TermRef BodyN = betaNorm(
            Term::mkApp(EA[0], Term::mkFree("w!num", WTy)));
        std::function<void(const TermRef &)> Nums =
            [&](const TermRef &U) {
              if (U->isNum())
                Vals.push_back(U->value());
              if (U->isApp()) {
                Nums(U->fun());
                Nums(U->argTerm());
              }
              if (U->isLam())
                Nums(U->body());
            };
        Nums(BodyN);
        size_t Base = Vals.size();
        for (size_t I = 0; I != Base; ++I) {
          Vals.push_back(Vals[I] / 2);
          Vals.push_back(Vals[I] + 1);
          if (Vals[I] > 0)
            Vals.push_back(Vals[I] - 1);
        }
        for (Int128 V : Vals) {
          if (WTy->isCon("nat") && V < 0)
            continue;
          TermRef NT = mkNumOf(WTy, V);
          bool Dup = false;
          for (const TermRef &O : Cands)
            if (termEq(O, NT))
              Dup = true;
          if (!Dup)
            Cands.push_back(NT);
        }
      }
      // For list types, also try simple constructions.
      if (WTy->isCon("list")) {
        std::vector<TermRef> Elems;
        for (const TermRef &H : Hyps)
          collectWitnesses(H, WTy->arg(0), Elems);
        std::vector<TermRef> Extra;
        TermRef NilT = Term::mkConst(nm::Nil, WTy);
        Extra.push_back(NilT);
        for (const TermRef &E : Elems) {
          TermRef ConsC = Term::mkConst(
              nm::Cons, funTys({WTy->arg(0), WTy}, WTy));
          for (const TermRef &L : Cands)
            Extra.push_back(mkApps(ConsC, {E, L}));
          Extra.push_back(mkApps(ConsC, {E, NilT}));
        }
        Cands.insert(Cands.end(), Extra.begin(), Extra.end());
      }
      for (const TermRef &Wit : Cands) {
        std::vector<TermRef> H2 = Hyps;
        if (solve(std::move(H2),
                  betaNorm(Term::mkApp(EA[0], Wit)), Depth + 4))
          return true;
      }
      return false;
    }
  }

  static const bool TraceFull =
      std::getenv("AC_AUTO_TRACE_FULL") != nullptr;
  if (TraceFull && Steps < 300) {
    fprintf(stderr, "DEAD-END check at depth %u, concl: %s\n", Depth,
            printTerm(Concl).c_str());
    for (const TermRef &H : Hyps)
      fprintf(stderr, "  hyp: %.160s\n", printTerm(H).c_str());
  }

  // Backward chaining into the lemma library.
  for (const TermRef &Rule : ChainRules) {
    std::vector<TermRef> Prems;
    TermRef RC;
    stripImps(Rule, Prems, RC);
    Subst S;
    if (!unifyTerms(RC, Concl, S, /*RigidRight=*/true))
      continue;
    bool Ok = true;
    for (const TermRef &P : Prems) {
      TermRef PI = S.apply(P);
      if (PI->hasSchematic()) {
        Ok = false;
        break;
      }
      std::vector<TermRef> H2 = Hyps;
      if (!solve(std::move(H2), PI, Depth + 8)) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      return true;
  }

  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

std::optional<Thm> AutoProver::prove(const TermRef &Goal,
                                     const AutoOptions &Opts) {
  Solver S(Lemmas, Opts);
  if (!S.solveEntry(Goal))
    return std::nullopt;
  return Kernel::oracle("auto", Goal);
}

//===----------------------------------------------------------------------===//
// Countermodel search
//===----------------------------------------------------------------------===//

namespace {

class RandomModel {
public:
  RandomModel(monad::InterpCtx &Ctx, uint64_t Seed) : Ctx(Ctx), S(Seed) {}

  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }

  monad::Value randomValue(const TypeRef &Ty, unsigned Depth = 0) {
    using monad::Value;
    if (isFunTy(Ty) && Depth < 4) {
      // A random finite function: a small table over a default.
      auto Table =
          std::make_shared<std::map<std::string, Value>>();
      TypeRef Ran = ranTy(Ty);
      Value Default = randomValue(Ran, Depth + 1);
      // Lazily extend the table so unseen inputs get fresh random
      // values, deterministically per input.
      auto SeedBase = next();
      monad::InterpCtx *CP = &Ctx;
      TypeRef RanC = Ran;
      return Value::fun([Table, Default, SeedBase, CP, RanC,
                         Depth](const Value &In) {
        std::string Key = In.str();
        auto It = Table->find(Key);
        if (It != Table->end())
          return It->second;
        uint64_t H = SeedBase;
        for (char C : Key)
          H = H * 1099511628211ULL + static_cast<unsigned char>(C);
        RandomModel Sub(*CP, H ? H : 1);
        Value V = Sub.randomValue(RanC, Depth + 1);
        Table->emplace(Key, V);
        return V;
      });
    }
    if (isWordTy(Ty) || isSwordTy(Ty) || Ty->isCon("nat") ||
        Ty->isCon("int")) {
      Int128 Raw;
      switch (next() % 4) {
      case 0:
        Raw = static_cast<Int128>(next() % 6);
        break;
      case 1:
        Raw = static_cast<Int128>(next() % 64);
        break;
      default:
        Raw = static_cast<Int128>(next() % 1024);
        break;
      }
      if (Ty->isCon("int") && (next() & 1))
        Raw = -Raw;
      if (isWordTy(Ty) || isSwordTy(Ty))
        Raw = normalizeToType(static_cast<Int128>(next()), Ty);
      return monad::Value::num(Raw, Ty);
    }
    if (Ty->isCon("bool"))
      return monad::Value::boolean(next() & 1);
    if (isPtrTy(Ty))
      return monad::Value::ptr(static_cast<uint32_t>(next() % 8) * 4,
                               typeStr(Ty->arg(0)));
    if (Ty->isCon("list")) {
      unsigned N = next() % 4;
      std::vector<monad::Value> Vs;
      for (unsigned I = 0; I != N; ++I)
        Vs.push_back(randomValue(Ty->arg(0), Depth + 1));
      return monad::Value::list(std::move(Vs));
    }
    if (Ty->isCon("prod"))
      return monad::Value::pair(randomValue(Ty->arg(0), Depth + 1),
                                randomValue(Ty->arg(1), Depth + 1));
    if (Ty->isCon("option")) {
      if (next() & 1)
        return monad::Value::none();
      return monad::Value::some(randomValue(Ty->arg(0), Depth + 1));
    }
    if (Ty->isCon() && Ty->name().rfind("record:", 0) == 0 && Ctx.Prog) {
      const hol::RecordInfo *RI =
          Ctx.Prog->Records.lookup(Ty->name().substr(7));
      if (RI) {
        std::map<std::string, monad::Value> Fields;
        for (const auto &[FName, FTy] : RI->Fields)
          Fields.emplace(FName, randomValue(FTy, Depth + 1));
        return monad::Value::record(Ty->name().substr(7),
                                    std::move(Fields));
      }
    }
    return Ctx.defaultValue(Ty);
  }

private:
  monad::InterpCtx &Ctx;
  uint64_t S;
};

/// Evaluates a quantified boolean term under random instantiation of
/// outer universals. Nested quantifiers over small enumerable domains
/// (bool) are expanded; others are sampled.
bool evalRandom(const TermRef &T, RandomModel &M, monad::InterpCtx &Ctx,
                std::map<std::string, monad::Value> &Env, unsigned Depth);

monad::Value evalWithFrees(const TermRef &T, monad::InterpCtx &Ctx,
                           std::map<std::string, monad::Value> &Env,
                           RandomModel &M) {
  // Substitute frees by injecting them through closures: wrap the term
  // in lambdas and apply.
  TermRef Cur = T;
  std::vector<monad::Value> Vals;
  std::vector<std::pair<std::string, TypeRef>> FVs;
  // Collect frees with types.
  std::function<void(const TermRef &)> Go = [&](const TermRef &U) {
    if (U->isFree()) {
      for (auto &[N, Ty] : FVs)
        if (N == U->name())
          return;
      FVs.emplace_back(U->name(), U->type());
      return;
    }
    if (U->isLam())
      Go(U->body());
    if (U->isApp()) {
      Go(U->fun());
      Go(U->argTerm());
    }
  };
  Go(T);
  for (auto It = FVs.rbegin(); It != FVs.rend(); ++It)
    Cur = lambdaFree(It->first, It->second, Cur);
  monad::Value V = monad::evalClosed(Cur, Ctx);
  for (auto &[N, Ty] : FVs) {
    // Frees of the goal itself (as opposed to quantifier instances,
    // which are pre-assigned) are implicitly universal: sample them once
    // per trial so repeated occurrences agree.
    auto It = Env.find(N);
    if (It == Env.end())
      It = Env.emplace(N, M.randomValue(Ty)).first;
    V = V.Fun(It->second);
  }
  return V;
}

bool evalRandom(const TermRef &T, RandomModel &M, monad::InterpCtx &Ctx,
                std::map<std::string, monad::Value> &Env, unsigned Depth) {
  TermRef Lam;
  if (destAll(T, Lam)) {
    // Sample several instantiations; all must hold.
    unsigned Samples = Depth == 0 ? 6 : 3;
    for (unsigned I = 0; I != Samples; ++I) {
      std::string N = "rm!" + std::to_string(Depth) + "_" +
                      std::to_string(I);
      TermRef F = Term::mkFree(N, Lam->type());
      Env[N] = M.randomValue(Lam->type());
      if (!evalRandom(betaNorm(Term::mkApp(Lam, F)), M, Ctx, Env,
                      Depth + 1))
        return false;
    }
    return true;
  }
  TermRef A, B;
  if (destImp(T, A, B)) {
    if (!evalRandom(A, M, Ctx, Env, Depth + 1))
      return true;
    return evalRandom(B, M, Ctx, Env, Depth + 1);
  }
  if (destConj(T, A, B))
    return evalRandom(A, M, Ctx, Env, Depth + 1) &&
           evalRandom(B, M, Ctx, Env, Depth + 1);
  std::vector<TermRef> EA;
  if (destConstApp(T, nm::Ex, 1, EA) && EA[0]->isLam()) {
    // Sample witnesses; report true if any works (may under-approximate,
    // which can only cause false "refutations" — callers sample many
    // seeds, and the lemma tests use goals whose existentials are
    // shallow). For numeric existentials, sweep the small values first:
    // bounded witnesses dominate in practice and random sampling of a
    // 2^64 space would miss them.
    TypeRef WTy = EA[0]->type();
    if (WTy->isCon("nat") || WTy->isCon("int")) {
      for (int V = (WTy->isCon("int") ? -16 : 0); V <= 32; ++V) {
        std::string N = "rme!" + std::to_string(Depth) + "_s" +
                        std::to_string(V + 16);
        TermRef F = Term::mkFree(N, WTy);
        Env[N] = monad::Value::num(V, WTy);
        if (evalRandom(betaNorm(Term::mkApp(EA[0], F)), M, Ctx, Env,
                       Depth + 1))
          return true;
      }
    }
    for (unsigned I = 0; I != 8; ++I) {
      std::string N = "rme!" + std::to_string(Depth) + "_" +
                      std::to_string(I);
      TermRef F = Term::mkFree(N, EA[0]->type());
      Env[N] = M.randomValue(EA[0]->type());
      if (evalRandom(betaNorm(Term::mkApp(EA[0], F)), M, Ctx, Env,
                     Depth + 1))
        return true;
    }
    return false;
  }
  monad::Value V = evalWithFrees(T, Ctx, Env, M);
  assert(V.K == monad::Value::Kind::Bool &&
         "countermodel evaluation of non-boolean");
  return V.B;
}

} // namespace

bool AutoProver::refute(const TermRef &Goal, monad::InterpCtx &Ctx,
                        unsigned Trials, uint64_t Seed) {
  for (unsigned I = 0; I != Trials; ++I) {
    RandomModel M(Ctx, Seed + I * 2654435761ULL);
    std::map<std::string, monad::Value> Env;
    if (!evalRandom(Goal, M, Ctx, Env, 0))
      return true;
  }
  return false;
}
