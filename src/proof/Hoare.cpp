//===- Hoare.cpp ----------------------------------------------------------===//

#include "proof/Hoare.h"

#include "hol/Names.h"

using namespace ac;
using namespace ac::proof;
using namespace ac::hol;
namespace nm = ac::hol::names;

namespace {

/// Continuation: given (value term, state term) build the postcondition.
using Cont = std::function<TermRef(const TermRef &, const TermRef &)>;

class WpGen {
public:
  WpGen(const std::vector<LoopSpec> &Loops, VCResult &Out)
      : Loops(Loops), Out(Out) {}

  /// wp of \p M against continuation \p Q, as a term over \p SVar.
  TermRef wp(const TermRef &M, const TermRef &SVar, const Cont &Q) {
    if (!Out.Ok)
      return mkFalse();
    std::vector<TermRef> Args;
    TermRef Head = stripApp(M, Args);
    TypeRef S = typeOf(SVar);

    if (Head->isConst(nm::Return) && Args.size() == 1)
      return Q(Args[0], SVar);
    if (Head->isConst(nm::Skip))
      return Q(mkUnit(), SVar);
    if (Head->isConst(nm::Gets) && Args.size() == 1)
      return Q(betaNorm(Term::mkApp(Args[0], SVar)), SVar);
    if (Head->isConst(nm::Modify) && Args.size() == 1)
      return Q(mkUnit(), betaNorm(Term::mkApp(Args[0], SVar)));
    if (Head->isConst(nm::Guard) && Args.size() == 1) {
      TermRef G = betaNorm(Term::mkApp(Args[0], SVar));
      return mkConj(G, Q(mkUnit(), SVar));
    }
    if (Head->isConst(nm::Fail))
      return mkFalse();
    if (Head->isConst(nm::Bind) && Args.size() == 2) {
      const TermRef L = Args[0];
      const TermRef R = Args[1];
      return wp(L, SVar, [&](const TermRef &V, const TermRef &S1) {
        TermRef RB = betaNorm(Term::mkApp(R, V));
        return wp(RB, S1, Q);
      });
    }
    if (Head->isConst(nm::Condition) && Args.size() == 3) {
      TermRef C = betaNorm(Term::mkApp(Args[0], SVar));
      TermRef WA = wp(Args[1], SVar, Q);
      TermRef WB = wp(Args[2], SVar, Q);
      return mkIte(C, WA, WB);
    }
    if (Head->isConst(nm::WhileLoop) && Args.size() == 3)
      return wpLoop(Args[0], Args[1], Args[2], SVar, Q);

    Out.Ok = false;
    Out.Error = "unsupported construct in VC generation: " +
                (Head->isConst() ? Head->name() : std::string("<term>"));
    return mkFalse();
  }

private:
  const std::vector<LoopSpec> &Loops;
  VCResult &Out;
  unsigned LoopIdx = 0;
  unsigned Fresh = 0;

  std::string fresh(const std::string &H) {
    return H + "?" + std::to_string(Fresh++);
  }

  TermRef wpLoop(const TermRef &C, const TermRef &B, const TermRef &I,
                 const TermRef &SVar, const Cont &Q) {
    if (LoopIdx >= Loops.size()) {
      Out.Ok = false;
      Out.Error = "missing loop annotation";
      return mkFalse();
    }
    const LoopSpec &Spec = Loops[LoopIdx++];
    TermRef Inv = Spec.Invariant;
    TermRef Measure = Spec.Measure;
    if (!Measure)
      Out.TotalCorrectness = false;

    TypeRef ITy = C->isLam() ? C->type() : domTy(typeOf(C));
    TypeRef S = typeOf(SVar);

    // Fresh iterate/state for the two loop goals.
    std::string RN = fresh("r"), SN = fresh("s");
    TermRef RF = Term::mkFree(RN, ITy);
    TermRef SF = Term::mkFree(SN, S);
    TermRef InvAt = betaNorm(mkApps(Inv, {RF, SF}));
    TermRef CondAt = betaNorm(mkApps(C, {RF, SF}));

    // Preservation (+ measure decrease).
    TermRef BodyAt = betaNorm(Term::mkApp(B, RF));
    TermRef MeasureBefore =
        Measure ? betaNorm(mkApps(Measure, {RF, SF})) : nullptr;
    TermRef Pres = wp(
        BodyAt, SF, [&](const TermRef &R2, const TermRef &S2) {
          TermRef InvAfter = betaNorm(mkApps(Inv, {R2, S2}));
          if (!Measure)
            return InvAfter;
          TermRef MeasureAfter = betaNorm(mkApps(Measure, {R2, S2}));
          return mkConj(InvAfter, mkLess(MeasureAfter, MeasureBefore));
        });
    TermRef G1 = mkImp(mkConj(InvAt, CondAt), Pres);
    G1 = mkAll(RN, ITy, mkAll(SN, S, G1));
    Out.Goals.push_back(G1);
    Out.Labels.push_back("loop " + std::to_string(LoopIdx) +
                         ": invariant preservation" +
                         (Measure ? " and measure decrease" : ""));

    // Exit.
    std::string RN2 = fresh("r"), SN2 = fresh("s");
    TermRef RF2 = Term::mkFree(RN2, ITy);
    TermRef SF2 = Term::mkFree(SN2, S);
    TermRef InvAt2 = betaNorm(mkApps(Inv, {RF2, SF2}));
    TermRef CondAt2 = betaNorm(mkApps(C, {RF2, SF2}));
    TermRef G2 = mkImp(mkConj(InvAt2, mkNot(CondAt2)), Q(RF2, SF2));
    G2 = mkAll(RN2, ITy, mkAll(SN2, S, G2));
    Out.Goals.push_back(G2);
    Out.Labels.push_back("loop " + std::to_string(LoopIdx) +
                         ": postcondition on exit");

    // Entry: the invariant holds initially.
    return betaNorm(mkApps(Inv, {I, SVar}));
  }
};

} // namespace

namespace {

/// Collects the types of the free variables in \p T.
void freeTypes(const TermRef &T,
               std::vector<std::pair<std::string, TypeRef>> &Out) {
  switch (T->kind()) {
  case Term::Kind::Free: {
    for (const auto &[N, Ty] : Out)
      if (N == T->name())
        return;
    Out.emplace_back(T->name(), T->type());
    return;
  }
  case Term::Kind::Lam:
    freeTypes(T->body(), Out);
    return;
  case Term::Kind::App:
    freeTypes(T->fun(), Out);
    freeTypes(T->argTerm(), Out);
    return;
  default:
    return;
  }
}

/// Universally closes \p T over every free variable.
TermRef closeGoal(TermRef T) {
  std::vector<std::pair<std::string, TypeRef>> FVs;
  freeTypes(T, FVs);
  for (auto It = FVs.rbegin(); It != FVs.rend(); ++It)
    T = mkAll(It->first, It->second, T);
  return T;
}

} // namespace

VCResult ac::proof::generateVCs(const TermRef &Body, const TermRef &Pre,
                                const TermRef &Post,
                                const std::vector<LoopSpec> &Loops) {
  VCResult Out;
  TypeRef S, A, E;
  if (!destMonadTy(typeOf(Body), S, A, E)) {
    Out.Ok = false;
    Out.Error = "body is not a monadic term";
    return Out;
  }
  WpGen Gen(Loops, Out);
  TermRef SVar = Term::mkFree("s?0", S);
  TermRef Wp = Gen.wp(Body, SVar, [&](const TermRef &V, const TermRef &T) {
    return betaNorm(mkApps(Post, {V, T}));
  });
  if (!Out.Ok)
    return Out;
  TermRef PreAt = betaNorm(Term::mkApp(Pre, SVar));
  TermRef Main = mkAll("s?0", S, mkImp(PreAt, Wp));
  Out.Goals.insert(Out.Goals.begin(), Main);
  Out.Labels.insert(Out.Labels.begin(), "main verification condition");
  // Close every goal over its remaining frees (function arguments,
  // loop-goal iterates and states).
  for (TermRef &G : Out.Goals)
    G = closeGoal(G);
  return Out;
}
