//===- Hoare.h - Hoare triples and a WP verification generator --*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoare logic over AutoCorres output programs: total-correctness triples
///
///   {|P|} m {|%rv s. Q rv s|}
///
/// with a weakest-precondition VCG. Loops take user annotations — an
/// invariant and (for total correctness, which the AutoCorres refinement
/// statement requires, Sec 5.2(iii)) a nat-valued measure that must
/// decrease on every iteration.
///
/// This is the "program logic on top" layer the paper's Sec 7 calls
/// orthogonal: any logic can drive the abstracted output; we provide the
/// VCG + auto combination used in the case studies.
///
//===----------------------------------------------------------------------===//

#ifndef AC_PROOF_HOARE_H
#define AC_PROOF_HOARE_H

#include "hol/Builder.h"

#include <functional>
#include <optional>
#include <vector>

namespace ac::proof {

/// Loop annotation: invariant (iter => S => bool) and optional measure
/// (iter => S => nat). Without a measure only partial correctness is
/// established (the VCG reports this).
struct LoopSpec {
  hol::TermRef Invariant;
  hol::TermRef Measure; ///< null for partial correctness
};

/// Result of VC generation.
struct VCResult {
  /// The goals, closed (universally quantified over program variables).
  std::vector<hol::TermRef> Goals;
  /// Human labels, index-aligned with Goals.
  std::vector<std::string> Labels;
  bool TotalCorrectness = true; ///< false if some loop had no measure
  bool Ok = true;               ///< false if the program had an
                                ///< unsupported construct
  std::string Error;
};

/// Generates verification conditions for {|Pre|} Body {|Post|}.
///
/// \param Body      a nothrow monadic term over state type S (an
///                  AutoCorres final output, applied to argument frees)
/// \param Pre       S => bool
/// \param Post      rv => S => bool (curried; rv type = Body's value type)
/// \param Loops     annotations for each whileLoop in evaluation order
///
/// The first goal is the main VC `ALL s. Pre s --> wp Body Post s`
/// (quantified over every free variable); loop goals follow.
VCResult generateVCs(const hol::TermRef &Body, const hol::TermRef &Pre,
                     const hol::TermRef &Post,
                     const std::vector<LoopSpec> &Loops = {});

} // namespace ac::proof

#endif // AC_PROOF_HOARE_H
