//===- acd.cpp - The AutoCorres verification daemon ------------------------===//
//
// Long-lived verification service: keeps interned terms, the abstraction
// cache, and a warm worker pool resident across requests, and serves
// check/stats/ping/drain requests over a Unix-domain socket
// (docs/PROTOCOL.md). `acc` is the matching client.
//
//   acd --socket /tmp/acd.sock --workers 2 --queue 8 --jobs 4
//
// SIGTERM / SIGINT (or a client `drain` request) trigger a graceful
// drain: in-flight and queued requests finish, cache tiers are flushed
// to disk, new work is refused, then the process exits 0.
//
//===----------------------------------------------------------------------===//

#include "cache/RemoteCache.h"
#include "service/Server.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>

using namespace ac::service;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --socket PATH      listening Unix socket (default: acd.sock;\n"
      "                     `none` disables it for TCP-only shards)\n"
      "  --listen HOST:PORT additionally listen on TCP (port 0 picks an\n"
      "                     ephemeral port, printed at startup)\n"
      "  --auth-token-file F require the shared token in F on every TCP\n"
      "                     connection (first-frame auth handshake)\n"
      "  --shard-id NAME    label every Prometheus metric with\n"
      "                     shard_id=\"NAME\" (fleet aggregation)\n"
      "  --remote-cache A   use the accached daemon at A (host:port or\n"
      "                     Unix path) as a third cache tier\n"
      "  --remote-token-file F token file for --remote-cache dials\n"
      "  --workers N        concurrent check sessions (default: 2)\n"
      "  --queue N          admission queue capacity (default: 8)\n"
      "  --jobs N           default abstraction jobs per request\n"
      "                     (default: $AC_JOBS, 1 when unset)\n"
      "  --cache-dir DIR    default abstraction-cache directory\n"
      "  --retry-after-ms N backpressure retry hint (default: 50)\n"
      "  --tenant-quota-rps N per-tenant admission quota in requests/s\n"
      "                     (token bucket; default: 0 = no quotas)\n"
      "  --tenant-quota-burst N per-tenant burst capacity\n"
      "                     (default: 2x the quota rate)\n"
      "  --shed-min-samples N completed requests needed before stale\n"
      "                     bulk work is shed (default: 16)\n"
      "  --trace-dir DIR    write a Chrome trace JSON per request to\n"
      "                     DIR/<trace_id>.json (best-effort)\n"
      "  --trace            keep spans in memory for the `trace_pull`\n"
      "                     op (fleet tracing; wins over --trace-dir)\n"
      "  --cert-dir DIR     write a proof certificate per request to\n"
      "                     DIR/<trace_id>.acpc, checkable with `acpc`\n"
      "                     (best-effort)\n"
      "  --log-file PATH    append structured JSONL log lines to PATH\n"
      "                     (default: stderr; also $AC_LOG_FILE)\n"
      "  --log-level LVL    debug|info|warn|error|off (default: info;\n"
      "                     also $AC_LOG)\n",
      Argv0);
}

bool parseUnsigned(const char *S, unsigned &Out) {
  char *End = nullptr;
  unsigned long V = std::strtoul(S, &End, 10);
  if (!End || *End || V > 1u << 20)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  Opts.SocketPath = "acd.sock";
  std::string RemoteAddr;
  std::string RemoteToken;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    unsigned N = 0;
    if (Arg == "--socket") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.SocketPath = std::strcmp(V, "none") == 0 ? "" : V;
    } else if (Arg == "--listen") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.ListenAddr = V;
    } else if (Arg == "--auth-token-file") {
      const char *V = Next();
      if (!V || !readTokenFile(V, Opts.AuthToken)) {
        std::fprintf(stderr, "acd: cannot read auth token file\n");
        return 2;
      }
    } else if (Arg == "--shard-id") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.ShardId = V;
    } else if (Arg == "--remote-cache") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      RemoteAddr = V;
    } else if (Arg == "--remote-token-file") {
      const char *V = Next();
      if (!V || !readTokenFile(V, RemoteToken)) {
        std::fprintf(stderr, "acd: cannot read remote token file\n");
        return 2;
      }
    } else if (Arg == "--workers" && Next() && parseUnsigned(argv[I], N)) {
      Opts.Workers = N;
    } else if (Arg == "--queue" && Next() && parseUnsigned(argv[I], N)) {
      Opts.QueueCapacity = N;
    } else if (Arg == "--jobs" && Next() && parseUnsigned(argv[I], N)) {
      Opts.Jobs = N;
    } else if (Arg == "--cache-dir") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.CacheDir = V;
    } else if (Arg == "--retry-after-ms" && Next() &&
               parseUnsigned(argv[I], N)) {
      Opts.RetryAfterMs = N;
    } else if (Arg == "--tenant-quota-rps" && Next() &&
               parseUnsigned(argv[I], N)) {
      Opts.TenantQuotaRps = N;
    } else if (Arg == "--tenant-quota-burst" && Next() &&
               parseUnsigned(argv[I], N)) {
      Opts.TenantQuotaBurst = N;
    } else if (Arg == "--shed-min-samples" && Next() &&
               parseUnsigned(argv[I], N)) {
      Opts.ShedMinSamples = N;
    } else if (Arg == "--trace-dir") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.TraceDir = V;
    } else if (Arg == "--trace") {
      Opts.TraceLive = true;
    } else if (Arg == "--cert-dir") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.CertDir = V;
    } else if (Arg == "--log-file") {
      const char *V = Next();
      if (!V || !ac::support::Log::setFile(V)) {
        std::fprintf(stderr, "acd: cannot open log file\n");
        return 2;
      }
    } else if (Arg == "--log-level") {
      const char *V = Next();
      ac::support::LogLevel Lv;
      if (!V || !ac::support::Log::parseLevel(V, Lv)) {
        usage(argv[0]);
        return 2;
      }
      ac::support::Log::setLevel(Lv);
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "acd: bad argument `%s`\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // Block the shutdown signals in every thread the server will spawn;
  // the main thread collects them below with sigtimedwait, so a SIGTERM
  // turns into a drain instead of killing mid-request.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGTERM);
  sigaddset(&Sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  // The remote cache tier is wired before the server starts so every
  // cacheFor() slot sees it from the first request.
  std::unique_ptr<ac::cache::RemoteCacheClient> Remote;
  if (!RemoteAddr.empty()) {
    Remote.reset(new ac::cache::RemoteCacheClient(RemoteAddr, RemoteToken));
    Opts.Remote = Remote.get();
  }

  Server Srv(Opts);
  if (!Srv.start()) {
    std::fprintf(stderr, "acd: cannot listen on %s\n",
                 Opts.SocketPath.empty() ? Opts.ListenAddr.c_str()
                                         : Opts.SocketPath.c_str());
    return 1;
  }
  if (!Opts.SocketPath.empty())
    std::printf("acd: listening on %s (workers=%u queue=%zu)\n",
                Opts.SocketPath.c_str(), Srv.options().Workers,
                Srv.options().QueueCapacity);
  if (!Opts.ListenAddr.empty())
    std::printf("acd: listening on tcp port %u (workers=%u queue=%zu)\n",
                static_cast<unsigned>(Srv.tcpPort()), Srv.options().Workers,
                Srv.options().QueueCapacity);
  std::fflush(stdout);
  ac::support::Log::info(
      "daemon.started",
      {{"socket", Opts.SocketPath},
       {"listen", Opts.ListenAddr},
       {"shard_id", Opts.ShardId},
       {"workers", Srv.options().Workers},
       {"queue", static_cast<uint64_t>(Srv.options().QueueCapacity)}});

  // Wait for SIGTERM/SIGINT or a protocol-level drain request.
  timespec Tick{0, 200 * 1000 * 1000};
  while (!Srv.draining()) {
    int Sig = sigtimedwait(&Sigs, nullptr, &Tick);
    if (Sig == SIGTERM || Sig == SIGINT)
      break;
  }

  std::printf("acd: draining (finishing in-flight work)\n");
  std::fflush(stdout);
  Srv.stop(); // drain + flush caches + teardown
  std::printf("acd: drained, bye\n");
  ac::support::Log::info("daemon.stopped", {});
  return 0;
}
