//===- actrace.cpp - Collect and merge fleet trace fragments --------------===//
//
// Pulls each process's trace fragment over the wire (`trace_pull`, which
// drains the remote buffers exactly once) and merges them into a single
// Chrome trace-event JSON: one pid lane per process labeled with its
// role, all timestamps rebased onto the earliest process's wall-clock
// anchor, spans chained across processes by trace_id/span/parent args.
//
//   actrace --out merged.json 127.0.0.1:7000 127.0.0.1:7001 ...
//
// Load the result in chrome://tracing or Perfetto, or gate its shape in
// CI with `aclint trace` / `aclint fleettrace`.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "support/TraceMerge.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using ac::service::Client;
using ac::support::Json;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] HOST:PORT [HOST:PORT ...]\n"
      "  --out FILE          write the merged trace here (default: stdout)\n"
      "  --auth-token-file F auth token presented to each daemon\n"
      "\n"
      "Each address is an acd / acrouter / accached daemon; `trace_pull`\n"
      "drains its in-memory span buffer (boot the daemons with --trace).\n",
      Argv0);
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath;
  std::string Token;
  std::vector<std::string> Addrs;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--out") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      OutPath = V;
    } else if (Arg == "--auth-token-file") {
      const char *V = Next();
      if (!V || !ac::service::readTokenFile(V, Token)) {
        std::fprintf(stderr, "actrace: cannot read auth token file\n");
        return 2;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "actrace: bad argument `%s`\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      Addrs.push_back(Arg);
    }
  }
  if (Addrs.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::vector<std::string> Fragments;
  bool AllOk = true;
  for (const std::string &Addr : Addrs) {
    std::string Err;
    Client C = Client::connectTcp(Addr, Token, Err);
    Json Resp;
    if (!C.connected() || !C.tracePull(Resp, Err)) {
      std::fprintf(stderr, "actrace: %s: %s\n", Addr.c_str(),
                   Err.empty() ? "trace_pull failed" : Err.c_str());
      AllOk = false;
      continue;
    }
    std::fprintf(stderr, "actrace: %s: pid %lld role `%s`\n", Addr.c_str(),
                 static_cast<long long>(Resp.get("pid").asInt()),
                 Resp.get("role").asString().c_str());
    Fragments.push_back(Resp.get("body").asString());
  }
  if (Fragments.empty()) {
    std::fprintf(stderr, "actrace: no fragments collected\n");
    return 1;
  }

  std::string Merged, Err;
  if (!ac::support::mergeTraceFragments(Fragments, Merged, Err)) {
    std::fprintf(stderr, "actrace: merge failed: %s\n", Err.c_str());
    return 1;
  }

  if (OutPath.empty()) {
    std::fwrite(Merged.data(), 1, Merged.size(), stdout);
  } else {
    std::FILE *F = std::fopen(OutPath.c_str(), "w");
    if (!F || std::fwrite(Merged.data(), 1, Merged.size(), F) !=
                  Merged.size()) {
      std::fprintf(stderr, "actrace: cannot write %s\n", OutPath.c_str());
      if (F)
        std::fclose(F);
      return 1;
    }
    std::fclose(F);
    std::fprintf(stderr, "actrace: wrote %s (%zu fragments)\n",
                 OutPath.c_str(), Fragments.size());
  }
  return AllOk ? 0 : 1;
}
