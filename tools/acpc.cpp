//===- acpc.cpp - AutoCorres proof-certificate checker ---------------------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Independent streaming checker for `.acpc` proof certificates:
//
//   acpc [options] <cert.acpc>...
//     -j N       check up to N certificates in parallel (default 1)
//     --leaves   print each certificate's trusted base (axiom name+hash,
//                oracle names) after its verdict
//     --quiet    print nothing for certificates that verify
//     --max-depth N, --node-budget N
//                work limits (oversized input rejects cleanly)
//
// Exit status: 0 every certificate verifies; 1 any certificate is
// rejected (the first offending record is printed as file:line: reason);
// 2 usage or unreadable input.
//
// The entire checking logic lives in acpc_check.h, which includes
// nothing from src/ — this file only adds argument handling and worker
// threads. Each certificate is checked on a dedicated thread with a
// large stack so legitimately deep terms (long bind spines) re-derive
// fine while adversarially deep input still dies at the depth cap, not
// by stack overflow.
//
//===----------------------------------------------------------------------===//

#include "acpc_check.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <pthread.h>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct FileJob {
  std::string Path;
  bool Read = false;
  acpc::Result Res;
};

struct WorkerArgs {
  std::vector<FileJob> *Jobs;
  std::atomic<size_t> *Next;
  const acpc::Options *Opts;
};

bool readAll(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.good())
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void *worker(void *P) {
  auto *A = static_cast<WorkerArgs *>(P);
  for (;;) {
    size_t I = A->Next->fetch_add(1);
    if (I >= A->Jobs->size())
      return nullptr;
    FileJob &J = (*A->Jobs)[I];
    std::string Text;
    if (!readAll(J.Path, Text)) {
      J.Read = false;
      continue;
    }
    J.Read = true;
    J.Res = acpc::check(Text, *A->Opts);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: acpc [-j N] [--leaves] [--quiet] [--max-depth N] "
               "[--node-budget N] <cert.acpc>...\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  acpc::Options Opts;
  std::vector<FileJob> Jobs;
  unsigned NThreads = 1;
  bool Leaves = false, Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto numArg = [&](unsigned long long &Out) {
      if (I + 1 >= argc)
        return false;
      char *End = nullptr;
      Out = std::strtoull(argv[++I], &End, 10);
      return End && *End == '\0' && Out > 0;
    };
    unsigned long long N = 0;
    if (A == "-j") {
      if (!numArg(N))
        return usage();
      NThreads = static_cast<unsigned>(N > 256 ? 256 : N);
    } else if (A == "--max-depth") {
      if (!numArg(N))
        return usage();
      Opts.MaxDepth = N;
    } else if (A == "--node-budget") {
      if (!numArg(N))
        return usage();
      Opts.NodeBudget = N;
    } else if (A == "--leaves") {
      Leaves = true;
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (!A.empty() && A[0] == '-') {
      return usage();
    } else {
      Jobs.push_back(FileJob{A, false, {}});
    }
  }
  if (Jobs.empty())
    return usage();

  std::atomic<size_t> Next{0};
  WorkerArgs WA{&Jobs, &Next, &Opts};
  if (NThreads > Jobs.size())
    NThreads = static_cast<unsigned>(Jobs.size());

  // 64 MiB stacks: re-derivation recurses to term depth, and the depth
  // cap (not the platform default stack) should be the binding limit.
  pthread_attr_t Attr;
  pthread_attr_init(&Attr);
  pthread_attr_setstacksize(&Attr, 64u << 20);
  std::vector<pthread_t> Threads(NThreads);
  unsigned Started = 0;
  for (unsigned T = 0; T != NThreads; ++T) {
    if (pthread_create(&Threads[T], &Attr, worker, &WA) == 0)
      ++Started;
  }
  pthread_attr_destroy(&Attr);
  if (Started == 0)
    worker(&WA); // fall back to inline checking
  for (unsigned T = 0; T != Started; ++T)
    pthread_join(Threads[T], nullptr);

  // Report in input order, independent of completion order.
  int Exit = 0;
  for (const FileJob &J : Jobs) {
    if (!J.Read) {
      std::fprintf(stderr, "acpc: cannot read %s\n", J.Path.c_str());
      if (Exit == 0)
        Exit = 2;
      continue;
    }
    if (!J.Res.Ok) {
      std::fprintf(stderr, "acpc: %s:%zu: %s\n", J.Path.c_str(), J.Res.Line,
                   J.Res.Error.c_str());
      Exit = 1;
      continue;
    }
    if (!Quiet)
      std::printf("%s: ok: %llu claims, %llu inferences, %llu terms\n",
                  J.Path.c_str(),
                  static_cast<unsigned long long>(J.Res.ClaimCount),
                  static_cast<unsigned long long>(J.Res.Derivs),
                  static_cast<unsigned long long>(J.Res.Terms));
    if (Leaves) {
      for (const auto &[Name, Hash] : J.Res.AxiomLeaves)
        std::printf("%s: axiom %s %s\n", J.Path.c_str(), Name.c_str(),
                    Hash.c_str());
      for (const std::string &Name : J.Res.OracleLeaves)
        std::printf("%s: oracle %s\n", J.Path.c_str(), Name.c_str());
    }
  }
  return Exit;
}
