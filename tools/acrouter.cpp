//===- acrouter.cpp - Consistent-hash front-end for an acd fleet ----------===//
//
// Speaks the verification-service protocol to clients and forwards each
// check to one of N acd shards, chosen by consistent-hashing the request
// content (docs/PROTOCOL.md "Router"). Shards that die are probed back to
// health; requests reroute; with the whole fleet down the router degrades
// to the in-process pipeline so answers stay byte-identical.
//
//   acrouter --listen 127.0.0.1:0
//            --shard 127.0.0.1:7001 --shard 127.0.0.1:7002
//
//===----------------------------------------------------------------------===//

#include "router/Router.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace ac::router;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard HOST:PORT [--shard ...] [options]\n"
      "  --shard HOST:PORT   an acd shard (repeatable; at least one)\n"
      "  --socket PATH       listening Unix socket (default: none)\n"
      "  --listen HOST:PORT  listen on TCP (port 0 picks an ephemeral\n"
      "                      port, printed at startup)\n"
      "  --auth-token-file F require the shared token in F on every\n"
      "                      client TCP connection\n"
      "  --shard-token-file F token presented when dialing shards\n"
      "  --virtual-nodes N   ring points per shard (default: 64)\n"
      "  --window N          max in-flight forwards per shard before\n"
      "                      answering busy (default: 8)\n"
      "  --retry-after-ms N  retry hint on window-full busy (default: 50)\n"
      "  --probe-ms N        health-probe cadence (default: 250)\n"
      "  --no-local-fallback refuse (busy) instead of running checks\n"
      "                      in-process when every shard is down\n"
      "  --breaker-fails N   consecutive failures that open a shard's\n"
      "                      circuit breaker (default: 3)\n"
      "  --breaker-cooldown-ms N open-breaker cooldown before the\n"
      "                      half-open probe (default: 500)\n"
      "  --retry-budget-pct N reroutes+hedges capped at N%% of recent\n"
      "                      forwards (default: 20)\n"
      "  --hedge-pct N       hedge a forward once it has consumed N%% of\n"
      "                      its deadline budget (default: 70; 0 = off)\n"
      "  --cache HOST:PORT   the accached daemon, scraped into the\n"
      "                      federated `metrics` and `fleet` payloads\n"
      "  --trace             keep spans in memory for the `trace_pull`\n"
      "                      op and propagate trace context on forwards\n"
      "  --log-file PATH     append structured JSONL log lines to PATH\n"
      "  --log-level LVL     debug|info|warn|error|off (default: info)\n",
      Argv0);
}

bool parseUnsigned(const char *S, unsigned &Out) {
  char *End = nullptr;
  unsigned long V = std::strtoul(S, &End, 10);
  if (!End || *End || V > 1u << 20)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  RouterOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    unsigned N = 0;
    if (Arg == "--shard") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.Shards.push_back(V);
    } else if (Arg == "--socket") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.SocketPath = V;
    } else if (Arg == "--listen") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.ListenAddr = V;
    } else if (Arg == "--auth-token-file") {
      const char *V = Next();
      if (!V || !ac::service::readTokenFile(V, Opts.AuthToken)) {
        std::fprintf(stderr, "acrouter: cannot read auth token file\n");
        return 2;
      }
    } else if (Arg == "--shard-token-file") {
      const char *V = Next();
      if (!V || !ac::service::readTokenFile(V, Opts.ShardToken)) {
        std::fprintf(stderr, "acrouter: cannot read shard token file\n");
        return 2;
      }
    } else if (Arg == "--virtual-nodes" && Next() && parseUnsigned(argv[I], N) &&
               N > 0) {
      Opts.VirtualNodes = N;
    } else if (Arg == "--window" && Next() && parseUnsigned(argv[I], N) &&
               N > 0) {
      Opts.MaxInFlightPerShard = N;
    } else if (Arg == "--retry-after-ms" && Next() &&
               parseUnsigned(argv[I], N)) {
      Opts.RetryAfterMs = N;
    } else if (Arg == "--probe-ms" && Next() && parseUnsigned(argv[I], N) &&
               N > 0) {
      Opts.HealthProbeMs = N;
    } else if (Arg == "--no-local-fallback") {
      Opts.LocalFallback = false;
    } else if (Arg == "--breaker-fails" && Next() &&
               parseUnsigned(argv[I], N) && N > 0) {
      Opts.BreakerThreshold = N;
    } else if (Arg == "--breaker-cooldown-ms" && Next() &&
               parseUnsigned(argv[I], N)) {
      Opts.BreakerCooldownMs = N;
    } else if (Arg == "--retry-budget-pct" && Next() &&
               parseUnsigned(argv[I], N)) {
      Opts.RetryBudgetPct = N;
    } else if (Arg == "--hedge-pct" && Next() && parseUnsigned(argv[I], N) &&
               N <= 100) {
      Opts.HedgeBudgetPct = N;
    } else if (Arg == "--cache") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.CacheAddr = V;
    } else if (Arg == "--trace") {
      Opts.TraceLive = true;
    } else if (Arg == "--log-file") {
      const char *V = Next();
      if (!V || !ac::support::Log::setFile(V)) {
        std::fprintf(stderr, "acrouter: cannot open log file\n");
        return 2;
      }
    } else if (Arg == "--log-level") {
      const char *V = Next();
      ac::support::LogLevel Lv;
      if (!V || !ac::support::Log::parseLevel(V, Lv)) {
        usage(argv[0]);
        return 2;
      }
      ac::support::Log::setLevel(Lv);
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "acrouter: bad argument `%s`\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (Opts.Shards.empty()) {
    std::fprintf(stderr, "acrouter: need at least one --shard\n");
    usage(argv[0]);
    return 2;
  }
  if (Opts.SocketPath.empty() && Opts.ListenAddr.empty()) {
    std::fprintf(stderr, "acrouter: need --socket or --listen\n");
    return 2;
  }

  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGTERM);
  sigaddset(&Sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  Router R(Opts);
  if (!R.start()) {
    std::fprintf(stderr, "acrouter: cannot listen\n");
    return 1;
  }
  if (!Opts.SocketPath.empty())
    std::printf("acrouter: listening on %s (%zu shards)\n",
                Opts.SocketPath.c_str(), Opts.Shards.size());
  if (!Opts.ListenAddr.empty())
    std::printf("acrouter: listening on tcp port %u (%zu shards)\n",
                static_cast<unsigned>(R.tcpPort()), Opts.Shards.size());
  std::fflush(stdout);
  ac::support::Log::info(
      "router.started",
      {{"listen", Opts.ListenAddr},
       {"shards", static_cast<uint64_t>(Opts.Shards.size())}});

  timespec Tick{0, 200 * 1000 * 1000};
  while (!R.draining()) {
    int Sig = sigtimedwait(&Sigs, nullptr, &Tick);
    if (Sig == SIGTERM || Sig == SIGINT)
      break;
  }

  std::printf("acrouter: draining (finishing in-flight forwards)\n");
  std::fflush(stdout);
  R.stop();
  std::printf("acrouter: drained, bye\n");
  ac::support::Log::info("router.stopped", {});
  return 0;
}
