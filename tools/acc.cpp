//===- acc.cpp - Thin client for the acd verification daemon ---------------===//
//
// Submits one translation unit to a running acd and prints what came
// back. Sources come from a file, stdin (`-`), or the embedded corpus
// (`--corpus max`); `--golden` prints the exact golden-snapshot format
// of tests/core/GoldenSpecTest.cpp so daemon output can be diffed
// byte-for-byte against tests/golden/*.expected.
//
// Degrades gracefully: when the daemon is unreachable, dies mid-request,
// or answers `deadline_exceeded`/`busy`/`draining`, the check runs
// in-process through the same response builder (service/CheckRunner.h),
// against the same cache directory — the output bytes are identical
// either way. `--no-fallback` turns this off for scripts that must know
// the daemon served them.
//
//   acc --socket /tmp/acd.sock file.c
//   acc --socket /tmp/acd.sock --corpus swap --golden
//   acc --socket /tmp/acd.sock --stats
//
//===----------------------------------------------------------------------===//

#include "corpus/Sources.h"
#include "corpus/Synthetic.h"
#include "heapabs/HeapAbs.h"
#include "hol/Thm.h"
#include "wordabs/WordAbs.h"
#include "service/CheckRunner.h"
#include "service/Client.h"
#include "support/Log.h"
#include "support/RuleProfile.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace ac::service;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [file.c | -]\n"
      "  --socket PATH     daemon socket (default: acd.sock)\n"
      "  --router H:P      send to an acrouter fleet front-end over TCP\n"
      "                    instead of a local daemon socket\n"
      "  --auth-token-file F present the shared token in F when dialing\n"
      "                    a --router (or any TCP) endpoint\n"
      "  --corpus NAME     use an embedded source instead of a file:\n"
      "                    max gcd swap midpoint binary_search suzuki\n"
      "                    memset reverse schorr_waite, or a synthetic\n"
      "                    scale: sel4 capdl piccolo echronos\n"
      "  --golden          print the golden-snapshot format (byte-\n"
      "                    compatible with tests/golden/*.expected)\n"
      "  --specs           request and print per-phase specs\n"
      "  --no-heap-abs F   keep F on the byte-level heap (repeatable)\n"
      "  --no-word-abs F   keep F on machine words (repeatable)\n"
      "  --jobs N          abstraction jobs for this request\n"
      "  --cache-dir DIR   cache tier for this request\n"
      "  --timeout-ms N    per-request deadline enforced by the daemon\n"
      "  --priority P      interactive|bulk admission class (default:\n"
      "                    interactive; bulk is shed first on overload)\n"
      "  --tenant NAME     tenant label for per-tenant admission quotas\n"
      "  --debug-delay-ms N  ask the daemon to hold the request (tests)\n"
      "  --no-fallback     fail instead of degrading to an in-process\n"
      "                    run when the daemon cannot serve the check\n"
      "  --trace FILE      run in-process and write a Chrome trace\n"
      "                    (chrome://tracing / Perfetto) to FILE\n"
      "  --cert FILE       run in-process and write a proof certificate\n"
      "                    claiming every pipeline theorem to FILE\n"
      "                    (check it with `acpc FILE`)\n"
      "  --cert-dir DIR    run in-process and write one certificate per\n"
      "                    function to DIR/<fingerprint>.acpc\n"
      "  --rule-profile    run in-process and print the per-rule\n"
      "                    fire/miss/self-time table\n"
      "  --trace-id ID     correlation id sent with the request\n"
      "  --log-file PATH   append structured JSONL log lines to PATH\n"
      "  --stats           print daemon stats JSON and exit\n"
      "  --metrics         print daemon metrics in Prometheus text\n"
      "                    exposition format and exit\n"
      "  --ping            liveness probe (exit 0 iff alive)\n"
      "  --drain           ask the daemon to drain and exit\n",
      Argv0);
}

std::string corpusSource(const std::string &Name, bool &Ok) {
  using namespace ac::corpus;
  Ok = true;
  if (Name == "max")
    return maxSource();
  if (Name == "gcd")
    return gcdSource();
  if (Name == "swap")
    return swapSource();
  if (Name == "midpoint")
    return midpointSource();
  if (Name == "binary_search")
    return binarySearchSource();
  if (Name == "suzuki")
    return suzukiSource();
  if (Name == "memset")
    return memsetSource();
  if (Name == "reverse")
    return reverseSource();
  if (Name == "schorr_waite")
    return schorrWaiteSource();
  if (Name == "sel4")
    return generateSyntheticProgram(sel4Scale());
  if (Name == "capdl")
    return generateSyntheticProgram(capdlScale());
  if (Name == "piccolo")
    return generateSyntheticProgram(piccoloScale());
  if (Name == "echronos")
    return generateSyntheticProgram(echronosScale());
  Ok = false;
  return "";
}

/// Reproduces GoldenSpecTest's snapshot() byte-for-byte from a response.
std::string goldenSnapshot(const CheckResponse &Resp) {
  std::ostringstream OS;
  for (const FuncResult &F : Resp.Functions) {
    OS << "== function: " << F.Name << "\n";
    OS << "final: " << F.FinalKey << "\n";
    OS << "-- spec\n" << F.Render << "\n";
    OS << "-- theorem\n" << F.Pipeline << "\n";
  }
  OS << "== diagnostics\n";
  for (const std::string &D : Resp.Diagnostics)
    OS << D << "\n";
  return OS.str();
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath = "acd.sock";
  std::string RouterAddr, AuthToken;
  std::string File, Corpus, TracePath, CertPath, CertDir;
  bool Golden = false, Stats = false, Ping = false, Drain = false;
  bool NoFallback = false, Metrics = false, RuleProfile = false;
  CheckRequest Req;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--socket") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      SocketPath = V;
    } else if (Arg == "--router") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      RouterAddr = V;
    } else if (Arg == "--auth-token-file") {
      const char *V = Next();
      if (!V || !readTokenFile(V, AuthToken)) {
        std::fprintf(stderr, "acc: cannot read auth token file\n");
        return 2;
      }
    } else if (Arg == "--corpus") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Corpus = V;
    } else if (Arg == "--golden") {
      Golden = true;
    } else if (Arg == "--specs") {
      Req.WantSpecs = true;
    } else if (Arg == "--no-heap-abs") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.NoHeapAbs.push_back(V);
    } else if (Arg == "--no-word-abs") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.NoWordAbs.push_back(V);
    } else if (Arg == "--jobs") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.Jobs = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--cache-dir") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.CacheDir = V;
    } else if (Arg == "--timeout-ms") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.TimeoutMs = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--priority") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      if (std::strcmp(V, "interactive") == 0) {
        Req.Prio = Priority::Interactive;
      } else if (std::strcmp(V, "bulk") == 0) {
        Req.Prio = Priority::Bulk;
      } else {
        std::fprintf(stderr, "acc: bad --priority `%s`\n", V);
        return 2;
      }
    } else if (Arg == "--tenant") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.Tenant = V;
    } else if (Arg == "--debug-delay-ms") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.DebugDelayMs = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--no-fallback") {
      NoFallback = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--metrics") {
      Metrics = true;
    } else if (Arg == "--rule-profile") {
      RuleProfile = true;
    } else if (Arg == "--trace") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      TracePath = V;
    } else if (Arg == "--cert") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      CertPath = V;
    } else if (Arg == "--cert-dir") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      CertDir = V;
    } else if (Arg == "--trace-id") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]), 2;
      Req.TraceId = V;
    } else if (Arg == "--log-file") {
      const char *V = Next();
      if (!V || !ac::support::Log::setFile(V)) {
        std::fprintf(stderr, "acc: cannot open log file\n");
        return 2;
      }
    } else if (Arg == "--ping") {
      Ping = true;
    } else if (Arg == "--drain") {
      Drain = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "acc: bad argument `%s`\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      File = Arg;
    }
  }

  std::string Err;

  // One dial path for both transports: --router (TCP, optionally
  // authenticated) or the default Unix daemon socket.
  const std::string &Endpoint = RouterAddr.empty() ? SocketPath : RouterAddr;
  auto dial = [&](std::string &DialErr) {
    return RouterAddr.empty()
               ? Client::connect(SocketPath)
               : Client::connectTcp(RouterAddr, AuthToken, DialErr);
  };

  // Admin ops address a specific daemon; there is nothing to degrade to.
  if (Ping || Stats || Metrics || Drain) {
    Client C = dial(Err);
    if (!C.connected()) {
      std::fprintf(stderr, "acc: cannot connect to %s (%s)\n",
                   Endpoint.c_str(),
                   Err.empty() ? "is the daemon running?" : Err.c_str());
      return 1;
    }
    if (Ping) {
      if (!C.ping(Err)) {
        std::fprintf(stderr, "acc: ping failed: %s\n", Err.c_str());
        return 1;
      }
      std::printf("pong\n");
      return 0;
    }
    if (Stats) {
      ac::support::Json J;
      if (!C.stats(J, Err)) {
        std::fprintf(stderr, "acc: stats failed: %s\n", Err.c_str());
        return 1;
      }
      std::printf("%s\n", J.dump().c_str());
      return 0;
    }
    if (Metrics) {
      std::string Text;
      if (!C.metricsText(Text, Err)) {
        std::fprintf(stderr, "acc: metrics failed: %s\n", Err.c_str());
        return 1;
      }
      std::fputs(Text.c_str(), stdout);
      return 0;
    }
    if (!C.drain(Err)) {
      std::fprintf(stderr, "acc: drain failed: %s\n", Err.c_str());
      return 1;
    }
    std::printf("draining\n");
    return 0;
  }

  if (!Corpus.empty()) {
    bool Ok = false;
    Req.Source = corpusSource(Corpus, Ok);
    if (!Ok) {
      std::fprintf(stderr, "acc: unknown corpus `%s`\n", Corpus.c_str());
      return 2;
    }
  } else if (File == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Req.Source = Buf.str();
  } else if (!File.empty()) {
    std::ifstream In(File, std::ios::binary);
    if (!In.good()) {
      std::fprintf(stderr, "acc: cannot read %s\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Req.Source = Buf.str();
  } else {
    usage(argv[0]);
    return 2;
  }

  CheckResponse Resp;
  bool UsedFallback = false;
  if (!TracePath.empty() || !CertPath.empty() || !CertDir.empty() ||
      RuleProfile) {
    // Tracing, certificate export, and rule profiling observe *this*
    // process's pipeline (a certificate records the local kernel's
    // derivations), so these modes always run in-process. Daemon-side
    // certificates go through `acd --cert-dir`.
    if (RuleProfile)
      ac::support::RuleProfile::setEnabled(true);
    CheckContext Ctx;
    Ctx.Jobs = Req.Jobs;
    Ctx.TracePath = TracePath;
    Ctx.CertPath = CertPath;
    Ctx.CertDir = CertDir;
    Resp = runCheck(Req, Ctx);
    UsedFallback = true;
  } else if (NoFallback) {
    Client C = dial(Err);
    if (!C.connected()) {
      std::fprintf(stderr, "acc: cannot connect to %s (%s)\n",
                   Endpoint.c_str(),
                   Err.empty() ? "is the daemon running?" : Err.c_str());
      return 1;
    }
    if (!C.checkRetry(Req, Resp, Err)) {
      std::fprintf(stderr, "acc: request failed: %s\n", Err.c_str());
      return 1;
    }
  } else if (!RouterAddr.empty()) {
    // Router path with graceful degradation: the router already degrades
    // shard-by-shard; this covers the router itself being unreachable.
    Client C = dial(Err);
    if (C.connected() && C.checkRetry(Req, Resp, Err)) {
      // served by the fleet
    } else {
      Resp = runLocalCheck(Req);
      UsedFallback = true;
      std::fprintf(stderr, "acc: router %s unreachable (%s); ran in-process\n",
                   RouterAddr.c_str(), Err.c_str());
    }
  } else {
    std::string Note;
    Resp = checkWithFallback(SocketPath, Req, UsedFallback, Note);
    if (UsedFallback)
      std::fprintf(stderr, "acc: %s\n", Note.c_str());
  }
  if (!Resp.Ok) {
    std::fprintf(stderr, "acc: check failed: %s (%s)\n",
                 errorCodeName(Resp.Err), Resp.Message.c_str());
    for (const std::string &D : Resp.Diagnostics)
      std::fprintf(stderr, "  %s\n", D.c_str());
    return 1;
  }

  if (Golden) {
    std::fputs(goldenSnapshot(Resp).c_str(), stdout);
    return 0;
  }

  for (const FuncResult &F : Resp.Functions) {
    std::printf("---- %s ----\n", F.Name.c_str());
    std::printf("final: %s (heap-lifted: %s, word-abstracted: %s)\n",
                F.FinalKey.c_str(), F.HeapLifted ? "yes" : "no",
                F.WordAbstracted ? "yes" : "no");
    std::printf("%s\n", F.Render.c_str());
    if (Req.WantSpecs) {
      if (!F.L1Spec.empty())
        std::printf("-- L1\n%s\n", F.L1Spec.c_str());
      if (!F.L2Spec.empty())
        std::printf("-- L2\n%s\n", F.L2Spec.c_str());
      if (!F.HLSpec.empty())
        std::printf("-- HL\n%s\n", F.HLSpec.c_str());
      if (!F.WASpec.empty())
        std::printf("-- WA\n%s\n", F.WASpec.c_str());
    }
  }
  for (const std::string &D : Resp.Diagnostics)
    std::printf("note: %s\n", D.c_str());
  std::printf("[%s] functions=%u jobs=%u parse=%.3fs abstract=%.3fs "
              "cache(hits=%u misses=%u invalidations=%u)%s%s\n",
              UsedFallback ? "local" : "acd", Resp.NumFunctions, Resp.Jobs,
              Resp.ParseSeconds, Resp.AbstractWallSeconds, Resp.CacheHits,
              Resp.CacheMisses, Resp.CacheInvalidations,
              Resp.TraceId.empty() ? "" : " trace_id=",
              Resp.TraceId.c_str());
  if (!CertPath.empty() || !CertDir.empty())
    std::printf("certs: written=%u claims=%u skipped=%u\n",
                Resp.CertsWritten, Resp.CertClaims, Resp.CertSkipped);
  if (RuleProfile) {
    // Zero-fire rules still show up: the standard families are filled
    // in and every registered WA./HL. axiom gets a row, so "this rule
    // never fired on this input" is visible.
    ac::wordabs::WordAbstraction::registerStandardRules();
    ac::heapabs::HeapAbstraction::registerStandardRules();
    for (const auto &[N, P] : ac::hol::Inventory::instance().axioms())
      if (N.rfind("WA.", 0) == 0 || N.rfind("HL.", 0) == 0)
        ac::support::RuleProfile::preregister(N);
    std::fputs(ac::support::RuleProfile::table().c_str(), stdout);
  }
  return 0;
}
