//===- acpc_check.h - Standalone proof-certificate checker ------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The independent checker for `.acpc` proof certificates (hol/Cert.h
/// documents the format; DESIGN.md documents the trust argument). This
/// header is deliberately self-contained: it includes nothing from src/,
/// re-states the term language and the kernel's seventeen side conditions
/// in a few hundred lines, and is what `tools/acpc.cpp` links — so the
/// trusted base of a checked certificate is this file plus the audited
/// axiom/oracle leaves it reports, not the parser, the simplifier, or the
/// abstraction engines.
///
/// Checking is streaming with bounded derivation memory: a light first
/// pass counts premise references per derivation id, the second pass
/// re-derives every conclusion in file (= topological) order and frees a
/// conclusion as soon as its last reference is consumed. The parser is
/// strict — dense sequential ids (duplicates and forward references are
/// structurally impossible to accept), exact token shapes, a mandatory
/// trailer with record counts — and total: malformed input of any shape
/// produces a clean rejection with the offending line, never a crash or
/// an over-read. Work bombs (deep nesting, exponential beta chains) are
/// cut off by a depth cap and a node budget, again as clean rejections.
///
//===----------------------------------------------------------------------===//

#ifndef AC_TOOLS_ACPC_CHECK_H
#define AC_TOOLS_ACPC_CHECK_H

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace acpc {

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

struct Options {
  /// Maximum depth of any term parsed from the file; terms the rules
  /// construct may reach twice this. Bounds native recursion.
  uint64_t MaxDepth = 20000;
  /// Maximum number of term/type nodes the checker will allocate while
  /// re-deriving conclusions (betaNorm of adversarial input can try to
  /// explode; this turns the bomb into a rejection).
  uint64_t NodeBudget = 1u << 25;
};

struct Result {
  bool Ok = false;
  size_t Line = 0;    ///< 1-based line of the first offending record.
  std::string Error;  ///< Empty iff Ok.
  uint64_t Types = 0, Terms = 0, Derivs = 0, ClaimCount = 0;
  /// Metadata records, in file order.
  std::vector<std::pair<std::string, std::string>> Meta;
  /// (name, proposition fingerprint) per validated claim, in file order.
  std::vector<std::pair<std::string, std::string>> Claims;
  /// The trusted base: every axiom leaf as (name, canonical hash) and
  /// every oracle leaf by name, deduplicated, in first-use order.
  std::vector<std::pair<std::string, std::string>> AxiomLeaves;
  std::vector<std::string> OracleLeaves;
};

inline Result check(const std::string &Text, const Options &O = Options());

//===----------------------------------------------------------------------===//
// Implementation
//===----------------------------------------------------------------------===//

namespace detail {

//===--- Types -----------------------------------------------------------===//

struct CTy;
using CTyRef = std::shared_ptr<const CTy>;

struct CTy {
  bool IsVar;
  std::string Name;
  std::vector<CTyRef> Args;
  bool HasVar;
};

inline CTyRef tyVar(const std::string &N) {
  auto T = std::make_shared<CTy>();
  T->IsVar = true;
  T->Name = N;
  T->HasVar = true;
  return T;
}

inline CTyRef tyCon(const std::string &N, std::vector<CTyRef> Args = {}) {
  auto T = std::make_shared<CTy>();
  T->IsVar = false;
  T->Name = N;
  T->HasVar = false;
  for (const CTyRef &A : Args)
    T->HasVar = T->HasVar || A->HasVar;
  T->Args = std::move(Args);
  return T;
}

inline bool typeEq(const CTyRef &A, const CTyRef &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->IsVar != B->IsVar || A->Name != B->Name ||
      A->Args.size() != B->Args.size())
    return false;
  for (size_t I = 0; I != A->Args.size(); ++I)
    if (!typeEq(A->Args[I], B->Args[I]))
      return false;
  return true;
}

inline CTyRef boolTy() { return tyCon("bool"); }
inline CTyRef funTy(CTyRef D, CTyRef R) {
  return tyCon("fun", {std::move(D), std::move(R)});
}
inline bool isFunTy(const CTyRef &T) {
  return T && !T->IsVar && T->Name == "fun" && T->Args.size() == 2;
}

//===--- Terms -----------------------------------------------------------===//

struct CTm;
using CTmRef = std::shared_ptr<const CTm>;

struct CTm {
  enum Kind { Const, Free, Var, Bound, Lam, App, Num } K;
  std::string Name;
  CTyRef Ty;
  uint64_t Index = 0;
  __int128 Value = 0;
  CTmRef A, B; ///< App fun/arg; Lam body in A.
  uint64_t Size = 1, Depth = 1;
  uint64_t MaxLoose = 0;
  bool Schematic = false, HasTyVar = false, BetaNormal = true;
  /// Lazily cached type of a closed term (single-threaded checker).
  mutable CTyRef CachedTy;
};

/// Allocation context: enforces the node budget and the depth cap. Every
/// constructor returns null once a limit trips; Error holds the reason.
struct Ctx {
  Options O;
  uint64_t Built = 0;
  std::string Error;

  bool spend() {
    if (!Error.empty())
      return false;
    if (++Built > O.NodeBudget) {
      Error = "node budget exceeded (adversarial work bomb?)";
      return false;
    }
    return true;
  }
  bool depthOk(uint64_t D) {
    if (!Error.empty())
      return false;
    if (D > 2 * O.MaxDepth) {
      Error = "constructed term exceeds depth cap";
      return false;
    }
    return true;
  }
};

inline uint64_t satAdd(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? ~0ULL : S;
}

inline CTmRef mkConst(Ctx &C, const std::string &N, CTyRef Ty) {
  if (!C.spend() || !Ty)
    return nullptr;
  auto T = std::make_shared<CTm>();
  T->K = CTm::Const;
  T->Name = N;
  T->HasTyVar = Ty->HasVar;
  T->Ty = std::move(Ty);
  return T;
}

inline CTmRef mkFree(Ctx &C, const std::string &N, CTyRef Ty) {
  if (!C.spend() || !Ty)
    return nullptr;
  auto T = std::make_shared<CTm>();
  T->K = CTm::Free;
  T->Name = N;
  T->HasTyVar = Ty->HasVar;
  T->Ty = std::move(Ty);
  return T;
}

inline CTmRef mkVar(Ctx &C, const std::string &N, uint64_t Index, CTyRef Ty) {
  if (!C.spend() || !Ty)
    return nullptr;
  auto T = std::make_shared<CTm>();
  T->K = CTm::Var;
  T->Name = N;
  T->Index = Index;
  T->Schematic = true;
  T->HasTyVar = Ty->HasVar;
  T->Ty = std::move(Ty);
  return T;
}

inline CTmRef mkBound(Ctx &C, uint64_t Index) {
  if (!C.spend())
    return nullptr;
  auto T = std::make_shared<CTm>();
  T->K = CTm::Bound;
  T->Index = Index;
  T->MaxLoose = satAdd(Index, 1);
  return T;
}

inline CTmRef mkNum(Ctx &C, __int128 V, CTyRef Ty) {
  if (!C.spend() || !Ty)
    return nullptr;
  auto T = std::make_shared<CTm>();
  T->K = CTm::Num;
  T->Value = V;
  T->HasTyVar = Ty->HasVar;
  T->Ty = std::move(Ty);
  return T;
}

/// `Pair a b` destructor and the root-redex test, mirrored from the
/// kernel (Term.cpp) so the BetaNormal flag means the same thing.
inline bool destPairApp(const CTmRef &T, CTmRef &A, CTmRef &B) {
  if (!T || T->K != CTm::App || !T->A || T->A->K != CTm::App)
    return false;
  const CTmRef &H = T->A->A;
  if (!H || H->K != CTm::Const || H->Name != "Pair")
    return false;
  A = T->A->B;
  B = T->B;
  return true;
}

inline bool isRootRedex(const CTmRef &F, const CTmRef &X) {
  if (F->K == CTm::Lam)
    return true;
  if (F->K == CTm::Const && (F->Name == "fst" || F->Name == "snd")) {
    CTmRef A, B;
    if (destPairApp(X, A, B))
      return true;
  }
  return false;
}

inline CTmRef mkLam(Ctx &C, const std::string &N, CTyRef Ty, CTmRef Body) {
  if (!C.spend() || !Ty || !Body)
    return nullptr;
  auto T = std::make_shared<CTm>();
  T->K = CTm::Lam;
  T->Name = N;
  T->Size = satAdd(1, Body->Size);
  T->Depth = 1 + Body->Depth;
  T->MaxLoose = Body->MaxLoose > 0 ? Body->MaxLoose - 1 : 0;
  T->Schematic = Body->Schematic;
  T->HasTyVar = Ty->HasVar || Body->HasTyVar;
  T->BetaNormal = Body->BetaNormal;
  T->Ty = std::move(Ty);
  T->A = std::move(Body);
  if (!C.depthOk(T->Depth))
    return nullptr;
  return T;
}

inline CTmRef mkApp(Ctx &C, CTmRef F, CTmRef X) {
  if (!C.spend() || !F || !X)
    return nullptr;
  auto T = std::make_shared<CTm>();
  T->K = CTm::App;
  T->Size = satAdd(1, satAdd(F->Size, X->Size));
  T->Depth = 1 + (F->Depth > X->Depth ? F->Depth : X->Depth);
  T->MaxLoose = F->MaxLoose > X->MaxLoose ? F->MaxLoose : X->MaxLoose;
  T->Schematic = F->Schematic || X->Schematic;
  T->HasTyVar = F->HasTyVar || X->HasTyVar;
  T->BetaNormal = F->BetaNormal && X->BetaNormal && !isRootRedex(F, X);
  T->A = std::move(F);
  T->B = std::move(X);
  if (!C.depthOk(T->Depth))
    return nullptr;
  return T;
}

/// Alpha-equality, mirroring the kernel's termEq: Free compared by name
/// only, Var by name+index, Lam display names ignored but binder types
/// compared, Const/Num compare types. Iterative with a proven-pair memo
/// so shared-subterm DAGs compare in polynomial time.
inline bool termEq(const CTmRef &A0, const CTmRef &B0) {
  if (A0.get() == B0.get())
    return true;
  if (!A0 || !B0)
    return false;
  std::vector<std::pair<const CTm *, const CTm *>> St;
  std::set<std::pair<const CTm *, const CTm *>> Seen;
  St.emplace_back(A0.get(), B0.get());
  while (!St.empty()) {
    auto [A, B] = St.back();
    St.pop_back();
    if (A == B || !Seen.insert({A, B}).second)
      continue;
    if (A->K != B->K || A->Size != B->Size)
      return false;
    switch (A->K) {
    case CTm::Const:
      if (A->Name != B->Name || !typeEq(A->Ty, B->Ty))
        return false;
      break;
    case CTm::Free:
      if (A->Name != B->Name)
        return false;
      break;
    case CTm::Var:
      if (A->Name != B->Name || A->Index != B->Index)
        return false;
      break;
    case CTm::Bound:
      if (A->Index != B->Index)
        return false;
      break;
    case CTm::Num:
      if (A->Value != B->Value || !typeEq(A->Ty, B->Ty))
        return false;
      break;
    case CTm::Lam:
      if (!typeEq(A->Ty, B->Ty))
        return false;
      St.emplace_back(A->A.get(), B->A.get());
      break;
    case CTm::App:
      St.emplace_back(A->A.get(), B->A.get());
      St.emplace_back(A->B.get(), B->B.get());
      break;
    }
  }
  return true;
}

//===--- Term operations (mirrors of Term.cpp) ---------------------------===//

inline CTyRef typeOf(Ctx &C, const CTmRef &T, std::vector<CTyRef> &Env) {
  if (!T)
    return nullptr;
  switch (T->K) {
  case CTm::Const:
  case CTm::Free:
  case CTm::Var:
  case CTm::Num:
    return T->Ty;
  case CTm::Bound:
    if (T->Index >= Env.size())
      return nullptr; // loose bound variable: ill-typed here
    return Env[Env.size() - 1 - T->Index];
  case CTm::Lam: {
    if (T->MaxLoose == 0 && T->CachedTy)
      return T->CachedTy;
    Env.push_back(T->Ty);
    CTyRef BodyTy = typeOf(C, T->A, Env);
    Env.pop_back();
    if (!BodyTy)
      return nullptr;
    CTyRef R = funTy(T->Ty, BodyTy);
    if (T->MaxLoose == 0)
      T->CachedTy = R;
    return R;
  }
  case CTm::App: {
    if (T->MaxLoose == 0 && T->CachedTy)
      return T->CachedTy;
    CTyRef FTy = typeOf(C, T->A, Env);
    if (!isFunTy(FTy))
      return nullptr; // application of non-function
    CTyRef R = FTy->Args[1];
    if (T->MaxLoose == 0)
      T->CachedTy = R;
    return R;
  }
  }
  return nullptr;
}

inline CTyRef typeOf(Ctx &C, const CTmRef &T) {
  std::vector<CTyRef> Env;
  return typeOf(C, T, Env);
}

inline CTmRef liftLoose(Ctx &C, const CTmRef &T, uint64_t Inc,
                        uint64_t Cutoff = 0) {
  if (!T)
    return nullptr;
  if (Inc == 0 || T->MaxLoose <= Cutoff)
    return T;
  switch (T->K) {
  case CTm::Bound:
    return mkBound(C, satAdd(T->Index, Inc));
  case CTm::Lam:
    return mkLam(C, T->Name, T->Ty, liftLoose(C, T->A, Inc, Cutoff + 1));
  case CTm::App:
    return mkApp(C, liftLoose(C, T->A, Inc, Cutoff),
                 liftLoose(C, T->B, Inc, Cutoff));
  default:
    return T;
  }
}

inline CTmRef substBound(Ctx &C, const CTmRef &Body, const CTmRef &Arg,
                         uint64_t Depth = 0) {
  if (!Body || !Arg)
    return nullptr;
  if (Body->MaxLoose <= Depth)
    return Body;
  switch (Body->K) {
  case CTm::Bound:
    if (Body->Index == Depth)
      return liftLoose(C, Arg, Depth);
    if (Body->Index > Depth)
      return mkBound(C, Body->Index - 1);
    return Body;
  case CTm::Lam:
    return mkLam(C, Body->Name, Body->Ty,
                 substBound(C, Body->A, Arg, Depth + 1));
  case CTm::App:
    return mkApp(C, substBound(C, Body->A, Arg, Depth),
                 substBound(C, Body->B, Arg, Depth));
  default:
    return Body;
  }
}

inline CTmRef betaNorm(Ctx &C, const CTmRef &T) {
  if (!T || !C.Error.empty())
    return nullptr;
  if (T->BetaNormal)
    return T;
  switch (T->K) {
  case CTm::App: {
    CTmRef F = betaNorm(C, T->A);
    CTmRef X = betaNorm(C, T->B);
    if (!F || !X)
      return nullptr;
    if (F->K == CTm::Lam)
      return betaNorm(C, substBound(C, F->A, X));
    if (F->K == CTm::Const && (F->Name == "fst" || F->Name == "snd")) {
      CTmRef A, B;
      if (destPairApp(X, A, B))
        return F->Name == "fst" ? A : B;
    }
    if (F.get() == T->A.get() && X.get() == T->B.get())
      return T;
    return mkApp(C, std::move(F), std::move(X));
  }
  case CTm::Lam: {
    CTmRef B = betaNorm(C, T->A);
    if (!B)
      return nullptr;
    if (B.get() == T->A.get())
      return T;
    return mkLam(C, T->Name, T->Ty, std::move(B));
  }
  default:
    return T;
  }
}

inline CTmRef abstractFree(Ctx &C, const CTmRef &T, const std::string &Name,
                           uint64_t Depth) {
  if (!T)
    return nullptr;
  switch (T->K) {
  case CTm::Free:
    if (T->Name == Name)
      return mkBound(C, Depth);
    return T;
  case CTm::Bound:
    if (T->Index >= Depth)
      return mkBound(C, satAdd(T->Index, 1));
    return T;
  case CTm::Lam:
    return mkLam(C, T->Name, T->Ty, abstractFree(C, T->A, Name, Depth + 1));
  case CTm::App:
    return mkApp(C, abstractFree(C, T->A, Name, Depth),
                 abstractFree(C, T->B, Name, Depth));
  default:
    return T;
  }
}

inline CTmRef lambdaFree(Ctx &C, const std::string &Name, CTyRef Ty,
                         const CTmRef &T) {
  return mkLam(C, Name, std::move(Ty), abstractFree(C, T, Name, 0));
}

//===--- Logical builders (mirrors of Builder.cpp recipes) ---------------===//

inline CTmRef mkTrue(Ctx &C) { return mkConst(C, "True", boolTy()); }

inline CTmRef boolBinop(Ctx &C, const char *Name, CTmRef A, CTmRef B) {
  CTmRef K = mkConst(C, Name, funTy(boolTy(), funTy(boolTy(), boolTy())));
  return mkApp(C, mkApp(C, std::move(K), std::move(A)), std::move(B));
}

inline CTmRef mkImp(Ctx &C, CTmRef A, CTmRef B) {
  return boolBinop(C, "implies", std::move(A), std::move(B));
}
inline CTmRef mkConj(Ctx &C, CTmRef A, CTmRef B) {
  return boolBinop(C, "conj", std::move(A), std::move(B));
}

inline CTmRef mkEq(Ctx &C, CTmRef A, CTmRef B) {
  CTyRef Ty = typeOf(C, A);
  if (!Ty)
    return nullptr;
  CTmRef K = mkConst(C, "eq", funTy(Ty, funTy(Ty, boolTy())));
  return mkApp(C, mkApp(C, std::move(K), std::move(A)), std::move(B));
}

inline CTmRef mkAllLam(Ctx &C, CTmRef Lam) {
  CTyRef LamTy = typeOf(C, Lam);
  if (!LamTy)
    return nullptr;
  CTmRef K = mkConst(C, "All", funTy(LamTy, boolTy()));
  return mkApp(C, std::move(K), std::move(Lam));
}

/// Strips `h a1 .. an` with constant head \p Name and exactly \p Arity
/// arguments (the kernel's destConstApp, names compared, types not).
inline bool destConstApp(const CTmRef &T, const char *Name, unsigned Arity,
                         std::vector<CTmRef> &Args) {
  Args.clear();
  CTmRef H = T;
  while (H && H->K == CTm::App) {
    Args.push_back(H->B);
    H = H->A;
  }
  if (!H || H->K != CTm::Const || H->Name != Name || Args.size() != Arity)
    return false;
  std::vector<CTmRef> Rev(Args.rbegin(), Args.rend());
  Args = std::move(Rev);
  return true;
}

inline bool destImp(const CTmRef &T, CTmRef &A, CTmRef &B) {
  std::vector<CTmRef> Args;
  if (!destConstApp(T, "implies", 2, Args))
    return false;
  A = Args[0];
  B = Args[1];
  return true;
}
inline bool destEq(const CTmRef &T, CTmRef &L, CTmRef &R) {
  std::vector<CTmRef> Args;
  if (!destConstApp(T, "eq", 2, Args))
    return false;
  L = Args[0];
  R = Args[1];
  return true;
}
inline bool destConj(const CTmRef &T, CTmRef &L, CTmRef &R) {
  std::vector<CTmRef> Args;
  if (!destConstApp(T, "conj", 2, Args))
    return false;
  L = Args[0];
  R = Args[1];
  return true;
}
inline bool destAll(const CTmRef &T, CTmRef &Lam) {
  std::vector<CTmRef> Args;
  if (!destConstApp(T, "All", 1, Args))
    return false;
  Lam = Args[0];
  return true;
}

//===--- Substitution replay (mirror of Unify.cpp) -----------------------===//

struct CSubst {
  std::map<std::string, CTyRef> TyMap;
  std::map<std::pair<std::string, uint64_t>, CTmRef> TmMap;
};

/// applyTy with a chase-depth guard: the wire can encode binding cycles
/// the producer's occurs checks make impossible, so unbounded chasing
/// would loop. Exceeding the guard poisons the context.
inline CTyRef applyTy(Ctx &C, const CSubst &S, const CTyRef &T,
                      uint64_t Depth) {
  if (!T || !C.Error.empty())
    return nullptr;
  if (Depth > C.O.MaxDepth) {
    C.Error = "substitution chase exceeds depth cap (binding cycle?)";
    return nullptr;
  }
  if (!T->HasVar)
    return T;
  if (T->IsVar) {
    auto It = S.TyMap.find(T->Name);
    if (It == S.TyMap.end())
      return T;
    return applyTy(C, S, It->second, Depth + 1);
  }
  std::vector<CTyRef> Args;
  bool Changed = false;
  Args.reserve(T->Args.size());
  for (const CTyRef &A : T->Args) {
    CTyRef A2 = applyTy(C, S, A, Depth + 1);
    if (!A2)
      return nullptr;
    Changed = Changed || A2.get() != A.get();
    Args.push_back(std::move(A2));
  }
  if (!Changed)
    return T;
  return tyCon(T->Name, std::move(Args));
}

inline CTmRef applyRaw(Ctx &C, const CSubst &S, const CTmRef &T,
                       uint64_t Depth) {
  if (!T || !C.Error.empty())
    return nullptr;
  if (Depth > 2 * C.O.MaxDepth) {
    C.Error = "substitution exceeds depth cap (binding cycle?)";
    return nullptr;
  }
  if (!T->Schematic && !T->HasTyVar)
    return T;
  switch (T->K) {
  case CTm::Const: {
    CTyRef Ty = applyTy(C, S, T->Ty, 0);
    if (!Ty)
      return nullptr;
    if (Ty.get() == T->Ty.get())
      return T;
    return mkConst(C, T->Name, std::move(Ty));
  }
  case CTm::Free: {
    CTyRef Ty = applyTy(C, S, T->Ty, 0);
    if (!Ty)
      return nullptr;
    if (Ty.get() == T->Ty.get())
      return T;
    return mkFree(C, T->Name, std::move(Ty));
  }
  case CTm::Num: {
    CTyRef Ty = applyTy(C, S, T->Ty, 0);
    if (!Ty)
      return nullptr;
    if (Ty.get() == T->Ty.get())
      return T;
    return mkNum(C, T->Value, std::move(Ty));
  }
  case CTm::Var: {
    auto It = S.TmMap.find({T->Name, T->Index});
    if (It != S.TmMap.end())
      return applyRaw(C, S, It->second, Depth + 1);
    CTyRef Ty = applyTy(C, S, T->Ty, 0);
    if (!Ty)
      return nullptr;
    if (Ty.get() == T->Ty.get())
      return T;
    return mkVar(C, T->Name, T->Index, std::move(Ty));
  }
  case CTm::Bound:
    return T;
  case CTm::Lam: {
    CTyRef Ty = applyTy(C, S, T->Ty, 0);
    CTmRef B = applyRaw(C, S, T->A, Depth + 1);
    if (!Ty || !B)
      return nullptr;
    if (Ty.get() == T->Ty.get() && B.get() == T->A.get())
      return T;
    return mkLam(C, T->Name, std::move(Ty), std::move(B));
  }
  case CTm::App: {
    CTmRef F = applyRaw(C, S, T->A, Depth + 1);
    CTmRef X = applyRaw(C, S, T->B, Depth + 1);
    if (!F || !X)
      return nullptr;
    if (F.get() == T->A.get() && X.get() == T->B.get())
      return T;
    return mkApp(C, std::move(F), std::move(X));
  }
  }
  return nullptr;
}

inline CTmRef applySubst(Ctx &C, const CSubst &S, const CTmRef &T) {
  return betaNorm(C, applyRaw(C, S, T, 0));
}

//===--- Canonical fingerprints (mirror of Cert.cpp) ---------------------===//

inline void fpByte(uint64_t &H, uint8_t B) {
  H ^= B;
  H *= 1099511628211ULL;
}
inline void fpU64(uint64_t &H, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    fpByte(H, static_cast<uint8_t>(V >> (8 * I)));
}
inline void fpStr(uint64_t &H, const std::string &S) {
  fpU64(H, S.size());
  for (char Ch : S)
    fpByte(H, static_cast<uint8_t>(Ch));
}

inline uint64_t typeFingerprint(const CTyRef &T) {
  uint64_t H = 1469598103934665603ULL;
  if (T->IsVar) {
    fpByte(H, 0x01);
    fpStr(H, T->Name);
    return H;
  }
  fpByte(H, 0x02);
  fpStr(H, T->Name);
  fpU64(H, T->Args.size());
  for (const CTyRef &A : T->Args)
    fpU64(H, typeFingerprint(A));
  return H;
}

inline uint64_t termFingerprint(const CTmRef &T) {
  uint64_t H = 1469598103934665603ULL;
  switch (T->K) {
  case CTm::Const:
    fpByte(H, 0x11);
    fpStr(H, T->Name);
    fpU64(H, typeFingerprint(T->Ty));
    break;
  case CTm::Free:
    fpByte(H, 0x12);
    fpStr(H, T->Name);
    fpU64(H, typeFingerprint(T->Ty));
    break;
  case CTm::Var:
    fpByte(H, 0x13);
    fpStr(H, T->Name);
    fpU64(H, T->Index);
    fpU64(H, typeFingerprint(T->Ty));
    break;
  case CTm::Bound:
    fpByte(H, 0x14);
    fpU64(H, T->Index);
    break;
  case CTm::Lam:
    fpByte(H, 0x15);
    fpStr(H, T->Name);
    fpU64(H, typeFingerprint(T->Ty));
    fpU64(H, termFingerprint(T->A));
    break;
  case CTm::App:
    fpByte(H, 0x16);
    fpU64(H, termFingerprint(T->A));
    fpU64(H, termFingerprint(T->B));
    break;
  case CTm::Num: {
    fpByte(H, 0x17);
    auto V = static_cast<unsigned __int128>(T->Value);
    fpU64(H, static_cast<uint64_t>(V));
    fpU64(H, static_cast<uint64_t>(V >> 64));
    fpU64(H, typeFingerprint(T->Ty));
    break;
  }
  }
  return H;
}

inline std::string hex16(uint64_t V) {
  static const char *Hex = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[I] = Hex[V & 0xf];
    V >>= 4;
  }
  return Out;
}

} // namespace detail

//===----------------------------------------------------------------------===//
// The checker
//===----------------------------------------------------------------------===//

namespace detail {

/// Strict token scanner for one certificate. All parse helpers return
/// false on malformed input and never read out of bounds.
struct Parser {
  /// Splits into lines; rejects '\r' and other raw control bytes so a
  /// certificate has exactly one canonical byte form.
  static bool splitLines(const std::string &Text,
                         std::vector<std::pair<size_t, size_t>> &Lines) {
    size_t Start = 0;
    for (size_t I = 0; I != Text.size(); ++I) {
      unsigned char Ch = static_cast<unsigned char>(Text[I]);
      if (Ch == '\n') {
        Lines.emplace_back(Start, I - Start);
        Start = I + 1;
      } else if (Ch < 0x20 || Ch == 0x7f) {
        return false; // raw control byte (escapes cover these)
      }
    }
    return Start == Text.size(); // must end with a newline
  }

  static bool splitTokens(const char *S, size_t Len,
                          std::vector<std::string> &Toks) {
    Toks.clear();
    size_t I = 0;
    while (I < Len) {
      size_t J = I;
      while (J < Len && S[J] != ' ')
        ++J;
      if (J == I)
        return false; // empty token: leading/double/trailing space
      Toks.emplace_back(S + I, J - I);
      I = J + 1;
    }
    return !Toks.empty() && S[Len - 1] != ' ';
  }

  static bool parseU64(const std::string &T, uint64_t &Out) {
    if (T.empty() || (T.size() > 1 && T[0] == '0'))
      return false;
    uint64_t V = 0;
    for (char Ch : T) {
      if (Ch < '0' || Ch > '9')
        return false;
      uint64_t D = static_cast<uint64_t>(Ch - '0');
      if (V > (~0ULL - D) / 10)
        return false;
      V = V * 10 + D;
    }
    Out = V;
    return true;
  }

  static bool parseInt128(const std::string &T, __int128 &Out) {
    size_t I = 0;
    bool Neg = false;
    if (!T.empty() && T[0] == '-') {
      Neg = true;
      I = 1;
    }
    if (I == T.size() || (T.size() - I > 1 && T[I] == '0'))
      return false;
    unsigned __int128 M = 0;
    const unsigned __int128 Lim = static_cast<unsigned __int128>(1) << 127;
    for (; I != T.size(); ++I) {
      char Ch = T[I];
      if (Ch < '0' || Ch > '9')
        return false;
      unsigned D = static_cast<unsigned>(Ch - '0');
      if (M > (~static_cast<unsigned __int128>(0) - D) / 10)
        return false;
      M = M * 10 + D;
    }
    if (Neg ? M > Lim : M >= Lim)
      return false;
    Out = Neg ? -static_cast<__int128>(M) : static_cast<__int128>(M);
    if (Neg && M == Lim)
      Out = static_cast<__int128>(M); // two's-complement INT128_MIN
    return true;
  }

  static int hexVal(char Ch) {
    if (Ch >= '0' && Ch <= '9')
      return Ch - '0';
    if (Ch >= 'a' && Ch <= 'f')
      return Ch - 'a' + 10;
    return -1;
  }

  /// `:`-prefixed %xx-escaped string token.
  static bool parseStr(const std::string &T, std::string &Out) {
    if (T.empty() || T[0] != ':')
      return false;
    Out.clear();
    for (size_t I = 1; I < T.size();) {
      unsigned char Ch = static_cast<unsigned char>(T[I]);
      if (Ch == '%') {
        if (I + 2 >= T.size())
          return false;
        int Hi = hexVal(T[I + 1]), Lo = hexVal(T[I + 2]);
        if (Hi < 0 || Lo < 0)
          return false;
        Out.push_back(static_cast<char>(Hi * 16 + Lo));
        I += 3;
      } else if (Ch > 0x20 && Ch < 0x7f && Ch != ':') {
        Out.push_back(static_cast<char>(Ch));
        ++I;
      } else {
        return false;
      }
    }
    return true;
  }
};

/// Premise arity per derivation rule — used by the refcount pre-pass and
/// to slice payload tokens in the main pass.
inline int premiseCount(const std::string &Rule) {
  if (Rule == "axiom" || Rule == "oracle" || Rule == "trivial" ||
      Rule == "refl" || Rule == "betaConv")
    return 0;
  if (Rule == "instantiate" || Rule == "generalize" || Rule == "spec" ||
      Rule == "sym" || Rule == "abstract" || Rule == "eqTrueIntro" ||
      Rule == "eqTrueElim" || Rule == "conjE")
    return 1;
  if (Rule == "mp" || Rule == "trans" || Rule == "combination" ||
      Rule == "eqMp" || Rule == "conjI")
    return 2;
  return -1;
}

struct Checker {
  const Options &O;
  Ctx C;
  Result R;

  std::vector<CTyRef> TypeTab;
  std::vector<CTmRef> TermTab;
  /// Conclusions of still-referenced derivations; erased at refcount 0.
  std::map<uint64_t, CTmRef> Concl;
  std::map<uint64_t, uint64_t> RefCnt;
  uint64_t NextDeriv = 0;
  std::set<std::string> SeenAxioms, SeenOracles;

  explicit Checker(const Options &O) : O(O) { C.O = O; }

  Result fail(size_t Line, const std::string &Msg) {
    R.Ok = false;
    R.Line = Line;
    R.Error = Msg;
    return R;
  }

  bool typeRef(const std::string &Tok, CTyRef &Out) {
    uint64_t Id;
    if (!Parser::parseU64(Tok, Id) || Id >= TypeTab.size())
      return false;
    Out = TypeTab[Id];
    return true;
  }
  bool termRef(const std::string &Tok, CTmRef &Out) {
    uint64_t Id;
    if (!Parser::parseU64(Tok, Id) || Id >= TermTab.size())
      return false;
    Out = TermTab[Id];
    return true;
  }
  /// Fetches a live premise conclusion.
  bool premRef(const std::string &Tok, uint64_t &Id, CTmRef &Out) {
    if (!Parser::parseU64(Tok, Id) || Id >= NextDeriv)
      return false;
    auto It = Concl.find(Id);
    if (It == Concl.end())
      return false; // dropped or never-live premise
    Out = It->second;
    return true;
  }
  /// Consumes one reference to premise \p Id, dropping its conclusion at
  /// zero — the bounded-memory discipline.
  void release(uint64_t Id) {
    auto It = RefCnt.find(Id);
    if (It == RefCnt.end())
      return;
    if (It->second > 0)
      --It->second;
    if (It->second == 0)
      Concl.erase(Id);
  }

  Result run(const std::string &Text) {
    std::vector<std::pair<size_t, size_t>> Lines;
    if (!Parser::splitLines(Text, Lines))
      return fail(Lines.size() + 1,
                  "raw control byte or missing final newline");
    if (Lines.empty())
      return fail(1, "empty certificate");
    if (std::string(Text.data() + Lines[0].first, Lines[0].second) !=
        "acpc 1")
      return fail(1, "bad header (expected \"acpc 1\")");

    // Pass 1: premise/claim refcounts per derivation id, so pass 2 can
    // drop conclusions eagerly. Malformed lines are skipped here; pass 2
    // reports them precisely.
    std::vector<std::string> Toks;
    for (size_t LI = 1; LI < Lines.size(); ++LI) {
      const char *S = Text.data() + Lines[LI].first;
      if (!Parser::splitTokens(S, Lines[LI].second, Toks) || Toks.empty())
        continue;
      if (Toks[0] == "d" && Toks.size() >= 3) {
        int NP = premiseCount(Toks[2]);
        for (int P = 0; P < NP && 3 + P < static_cast<int>(Toks.size());
             ++P) {
          uint64_t Id;
          if (Parser::parseU64(Toks[3 + P], Id))
            ++RefCnt[Id];
        }
      } else if (Toks[0] == "q" && Toks.size() >= 2) {
        uint64_t Id;
        if (Parser::parseU64(Toks[1], Id))
          ++RefCnt[Id];
      }
    }

    // Pass 2: validate in order.
    bool SawEnd = false;
    for (size_t LI = 1; LI < Lines.size(); ++LI) {
      size_t LineNo = LI + 1;
      const char *S = Text.data() + Lines[LI].first;
      if (SawEnd)
        return fail(LineNo, "content after trailer");
      if (!Parser::splitTokens(S, Lines[LI].second, Toks))
        return fail(LineNo, "malformed line");
      const std::string &Kind = Toks[0];

      if (Kind == "m") {
        std::string K, V;
        if (Toks.size() != 3 || !Parser::parseStr(Toks[1], K) ||
            !Parser::parseStr(Toks[2], V))
          return fail(LineNo, "malformed meta record");
        R.Meta.emplace_back(K, V);
      } else if (Kind == "y") {
        if (!checkType(Toks))
          return fail(LineNo, "malformed or out-of-order type record");
      } else if (Kind == "t") {
        if (!checkTerm(Toks))
          return fail(LineNo, C.Error.empty()
                                  ? "malformed or out-of-order term record"
                                  : C.Error);
      } else if (Kind == "d") {
        std::string Err;
        if (!checkDeriv(Toks, Err))
          return fail(LineNo, Err.empty() ? "invalid derivation record"
                                          : Err);
      } else if (Kind == "q") {
        std::string Err;
        if (!checkClaim(Toks, Err))
          return fail(LineNo, Err.empty() ? "invalid claim record" : Err);
      } else if (Kind == "end") {
        uint64_t NY, NT, ND, NQ;
        if (Toks.size() != 5 || !Parser::parseU64(Toks[1], NY) ||
            !Parser::parseU64(Toks[2], NT) ||
            !Parser::parseU64(Toks[3], ND) || !Parser::parseU64(Toks[4], NQ))
          return fail(LineNo, "malformed trailer");
        if (NY != TypeTab.size() || NT != TermTab.size() ||
            ND != NextDeriv || NQ != R.Claims.size())
          return fail(LineNo, "trailer counts disagree with records "
                              "(truncated or spliced certificate)");
        SawEnd = true;
      } else {
        return fail(LineNo, "unknown record kind '" + Kind + "'");
      }
      if (!C.Error.empty())
        return fail(LineNo, C.Error);
    }
    if (!SawEnd)
      return fail(Lines.size() + 1, "missing trailer (truncated?)");

    R.Ok = true;
    R.Types = TypeTab.size();
    R.Terms = TermTab.size();
    R.Derivs = NextDeriv;
    R.ClaimCount = R.Claims.size();
    return R;
  }

  bool checkType(const std::vector<std::string> &Toks) {
    uint64_t Id;
    if (Toks.size() < 3 || !Parser::parseU64(Toks[1], Id) ||
        Id != TypeTab.size())
      return false; // density: the id must be the next unused one
    std::string Name;
    if (Toks[2] == "v") {
      if (Toks.size() != 4 || !Parser::parseStr(Toks[3], Name))
        return false;
      TypeTab.push_back(tyVar(Name));
      return true;
    }
    if (Toks[2] != "c" || Toks.size() < 4 ||
        !Parser::parseStr(Toks[3], Name))
      return false;
    std::vector<CTyRef> Args;
    for (size_t I = 4; I < Toks.size(); ++I) {
      CTyRef A;
      if (!typeRef(Toks[I], A))
        return false;
      Args.push_back(std::move(A));
    }
    TypeTab.push_back(tyCon(Name, std::move(Args)));
    return true;
  }

  bool checkTerm(const std::vector<std::string> &Toks) {
    uint64_t Id;
    if (Toks.size() < 3 || !Parser::parseU64(Toks[1], Id) ||
        Id != TermTab.size())
      return false;
    const std::string &K = Toks[2];
    std::string Name;
    CTyRef Ty;
    CTmRef T;
    if (K == "c" && Toks.size() == 5 && Parser::parseStr(Toks[3], Name) &&
        typeRef(Toks[4], Ty)) {
      T = mkConst(C, Name, Ty);
    } else if (K == "f" && Toks.size() == 5 &&
               Parser::parseStr(Toks[3], Name) && typeRef(Toks[4], Ty)) {
      T = mkFree(C, Name, Ty);
    } else if (K == "v" && Toks.size() == 6 &&
               Parser::parseStr(Toks[3], Name) && typeRef(Toks[5], Ty)) {
      uint64_t Idx;
      if (!Parser::parseU64(Toks[4], Idx))
        return false;
      T = mkVar(C, Name, Idx, Ty);
    } else if (K == "b" && Toks.size() == 4) {
      uint64_t Idx;
      if (!Parser::parseU64(Toks[3], Idx))
        return false;
      T = mkBound(C, Idx);
    } else if (K == "l" && Toks.size() == 6 &&
               Parser::parseStr(Toks[3], Name) && typeRef(Toks[4], Ty)) {
      CTmRef Body;
      if (!termRef(Toks[5], Body))
        return false;
      T = mkLam(C, Name, Ty, Body);
    } else if (K == "a" && Toks.size() == 5) {
      CTmRef F, X;
      if (!termRef(Toks[3], F) || !termRef(Toks[4], X))
        return false;
      T = mkApp(C, F, X);
    } else if (K == "n" && Toks.size() == 5 && typeRef(Toks[4], Ty)) {
      __int128 V;
      if (!Parser::parseInt128(Toks[3], V))
        return false;
      T = mkNum(C, V, Ty);
    } else {
      return false;
    }
    if (!T) {
      if (C.Error.empty())
        C.Error = "term record parsed but could not be built";
      return false;
    }
    if (T->Depth > O.MaxDepth) {
      C.Error = "term exceeds depth cap";
      return false;
    }
    TermTab.push_back(std::move(T));
    return true;
  }

  /// Re-derives one inference record — the heart of the checker. Every
  /// branch recomputes the conclusion from the premises exactly as the
  /// kernel rule would, or rejects.
  bool checkDeriv(const std::vector<std::string> &Toks, std::string &Err) {
    uint64_t Id;
    if (Toks.size() < 3 || !Parser::parseU64(Toks[1], Id) ||
        Id != NextDeriv) {
      Err = "derivation id is not dense-sequential";
      return false;
    }
    const std::string &Rule = Toks[2];
    int NP = premiseCount(Rule);
    if (NP < 0) {
      Err = "unknown rule '" + Rule + "'";
      return false;
    }
    // Fetch premises (they must be live: earlier, still-referenced ids).
    std::vector<uint64_t> PremIds(NP);
    std::vector<CTmRef> Prem(NP);
    for (int P = 0; P != NP; ++P) {
      if (3 + P >= static_cast<int>(Toks.size()) ||
          !premRef(Toks[3 + P], PremIds[P], Prem[P])) {
        Err = "premise reference is invalid or already released";
        return false;
      }
    }
    size_t PB = 3 + NP; // first payload token
    auto Payload = [&](size_t I) -> const std::string & {
      static const std::string Empty;
      return PB + I < Toks.size() ? Toks[PB + I] : Empty;
    };
    auto ExactPayload = [&](size_t N) { return Toks.size() == PB + N; };

    CTmRef Out;
    if (Rule == "axiom" || Rule == "oracle") {
      std::string Name;
      CTmRef Prop;
      if (Rule == "axiom") {
        if (!ExactPayload(3) || !Parser::parseStr(Payload(0), Name) ||
            !termRef(Payload(1), Prop)) {
          Err = "malformed axiom record";
          return false;
        }
        if (Payload(2) != hex16(termFingerprint(Prop))) {
          Err = "axiom hash does not match its proposition";
          return false;
        }
      } else {
        if (!ExactPayload(2) || !Parser::parseStr(Payload(0), Name) ||
            !termRef(Payload(1), Prop)) {
          Err = "malformed oracle record";
          return false;
        }
      }
      if (Prop->MaxLoose != 0) {
        Err = "leaf proposition has loose bound variables";
        return false;
      }
      if (Rule == "axiom") {
        if (SeenAxioms.insert(Name).second)
          R.AxiomLeaves.emplace_back(Name, hex16(termFingerprint(Prop)));
      } else if (SeenOracles.insert(Name).second) {
        R.OracleLeaves.push_back(Name);
      }
      Out = Prop;
    } else if (Rule == "trivial") {
      CTmRef P;
      if (!ExactPayload(1) || !termRef(Payload(0), P)) {
        Err = "malformed trivial record";
        return false;
      }
      Out = mkImp(C, P, P);
    } else if (Rule == "instantiate") {
      if (!checkInstantiate(Toks, PB, Prem[0], Out, Err))
        return false;
    } else if (Rule == "mp") {
      CTmRef L, Rr;
      if (!ExactPayload(0) || !destImp(Prem[0], L, Rr)) {
        Err = "mp: major premise is not an implication";
        return false;
      }
      if (!termEq(L, Prem[1])) {
        Err = "mp: minor premise does not match the antecedent";
        return false;
      }
      Out = Rr;
    } else if (Rule == "generalize") {
      std::string Name;
      CTyRef Ty;
      if (!ExactPayload(2) || !Parser::parseStr(Payload(0), Name) ||
          !typeRef(Payload(1), Ty)) {
        Err = "malformed generalize record";
        return false;
      }
      Out = mkAllLam(C, lambdaFree(C, Name, Ty, Prem[0]));
      if (!Out && C.Error.empty()) {
        Err = "generalize: conclusion is ill-typed";
        return false;
      }
    } else if (Rule == "spec") {
      CTmRef Inst, Lam;
      if (!ExactPayload(1) || !termRef(Payload(0), Inst)) {
        Err = "malformed spec record";
        return false;
      }
      if (!destAll(Prem[0], Lam)) {
        Err = "spec: premise is not a universal";
        return false;
      }
      Out = betaNorm(C, mkApp(C, Lam, Inst));
    } else if (Rule == "refl") {
      CTmRef T;
      if (!ExactPayload(1) || !termRef(Payload(0), T)) {
        Err = "malformed refl record";
        return false;
      }
      Out = mkEq(C, T, T);
      if (!Out && C.Error.empty()) {
        Err = "refl: term is ill-typed";
        return false;
      }
    } else if (Rule == "sym") {
      CTmRef L, Rr;
      if (!ExactPayload(0) || !destEq(Prem[0], L, Rr)) {
        Err = "sym: premise is not an equality";
        return false;
      }
      Out = mkEq(C, Rr, L);
    } else if (Rule == "trans") {
      CTmRef A, B1, B2, Cc;
      if (!ExactPayload(0) || !destEq(Prem[0], A, B1) ||
          !destEq(Prem[1], B2, Cc)) {
        Err = "trans: premises are not equalities";
        return false;
      }
      if (!termEq(B1, B2)) {
        Err = "trans: middle terms differ";
        return false;
      }
      Out = mkEq(C, A, Cc);
    } else if (Rule == "combination") {
      CTmRef F, G, X, Y;
      if (!ExactPayload(0) || !destEq(Prem[0], F, G) ||
          !destEq(Prem[1], X, Y)) {
        Err = "combination: premises are not equalities";
        return false;
      }
      Out = mkEq(C, betaNorm(C, mkApp(C, F, X)),
                 betaNorm(C, mkApp(C, G, Y)));
    } else if (Rule == "abstract") {
      std::string Name;
      CTyRef Ty;
      CTmRef L, Rr;
      if (!ExactPayload(2) || !Parser::parseStr(Payload(0), Name) ||
          !typeRef(Payload(1), Ty)) {
        Err = "malformed abstract record";
        return false;
      }
      if (!destEq(Prem[0], L, Rr)) {
        Err = "abstract: premise is not an equality";
        return false;
      }
      Out = mkEq(C, lambdaFree(C, Name, Ty, L), lambdaFree(C, Name, Ty, Rr));
    } else if (Rule == "betaConv") {
      CTmRef T;
      if (!ExactPayload(1) || !termRef(Payload(0), T)) {
        Err = "malformed betaConv record";
        return false;
      }
      Out = mkEq(C, T, betaNorm(C, T));
    } else if (Rule == "eqTrueIntro") {
      if (!ExactPayload(0)) {
        Err = "malformed eqTrueIntro record";
        return false;
      }
      Out = mkEq(C, Prem[0], mkTrue(C));
    } else if (Rule == "eqTrueElim") {
      CTmRef L, Rr;
      if (!ExactPayload(0) || !destEq(Prem[0], L, Rr)) {
        Err = "eqTrueElim: premise is not an equality";
        return false;
      }
      if (Rr->K != CTm::Const || Rr->Name != "True") {
        Err = "eqTrueElim: rhs is not True";
        return false;
      }
      Out = L;
    } else if (Rule == "eqMp") {
      CTmRef L, Rr;
      if (!ExactPayload(0) || !destEq(Prem[0], L, Rr)) {
        Err = "eqMp: premise is not an equality";
        return false;
      }
      if (!termEq(L, Prem[1])) {
        Err = "eqMp: propositions do not match";
        return false;
      }
      Out = Rr;
    } else if (Rule == "conjI") {
      if (!ExactPayload(0)) {
        Err = "malformed conjI record";
        return false;
      }
      Out = mkConj(C, Prem[0], Prem[1]);
    } else if (Rule == "conjE") {
      CTmRef L, Rr;
      if (!ExactPayload(1) ||
          (Payload(0) != "0" && Payload(0) != "1")) {
        Err = "malformed conjE record";
        return false;
      }
      if (!destConj(Prem[0], L, Rr)) {
        Err = "conjE: premise is not a conjunction";
        return false;
      }
      Out = Payload(0) == "0" ? L : Rr;
    } else {
      Err = "unknown rule '" + Rule + "'";
      return false;
    }

    if (!Out) {
      if (!C.Error.empty())
        Err = C.Error;
      else
        Err = "conclusion could not be re-derived";
      return false;
    }
    uint64_t MyId = NextDeriv++;
    auto RC = RefCnt.find(MyId);
    if (RC != RefCnt.end() && RC->second > 0)
      Concl.emplace(MyId, Out);
    for (int P = 0; P != NP; ++P)
      release(PremIds[P]);
    return true;
  }

  bool checkInstantiate(const std::vector<std::string> &Toks, size_t PB,
                        const CTmRef &Prem, CTmRef &Out, std::string &Err) {
    // instantiate <prem> <nty> {:name <ty>}* <ntm> {:name <idx> <tm>}*
    CSubst S;
    size_t I = PB;
    uint64_t NTy;
    if (I >= Toks.size() || !Parser::parseU64(Toks[I++], NTy)) {
      Err = "malformed instantiate record";
      return false;
    }
    for (uint64_t K = 0; K != NTy; ++K) {
      std::string Name;
      CTyRef Ty;
      if (I + 1 >= Toks.size() || !Parser::parseStr(Toks[I], Name) ||
          !typeRef(Toks[I + 1], Ty) ||
          !S.TyMap.emplace(Name, std::move(Ty)).second) {
        Err = "malformed instantiate type binding";
        return false;
      }
      I += 2;
    }
    uint64_t NTm;
    if (I >= Toks.size() || !Parser::parseU64(Toks[I++], NTm)) {
      Err = "malformed instantiate record";
      return false;
    }
    for (uint64_t K = 0; K != NTm; ++K) {
      std::string Name;
      uint64_t Idx;
      CTmRef Tm;
      if (I + 2 >= Toks.size() || !Parser::parseStr(Toks[I], Name) ||
          !Parser::parseU64(Toks[I + 1], Idx) ||
          !termRef(Toks[I + 2], Tm) ||
          !S.TmMap.emplace(std::make_pair(Name, Idx), std::move(Tm))
               .second) {
        Err = "malformed instantiate term binding";
        return false;
      }
      I += 3;
    }
    if (I != Toks.size()) {
      Err = "trailing tokens on instantiate record";
      return false;
    }
    if (S.TyMap.empty() && S.TmMap.empty()) {
      Err = "instantiate with an empty substitution";
      return false;
    }
    Out = applySubst(C, S, Prem);
    return Out != nullptr;
  }

  bool checkClaim(const std::vector<std::string> &Toks, std::string &Err) {
    uint64_t DId;
    std::string Name;
    CTmRef Prop, Derived;
    if (Toks.size() != 4 || !premRef(Toks[1], DId, Derived) ||
        !Parser::parseStr(Toks[2], Name) || !termRef(Toks[3], Prop)) {
      Err = "malformed claim record (or claimed derivation not live)";
      return false;
    }
    if (!termEq(Derived, Prop)) {
      Err = "claimed proposition differs from the derived conclusion";
      return false;
    }
    R.Claims.emplace_back(Name, hex16(termFingerprint(Prop)));
    release(DId);
    return true;
  }
};

} // namespace detail

inline Result check(const std::string &Text, const Options &O) {
  detail::Checker CK(O);
  return CK.run(Text);
}

} // namespace acpc

#endif // AC_TOOLS_ACPC_CHECK_H
