//===- actop.cpp - Live fleet inspector ------------------------------------===//
//
// Polls a router's `fleet` op and renders the whole fleet on one screen:
// per-shard breaker state, in-flight windows, queue depths, shed / quota
// / hedge counters, winner attribution, the cache tier, and the slowest
// recent requests across every shard (keyed by trace_id, so a slow row
// can be chased with `actrace`).
//
//   actop --router 127.0.0.1:7000            # refreshing dashboard
//   actop --router 127.0.0.1:7000 --once --json   # one machine-readable
//                                                 # snapshot
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using ac::service::Client;
using ac::support::Json;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --router HOST:PORT [options]\n"
      "  --router HOST:PORT  the acrouter front-end to poll\n"
      "  --auth-token-file F auth token for the router connection\n"
      "  --interval-ms N     refresh cadence (default: 1000)\n"
      "  --once              render one snapshot and exit\n"
      "  --json              print the raw fleet payload (with --once)\n"
      "  --top N             slowest-recent-requests rows (default: 8)\n",
      Argv0);
}

bool parseUnsigned(const char *S, unsigned &Out) {
  char *End = nullptr;
  unsigned long V = std::strtoul(S, &End, 10);
  if (!End || *End || V > 1u << 20)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

/// One slow-request row, pooled across every shard's `recent` ring.
struct SlowRow {
  std::string TraceId, Shard, Tenant, Priority;
  double TotalMs = 0, WaitMs = 0, AgeS = 0;
  bool Ok = true;
};

void render(const Json &Fleet, unsigned TopK) {
  const Json &Shards = Fleet.get("shards");
  const Json &Details = Fleet.get("shard_stats");
  std::printf("acrouter fleet — received %lld  completed %lld  "
              "rerouted %lld  fallbacks %lld  window_busy %lld\n",
              static_cast<long long>(Fleet.get("received").asInt()),
              static_cast<long long>(Fleet.get("completed").asInt()),
              static_cast<long long>(Fleet.get("rerouted").asInt()),
              static_cast<long long>(Fleet.get("fallbacks").asInt()),
              static_cast<long long>(Fleet.get("window_busy").asInt()));
  std::printf("hedges %lld (wins %lld)  retry_budget_exhausted %lld%s\n\n",
              static_cast<long long>(Fleet.get("hedges").asInt()),
              static_cast<long long>(Fleet.get("hedge_wins").asInt()),
              static_cast<long long>(
                  Fleet.get("retry_budget_exhausted").asInt()),
              Fleet.get("draining").asBool() ? "  [DRAINING]" : "");

  std::printf("%-22s %-9s %5s %7s %6s %5s %6s %6s %5s %6s %8s\n", "SHARD",
              "BREAKER", "INFL", "ROUTED", "WON", "ERR", "TRIPS", "QUEUE",
              "SHED", "QUOTA", "P99(ms)");
  std::vector<SlowRow> Slow;
  for (size_t I = 0; I != Shards.items().size(); ++I) {
    const Json &S = Shards.items()[I];
    const std::string &Addr = S.get("addr").asString();
    // The router's view (breaker, windows, attribution) joins the
    // shard's own stats scrape (queue, shed, quota, latency) by index —
    // fleetJson emits both arrays in shard-list order.
    const Json *D = I < Details.items().size() ? &Details.items()[I]
                                               : nullptr;
    bool Up = D && D->get("up").asBool();
    const Json &St = Up ? D->get("stats") : Json();
    const Json &Req = St.get("requests");
    char P99[32] = "-";
    if (Up)
      std::snprintf(P99, sizeof(P99), "%.1f",
                    St.get("latency").get("total").get("p99_ms")
                        .asNumber());
    std::printf(
        "%-22s %-9s %5lld %7lld %6lld %5lld %6lld %6s %5lld %6lld %8s\n",
        Addr.c_str(),
        Up ? S.get("breaker").asString().c_str() : "down",
        static_cast<long long>(S.get("in_flight").asInt()),
        static_cast<long long>(S.get("routed").asInt()),
        static_cast<long long>(S.get("won").asInt()),
        static_cast<long long>(S.get("errors").asInt()),
        static_cast<long long>(S.get("breaker_trips").asInt()),
        Up ? (std::to_string(St.get("queue_depth").asInt()) + "/" +
              std::to_string(St.get("queue_capacity").asInt()))
                 .c_str()
           : "-",
        static_cast<long long>(Req.get("shed").asInt()),
        static_cast<long long>(Req.get("quota_rejected").asInt()), P99);
    if (Up)
      for (const Json &R : St.get("recent").items()) {
        SlowRow Row;
        Row.TraceId = R.get("trace_id").asString();
        Row.Shard = Addr;
        Row.Tenant = R.get("tenant").asString();
        Row.Priority = R.get("priority").asString();
        Row.TotalMs = R.get("total_ms").asNumber();
        Row.WaitMs = R.get("wait_ms").asNumber();
        Row.AgeS = R.get("age_s").asNumber();
        Row.Ok = R.get("ok").asBool();
        Slow.push_back(std::move(Row));
      }
  }

  if (Fleet.has("cache")) {
    const Json &Cd = Fleet.get("cache");
    if (Cd.get("up").asBool()) {
      const Json &St = Cd.get("stats");
      std::printf("\ncache %-16s entries %lld  gets %lld  hits %lld  "
                  "puts %lld\n",
                  Cd.get("addr").asString().c_str(),
                  static_cast<long long>(St.get("entries").asInt()),
                  static_cast<long long>(St.get("gets").asInt()),
                  static_cast<long long>(St.get("hits").asInt()),
                  static_cast<long long>(St.get("puts").asInt()));
    } else {
      std::printf("\ncache %-16s DOWN\n",
                  Cd.get("addr").asString().c_str());
    }
  }

  if (!Slow.empty()) {
    std::sort(Slow.begin(), Slow.end(),
              [](const SlowRow &A, const SlowRow &B) {
                return A.TotalMs > B.TotalMs;
              });
    if (Slow.size() > TopK)
      Slow.resize(TopK);
    std::printf("\nslowest recent requests\n");
    std::printf("%-28s %-22s %-9s %9s %9s %7s %3s\n", "TRACE_ID", "SHARD",
                "PRIO", "TOTAL(ms)", "WAIT(ms)", "AGE(s)", "OK");
    for (const SlowRow &R : Slow)
      std::printf("%-28s %-22s %-9s %9.1f %9.1f %7.1f %3s\n",
                  R.TraceId.c_str(), R.Shard.c_str(), R.Priority.c_str(),
                  R.TotalMs, R.WaitMs, R.AgeS, R.Ok ? "ok" : "ERR");
  }
  std::fflush(stdout);
}

} // namespace

int main(int argc, char **argv) {
  std::string RouterAddr;
  std::string Token;
  unsigned IntervalMs = 1000;
  unsigned TopK = 8;
  bool Once = false;
  bool AsJson = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    unsigned N = 0;
    if (Arg == "--router") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      RouterAddr = V;
    } else if (Arg == "--auth-token-file") {
      const char *V = Next();
      if (!V || !ac::service::readTokenFile(V, Token)) {
        std::fprintf(stderr, "actop: cannot read auth token file\n");
        return 2;
      }
    } else if (Arg == "--interval-ms" && Next() &&
               parseUnsigned(argv[I], N) && N > 0) {
      IntervalMs = N;
    } else if (Arg == "--top" && Next() && parseUnsigned(argv[I], N) &&
               N > 0) {
      TopK = N;
    } else if (Arg == "--once") {
      Once = true;
    } else if (Arg == "--json") {
      AsJson = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "actop: bad argument `%s`\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (RouterAddr.empty()) {
    usage(argv[0]);
    return 2;
  }

  for (;;) {
    std::string Err;
    Client C = Client::connectTcp(RouterAddr, Token, Err);
    Json Fleet;
    if (!C.connected() || !C.fleet(Fleet, Err)) {
      std::fprintf(stderr, "actop: %s: %s\n", RouterAddr.c_str(),
                   Err.empty() ? "fleet poll failed" : Err.c_str());
      if (Once)
        return 1;
    } else if (AsJson) {
      std::printf("%s\n", Fleet.dump().c_str());
      std::fflush(stdout);
    } else {
      if (!Once)
        std::printf("\x1b[2J\x1b[H"); // clear + home between refreshes
      render(Fleet, TopK);
    }
    if (Once)
      return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
}
