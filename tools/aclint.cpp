//===- aclint.cpp - Observability artifact lint ----------------------------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Validates the artifacts the observability surface emits, so CI can
// assert their shape without a Chrome or Prometheus install:
//
//   aclint trace <file.json> [--require-span NAME]... [--min-wa N] [--min-hl N]
//               [--max-span-share NAME:PCT]...
//       The file parses as Chrome trace-event JSON (object form), every
//       event is a well-formed complete event, every --require-span name
//       occurs at least once, and the embedded ruleProfile carries at
//       least N word-abstraction / heap-abstraction rule rows. Each
//       --max-span-share asserts that the summed duration of spans with
//       that name is at most PCT percent of the whole trace extent —
//       the perf gate uses this to pin phase-share regressions.
//
//   aclint fleettrace <merged.json> [--min-pids N] [--expect-trace-id ID]
//       The file is a merged fleet trace (actrace output): every
//       trace-carrying event agrees on one trace id, the spans come from
//       at least N distinct pids, and every parent span reference
//       resolves to a recorded span — the cross-process request chain
//       has no orphans.
//
//   aclint metrics <file> [--require NAME]...        ("-" reads stdin)
//       The file is Prometheus text exposition format 0.0.4: every
//       sample line is `name[{labels}] value`, every sample's metric has
//       a preceding # TYPE of a known kind, summary quantile samples and
//       _sum/_count attach to a declared summary. Each --require NAME
//       asserts at least one sample of that metric is present — the
//       tier-1 gate uses this to pin the overload counters
//       (acd_requests_shed_total and friends) into the exposition.
//
//   aclint fleet <file.json> [--min-speedup X] [--min-hit-rate R]
//       The file is a BENCH_fleet.json as written by bench/fleet_throughput:
//       a baseline pass and one entry per shard count, each with a
//       positive requests/sec, ordered latency percentiles, zero
//       correctness diffs, and a remote-tier hit rate in [0,1].
//       --min-speedup bounds the 4-shard speedup from below;
//       --min-hit-rate applies to every multi-shard entry.
//
//   aclint cert <file.acpc> [--min-claims N] [--require-meta KEY]...
//       The file has the proof-certificate *shape* (docs/PROTOCOL.md
//       "Certificates"): `acpc 1` header, every record line carries a
//       known tag, type/term/derivation/claim ids are dense and
//       sequential, the `end` trailer is the last line and its counts
//       match the records, and the file ends in a newline. This is a
//       lint, not a proof check — `acpc` re-derives the claims; aclint
//       only asserts the artifact is structurally sound (e.g. not
//       truncated by a torn write).
//
// Exit status: 0 clean, 1 lint findings (each printed on stderr), 2 usage.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using ac::support::Json;

namespace {

int Findings = 0;

void finding(const std::string &Msg) {
  std::fprintf(stderr, "aclint: %s\n", Msg.c_str());
  ++Findings;
}

bool readAll(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::stringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In.good())
    return false;
  std::stringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

//===----------------------------------------------------------------------===//
// trace mode
//===----------------------------------------------------------------------===//

/// A `--max-span-share wordabs.fn:40` style bound, parsed up front.
struct SpanShareBound {
  std::string Name;
  double MaxPct;
};

int lintTrace(const std::string &Path,
              const std::vector<std::string> &RequiredSpans, int MinWA,
              int MinHL, const std::vector<SpanShareBound> &ShareBounds) {
  std::string Text;
  if (!readAll(Path, Text)) {
    finding("cannot read " + Path);
    return 1;
  }
  Json J;
  std::string Err;
  if (!Json::parse(Text, J, Err)) {
    finding(Path + ": not valid JSON: " + Err);
    return 1;
  }
  if (!J.isObject() || !J.get("traceEvents").isArray()) {
    finding(Path + ": no traceEvents array (not object-form Chrome JSON)");
    return 1;
  }

  std::set<std::string> Seen;
  std::map<std::string, double> SpanDur;
  double MinTs = 0, MaxEnd = 0;
  bool AnyEvent = false;
  size_t Idx = 0;
  for (const Json &E : J.get("traceEvents").items()) {
    std::string Where = Path + ": traceEvents[" + std::to_string(Idx++) + "]";
    if (!E.isObject()) {
      finding(Where + ": not an object");
      continue;
    }
    if (E.get("ph").asString() == "M") {
      // Metadata events (merged traces label pid lanes with these):
      // no ts/dur, but they must still say which process they name.
      if (!E.get("pid").isNumber())
        finding(Where + ": metadata event missing pid");
      if (!E.get("args").get("name").isString())
        finding(Where + ": metadata event missing args.name");
      continue;
    }
    if (!E.get("name").isString() || E.get("name").asString().empty())
      finding(Where + ": missing name");
    if (E.get("ph").asString() != "X")
      finding(Where + ": ph is not \"X\" (complete event)");
    if (!E.get("ts").isNumber() || E.get("ts").asNumber() < 0)
      finding(Where + ": bad ts");
    if (!E.get("dur").isNumber() || E.get("dur").asNumber() < 0)
      finding(Where + ": bad dur");
    if (!E.get("pid").isNumber() || !E.get("tid").isNumber())
      finding(Where + ": missing pid/tid");
    Seen.insert(E.get("name").asString());
    if (E.get("ts").isNumber() && E.get("dur").isNumber()) {
      double Ts = E.get("ts").asNumber(), Dur = E.get("dur").asNumber();
      SpanDur[E.get("name").asString()] += Dur;
      if (!AnyEvent || Ts < MinTs)
        MinTs = Ts;
      if (!AnyEvent || Ts + Dur > MaxEnd)
        MaxEnd = Ts + Dur;
      AnyEvent = true;
    }
  }

  for (const std::string &Name : RequiredSpans)
    if (!Seen.count(Name))
      finding(Path + ": required span `" + Name + "` never recorded");

  if (!ShareBounds.empty()) {
    double Extent = AnyEvent ? MaxEnd - MinTs : 0;
    if (Extent <= 0) {
      finding(Path + ": --max-span-share needs a non-empty trace");
    } else {
      for (const SpanShareBound &B : ShareBounds) {
        double Pct = 100.0 * SpanDur[B.Name] / Extent;
        char Buf[160];
        std::snprintf(Buf, sizeof(Buf), "%s: span `%s` is %.1f%% of the trace",
                      Path.c_str(), B.Name.c_str(), Pct);
        if (Pct > B.MaxPct)
          finding(std::string(Buf) + ", bound is " +
                  std::to_string(B.MaxPct) + "%");
        else
          std::fprintf(stderr, "aclint: ok: %s (bound %.1f%%)\n", Buf,
                       B.MaxPct);
      }
    }
  }

  if (MinWA > 0 || MinHL > 0) {
    const Json &RP = J.get("ruleProfile");
    if (!RP.isObject()) {
      finding(Path + ": no ruleProfile object");
    } else {
      int WA = 0, HL = 0;
      for (const auto &[Name, Stat] : RP.members()) {
        if (!Stat.isObject() || !Stat.get("fires").isNumber())
          finding(Path + ": ruleProfile." + Name + ": malformed row");
        if (Name.rfind("WA.", 0) == 0)
          ++WA;
        else if (Name.rfind("HL.", 0) == 0)
          ++HL;
      }
      if (WA < MinWA)
        finding(Path + ": ruleProfile has " + std::to_string(WA) +
                " word-abs rules, expected >= " + std::to_string(MinWA));
      if (HL < MinHL)
        finding(Path + ": ruleProfile has " + std::to_string(HL) +
                " heap-abs rules, expected >= " + std::to_string(MinHL));
    }
  }
  return Findings ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// fleettrace mode
//===----------------------------------------------------------------------===//

/// Lints a *merged* fleet trace (actrace output): all trace-carrying
/// events agree on one trace id, the spans come from at least
/// \p MinPids distinct processes, and every parent reference resolves
/// to a span recorded somewhere in the merged file — the cross-process
/// chain (router -> shard -> cache) has no orphans.
int lintFleettrace(const std::string &Path, int MinPids,
                   const std::string &ExpectTraceId) {
  std::string Text;
  if (!readAll(Path, Text)) {
    finding("cannot read " + Path);
    return 1;
  }
  Json J;
  std::string Err;
  if (!Json::parse(Text, J, Err)) {
    finding(Path + ": not valid JSON: " + Err);
    return 1;
  }
  if (!J.isObject() || !J.get("traceEvents").isArray()) {
    finding(Path + ": no traceEvents array (not object-form Chrome JSON)");
    return 1;
  }

  std::set<std::string> TraceIds, Spans;
  std::set<double> Pids;
  std::vector<std::pair<std::string, std::string>> ParentRefs;
  size_t Carrying = 0, Idx = 0;
  for (const Json &E : J.get("traceEvents").items()) {
    std::string Where =
        Path + ": traceEvents[" + std::to_string(Idx++) + "]";
    if (!E.isObject() || E.get("ph").asString() == "M")
      continue;
    const Json &Args = E.get("args");
    const std::string &Span = Args.get("span").asString();
    if (!Span.empty())
      Spans.insert(Span);
    const std::string &Tid = Args.get("trace_id").asString();
    if (Tid.empty())
      continue;
    ++Carrying;
    TraceIds.insert(Tid);
    Pids.insert(E.get("pid").asNumber());
    if (Span.empty())
      finding(Where + ": trace-carrying event without a span id");
    const std::string &Par = Args.get("parent").asString();
    if (!Par.empty())
      ParentRefs.emplace_back(Where, Par);
  }

  if (Carrying == 0)
    finding(Path + ": no trace-carrying events at all");
  if (TraceIds.size() > 1) {
    std::string All;
    for (const std::string &T : TraceIds)
      All += (All.empty() ? "" : ", ") + T;
    finding(Path + ": " + std::to_string(TraceIds.size()) +
            " distinct trace ids (want one request, one id): " + All);
  }
  if (!ExpectTraceId.empty() && !TraceIds.count(ExpectTraceId))
    finding(Path + ": expected trace id `" + ExpectTraceId +
            "` never appears");
  if (MinPids > 0 && Pids.size() < static_cast<size_t>(MinPids))
    finding(Path + ": spans come from " + std::to_string(Pids.size()) +
            " process(es), expected >= " + std::to_string(MinPids));
  for (const auto &[Where, Par] : ParentRefs)
    if (!Spans.count(Par))
      finding(Where + ": parent span `" + Par +
              "` not recorded anywhere in the merged trace");
  return Findings ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// metrics mode
//===----------------------------------------------------------------------===//

bool validMetricName(const std::string &N) {
  if (N.empty())
    return false;
  for (size_t I = 0; I != N.size(); ++I) {
    char C = N[I];
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              C == '_' || C == ':' || (I > 0 && C >= '0' && C <= '9');
    if (!Ok)
      return false;
  }
  return true;
}

int lintMetrics(const std::string &Path,
                const std::vector<std::string> &Require) {
  std::string Text;
  if (!readAll(Path, Text)) {
    finding("cannot read " + Path);
    return 1;
  }
  std::set<std::string> Typed, Summaries, Histograms, Sampled;
  std::istringstream Lines(Text);
  std::string Line;
  int LineNo = 0;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::string Where = Path + ":" + std::to_string(LineNo);
    if (Line.empty())
      continue;
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream T(Line.substr(7));
      std::string Name, Kind;
      T >> Name >> Kind;
      if (!validMetricName(Name))
        finding(Where + ": bad metric name in TYPE: " + Name);
      if (Kind != "counter" && Kind != "gauge" && Kind != "summary" &&
          Kind != "histogram" && Kind != "untyped")
        finding(Where + ": unknown TYPE kind: " + Kind);
      if (Typed.count(Name))
        finding(Where + ": duplicate TYPE for " + Name);
      Typed.insert(Name);
      if (Kind == "summary")
        Summaries.insert(Name);
      if (Kind == "histogram")
        Histograms.insert(Name);
      continue;
    }
    if (Line[0] == '#')
      continue; // HELP and free comments
    // An OpenMetrics exemplar rides after ` # ` on the sample line:
    // `name{...} value # {trace_id="..."} exemplar_value`. Split it off
    // and lint both halves.
    std::string Sample = Line;
    size_t ExPos = Line.find(" # ");
    if (ExPos != std::string::npos) {
      Sample = Line.substr(0, ExPos);
      std::string Ex = Line.substr(ExPos + 3);
      size_t Close = Ex.rfind("} ");
      if (Ex.empty() || Ex[0] != '{' || Close == std::string::npos) {
        finding(Where + ": malformed exemplar: " + Ex);
      } else {
        std::string EV = Ex.substr(Close + 2);
        char *EEnd = nullptr;
        std::strtod(EV.c_str(), &EEnd);
        if (EEnd == EV.c_str() || *EEnd != '\0')
          finding(Where + ": unparsable exemplar value: " + EV);
      }
    }
    size_t Sp = Sample.rfind(' ');
    if (Sp == std::string::npos) {
      finding(Where + ": sample line has no value: " + Sample);
      continue;
    }
    std::string Value = Sample.substr(Sp + 1);
    char *End = nullptr;
    std::strtod(Value.c_str(), &End);
    if (End == Value.c_str() || *End != '\0')
      finding(Where + ": unparsable sample value: " + Value);

    std::string Name = Sample.substr(0, Sample.find_first_of("{ "));
    if (!validMetricName(Name)) {
      finding(Where + ": bad metric name: " + Name);
      continue;
    }
    Sampled.insert(Name);
    // A summary's or histogram's _sum/_count samples belong to the
    // declared base; a histogram additionally owns its _bucket series.
    std::string Base = Name;
    for (const char *Suffix : {"_sum", "_count"}) {
      size_t L = Name.size(), SL = std::strlen(Suffix);
      if (L > SL && Name.compare(L - SL, SL, Suffix) == 0 &&
          (Summaries.count(Name.substr(0, L - SL)) ||
           Histograms.count(Name.substr(0, L - SL))))
        Base = Name.substr(0, L - SL);
    }
    {
      size_t L = Name.size(), SL = std::strlen("_bucket");
      if (L > SL && Name.compare(L - SL, SL, "_bucket") == 0 &&
          Histograms.count(Name.substr(0, L - SL))) {
        Base = Name.substr(0, L - SL);
        if (Sample.find("le=\"") == std::string::npos)
          finding(Where + ": histogram bucket without le label: " + Sample);
      }
    }
    Sampled.insert(Base); // --require on a histogram/summary base name
    if (!Typed.count(Base))
      finding(Where + ": sample without preceding TYPE: " + Name);
    if (Base == Name && Summaries.count(Name) &&
        Sample.find("quantile=\"") == std::string::npos)
      finding(Where + ": summary sample without quantile label: " + Sample);
    if (Base == Name && Histograms.count(Name))
      finding(Where + ": histogram base sample without a suffix: " + Sample);
  }
  if (Typed.empty())
    finding(Path + ": no metrics at all");
  for (const std::string &Name : Require)
    if (!Sampled.count(Name))
      finding(Path + ": required metric `" + Name + "` has no sample");
  return Findings ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// fleet mode
//===----------------------------------------------------------------------===//

/// Shape-checks one measured pass (the baseline or a per-shard-count
/// entry): positive throughput, ordered percentiles, no lost requests.
void lintFleetPass(const std::string &Where, const Json &P) {
  if (!P.isObject()) {
    finding(Where + ": not an object");
    return;
  }
  if (!P.get("requests_per_sec").isNumber() ||
      P.get("requests_per_sec").asNumber() <= 0)
    finding(Where + ": requests_per_sec missing or not positive");
  if (!P.get("p50_ms").isNumber() || !P.get("p99_ms").isNumber())
    finding(Where + ": missing p50_ms/p99_ms");
  else if (P.get("p50_ms").asNumber() > P.get("p99_ms").asNumber())
    finding(Where + ": p50_ms exceeds p99_ms");
  if (!P.get("ok").isNumber() || !P.get("requests").isNumber())
    finding(Where + ": missing ok/requests counts");
  else if (P.get("ok").asNumber() != P.get("requests").asNumber())
    finding(Where + ": " + std::to_string(static_cast<long long>(
                               P.get("requests").asNumber() -
                               P.get("ok").asNumber())) +
            " requests lost");
  if (!P.get("diffs").isNumber() || P.get("diffs").asNumber() != 0)
    finding(Where + ": correctness diffs recorded");
}

int lintFleet(const std::string &Path, double MinSpeedup,
              double MinHitRate) {
  std::string Text;
  if (!readAll(Path, Text)) {
    finding("cannot read " + Path);
    return 1;
  }
  Json J;
  std::string Err;
  if (!Json::parse(Text, J, Err)) {
    finding(Path + ": not valid JSON: " + Err);
    return 1;
  }
  if (!J.isObject() || J.get("bench").asString() != "fleet_throughput") {
    finding(Path + ": not a fleet_throughput artifact");
    return 1;
  }
  lintFleetPass(Path + ": baseline", J.get("baseline"));
  const Json &Fleets = J.get("fleets");
  if (!Fleets.isArray() || Fleets.items().empty()) {
    finding(Path + ": no fleets array");
    return 1;
  }
  double PrevShards = 0;
  size_t Idx = 0;
  for (const Json &F : Fleets.items()) {
    std::string Where = Path + ": fleets[" + std::to_string(Idx++) + "]";
    lintFleetPass(Where, F);
    if (!F.isObject())
      continue;
    if (!F.get("shards").isNumber() || F.get("shards").asNumber() < 1)
      finding(Where + ": bad shard count");
    else {
      double Shards = F.get("shards").asNumber();
      if (Shards <= PrevShards)
        finding(Where + ": shard counts not strictly increasing");
      PrevShards = Shards;
    }
    if (!F.get("remote_hit_rate").isNumber() ||
        F.get("remote_hit_rate").asNumber() < 0 ||
        F.get("remote_hit_rate").asNumber() > 1)
      finding(Where + ": remote_hit_rate not in [0,1]");
    else if (MinHitRate > 0 && F.get("shards").asNumber() > 1 &&
             F.get("remote_hit_rate").asNumber() < MinHitRate)
      finding(Where + ": remote_hit_rate " +
              std::to_string(F.get("remote_hit_rate").asNumber()) +
              " below bound " + std::to_string(MinHitRate));
  }
  if (!J.get("speedup_at_4").isNumber())
    finding(Path + ": missing speedup_at_4");
  else if (MinSpeedup > 0 &&
           J.get("speedup_at_4").asNumber() < MinSpeedup)
    finding(Path + ": speedup_at_4 " +
            std::to_string(J.get("speedup_at_4").asNumber()) +
            " below bound " + std::to_string(MinSpeedup));
  return Findings ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// cert mode
//===----------------------------------------------------------------------===//

/// Splits one certificate line on single spaces (the format never emits
/// empty tokens).
std::vector<std::string> certTokens(const std::string &Line) {
  std::vector<std::string> Toks;
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t Sp = Line.find(' ', Pos);
    if (Sp == std::string::npos)
      Sp = Line.size();
    Toks.push_back(Line.substr(Pos, Sp - Pos));
    Pos = Sp + 1;
  }
  return Toks;
}

/// Strict decimal u64: digits only, no leading zeros (the writer never
/// produces them, and accepting them would let two spellings of one id
/// through a shape check).
bool certU64(const std::string &S, unsigned long long &Out) {
  if (S.empty() || (S.size() > 1 && S[0] == '0'))
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    if (Out > (~0ull - (C - '0')) / 10)
      return false;
    Out = Out * 10 + (C - '0');
  }
  return true;
}

int lintCert(const std::string &Path, int MinClaims,
             const std::vector<std::string> &RequireMeta) {
  std::string Text;
  if (!readAll(Path, Text)) {
    finding("cannot read " + Path);
    return 1;
  }
  if (Text.empty() || Text.back() != '\n') {
    finding(Path + ": does not end in a newline (truncated?)");
    return 1;
  }

  std::set<std::string> MetaKeys;
  unsigned long long NTy = 0, NTm = 0, NDv = 0, NCl = 0;
  bool SawHeader = false, SawEnd = false;
  size_t LineNo = 0, Pos = 0;
  while (Pos < Text.size()) {
    size_t NL = Text.find('\n', Pos);
    std::string Line = Text.substr(Pos, NL - Pos);
    Pos = NL + 1;
    ++LineNo;
    std::string Where = Path + ":" + std::to_string(LineNo);
    if (!SawHeader) {
      if (Line != "acpc 1") {
        finding(Where + ": bad header (want `acpc 1`): " + Line);
        return 1;
      }
      SawHeader = true;
      continue;
    }
    if (SawEnd) {
      finding(Where + ": content after the `end` trailer");
      break;
    }
    std::vector<std::string> T = certTokens(Line);
    const std::string &Tag = T[0];
    // Dense-sequential id check for the id-carrying records: the next
    // id is always the count so far.
    auto denseId = [&](unsigned long long Expect) {
      unsigned long long Id = 0;
      if (T.size() < 2 || !certU64(T[1], Id))
        finding(Where + ": record lacks a numeric id: " + Line);
      else if (Id != Expect)
        finding(Where + ": id " + T[1] + " is not dense-sequential (want " +
                std::to_string(Expect) + ")");
    };
    if (Tag == "m") {
      if (T.size() != 3 || T[1].empty() || T[1][0] != ':' ||
          T[2].empty() || T[2][0] != ':')
        finding(Where + ": malformed meta record: " + Line);
      else
        MetaKeys.insert(T[1].substr(1));
    } else if (Tag == "y") {
      denseId(NTy++);
    } else if (Tag == "t") {
      denseId(NTm++);
    } else if (Tag == "d") {
      denseId(NDv++);
    } else if (Tag == "q") {
      ++NCl;
      unsigned long long Did = 0;
      if (T.size() != 4 || !certU64(T[1], Did) || Did >= NDv)
        finding(Where + ": claim does not reference an earlier derivation: " +
                Line);
    } else if (Tag == "end") {
      SawEnd = true;
      unsigned long long E[4] = {0, 0, 0, 0};
      bool Ok = T.size() == 5;
      for (int I = 0; Ok && I != 4; ++I)
        Ok = certU64(T[I + 1], E[I]);
      if (!Ok)
        finding(Where + ": malformed trailer: " + Line);
      else if (E[0] != NTy || E[1] != NTm || E[2] != NDv || E[3] != NCl)
        finding(Where + ": trailer counts disagree with records (spliced?)");
    } else {
      finding(Where + ": unknown record tag `" + Tag + "`");
    }
  }
  if (!SawHeader)
    finding(Path + ": empty certificate");
  if (SawHeader && !SawEnd)
    finding(Path + ": missing `end` trailer (truncated?)");
  if (MinClaims > 0 && NCl < static_cast<unsigned long long>(MinClaims))
    finding(Path + ": has " + std::to_string(NCl) + " claims, expected >= " +
            std::to_string(MinClaims));
  for (const std::string &Key : RequireMeta)
    if (!MetaKeys.count(Key))
      finding(Path + ": required meta key `" + Key + "` missing");
  return Findings ? 1 : 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: aclint trace <file.json> [--require-span NAME]...\n"
      "              [--min-wa N] [--min-hl N] [--max-span-share NAME:PCT]...\n"
      "       aclint fleettrace <file.json> [--min-pids N]\n"
      "              [--expect-trace-id ID]\n"
      "       aclint metrics <file|-> [--require NAME]...\n"
      "       aclint fleet <file.json> [--min-speedup X] [--min-hit-rate R]\n"
      "       aclint cert <file.acpc> [--min-claims N] [--require-meta KEY]...\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Mode = argv[1], Path = argv[2];
  if (Mode == "fleettrace") {
    int MinPids = 0;
    std::string ExpectTraceId;
    for (int I = 3; I < argc; ++I) {
      std::string A = argv[I];
      auto needArg = [&](const char *Flag) -> const char * {
        if (I + 1 >= argc) {
          std::fprintf(stderr, "aclint: %s needs an argument\n", Flag);
          exit(2);
        }
        return argv[++I];
      };
      if (A == "--min-pids")
        MinPids = std::atoi(needArg("--min-pids"));
      else if (A == "--expect-trace-id")
        ExpectTraceId = needArg("--expect-trace-id");
      else
        return usage();
    }
    return lintFleettrace(Path, MinPids, ExpectTraceId);
  }
  if (Mode == "metrics") {
    std::vector<std::string> Require;
    for (int I = 3; I < argc; ++I) {
      std::string A = argv[I];
      if (A == "--require" && I + 1 < argc)
        Require.push_back(argv[++I]);
      else
        return usage();
    }
    return lintMetrics(Path, Require);
  }
  if (Mode == "fleet") {
    double MinSpeedup = 0, MinHitRate = 0;
    for (int I = 3; I < argc; ++I) {
      std::string A = argv[I];
      auto needArg = [&](const char *Flag) -> const char * {
        if (I + 1 >= argc) {
          std::fprintf(stderr, "aclint: %s needs an argument\n", Flag);
          exit(2);
        }
        return argv[++I];
      };
      if (A == "--min-speedup")
        MinSpeedup = std::atof(needArg("--min-speedup"));
      else if (A == "--min-hit-rate")
        MinHitRate = std::atof(needArg("--min-hit-rate"));
      else
        return usage();
    }
    return lintFleet(Path, MinSpeedup, MinHitRate);
  }
  if (Mode == "cert") {
    int MinClaims = 0;
    std::vector<std::string> RequireMeta;
    for (int I = 3; I < argc; ++I) {
      std::string A = argv[I];
      auto needArg = [&](const char *Flag) -> const char * {
        if (I + 1 >= argc) {
          std::fprintf(stderr, "aclint: %s needs an argument\n", Flag);
          exit(2);
        }
        return argv[++I];
      };
      if (A == "--min-claims")
        MinClaims = std::atoi(needArg("--min-claims"));
      else if (A == "--require-meta")
        RequireMeta.push_back(needArg("--require-meta"));
      else
        return usage();
    }
    return lintCert(Path, MinClaims, RequireMeta);
  }
  if (Mode != "trace")
    return usage();
  std::vector<std::string> RequiredSpans;
  std::vector<SpanShareBound> ShareBounds;
  int MinWA = 0, MinHL = 0;
  for (int I = 3; I < argc; ++I) {
    std::string A = argv[I];
    auto needArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "aclint: %s needs an argument\n", Flag);
        exit(2);
      }
      return argv[++I];
    };
    if (A == "--require-span")
      RequiredSpans.push_back(needArg("--require-span"));
    else if (A == "--min-wa")
      MinWA = std::atoi(needArg("--min-wa"));
    else if (A == "--min-hl")
      MinHL = std::atoi(needArg("--min-hl"));
    else if (A == "--max-span-share") {
      std::string Spec = needArg("--max-span-share");
      size_t Colon = Spec.rfind(':');
      if (Colon == std::string::npos || Colon == 0) {
        std::fprintf(stderr, "aclint: --max-span-share wants NAME:PCT\n");
        return 2;
      }
      ShareBounds.push_back(
          {Spec.substr(0, Colon), std::atof(Spec.c_str() + Colon + 1)});
    } else
      return usage();
  }
  return lintTrace(Path, RequiredSpans, MinWA, MinHL, ShareBounds);
}
