//===- aclint.cpp - Observability artifact lint ----------------------------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Validates the artifacts the observability surface emits, so CI can
// assert their shape without a Chrome or Prometheus install:
//
//   aclint trace <file.json> [--require-span NAME]... [--min-wa N] [--min-hl N]
//               [--max-span-share NAME:PCT]...
//       The file parses as Chrome trace-event JSON (object form), every
//       event is a well-formed complete event, every --require-span name
//       occurs at least once, and the embedded ruleProfile carries at
//       least N word-abstraction / heap-abstraction rule rows. Each
//       --max-span-share asserts that the summed duration of spans with
//       that name is at most PCT percent of the whole trace extent —
//       the perf gate uses this to pin phase-share regressions.
//
//   aclint metrics <file>        ("-" reads stdin)
//       The file is Prometheus text exposition format 0.0.4: every
//       sample line is `name[{labels}] value`, every sample's metric has
//       a preceding # TYPE of a known kind, summary quantile samples and
//       _sum/_count attach to a declared summary.
//
// Exit status: 0 clean, 1 lint findings (each printed on stderr), 2 usage.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using ac::support::Json;

namespace {

int Findings = 0;

void finding(const std::string &Msg) {
  std::fprintf(stderr, "aclint: %s\n", Msg.c_str());
  ++Findings;
}

bool readAll(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::stringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In.good())
    return false;
  std::stringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

//===----------------------------------------------------------------------===//
// trace mode
//===----------------------------------------------------------------------===//

/// A `--max-span-share wordabs.fn:40` style bound, parsed up front.
struct SpanShareBound {
  std::string Name;
  double MaxPct;
};

int lintTrace(const std::string &Path,
              const std::vector<std::string> &RequiredSpans, int MinWA,
              int MinHL, const std::vector<SpanShareBound> &ShareBounds) {
  std::string Text;
  if (!readAll(Path, Text)) {
    finding("cannot read " + Path);
    return 1;
  }
  Json J;
  std::string Err;
  if (!Json::parse(Text, J, Err)) {
    finding(Path + ": not valid JSON: " + Err);
    return 1;
  }
  if (!J.isObject() || !J.get("traceEvents").isArray()) {
    finding(Path + ": no traceEvents array (not object-form Chrome JSON)");
    return 1;
  }

  std::set<std::string> Seen;
  std::map<std::string, double> SpanDur;
  double MinTs = 0, MaxEnd = 0;
  bool AnyEvent = false;
  size_t Idx = 0;
  for (const Json &E : J.get("traceEvents").items()) {
    std::string Where = Path + ": traceEvents[" + std::to_string(Idx++) + "]";
    if (!E.isObject()) {
      finding(Where + ": not an object");
      continue;
    }
    if (!E.get("name").isString() || E.get("name").asString().empty())
      finding(Where + ": missing name");
    if (E.get("ph").asString() != "X")
      finding(Where + ": ph is not \"X\" (complete event)");
    if (!E.get("ts").isNumber() || E.get("ts").asNumber() < 0)
      finding(Where + ": bad ts");
    if (!E.get("dur").isNumber() || E.get("dur").asNumber() < 0)
      finding(Where + ": bad dur");
    if (!E.get("pid").isNumber() || !E.get("tid").isNumber())
      finding(Where + ": missing pid/tid");
    Seen.insert(E.get("name").asString());
    if (E.get("ts").isNumber() && E.get("dur").isNumber()) {
      double Ts = E.get("ts").asNumber(), Dur = E.get("dur").asNumber();
      SpanDur[E.get("name").asString()] += Dur;
      if (!AnyEvent || Ts < MinTs)
        MinTs = Ts;
      if (!AnyEvent || Ts + Dur > MaxEnd)
        MaxEnd = Ts + Dur;
      AnyEvent = true;
    }
  }

  for (const std::string &Name : RequiredSpans)
    if (!Seen.count(Name))
      finding(Path + ": required span `" + Name + "` never recorded");

  if (!ShareBounds.empty()) {
    double Extent = AnyEvent ? MaxEnd - MinTs : 0;
    if (Extent <= 0) {
      finding(Path + ": --max-span-share needs a non-empty trace");
    } else {
      for (const SpanShareBound &B : ShareBounds) {
        double Pct = 100.0 * SpanDur[B.Name] / Extent;
        char Buf[160];
        std::snprintf(Buf, sizeof(Buf), "%s: span `%s` is %.1f%% of the trace",
                      Path.c_str(), B.Name.c_str(), Pct);
        if (Pct > B.MaxPct)
          finding(std::string(Buf) + ", bound is " +
                  std::to_string(B.MaxPct) + "%");
        else
          std::fprintf(stderr, "aclint: ok: %s (bound %.1f%%)\n", Buf,
                       B.MaxPct);
      }
    }
  }

  if (MinWA > 0 || MinHL > 0) {
    const Json &RP = J.get("ruleProfile");
    if (!RP.isObject()) {
      finding(Path + ": no ruleProfile object");
    } else {
      int WA = 0, HL = 0;
      for (const auto &[Name, Stat] : RP.members()) {
        if (!Stat.isObject() || !Stat.get("fires").isNumber())
          finding(Path + ": ruleProfile." + Name + ": malformed row");
        if (Name.rfind("WA.", 0) == 0)
          ++WA;
        else if (Name.rfind("HL.", 0) == 0)
          ++HL;
      }
      if (WA < MinWA)
        finding(Path + ": ruleProfile has " + std::to_string(WA) +
                " word-abs rules, expected >= " + std::to_string(MinWA));
      if (HL < MinHL)
        finding(Path + ": ruleProfile has " + std::to_string(HL) +
                " heap-abs rules, expected >= " + std::to_string(MinHL));
    }
  }
  return Findings ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// metrics mode
//===----------------------------------------------------------------------===//

bool validMetricName(const std::string &N) {
  if (N.empty())
    return false;
  for (size_t I = 0; I != N.size(); ++I) {
    char C = N[I];
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              C == '_' || C == ':' || (I > 0 && C >= '0' && C <= '9');
    if (!Ok)
      return false;
  }
  return true;
}

int lintMetrics(const std::string &Path) {
  std::string Text;
  if (!readAll(Path, Text)) {
    finding("cannot read " + Path);
    return 1;
  }
  std::set<std::string> Typed, Summaries;
  std::istringstream Lines(Text);
  std::string Line;
  int LineNo = 0;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::string Where = Path + ":" + std::to_string(LineNo);
    if (Line.empty())
      continue;
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream T(Line.substr(7));
      std::string Name, Kind;
      T >> Name >> Kind;
      if (!validMetricName(Name))
        finding(Where + ": bad metric name in TYPE: " + Name);
      if (Kind != "counter" && Kind != "gauge" && Kind != "summary" &&
          Kind != "histogram" && Kind != "untyped")
        finding(Where + ": unknown TYPE kind: " + Kind);
      if (Typed.count(Name))
        finding(Where + ": duplicate TYPE for " + Name);
      Typed.insert(Name);
      if (Kind == "summary")
        Summaries.insert(Name);
      continue;
    }
    if (Line[0] == '#')
      continue; // HELP and free comments
    size_t Sp = Line.rfind(' ');
    if (Sp == std::string::npos) {
      finding(Where + ": sample line has no value: " + Line);
      continue;
    }
    std::string Value = Line.substr(Sp + 1);
    char *End = nullptr;
    std::strtod(Value.c_str(), &End);
    if (End == Value.c_str() || *End != '\0')
      finding(Where + ": unparsable sample value: " + Value);

    std::string Name = Line.substr(0, Line.find_first_of("{ "));
    if (!validMetricName(Name)) {
      finding(Where + ": bad metric name: " + Name);
      continue;
    }
    // A summary's _sum/_count samples belong to the declared base.
    std::string Base = Name;
    for (const char *Suffix : {"_sum", "_count"}) {
      size_t L = Name.size(), SL = std::strlen(Suffix);
      if (L > SL && Name.compare(L - SL, SL, Suffix) == 0 &&
          Summaries.count(Name.substr(0, L - SL)))
        Base = Name.substr(0, L - SL);
    }
    if (!Typed.count(Base))
      finding(Where + ": sample without preceding TYPE: " + Name);
    if (Base == Name && Summaries.count(Name) &&
        Line.find("quantile=\"") == std::string::npos)
      finding(Where + ": summary sample without quantile label: " + Line);
  }
  if (Typed.empty())
    finding(Path + ": no metrics at all");
  return Findings ? 1 : 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: aclint trace <file.json> [--require-span NAME]...\n"
      "              [--min-wa N] [--min-hl N] [--max-span-share NAME:PCT]...\n"
      "       aclint metrics <file|->\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Mode = argv[1], Path = argv[2];
  if (Mode == "metrics") {
    if (argc != 3)
      return usage();
    return lintMetrics(Path);
  }
  if (Mode != "trace")
    return usage();
  std::vector<std::string> RequiredSpans;
  std::vector<SpanShareBound> ShareBounds;
  int MinWA = 0, MinHL = 0;
  for (int I = 3; I < argc; ++I) {
    std::string A = argv[I];
    auto needArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "aclint: %s needs an argument\n", Flag);
        exit(2);
      }
      return argv[++I];
    };
    if (A == "--require-span")
      RequiredSpans.push_back(needArg("--require-span"));
    else if (A == "--min-wa")
      MinWA = std::atoi(needArg("--min-wa"));
    else if (A == "--min-hl")
      MinHL = std::atoi(needArg("--min-hl"));
    else if (A == "--max-span-share") {
      std::string Spec = needArg("--max-span-share");
      size_t Colon = Spec.rfind(':');
      if (Colon == std::string::npos || Colon == 0) {
        std::fprintf(stderr, "aclint: --max-span-share wants NAME:PCT\n");
        return 2;
      }
      ShareBounds.push_back(
          {Spec.substr(0, Colon), std::atof(Spec.c_str() + Colon + 1)});
    } else
      return usage();
  }
  return lintTrace(Path, RequiredSpans, MinWA, MinHL, ShareBounds);
}
