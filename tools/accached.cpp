//===- accached.cpp - The fleet's shared cache daemon ----------------------===//
//
// Content-addressed store of serialized abstraction-cache entries, shared
// by every acd shard in a fleet as a third cache tier (memory -> disk ->
// remote; docs/PROTOCOL.md "Remote cache"). One shard's cold miss becomes
// every other shard's warm hit.
//
//   accached --listen 127.0.0.1:0 --auth-token-file fleet.token
//
// SIGTERM / SIGINT (or a client `drain` request) exit gracefully; the
// store is memory-only, so there is nothing to flush.
//
//===----------------------------------------------------------------------===//

#include "cache/RemoteCache.h"
#include "service/Protocol.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

using namespace ac::cache;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --socket PATH      listening Unix socket (default: none)\n"
      "  --listen HOST:PORT listen on TCP (port 0 picks an ephemeral\n"
      "                     port, printed at startup)\n"
      "  --auth-token-file F require the shared token in F on every TCP\n"
      "                     connection\n"
      "  --trace            keep spans in memory for the `trace_pull`\n"
      "                     op (fleet tracing)\n"
      "  --log-file PATH    append structured JSONL log lines to PATH\n"
      "  --log-level LVL    debug|info|warn|error|off (default: info)\n",
      Argv0);
}

} // namespace

int main(int argc, char **argv) {
  RemoteCacheServerOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--socket") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.SocketPath = V;
    } else if (Arg == "--listen") {
      const char *V = Next();
      if (!V) {
        usage(argv[0]);
        return 2;
      }
      Opts.ListenAddr = V;
    } else if (Arg == "--auth-token-file") {
      const char *V = Next();
      if (!V || !ac::service::readTokenFile(V, Opts.AuthToken)) {
        std::fprintf(stderr, "accached: cannot read auth token file\n");
        return 2;
      }
    } else if (Arg == "--trace") {
      Opts.TraceLive = true;
    } else if (Arg == "--log-file") {
      const char *V = Next();
      if (!V || !ac::support::Log::setFile(V)) {
        std::fprintf(stderr, "accached: cannot open log file\n");
        return 2;
      }
    } else if (Arg == "--log-level") {
      const char *V = Next();
      ac::support::LogLevel Lv;
      if (!V || !ac::support::Log::parseLevel(V, Lv)) {
        usage(argv[0]);
        return 2;
      }
      ac::support::Log::setLevel(Lv);
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "accached: bad argument `%s`\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (Opts.SocketPath.empty() && Opts.ListenAddr.empty()) {
    std::fprintf(stderr, "accached: need --socket or --listen\n");
    return 2;
  }

  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGTERM);
  sigaddset(&Sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  RemoteCacheServer Srv(Opts);
  if (!Srv.start()) {
    std::fprintf(stderr, "accached: cannot listen\n");
    return 1;
  }
  if (!Opts.SocketPath.empty())
    std::printf("accached: listening on %s\n", Opts.SocketPath.c_str());
  if (!Opts.ListenAddr.empty())
    std::printf("accached: listening on tcp port %u\n",
                static_cast<unsigned>(Srv.tcpPort()));
  std::fflush(stdout);
  ac::support::Log::info("cached.started", {{"socket", Opts.SocketPath},
                                            {"listen", Opts.ListenAddr}});

  timespec Tick{0, 200 * 1000 * 1000};
  while (!Srv.draining()) {
    int Sig = sigtimedwait(&Sigs, nullptr, &Tick);
    if (Sig == SIGTERM || Sig == SIGINT)
      break;
  }

  std::printf("accached: draining\n");
  std::fflush(stdout);
  Srv.stop();
  std::printf("accached: drained, bye\n");
  ac::support::Log::info("cached.stopped",
                         {{"entries", static_cast<uint64_t>(
                                          Srv.store().size())},
                          {"hits", Srv.store().hits()}});
  return 0;
}
