//===- rule_profile.cpp - Live per-rule firing profile ---------------------===//
//
// The dynamic companion to rule_inventory (which lists the *registered*
// rules of Tables 3 and 4): runs the profiled pipeline over real corpus
// programs plus a Table 5-scale synthetic program and prints, per named
// rule, how often it fired, how often it matched in shape but failed a
// sub-derivation, and its cumulative self time. This is where "~40
// word-abs rules, 35 heap-abs rules" stops being an inventory claim and
// becomes a measured distribution: which rules carry the abstraction
// load, and which never fire on a given corpus.
//
//   rule_profile [corpus]   (default: the full embedded set + echronos)
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "corpus/Synthetic.h"
#include "heapabs/HeapAbs.h"
#include "hol/Thm.h"
#include "support/RuleProfile.h"
#include "wordabs/WordAbs.h"

#include <cstdio>
#include <string>

using namespace ac;

int main(int argc, char **argv) {
  support::RuleProfile::setEnabled(true);

  std::vector<std::string> Sources;
  if (argc > 1 && std::string(argv[1]) == "echronos") {
    Sources.push_back(
        corpus::generateSyntheticProgram(corpus::echronosScale()));
  } else {
    for (const char *Src :
         {corpus::maxSource(), corpus::swapSource(), corpus::reverseSource(),
          corpus::gcdSource(), corpus::suzukiSource(),
          corpus::schorrWaiteSource(), corpus::memsetSource(),
          corpus::binarySearchSource(), corpus::midpointSource()})
      Sources.push_back(Src);
    Sources.push_back(
        corpus::generateSyntheticProgram(corpus::echronosScale()));
  }

  unsigned Failed = 0;
  for (const std::string &Src : Sources) {
    DiagEngine Diags;
    if (!core::AutoCorres::run(Src, Diags))
      ++Failed;
  }
  if (Failed)
    std::fprintf(stderr, "rule_profile: %u corpus runs failed\n", Failed);

  // Zero-fire rules are data too: fill in the standard families the
  // corpus may not have minted, then give every registered WA./HL.
  // axiom a row so "never fired on this corpus" is visible in the table.
  wordabs::WordAbstraction::registerStandardRules();
  heapabs::HeapAbstraction::registerStandardRules();
  unsigned WA = 0, HL = 0;
  for (const auto &[N, P] : hol::Inventory::instance().axioms()) {
    if (N.rfind("WA.", 0) == 0) {
      ++WA;
      support::RuleProfile::preregister(N);
    } else if (N.rfind("HL.", 0) == 0) {
      ++HL;
      support::RuleProfile::preregister(N);
    }
  }

  std::fputs(support::RuleProfile::table().c_str(), stdout);

  unsigned WAFired = 0, HLFired = 0;
  for (const auto &[N, S] : support::RuleProfile::snapshot()) {
    if (S.Fires == 0)
      continue;
    if (N.rfind("WA.", 0) == 0)
      ++WAFired;
    else if (N.rfind("HL.", 0) == 0)
      ++HLFired;
  }
  std::printf("\nword-abs rules: %u registered, %u fired\n", WA, WAFired);
  std::printf("heap-abs rules: %u registered, %u fired\n", HL, HLFired);
  return Failed == 0 ? 0 : 1;
}
