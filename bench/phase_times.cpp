//===- phase_times.cpp - Per-phase pipeline timing -------------------------===//
//
// Where the Table 5 "AutoCorres takes longer than the parser" cost goes
// (the paper attributes it to the proof-producing abstraction phases).
//
// The table is span-driven: instead of hand-placed timers around
// re-implemented phase drivers (which measured phases in isolation and
// drifted from the real pipeline whenever it changed), one traced
// AutoCorres::run records the same AC_SPAN instrumentation every layer
// already carries, and the table aggregates Trace::summarize(). The
// bench and a Chrome trace of the same run can never disagree.
//
//   phase_times [corpus] [iterations]   (default: echronos, 3)
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Synthetic.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace ac;

namespace {

/// Pipeline-ordered presentation of the span names worth a row. Spans
/// not listed here (pool bookkeeping, umbrella scopes) still show up in
/// the "other traced" tail so nothing is silently dropped.
struct PhaseRow {
  const char *Span;
  const char *Label;
};

const PhaseRow Rows[] = {
    {"cparser.lex", "C lexing"},
    {"cparser.parse", "C parsing"},
    {"cparser.sema", "semantic analysis"},
    {"simpl.translate", "SIMPL translation"},
    {"cache.fingerprint", "cache fingerprinting"},
    {"cache.load", "cache load"},
    {"monad.l1", "L1 conversion"},
    {"monad.l2", "L2 lifting"},
    {"heapabs.fn", "heap abstraction"},
    {"wordabs.fn", "word abstraction"},
    {"monad.peephole", "peephole polish"},
    {"core.compose", "theorem composition"},
    {"cache.save", "cache save"},
};

/// Umbrella spans whose time is already split across the rows above;
/// counting them again would double-book the "other" tail.
bool isUmbrella(const std::string &Name) {
  return Name == "ac.run" || Name == "core.fn" || Name == "parse" ||
         Name == "pool.task";
}

} // namespace

int main(int argc, char **argv) {
  std::string Corpus = argc > 1 ? argv[1] : "echronos";
  unsigned Iters = argc > 2 ? static_cast<unsigned>(atoi(argv[2])) : 3;
  if (Iters == 0)
    Iters = 1;

  corpus::SyntheticSpec Spec;
  if (Corpus == "sel4")
    Spec = corpus::sel4Scale();
  else if (Corpus == "capdl")
    Spec = corpus::capdlScale();
  else if (Corpus == "piccolo")
    Spec = corpus::piccoloScale();
  else if (Corpus == "echronos")
    Spec = corpus::echronosScale();
  else {
    std::fprintf(stderr, "phase_times: unknown corpus `%s`\n",
                 Corpus.c_str());
    return 2;
  }
  std::string Src = corpus::generateSyntheticProgram(Spec);

  support::Trace::start();
  double WallS = 0;
  for (unsigned I = 0; I != Iters; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    DiagEngine Diags;
    auto AC = core::AutoCorres::run(Src, Diags);
    WallS +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    if (!AC) {
      std::fprintf(stderr, "phase_times: pipeline failed:\n%s\n",
                   Diags.str().c_str());
      return 1;
    }
  }
  support::Trace::stop();

  auto Summary = support::Trace::summarize();
  std::printf("phase_times: corpus=%s iterations=%u wall=%.3fs\n\n",
              Corpus.c_str(), Iters, WallS);
  std::printf("%-24s %8s %12s %7s\n", "phase", "spans", "total_ms",
              "%wall");
  double AccountedMs = 0;
  double WallMs = WallS * 1e3;
  for (const PhaseRow &Row : Rows) {
    auto It = Summary.find(Row.Span);
    if (It == Summary.end())
      continue;
    double Ms = static_cast<double>(It->second.TotalNs) / 1e6;
    AccountedMs += Ms;
    std::printf("%-24s %8llu %12.2f %6.1f%%\n", Row.Label,
                static_cast<unsigned long long>(It->second.Count), Ms,
                100.0 * Ms / WallMs);
    Summary.erase(It);
  }
  double OtherMs = 0;
  uint64_t OtherCount = 0;
  for (const auto &[Name, S] : Summary) {
    if (isUmbrella(Name))
      continue;
    OtherMs += static_cast<double>(S.TotalNs) / 1e6;
    OtherCount += S.Count;
  }
  if (OtherCount)
    std::printf("%-24s %8llu %12.2f %6.1f%%\n", "other traced",
                static_cast<unsigned long long>(OtherCount), OtherMs,
                100.0 * OtherMs / WallMs);
  std::printf("%-24s %8s %12.2f %6.1f%%\n", "accounted", "", AccountedMs,
              100.0 * AccountedMs / WallMs);
  return 0;
}
