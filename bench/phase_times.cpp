//===- phase_times.cpp - Per-phase pipeline timing --------------------------===//
//
// google-benchmark timing of the pipeline phases over a medium corpus:
// where the Table 5 "AutoCorres takes longer than the parser" cost goes
// (the paper attributes it to the proof-producing abstraction phases).
//
//===----------------------------------------------------------------------===//

#include "corpus/Synthetic.h"
#include "core/AutoCorres.h"
#include "heapabs/HeapAbs.h"
#include "monad/L1.h"
#include "monad/L2.h"
#include "wordabs/WordAbs.h"

#include <benchmark/benchmark.h>

using namespace ac;

namespace {

const std::string &mediumCorpus() {
  static std::string Src =
      corpus::generateSyntheticProgram(corpus::echronosScale());
  return Src;
}

void BM_ParseAndTranslate(benchmark::State &State) {
  for (auto _ : State) {
    DiagEngine Diags;
    auto P = simpl::parseAndTranslate(mediumCorpus(), Diags);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseAndTranslate);

void BM_L1Conversion(benchmark::State &State) {
  DiagEngine Diags;
  auto P = simpl::parseAndTranslate(mediumCorpus(), Diags);
  for (auto _ : State) {
    monad::InterpCtx Ctx(P.get());
    auto L1 = monad::convertAllL1(*P, Ctx);
    benchmark::DoNotOptimize(L1);
  }
}
BENCHMARK(BM_L1Conversion);

void BM_L2Lifting(benchmark::State &State) {
  DiagEngine Diags;
  auto P = simpl::parseAndTranslate(mediumCorpus(), Diags);
  for (auto _ : State) {
    monad::InterpCtx Ctx(P.get());
    auto L2 = monad::convertAllL2(*P, Ctx);
    benchmark::DoNotOptimize(L2);
  }
}
BENCHMARK(BM_L2Lifting);

void BM_HeapAbstraction(benchmark::State &State) {
  DiagEngine Diags;
  auto P = simpl::parseAndTranslate(mediumCorpus(), Diags);
  monad::InterpCtx Ctx(P.get());
  auto L2 = monad::convertAllL2(*P, Ctx);
  for (auto _ : State) {
    heapabs::HeapAbstraction HL(*P, Ctx);
    for (const std::string &Name : P->FunctionOrder)
      HL.abstractFunction(*P->function(Name), L2.at(Name));
    benchmark::DoNotOptimize(HL.results().size());
  }
}
BENCHMARK(BM_HeapAbstraction);

void BM_WholePipeline(benchmark::State &State) {
  for (auto _ : State) {
    DiagEngine Diags;
    auto AC = core::AutoCorres::run(mediumCorpus(), Diags);
    benchmark::DoNotOptimize(AC);
  }
}
BENCHMARK(BM_WholePipeline);

} // namespace

BENCHMARK_MAIN();
