//===- fig6_reverse.cpp - Reproduces Fig 6 ---------------------------------===//
//
// In-place linked list reversal: the C source and its AutoCorres
// translation, whose loop iterates over exactly the live tuple
// (list, rev), plus the Sec 5.2 ported proof (see table6_proof_effort
// for the full component breakdown).
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/CaseStudies.h"
#include "corpus/Sources.h"
#include "hol/Print.h"

#include <cstdio>

using namespace ac;

int main() {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(corpus::reverseSource(), Diags);
  if (!AC) {
    printf("pipeline failed:\n%s\n", Diags.str().c_str());
    return 1;
  }
  printf("C source:\n%s\n", corpus::reverseSource());
  printf("AutoCorres translation (Fig 6):\n%s\n\n",
         AC->render("reverse").c_str());

  corpus::CaseStudyReport Rep = corpus::verifyListReversal();
  printf("Sec 5.2 port of Mehta & Nipkow's proof: %s (%s)\n",
         Rep.Verified ? "verified" : "FAILED",
         Rep.TotalCorrectness ? "total correctness" : "partial only");
  for (const auto &C : Rep.Components)
    printf("  %-24s %4u lines %s\n", C.Name.c_str(), C.ScriptLines,
           C.Ok ? "" : "(FAILED)");
  for (const auto &F : Rep.Failures)
    printf("  failure: %s\n", F.c_str());
  return Rep.Verified ? 0 : 1;
}
