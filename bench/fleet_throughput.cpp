//===- fleet_throughput.cpp - Router + remote cache tier under load --------===//
//
// Measures what the fleet exists for: aggregate check throughput across
// shards behind acrouter, and the cost of a shard restart. The workload
// is a stream of *distinct* translation units (a CI fleet checking many
// files), driven by dozens of concurrent clients through the real
// router socket, with every response byte-compared against a reference
// captured up front — zero correctness diffs is part of the pass
// criterion, not an afterthought.
//
// The headline comparison: after a restart (deploy) wipes the local
// memory and disk tiers, a standalone daemon — the pre-fleet
// architecture — re-pays full verification for every request, while
// fleet shards refill from the shared accached store. The requests/sec
// ratio between those two is the speedup column; the acceptance floor
// is 5x at 4 shards. Per shard count we also report p50/p99 client
// latency and the remote-tier hit rate observed by the accached store.
//
// A second, overload-focused pass drives a deliberately small fleet at
// 4x saturation with a 3:1 bulk:interactive mix, per-tenant quotas on.
// Pass criteria: interactive p99 within 2x of its unloaded value, at
// least 90% of sheds landing on bulk, zero starved tenants, and zero
// byte diffs among completed answers.
//
// Results are printed as a table and written to BENCH_fleet.json
// (linted by `aclint fleet`).
//
//===----------------------------------------------------------------------===//

#include "cache/RemoteCache.h"
#include "corpus/Synthetic.h"
#include "router/Router.h"
#include "service/CheckRunner.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Json.h"
#include "support/Log.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace ac;
using namespace ac::service;
using ac::support::Json;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

double percentile(std::vector<double> V, double Q) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(Q * (V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

/// The byte-identity snapshot (same shape as RouterTest's): every spec,
/// key, pipeline line and diagnostic a response carries.
std::string snapshot(const CheckResponse &R) {
  std::string S;
  for (const FuncResult &F : R.Functions)
    S += "== " + F.Name + "\n" + F.FinalKey + "\n" + F.Render + "\n" +
         F.Pipeline + "\n";
  for (const std::string &D : R.Diagnostics)
    S += D + "\n";
  return S;
}

/// One measured pass: C client threads drive the source pool through
/// `dial`, each source exactly once, byte-checking against `Refs`.
struct PassResult {
  double Rps = 0, P50 = 0, P99 = 0;
  int Ok = 0, Diffs = 0, Requests = 0;
};

template <typename DialFn>
PassResult drivePool(const std::vector<std::string> &Pool,
                     const std::vector<std::string> &Refs, unsigned Clients,
                     DialFn dial, std::vector<std::string> *CaptureRefs) {
  PassResult R;
  R.Requests = static_cast<int>(Pool.size());
  std::vector<std::thread> Ts;
  std::vector<std::vector<double>> Lat(Clients);
  std::atomic<int> Ok{0}, Diffs{0};
  auto T0 = Clock::now();
  for (unsigned CI = 0; CI != Clients; ++CI)
    Ts.emplace_back([&, CI] {
      Client C = dial();
      for (size_t I = CI; I < Pool.size(); I += Clients) {
        CheckRequest Req;
        Req.Source = Pool[I];
        CheckResponse Resp;
        std::string Err;
        auto TR = Clock::now();
        bool Sent = C.checkRetry(Req, Resp, Err);
        Lat[CI].push_back(msSince(TR));
        if (!Sent || !Resp.Ok) {
          ++Diffs; // a lost request is a correctness diff, not a blip
          continue;
        }
        ++Ok;
        if (CaptureRefs)
          (*CaptureRefs)[I] = snapshot(Resp);
        else if (snapshot(Resp) != Refs[I])
          ++Diffs;
      }
    });
  for (std::thread &T : Ts)
    T.join();
  double Secs = msSince(T0) / 1e3;
  std::vector<double> AllMs;
  for (const std::vector<double> &L : Lat)
    AllMs.insert(AllMs.end(), L.begin(), L.end());
  R.Rps = Secs > 0 ? Ok.load() / Secs : 0;
  R.P50 = percentile(AllMs, 0.50);
  R.P99 = percentile(AllMs, 0.99);
  R.Ok = Ok.load();
  R.Diffs = Diffs.load();
  return R;
}

} // namespace

int main() {
  // Per-request info logs from five daemons would drown the table.
  support::Log::setLevel(support::LogLevel::Warn);
  std::string Root =
      (std::filesystem::temp_directory_path() / "ac-fleet-bench").string();
  std::filesystem::remove_all(Root);
  std::filesystem::create_directories(Root);

  // The workload: a pool of distinct small translation units (the fleet
  // case is many files, not one file many times — repeats of one file
  // pin to one shard by design, cache affinity).
  constexpr unsigned PoolSize = 96, Clients = 32;
  std::vector<std::string> Pool;
  for (unsigned I = 0; I != PoolSize; ++I) {
    corpus::SyntheticSpec Spec;
    Spec.Name = "fleet" + std::to_string(I);
    Spec.TargetFunctions = 3;
    Spec.StatementsPerFunction = 14;
    Spec.Seed = I + 1;
    Pool.push_back(corpus::generateSyntheticProgram(Spec));
  }

  // The shared content-addressed store every fleet shard writes through
  // to — one accached, in-process, on a private Unix socket.
  cache::RemoteCacheServerOptions CO;
  CO.SocketPath = Root + "/accached.sock";
  cache::RemoteCacheServer Cached(CO);
  if (!Cached.start()) {
    std::printf("cannot start accached on %s\n", CO.SocketPath.c_str());
    return 1;
  }

  // Seed pass: one daemon with the remote tier attached computes the
  // whole pool cold, write-through warming accached, and its responses
  // become the byte-identity reference for every later pass.
  std::vector<std::string> Refs(PoolSize);
  PassResult Seed;
  {
    cache::RemoteCacheClient Remote(CO.SocketPath);
    ServerOptions SO;
    SO.SocketPath = Root + "/seed.sock";
    SO.Workers = 2;
    SO.QueueCapacity = 32;
    SO.CacheDir = Root + "/seed-cache";
    SO.Remote = &Remote;
    Server Srv(SO);
    if (!Srv.start()) {
      std::printf("cannot start seed daemon\n");
      return 1;
    }
    Seed = drivePool(Pool, Refs, Clients,
                     [&] { return Client::connect(SO.SocketPath); }, &Refs);
    Srv.stop();
    if (Seed.Ok != static_cast<int>(PoolSize)) {
      std::printf("seed pass failed: %d/%u ok\n", Seed.Ok, PoolSize);
      return 1;
    }
  }
  // Spot-check the reference against the in-process pipeline: the
  // daemon-served bytes and a local run must agree before we benchmark.
  for (unsigned I = 0; I != PoolSize; I += PoolSize / 4) {
    CheckRequest Req;
    Req.Source = Pool[I];
    CheckResponse Local = runLocalCheck(Req);
    if (!Local.Ok || snapshot(Local) != Refs[I]) {
      std::printf("reference diverged from in-process run at source %u\n",
                  I);
      return 1;
    }
  }

  // Baseline: the pre-fleet architecture after a restart. A standalone
  // daemon with fresh tiers and no remote store recomputes everything.
  PassResult Single;
  {
    ServerOptions SO;
    SO.SocketPath = "";
    SO.ListenAddr = "127.0.0.1:0";
    SO.Workers = 2;
    SO.QueueCapacity = 32;
    SO.CacheDir = Root + "/single-cache";
    Server Srv(SO);
    if (!Srv.start()) {
      std::printf("cannot start baseline daemon\n");
      return 1;
    }
    std::string Addr = "127.0.0.1:" + std::to_string(Srv.tcpPort());
    Single = drivePool(Pool, Refs, Clients,
                       [&] {
                         std::string Err;
                         return Client::connectTcp(Addr, "", Err);
                       },
                       nullptr);
    Srv.stop();
  }

  // Fleet passes: P fresh shards (cold memory + disk, like the baseline)
  // behind acrouter, refilling from the warm accached store.
  struct FleetRow {
    unsigned Shards;
    PassResult R;
    double HitRate;
  };
  std::vector<FleetRow> Rows;
  for (unsigned P : {1u, 2u, 4u}) {
    std::string Dir = Root + "/fleet" + std::to_string(P);
    std::filesystem::create_directories(Dir);
    std::vector<std::unique_ptr<cache::RemoteCacheClient>> Remotes;
    std::vector<std::unique_ptr<Server>> Shards;
    router::RouterOptions RO;
    for (unsigned I = 0; I != P; ++I) {
      Remotes.push_back(
          std::make_unique<cache::RemoteCacheClient>(CO.SocketPath));
      ServerOptions SO;
      SO.SocketPath = "";
      SO.ListenAddr = "127.0.0.1:0";
      SO.Workers = 2;
      SO.QueueCapacity = 32;
      SO.CacheDir = Dir + "/shard" + std::to_string(I);
      SO.Remote = Remotes.back().get();
      auto S = std::make_unique<Server>(SO);
      if (!S->start()) {
        std::printf("cannot start shard %u/%u\n", I, P);
        return 1;
      }
      RO.Shards.push_back("127.0.0.1:" + std::to_string(S->tcpPort()));
      Shards.push_back(std::move(S));
    }
    RO.SocketPath = Dir + "/r.sock";
    RO.MaxInFlightPerShard = 16;
    RO.RetryAfterMs = 5;
    RO.HealthProbeMs = 200;
    router::Router R(RO);
    if (!R.start()) {
      std::printf("cannot start router for %u shards\n", P);
      return 1;
    }
    uint64_t Gets0 = Cached.store().gets(), Hits0 = Cached.store().hits();
    PassResult PR =
        drivePool(Pool, Refs, Clients,
                  [&] { return Client::connect(RO.SocketPath); }, nullptr);
    uint64_t Gets = Cached.store().gets() - Gets0;
    uint64_t Hits = Cached.store().hits() - Hits0;
    R.stop();
    for (auto &S : Shards)
      S->stop();
    Rows.push_back(
        {P, PR, Gets ? static_cast<double>(Hits) / Gets : 0.0});
  }

  // Overload pass: the same warm pool against a deliberately small
  // fleet (2 shards, 1 worker and a 4-slot queue each, per-tenant
  // quotas on), first with interactive load alone, then with 4x the
  // client count by adding a 3:1 bulk mix on top. The overload
  // contract: the bulk flood is shed (staleness + quota), not queued
  // ahead of interactive work, so interactive p99 stays within 2x of
  // its unloaded value; at least 90% of sheds land on bulk; every
  // tenant still completes work; and completed answers stay
  // byte-identical to the reference.
  struct OverloadResult {
    double UnloadedP99 = 0, LoadedP99 = 0;
    uint64_t InteractiveOk = 0, BulkOk = 0;
    uint64_t ShedBulk = 0, ShedInteractive = 0, Busy = 0;
    int Diffs = 0, StarvedTenants = 0;
  } Ov;
  {
    std::string Dir = Root + "/overload";
    std::filesystem::create_directories(Dir);
    std::vector<std::unique_ptr<cache::RemoteCacheClient>> Remotes;
    std::vector<std::unique_ptr<Server>> Shards;
    router::RouterOptions RO;
    for (unsigned I = 0; I != 2; ++I) {
      Remotes.push_back(
          std::make_unique<cache::RemoteCacheClient>(CO.SocketPath));
      ServerOptions SO;
      SO.SocketPath = "";
      SO.ListenAddr = "127.0.0.1:0";
      SO.Workers = 1;
      SO.QueueCapacity = 4;
      // Quotas on, sized so the paced interactive tenants never hit
      // them: the sheds this pass measures come from bulk staleness.
      SO.TenantQuotaRps = 2000;
      SO.CacheDir = Dir + "/shard" + std::to_string(I);
      SO.Remote = Remotes.back().get();
      auto S = std::make_unique<Server>(SO);
      if (!S->start()) {
        std::printf("cannot start overload shard %u\n", I);
        return 1;
      }
      RO.Shards.push_back("127.0.0.1:" + std::to_string(S->tcpPort()));
      Shards.push_back(std::move(S));
    }
    RO.SocketPath = Dir + "/r.sock";
    RO.RetryAfterMs = 2;
    RO.HealthProbeMs = 200;
    router::Router R(RO);
    if (!R.start()) {
      std::printf("cannot start overload router\n");
      return 1;
    }

    const std::array<const char *, 4> FgTenants = {"fg0", "fg1", "fg2",
                                                   "fg3"};
    const std::array<const char *, 4> BulkTenants = {"bulk0", "bulk1",
                                                     "bulk2", "bulk3"};
    std::mutex TenantsM;
    std::map<std::string, uint64_t> TenantOk;

    // One interactive client: paced (2 ms think time) so the
    // interactive load alone never saturates the fleet — the unloaded
    // p99 is a real latency floor, not another congestion measurement.
    auto interactiveClient = [&](unsigned Id, int Requests,
                                 std::vector<double> &Lat,
                                 std::atomic<uint64_t> &OkC,
                                 std::atomic<uint64_t> &ShedC,
                                 std::atomic<uint64_t> &BusyC,
                                 std::atomic<int> &DiffsC) {
      for (int I = 0; I != Requests; ++I) {
        size_t Src = (Id * 131 + static_cast<size_t>(I) * 17) % PoolSize;
        CheckRequest Req;
        Req.Source = Pool[Src];
        Req.Tenant = FgTenants[Id % FgTenants.size()];
        Client C = Client::connect(RO.SocketPath);
        CheckResponse Resp;
        std::string Err;
        auto TR = Clock::now();
        bool Sent = C.check(Req, Resp, Err);
        double Ms = msSince(TR);
        if (!Sent) {
          ++DiffsC;
        } else if (Resp.Ok) {
          Lat.push_back(Ms);
          OkC.fetch_add(1);
          if (snapshot(Resp) != Refs[Src])
            ++DiffsC;
          std::lock_guard<std::mutex> L(TenantsM);
          TenantOk[Req.Tenant]++;
        } else if (Resp.Err == ErrorCode::Shed) {
          ShedC.fetch_add(1);
        } else if (Resp.Err == ErrorCode::Busy) {
          BusyC.fetch_add(1);
        } else {
          ++DiffsC; // interactive load must never see other errors here
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    };

    constexpr unsigned FgClients = 8;
    constexpr int FgRequests = 40;
    std::atomic<uint64_t> FgOk{0}, FgShed{0}, FgBusy{0};
    std::atomic<int> OvDiffs{0};

    // Phase 1: unloaded — interactive alone.
    {
      std::vector<std::vector<double>> Lat(FgClients);
      std::vector<std::thread> Ts;
      for (unsigned I = 0; I != FgClients; ++I)
        Ts.emplace_back([&, I] {
          interactiveClient(I, FgRequests, Lat[I], FgOk, FgShed, FgBusy,
                            OvDiffs);
        });
      for (std::thread &T : Ts)
        T.join();
      std::vector<double> All;
      for (const std::vector<double> &L : Lat)
        All.insert(All.end(), L.begin(), L.end());
      Ov.UnloadedP99 = percentile(All, 0.99);
    }

    // Teach both shards that slow requests exist: a handful of held
    // requests (server-side debug delay) push the observed p99 service
    // time to tens of milliseconds, so a bulk deadline below it is
    // recognisably hopeless — the condition staleness shedding tests.
    {
      std::vector<std::thread> Ts;
      for (unsigned I = 0; I != 12; ++I)
        Ts.emplace_back([&, I] {
          corpus::SyntheticSpec Spec;
          Spec.Name = "ovslow" + std::to_string(I);
          Spec.TargetFunctions = 1;
          Spec.StatementsPerFunction = 4;
          Spec.Seed = 9000 + I;
          CheckRequest Req;
          Req.Source = corpus::generateSyntheticProgram(Spec);
          Req.DebugDelayMs = 30;
          Client C = Client::connect(RO.SocketPath);
          CheckResponse Resp;
          std::string Err;
          C.checkRetry(Req, Resp, Err);
        });
      for (std::thread &T : Ts)
        T.join();
    }

    // Phase 2: 4x saturation — the same interactive load plus a 3:1
    // bulk flood. Half the bulk carries a 5 ms deadline (hopeless
    // against the ~30 ms observed p99: shed on sight), half an ample
    // one (queues into the bulk-capped slots, keeps bulk tenants fed).
    std::atomic<uint64_t> BulkOk{0}, BulkShed{0}, BulkBusy{0};
    double LoadedP99 = 0;
    {
      constexpr unsigned BulkClients = FgClients * 3; // 3:1 mix, 4x total
      constexpr int BulkRequests = 40;
      std::vector<std::vector<double>> Lat(FgClients);
      std::vector<std::thread> Ts;
      for (unsigned I = 0; I != FgClients; ++I)
        Ts.emplace_back([&, I] {
          interactiveClient(I, FgRequests, Lat[I], FgOk, FgShed, FgBusy,
                            OvDiffs);
        });
      for (unsigned B = 0; B != BulkClients; ++B)
        Ts.emplace_back([&, B] {
          for (int I = 0; I != BulkRequests; ++I) {
            size_t Src =
                (B * 37 + static_cast<size_t>(I) * 11) % PoolSize;
            CheckRequest Req;
            Req.Source = Pool[Src];
            Req.Prio = Priority::Bulk;
            Req.Tenant = BulkTenants[B % BulkTenants.size()];
            Req.TimeoutMs = (I % 2) ? 5u : 60000u;
            Client C = Client::connect(RO.SocketPath);
            CheckResponse Resp;
            std::string Err;
            // Viable bulk behaves like a real batch client: bounded
            // busy retries. (checkRetry never retries `shed`, so a
            // tenant locked out by quota still registers as starved.)
            bool Sent = (I % 2) ? C.check(Req, Resp, Err)
                                : C.checkRetry(Req, Resp, Err, 6, 2000);
            if (!Sent) {
              ++OvDiffs;
            } else if (Resp.Ok) {
              BulkOk.fetch_add(1);
              if (snapshot(Resp) != Refs[Src])
                ++OvDiffs;
              std::lock_guard<std::mutex> L(TenantsM);
              TenantOk[Req.Tenant]++;
            } else if (Resp.Err == ErrorCode::Shed) {
              BulkShed.fetch_add(1);
            } else if (Resp.Err == ErrorCode::Busy ||
                       Resp.Err == ErrorCode::DeadlineExceeded) {
              BulkBusy.fetch_add(1);
            } else {
              ++OvDiffs;
            }
          }
        });
      for (std::thread &T : Ts)
        T.join();
      std::vector<double> All;
      for (const std::vector<double> &L : Lat)
        All.insert(All.end(), L.begin(), L.end());
      LoadedP99 = percentile(All, 0.99);
    }

    Ov.LoadedP99 = LoadedP99;
    Ov.InteractiveOk = FgOk.load();
    Ov.BulkOk = BulkOk.load();
    Ov.ShedBulk = BulkShed.load();
    Ov.ShedInteractive = FgShed.load();
    Ov.Busy = FgBusy.load() + BulkBusy.load();
    Ov.Diffs = OvDiffs.load();
    {
      std::lock_guard<std::mutex> L(TenantsM);
      for (const char *T : FgTenants)
        if (!TenantOk[T])
          ++Ov.StarvedTenants;
      for (const char *T : BulkTenants)
        if (!TenantOk[T])
          ++Ov.StarvedTenants;
    }

    R.stop();
    for (auto &S : Shards)
      S->stop();
  }

  Cached.stop();

  double Speedup4 = 0;
  for (const FleetRow &Row : Rows)
    if (Row.Shards == 4 && Single.Rps > 0)
      Speedup4 = Row.R.Rps / Single.Rps;

  std::printf("fleet throughput (%u distinct sources, %u concurrent "
              "clients, post-restart pass)\n",
              PoolSize, Clients);
  std::printf("  %-26s %8.1f req/s   p50 %7.2f ms   p99 %7.2f ms  "
              "(%d/%d ok)\n",
              "single daemon (no fleet)", Single.Rps, Single.P50,
              Single.P99, Single.Ok, Single.Requests);
  for (const FleetRow &Row : Rows)
    std::printf("  %u shard(s) behind acrouter  %8.1f req/s   p50 %7.2f "
                "ms   p99 %7.2f ms  (%d/%d ok, remote hit rate %.2f)\n",
                Row.Shards, Row.R.Rps, Row.R.P50, Row.R.P99, Row.R.Ok,
                Row.R.Requests, Row.HitRate);
  std::printf("  speedup at 4 shards          %.1fx  (floor >= 5x)\n",
              Speedup4);
  int TotalDiffs = Single.Diffs;
  for (const FleetRow &Row : Rows)
    TotalDiffs += Row.R.Diffs;
  TotalDiffs += Ov.Diffs;
  if (TotalDiffs)
    std::printf("  FAIL: %d correctness diffs against the reference\n",
                TotalDiffs);

  // The overload verdict. The p99 bound gets a 1 ms floor so a
  // sub-millisecond unloaded measurement on a fast box does not turn
  // scheduler jitter into a failed bench.
  uint64_t ShedsTotal = Ov.ShedBulk + Ov.ShedInteractive;
  double BulkShedFrac =
      ShedsTotal ? static_cast<double>(Ov.ShedBulk) / ShedsTotal : 1.0;
  double P99Bound = 2.0 * std::max(Ov.UnloadedP99, 1.0);
  bool OvLatencyOk = Ov.LoadedP99 <= P99Bound;
  bool OvShedsOk = ShedsTotal >= 1 && BulkShedFrac >= 0.9;
  bool OvPass = OvLatencyOk && OvShedsOk && Ov.StarvedTenants == 0 &&
                Ov.Diffs == 0;
  std::printf("overload (4x saturation, 3:1 bulk:interactive, quotas on)\n");
  std::printf("  interactive p99              %7.2f ms unloaded -> %7.2f "
              "ms loaded  (bound %.2f ms)%s\n",
              Ov.UnloadedP99, Ov.LoadedP99, P99Bound,
              OvLatencyOk ? "" : "  FAIL");
  std::printf("  sheds                        %llu total, %.0f%% bulk  "
              "(floor 90%%)%s\n",
              static_cast<unsigned long long>(ShedsTotal),
              BulkShedFrac * 100, OvShedsOk ? "" : "  FAIL");
  std::printf("  completed                    %llu interactive, %llu bulk, "
              "%llu busy/deadline, %d starved tenant(s), %d diffs\n",
              static_cast<unsigned long long>(Ov.InteractiveOk),
              static_cast<unsigned long long>(Ov.BulkOk),
              static_cast<unsigned long long>(Ov.Busy), Ov.StarvedTenants,
              Ov.Diffs);

  auto passJson = [](const PassResult &P) {
    Json J = Json::object();
    J.set("requests_per_sec", P.Rps);
    J.set("p50_ms", P.P50);
    J.set("p99_ms", P.P99);
    J.set("ok", static_cast<int64_t>(P.Ok));
    J.set("requests", static_cast<int64_t>(P.Requests));
    J.set("diffs", static_cast<int64_t>(P.Diffs));
    return J;
  };
  Json Out = Json::object();
  Out.set("bench", "fleet_throughput");
  Out.set("sources", static_cast<uint64_t>(PoolSize));
  Out.set("concurrent_clients", static_cast<uint64_t>(Clients));
  Out.set("baseline", passJson(Single));
  Json Fleets = Json::array();
  for (const FleetRow &Row : Rows) {
    Json F = passJson(Row.R);
    F.set("shards", static_cast<uint64_t>(Row.Shards));
    F.set("remote_hit_rate", Row.HitRate);
    Fleets.push(std::move(F));
  }
  Out.set("fleets", std::move(Fleets));
  Out.set("speedup_at_4", Speedup4);
  Out.set("target_speedup", 5);
  {
    Json OvJ = Json::object();
    OvJ.set("unloaded_interactive_p99_ms", Ov.UnloadedP99);
    OvJ.set("loaded_interactive_p99_ms", Ov.LoadedP99);
    OvJ.set("p99_bound_ms", P99Bound);
    OvJ.set("sheds_total", ShedsTotal);
    OvJ.set("sheds_bulk_fraction", BulkShedFrac);
    OvJ.set("interactive_ok", Ov.InteractiveOk);
    OvJ.set("bulk_ok", Ov.BulkOk);
    OvJ.set("busy_or_deadline", Ov.Busy);
    OvJ.set("starved_tenants", static_cast<int64_t>(Ov.StarvedTenants));
    OvJ.set("diffs", static_cast<int64_t>(Ov.Diffs));
    OvJ.set("pass", OvPass);
    Out.set("overload", std::move(OvJ));
  }
  {
    FILE *F = std::fopen("BENCH_fleet.json", "w");
    if (F) {
      std::string S = Out.dump();
      std::fwrite(S.data(), 1, S.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
      std::printf("  wrote BENCH_fleet.json\n");
    }
  }
  std::filesystem::remove_all(Root);
  return (Speedup4 >= 5.0 && TotalDiffs == 0 && OvPass) ? 0 : 1;
}
