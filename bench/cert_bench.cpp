//===- cert_bench.cpp - Certificate production vs checking cost ------------===//
//
// The trust/cost ledger for proof certificates (EXPERIMENTS.md): per
// corpus, one baseline pipeline run with recording off, one run that
// exports a certificate, an independent acpc re-check of the result, and
// the certificate's size and claim/inference counts. The interesting
// ratios are check/produce (the checker re-derives every conclusion but
// skips parsing, abstraction and search, so it should be a small
// fraction) and certed/baseline (recording and serialization overhead on
// top of the run that minted the theorems).
//
// Phase discipline: recording is process-sticky (hol/Cert.h), so every
// baseline runs before the first certificate is requested; the baseline
// column really is the recording-off pipeline.
//
//   cert_bench [iterations]   (default: 3)
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "corpus/Synthetic.h"

#include "../tools/acpc_check.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ac;

namespace {

struct Row {
  std::string Name;
  std::string Source;
};

double secsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One timed pipeline run; returns the best-of-Iters wall seconds.
double timedRun(const std::string &Src, unsigned Iters,
                const std::string &CertPath) {
  double Best = 1e9;
  for (unsigned I = 0; I != Iters; ++I) {
    core::ACOptions Opts;
    Opts.CertPath = CertPath; // empty: recording stays off
    auto T0 = std::chrono::steady_clock::now();
    DiagEngine Diags;
    auto AC = core::AutoCorres::run(Src, Diags, Opts);
    double S = secsSince(T0);
    if (!AC) {
      std::fprintf(stderr, "cert_bench: pipeline failed:\n%s\n",
                   Diags.str().c_str());
      std::exit(1);
    }
    Best = S < Best ? S : Best;
  }
  return Best;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iters = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 3;
  if (Iters == 0)
    Iters = 1;

  std::vector<Row> Corpora = {
      {"swap", corpus::swapSource()},
      {"reverse", corpus::reverseSource()},
      {"suzuki", corpus::suzukiSource()},
      {"echronos",
       corpus::generateSyntheticProgram(corpus::echronosScale())},
  };

  // Phase 1: all baselines, recording off.
  std::vector<double> Baseline(Corpora.size());
  for (size_t I = 0; I != Corpora.size(); ++I)
    Baseline[I] = timedRun(Corpora[I].Source, Iters, "");

  std::printf("cert_bench: iterations=%u (best-of per cell)\n\n", Iters);
  std::printf("%-10s %9s %9s %9s %8s %8s %8s %9s\n", "corpus", "base_s",
              "cert_s", "check_s", "chk/prd", "claims", "infs",
              "bytes");

  // Phase 2: certificate runs + independent re-check.
  for (size_t I = 0; I != Corpora.size(); ++I) {
    std::string Path = "cert_bench_" + Corpora[I].Name + ".acpc";
    double CertS = timedRun(Corpora[I].Source, Iters, Path);
    std::string Bytes = slurp(Path);
    if (Bytes.empty()) {
      std::fprintf(stderr, "cert_bench: no certificate at %s\n",
                   Path.c_str());
      return 1;
    }

    double CheckBest = 1e9;
    acpc::Result R;
    for (unsigned K = 0; K != Iters; ++K) {
      auto T0 = std::chrono::steady_clock::now();
      R = acpc::check(Bytes);
      double S = secsSince(T0);
      CheckBest = S < CheckBest ? S : CheckBest;
    }
    if (!R.Ok) {
      std::fprintf(stderr, "cert_bench: %s rejected at line %zu: %s\n",
                   Path.c_str(), R.Line, R.Error.c_str());
      return 1;
    }
    std::printf("%-10s %9.3f %9.3f %9.3f %7.1f%% %8llu %8llu %9zu\n",
                Corpora[I].Name.c_str(), Baseline[I], CertS, CheckBest,
                100.0 * CheckBest / CertS,
                static_cast<unsigned long long>(R.ClaimCount),
                static_cast<unsigned long long>(R.Derivs), Bytes.size());
    std::remove(Path.c_str());
  }
  return 0;
}
