//===- ablation_options.cpp - What each abstraction phase buys -------------===//
//
// Ablation study for the design choices DESIGN.md calls out: run the
// Piccolo-scale corpus with (a) the full pipeline, (b) heap abstraction
// disabled everywhere, (c) word abstraction disabled everywhere, and
// (d) both disabled, and report the Table 5 metrics for each. Also
// reports how often the KeepWA size heuristic (Sec 3.2's answer to
// coercion-noise blowup) reverts a function to machine words.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Synthetic.h"
#include "hol/Print.h"

#include <cstdio>

using namespace ac;

namespace {

struct Row {
  const char *Name;
  core::ACStats Stats;
  unsigned HeapLifted = 0;
  unsigned WordAbstracted = 0;
  unsigned Functions = 0;
};

Row runVariant(const char *Name, const std::string &Src,
               bool HeapAbs, bool WordAbs) {
  Row R;
  R.Name = Name;

  // Collect function names first so the per-function option sets can
  // name every function.
  DiagEngine D0;
  auto Probe = core::AutoCorres::run(Src, D0);
  if (!Probe) {
    fprintf(stderr, "translation failed:\n%s", D0.str().c_str());
    exit(1);
  }
  core::ACOptions Opts;
  for (const std::string &Fn : Probe->order()) {
    if (!HeapAbs)
      Opts.NoHeapAbs.insert(Fn);
    if (!WordAbs)
      Opts.NoWordAbs.insert(Fn);
  }

  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  if (!AC) {
    fprintf(stderr, "translation failed:\n%s", Diags.str().c_str());
    exit(1);
  }
  R.Stats = AC->stats();
  for (const std::string &Fn : AC->order()) {
    const core::FuncOutput *F = AC->func(Fn);
    ++R.Functions;
    R.HeapLifted += F->HeapLifted;
    R.WordAbstracted += F->WordAbstracted;
  }
  return R;
}

} // namespace

int main() {
  std::string Src =
      corpus::generateSyntheticProgram(corpus::piccoloScale());

  Row Full = runVariant("full pipeline", Src, true, true);
  Row NoWA = runVariant("no word abstraction", Src, true, false);
  Row NoHL = runVariant("no heap abstraction", Src, false, true);
  Row Neither = runVariant("neither (L2 only)", Src, false, false);

  printf("Ablation on the Piccolo-scale corpus (%u LoC, %u functions)\n",
         Full.Stats.SourceLines, Full.Stats.NumFunctions);
  printf("%-22s | %9s %9s | %9s | %6s %6s\n", "variant", "spec lines",
         "(vs parser)", "avg term", "HL fns", "WA fns");
  printf("--------------------------------------------------------------"
         "---------\n");
  auto Print = [](const Row &R) {
    printf("%-22s | %9u %8.0f%% | %9.0f | %6u %6u\n", R.Name,
           R.Stats.ACSpecLines,
           100.0 * R.Stats.ACSpecLines / R.Stats.ParserSpecLines,
           R.Stats.acAvgTermSize(), R.HeapLifted, R.WordAbstracted);
  };
  Print(Full);
  Print(NoWA);
  Print(NoHL);
  Print(Neither);
  printf("(parser baseline: %u spec lines, avg term %.0f)\n\n",
         Full.Stats.ParserSpecLines, Full.Stats.parserAvgTermSize());

  // KeepWA heuristic: with word abstraction enabled everywhere, how many
  // functions did the size heuristic revert (attempted but not kept)?
  unsigned Reverted = Full.Functions - Full.WordAbstracted;
  printf("KeepWA heuristic: %u/%u functions kept the ideal-arithmetic "
         "version; %u reverted to machine words (coercion noise "
         "exceeded the 1.5x size budget)\n",
         Full.WordAbstracted, Full.Functions, Reverted);
  return 0;
}
