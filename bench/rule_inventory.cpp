//===- rule_inventory.cpp - Tables 3 and 4 --------------------------------===//
//
// Prints the registered rule inventories: the word-abstraction rules of
// Table 3 (generic rules plus per-width instances — the paper's "~40
// built-in plus 11 per type") and the heap-abstraction rules of Table 4
// (the paper's 35), plus every other axiom and oracle in the trusted
// base. This is the auditable inventory DESIGN.md's soundness story
// rests on; every entry is cross-validated by the test suite.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Print.h"

#include <cstdio>
#include <map>

using namespace ac;
using namespace ac::hol;

int main() {
  // Run representative inputs so the on-demand rule instances register.
  for (const char *Src :
       {corpus::maxSource(), corpus::swapSource(), corpus::reverseSource(),
        corpus::gcdSource(), corpus::suzukiSource(),
        corpus::schorrWaiteSource()}) {
    DiagEngine Diags;
    core::AutoCorres::run(Src, Diags);
  }

  std::map<std::string, unsigned> Groups;
  for (const auto &[Name, Prop] : Inventory::instance().axioms()) {
    std::string Group = Name.substr(0, Name.find('.'));
    Groups[Group]++;
  }
  printf("Axiom inventory by family:\n");
  for (const auto &[G, N] : Groups)
    printf("  %-8s %3u rules\n", G.c_str(), N);

  printf("\nTable 3 core (word abstraction) sample:\n");
  for (const char *Name :
       {"WA.triv", "WA.bind", "WA.return", "WA.nat_plus_pp.32",
        "WA.nat_div_pp.32", "WA.while"}) {
    auto &Axs = Inventory::instance().axioms();
    auto It = Axs.find(Name);
    if (It != Axs.end())
      printf("  [%s]\n    %s\n", Name,
             printTerm(It->second).substr(0, 220).c_str());
  }

  printf("\nTable 4 core (heap abstraction) sample:\n");
  for (const char *Name : {"HL.bind", "HL.gets", "HL.modify",
                           "HL.ptr_guard.w32", "HL.read.node_C",
                           "HL.write.node_C"}) {
    auto &Axs = Inventory::instance().axioms();
    auto It = Axs.find(Name);
    if (It != Axs.end())
      printf("  [%s]\n    %s\n", Name,
             printTerm(It->second).substr(0, 220).c_str());
  }

  printf("\nOracles (decision procedures / validated conversions):\n");
  for (const std::string &O : Inventory::instance().oracles())
    printf("  %s\n", O.c_str());
  return 0;
}
