//===- fn2_midpoint_vc.cpp - Footnote 2's experiment ------------------------===//
//
// The paper's footnote 2: the midpoint verification condition
//
//   l < r --> l <= (l + r) div 2 < r
//
// took experienced engineers a median of 10 minutes at the word level,
// while "the human effort for the nat version is effectively zero".
// Mechanised version: `auto` solves the nat-level goal instantly and
// fails (correctly — the statement is false) on the word-level goal,
// where the countermodel search exhibits the wrap-around witness.
//
//===----------------------------------------------------------------------===//

#include "hol/Builder.h"
#include "monad/Interp.h"
#include "proof/Auto.h"

#include <benchmark/benchmark.h>

using namespace ac::hol;
using namespace ac::proof;

namespace {

TermRef natGoal() {
  TermRef L = Term::mkFree("l", natTy());
  TermRef R = Term::mkFree("r", natTy());
  TermRef Mid = mkDiv(mkPlus(L, R), mkNumOf(natTy(), 2));
  return mkImp(mkLess(L, R), mkConj(mkLessEq(L, Mid), mkLess(Mid, R)));
}

TermRef wordGoal() {
  TypeRef W = wordTy(32);
  TermRef L = Term::mkFree("l", W);
  TermRef R = Term::mkFree("r", W);
  TermRef Mid = mkDiv(mkPlus(L, R), mkNumOf(W, 2));
  return mkImp(mkLess(L, R), mkConj(mkLessEq(L, Mid), mkLess(Mid, R)));
}

TermRef natGoalGuarded() {
  // The abstraction's generated guard as an extra hypothesis.
  TermRef L = Term::mkFree("l", natTy());
  TermRef R = Term::mkFree("r", natTy());
  TermRef Mid = mkDiv(mkPlus(L, R), mkNumOf(natTy(), 2));
  TermRef NoOvf =
      mkLessEq(mkPlus(L, R), mkNumOf(natTy(), wordMaxVal(32)));
  return mkImp(mkConj(mkLess(L, R), NoOvf),
               mkConj(mkLessEq(L, Mid), mkLess(Mid, R)));
}

void BM_MidpointNat(benchmark::State &State) {
  bool Proved = true;
  for (auto _ : State) {
    AutoProver P;
    Proved = Proved && P.prove(natGoal()).has_value();
  }
  State.counters["proved"] = Proved ? 1 : 0;
}
BENCHMARK(BM_MidpointNat);

void BM_MidpointNatGuarded(benchmark::State &State) {
  bool Proved = true;
  for (auto _ : State) {
    AutoProver P;
    Proved = Proved && P.prove(natGoalGuarded()).has_value();
  }
  State.counters["proved"] = Proved ? 1 : 0;
}
BENCHMARK(BM_MidpointNatGuarded);

void BM_MidpointWord_AutoFails(benchmark::State &State) {
  bool Proved = false;
  for (auto _ : State) {
    AutoProver P;
    Proved = Proved || P.prove(wordGoal()).has_value();
  }
  // proved must stay 0: the goal is false at the word level.
  State.counters["proved"] = Proved ? 1 : 0;
}
BENCHMARK(BM_MidpointWord_AutoFails);

void BM_MidpointWord_Countermodel(benchmark::State &State) {
  ac::monad::InterpCtx Ctx;
  TypeRef W = wordTy(32);
  TermRef Closed = mkAll(
      "l", W, mkAll("r", W, wordGoal()));
  bool Refuted = true;
  for (auto _ : State)
    Refuted = Refuted && AutoProver::refute(Closed, Ctx, 3000, 11);
  State.counters["refuted"] = Refuted ? 1 : 0;
}
BENCHMARK(BM_MidpointWord_Countermodel);

} // namespace

BENCHMARK_MAIN();
