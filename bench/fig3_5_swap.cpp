//===- fig3_5_swap.cpp - Reproduces Figs 3 and 5 ---------------------------===//
//
// swap before heap abstraction (Fig 3: byte-level reads/writes and
// pointer guards) and after (Fig 5: s[a], s[a := v], is_valid_w32), plus
// the Sec 4.5 claim that the Fig 5 Hoare triple "is automatically
// discharged by applying a VCG and running auto".
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Print.h"
#include "proof/Auto.h"
#include "proof/Hoare.h"

#include <cstdio>

using namespace ac;
using namespace ac::hol;
using namespace ac::proof;

int main() {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(corpus::swapSource(), Diags);
  if (!AC) {
    printf("pipeline failed:\n%s\n", Diags.str().c_str());
    return 1;
  }
  const core::FuncOutput *F = AC->func("swap");
  printf("C source:\n%s\n", corpus::swapSource());
  printf("Fig 3 — before heap abstraction (L2):\nswap' a b ==\n%s\n\n",
         printTerm(F->L2Body).c_str());
  printf("Fig 5 — after heap abstraction:\nswap' a b ==\n%s\n\n",
         printTerm(F->HLBody).c_str());
  printf("final output (word abstraction on top):\n%s\n\n",
         AC->render("swap").c_str());

  // The Fig 5 correctness statement, via VCG + auto.
  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TypeRef W = wordTy(32);
  TermRef A = Term::mkFree("a", ptrTy(W));
  TermRef B = Term::mkFree("b", ptrTy(W));
  TermRef X = Term::mkFree("x", natTy());
  TermRef Y = Term::mkFree("y", natTy());
  TermRef SV = Term::mkFree("sv", S);
  auto HeapAt = [&](const TermRef &P) {
    return mkUnat(LG.heapVal(W, SV, P));
  };
  TermRef Pre = lambdaFree(
      "sv", S,
      mkConjs({LG.isValid(W, SV, A), LG.isValid(W, SV, B),
               mkEq(HeapAt(A), X), mkEq(HeapAt(B), Y)}));
  TermRef Post = lambdaFree(
      "rv", unitTy(),
      lambdaFree("sv", S,
                 mkConj(mkEq(HeapAt(A), Y), mkEq(HeapAt(B), X))));
  VCResult VCs = generateVCs(F->finalBody(), Pre, Post);
  AutoProver P;
  bool Ok = true;
  for (size_t I = 0; I != VCs.Goals.size(); ++I) {
    bool G = P.prove(VCs.Goals[I]).has_value();
    printf("VC %zu (%s): %s\n", I, VCs.Labels[I].c_str(),
           G ? "discharged by auto" : "FAILED");
    Ok = Ok && G;
  }
  printf("\n{|P a x, b y|} swap' a b {|a y, b x|}: %s (total "
         "correctness)\n",
         Ok ? "PROVED" : "FAILED");
  return Ok ? 0 : 1;
}
