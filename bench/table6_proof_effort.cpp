//===- table6_proof_effort.cpp - Reproduces Table 6 ------------------------===//
//
// Runs the two Sec 5 case-study proofs and prints the component
// breakdown next to the paper's numbers (This Work / Mehta & Nipkow in
// Isabelle / Hubert & Marché in Coq). Our "lines" column measures the
// pretty-printed size of the artefacts each component contributes
// (definitions, invariants, measures, goals); EXPERIMENTS.md discusses
// how that proxy compares to Isabelle proof-script lines.
//
//===----------------------------------------------------------------------===//

#include "corpus/CaseStudies.h"

#include <cstdio>
#include <string>

using namespace ac::corpus;

int main() {
  printf("Sec 5.2 - in-place list reversal\n");
  CaseStudyReport Rev = verifyListReversal();
  for (const auto &C : Rev.Components)
    printf("  %-55s %5u %s\n", C.Name.c_str(), C.ScriptLines,
           C.Ok ? "" : "FAILED");
  printf("  %-55s %5u  verified=%s total=%s\n", "Total", Rev.totalLines(),
         Rev.Verified ? "yes" : "NO",
         Rev.TotalCorrectness ? "yes" : "NO");
  for (const auto &F : Rev.Failures)
    printf("  failure: %s\n", F.c_str());

  printf("\nSec 5.3 - Schorr-Waite\n");
  CaseStudyReport SW = verifySchorrWaite();
  for (const auto &C : SW.Components)
    printf("  %-55s %5u %s\n", C.Name.c_str(), C.ScriptLines,
           C.Ok ? "" : "FAILED");
  printf("  %-55s %5u  verified=%s\n", "Total", SW.totalLines(),
         SW.Verified ? "yes" : "NO");
  for (const auto &F : SW.Failures)
    printf("  failure: %s\n", F.c_str());

  printf("\nTable 6 (paper, Schorr-Waite lines of proof):\n");
  printf("  %-22s %10s %8s %8s\n", "Component", "This Work*", "M/N",
         "H/M");
  printf("  %-22s %10u %8s %8s\n", "List/graph defs",
         SW.Components.empty() ? 0 : SW.Components[0].ScriptLines, "62",
         "~900");
  printf("  %-22s %10s %8s %8s\n", "Partial correctness", "(above)",
         "489", "~1400");
  printf("  %-22s %10s %8s %8s\n", "Termination", "(above)", "-", "~900");
  printf("  %-22s %10u %8s %8s\n", "Total", SW.totalLines(), "577",
         "3317");
  printf("\n* our components are artefact line counts; the invariant "
         "steps are validated by 16k+ bounded-graph checks rather than "
         "interactive proof (EXPERIMENTS.md).\n");
  return (Rev.Verified && SW.Verified) ? 0 : 1;
}
