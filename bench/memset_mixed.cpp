//===- memset_mixed.cpp - Sec 4.6: mixing low- and high-level code ---------===//
//
// memset is the paper's example of type-unsafe code that must stay on
// the byte-level heap while the rest of the program enjoys the lifted
// view. This bench demonstrates the per-function selection: memset
// translated with heap abstraction disabled (the low-level view with
// explicit write/guard plumbing) next to the default lifted view of its
// caller-side heap type, and validates the Sec 4.6 triple's content
// semantically: running memset'(p, 0, 4) over a word32 object zeroes
// the lifted word32 heap at p.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Print.h"
#include "monad/SimplInterp.h"

#include <cstdio>

using namespace ac;
using namespace ac::hol;
using namespace ac::monad;

int main() {
  // Low-level view: heap abstraction switched off for my_memset.
  {
    DiagEngine Diags;
    core::ACOptions Opts;
    Opts.NoHeapAbs.insert("my_memset");
    auto AC = core::AutoCorres::run(corpus::memsetSource(), Diags, Opts);
    if (!AC) {
      printf("pipeline failed:\n%s\n", Diags.str().c_str());
      return 1;
    }
    printf("C source:\n%s\n", corpus::memsetSource());
    printf("my_memset with heap abstraction disabled (byte-level "
           "view):\n%s\n\n",
           printTerm(AC->func("my_memset")->L2Body)
               .substr(0, 1200)
               .c_str());
  }

  // Semantic content of the Sec 4.6 triple:
  //   {|is_valid_w32 p|} exec_concrete (memset' p 0 4)
  //   {|is_valid_w32 p and s[p] = 0|}
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(
      std::string(corpus::memsetSource()) +
          "unsigned read_word(unsigned *p) { return *p; }\n",
      Diags);
  if (!AC) {
    printf("pipeline failed:\n%s\n", Diags.str().c_str());
    return 1;
  }
  InterpCtx &Ctx = AC->ctx();
  auto H = std::make_shared<HeapVal>();
  // A word32 object with garbage contents.
  Ctx.encode(*H, 0x100, Value::num(0xdeadbeef, wordTy(32)), wordTy(32));
  Ctx.retype(*H, 0x100, wordTy(32));
  std::map<std::string, Value> GF;
  GF.emplace(simpl::heapFieldName(), Value::heap(H));
  Value G = Value::record(simpl::globalsRecName(), GF);

  // Run the byte-level memset over the concrete state (the role of
  // exec_concrete: drop to the low-level state, run, and re-lift).
  Ctx.reset();
  Value Fun = evalClosed(Ctx.FunDefs.at("l2:my_memset"), Ctx);
  Fun = Fun.Fun(Value::ptr(0x100, "sword8"));
  Fun = Fun.Fun(Value::num(0, swordTy(8)));
  Fun = Fun.Fun(Value::num(4, wordTy(32)));
  MonadResult MR = runMonad(Fun, G, Ctx);
  if (MR.Failed || MR.Results.size() != 1) {
    printf("memset execution failed\n");
    return 1;
  }
  // Re-lift and observe the word32 heap.
  Value Lifted = Ctx.LiftGlobalHeap(MR.Results[0].State, Ctx);
  Value W32Heap = Lifted.Rec->at("heap_w32");
  Value ValidW32 = Lifted.Rec->at("is_valid_w32");
  Value P = Value::ptr(0x100, "word32");
  bool StillValid = ValidW32.Fun(P).B;
  long long Word = static_cast<long long>(W32Heap.Fun(P).N);
  printf("after exec_concrete (my_memset' p 0 4):\n");
  printf("  is_valid_w32 s p : %s\n", StillValid ? "true" : "FALSE");
  printf("  s[p]             : %lld (expected 0)\n", Word);
  bool Ok = StillValid && Word == 0;
  printf("Sec 4.6 triple content: %s\n", Ok ? "HOLDS" : "VIOLATED");
  return Ok ? 0 : 1;
}
