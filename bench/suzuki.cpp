//===- suzuki.cpp - Sec 4.3/4.5: Suzuki's challenge -------------------------===//
//
// The fragment that defeats ad hoc heap lifting (Sec 4.3) is solved
// "simply" after state abstraction: auto immediately discharges the
// generated verification conditions and proves the function returns 4.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Print.h"
#include "proof/Auto.h"
#include "proof/Hoare.h"

#include <cstdio>

using namespace ac;
using namespace ac::hol;
using namespace ac::proof;

int main() {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(corpus::suzukiSource(), Diags);
  if (!AC) {
    printf("pipeline failed:\n%s\n", Diags.str().c_str());
    return 1;
  }
  const core::FuncOutput *F = AC->func("suzuki");
  printf("C source:\n%s\n", corpus::suzukiSource());
  printf("abstracted (excerpt):\n%s\n\n",
         AC->render("suzuki").substr(0, 1200).c_str());

  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TypeRef NodeTy = recordTy("node_C");
  TermRef SV = Term::mkFree("sv", S);
  std::vector<TermRef> Ptrs;
  for (const char *N : {"w", "x", "y", "z"})
    Ptrs.push_back(Term::mkFree(N, ptrTy(NodeTy)));
  std::vector<TermRef> PreParts;
  for (const TermRef &P : Ptrs)
    PreParts.push_back(LG.isValid(NodeTy, SV, P));
  for (size_t I = 0; I != Ptrs.size(); ++I)
    for (size_t J = I + 1; J != Ptrs.size(); ++J)
      PreParts.push_back(mkNot(mkEq(Ptrs[I], Ptrs[J])));
  TermRef Pre = lambdaFree("sv", S, mkConjs(PreParts));
  TermRef RV = Term::mkFree("rv", intTy());
  TermRef Post = lambdaFree(
      "rv", intTy(),
      lambdaFree("sv", S, mkEq(RV, mkNumOf(intTy(), 4))));

  VCResult VCs = generateVCs(F->finalBody(), Pre, Post);
  AutoProver P;
  bool Ok = VCs.Ok;
  for (size_t I = 0; I != VCs.Goals.size() && Ok; ++I)
    Ok = P.prove(VCs.Goals[I]).has_value();
  printf("{|valid w x y z, pairwise distinct|} suzuki' {|rv = 4|}: %s\n",
         Ok ? "PROVED automatically" : "FAILED");
  return Ok ? 0 : 1;
}
