//===- fig2_max.cpp - Reproduces Fig 2 (and the Sec 3.3 gcd claim) --------===//
//
// Prints the `max` example at every pipeline stage: the C source, the
// Simpl translation of the C parser (Fig 2 middle), and the final
// AutoCorres abstraction (Fig 2 left: max' a b = if a < b then b else a,
// over ideal integers). Also shows Euclid's gcd, whose abstraction the
// paper highlights in Sec 3.3.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Print.h"
#include "simpl/PrintSimpl.h"

#include <cstdio>

using namespace ac;

static int show(const char *Title, const char *Src, const char *Fn) {
  printf("==== %s ====\n\nC source:\n%s\n", Title, Src);
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Src, Diags);
  if (!AC) {
    printf("pipeline failed:\n%s\n", Diags.str().c_str());
    return 1;
  }
  const simpl::SimplFunc *SF = AC->program().function(Fn);
  printf("C parser output (Simpl):\n%s\n\n",
         simpl::printSimplFunc(*SF).c_str());
  const core::FuncOutput *F = AC->func(Fn);
  printf("L1 (monadic conversion), %u nodes\n",
         hol::termSize(F->L1Term));
  printf("L2 (local variable lifting):\n%s\n\n",
         hol::printTerm(F->L2Body).c_str());
  printf("AutoCorres output:\n%s\n\n", AC->render(Fn).c_str());
  printf("end-to-end theorem: %s\n",
         F->Pipeline.str().substr(0, 200).c_str());
  std::set<std::string> Axs, Oracles;
  hol::collectLeaves(F->Pipeline, Axs, Oracles);
  printf("derivation: %zu axiom leaves, %zu oracle kinds, %zu nodes\n\n",
         Axs.size(), Oracles.size(), hol::derivSize(F->Pipeline));
  return 0;
}

int main() {
  int Rc = show("Fig 2: max", corpus::maxSource(), "max");
  Rc |= show("Sec 3.3: Euclid's gcd", corpus::gcdSource(), "gcd");
  return Rc;
}
