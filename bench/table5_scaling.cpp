//===- table5_scaling.cpp - Reproduces Table 5 -----------------------------===//
//
// Runs the full pipeline over the four systems-scale corpora (synthetic
// stand-ins for seL4 / CapDL SysInit / Piccolo / eChronos, per
// DESIGN.md's substitution policy) and the real 19-line Schorr-Waite
// source, reporting the paper's columns: LoC, functions, CPU time for
// the parser stage and the AutoCorres stages, lines of specification and
// average term size for both outputs.
//
// The paper's headline shape — AutoCorres costs more CPU than the parser
// but produces markedly smaller specifications — should reproduce; the
// absolute numbers are of course machine- and corpus-dependent.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "corpus/Synthetic.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ac;

namespace {

struct RowIn {
  std::string Name;
  std::string Source;
};

int runRow(const RowIn &Row) {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Row.Source, Diags);
  if (!AC) {
    printf("%-22s FAILED: %s\n", Row.Name.c_str(),
           Diags.str().substr(0, 120).c_str());
    return 1;
  }
  const core::ACStats &S = AC->stats();
  double LinesRatio =
      S.ParserSpecLines ? 100.0 * S.ACSpecLines / S.ParserSpecLines : 0;
  double TermRatio = S.parserAvgTermSize()
                         ? 100.0 * S.acAvgTermSize() / S.parserAvgTermSize()
                         : 0;
  printf("%-22s %6u %5u | %8.2f %8.2f | %7u %7u (%3.0f%%) | %7.0f %7.0f "
         "(%3.0f%%)\n",
         Row.Name.c_str(), S.SourceLines, S.NumFunctions,
         S.ParserSeconds, S.AutoCorresSeconds, S.ParserSpecLines,
         S.ACSpecLines, LinesRatio, S.parserAvgTermSize(),
         S.acAvgTermSize(), TermRatio);
  return 0;
}

} // namespace

int main() {
  printf("Table 5: C parser vs AutoCorres outputs\n");
  printf("%-22s %6s %5s | %8s %8s | %15s        | %s\n", "Program", "LoC",
         "Fns", "parse(s)", "AC(s)", "lines of spec", "avg term size");
  printf("%s\n", std::string(100, '-').c_str());
  int Rc = 0;
  Rc |= runRow({"seL4-scale*",
                corpus::generateSyntheticProgram(corpus::sel4Scale())});
  Rc |= runRow({"CapDL-SysInit-scale*",
                corpus::generateSyntheticProgram(corpus::capdlScale())});
  Rc |= runRow({"Piccolo-scale*",
                corpus::generateSyntheticProgram(corpus::piccoloScale())});
  Rc |= runRow({"eChronos-scale*",
                corpus::generateSyntheticProgram(corpus::echronosScale())});
  Rc |= runRow({"Schorr-Waite", corpus::schorrWaiteSource()});
  printf("\n* synthetic corpora sized to the paper's rows "
         "(see DESIGN.md / EXPERIMENTS.md)\n");
  printf("paper's shape: AC time > parser time; spec lines 25-53%% "
         "smaller; terms 40-61%% smaller\n");
  return Rc;
}
