//===- table5_scaling.cpp - Reproduces Table 5 -----------------------------===//
//
// Runs the full pipeline over the four systems-scale corpora (synthetic
// stand-ins for seL4 / CapDL SysInit / Piccolo / eChronos, per
// DESIGN.md's substitution policy) and the real 19-line Schorr-Waite
// source, reporting the paper's columns: LoC, functions, CPU time for
// the parser stage and the AutoCorres stages, lines of specification and
// average term size for both outputs.
//
// The AutoCorres stages run twice per corpus, serial (Jobs=1) and
// parallel (Jobs=4), splitting the timing into summed per-thread CPU —
// the column comparable to the paper's serial Table 5 — and elapsed
// wall clock, whose ratio is the parallel speedup of the call-graph
// scheduler. Wall speedup requires hardware threads: on a single-CPU
// machine it honestly reports ~1.0x.
//
// Two further runs per corpus measure the content-addressed abstraction
// cache (core/ResultCache.h): a cold cache-enabled run populates a fresh
// directory, a warm run replays it. The warm column reports the replay's
// wall time and its speedup over the uncached serial run, after checking
// the replayed output is byte-identical and every function hit.
//
// The paper's headline shape — AutoCorres costs more CPU than the parser
// but produces markedly smaller specifications — should reproduce; the
// absolute numbers are of course machine- and corpus-dependent.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "corpus/Synthetic.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace ac;

namespace {

struct RowIn {
  std::string Name;
  std::string Source;
};

constexpr unsigned ParJobs = 4;

int runRow(const RowIn &Row) {
  DiagEngine SerialDiags;
  core::ACOptions Serial;
  Serial.Jobs = 1;
  auto AC = core::AutoCorres::run(Row.Source, SerialDiags, Serial);
  if (!AC) {
    printf("%-22s FAILED: %s\n", Row.Name.c_str(),
           SerialDiags.str().substr(0, 120).c_str());
    return 1;
  }
  DiagEngine ParDiags;
  core::ACOptions Par;
  Par.Jobs = ParJobs;
  auto ACP = core::AutoCorres::run(Row.Source, ParDiags, Par);
  if (!ACP) {
    printf("%-22s FAILED (Jobs=%u): %s\n", Row.Name.c_str(), ParJobs,
           ParDiags.str().substr(0, 120).c_str());
    return 1;
  }

  // Abstraction-cache column: populate a fresh per-row cache cold, then
  // replay warm. The warm wall time is what an incremental rebuild of an
  // unchanged corpus costs; its output must be byte-identical to the
  // uncached serial run (checked here, not trusted).
  static unsigned RowIdx = 0;
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("ac-table5-cache-" + std::to_string(RowIdx++)))
          .string();
  std::filesystem::remove_all(CacheDir);
  core::ACOptions Cached;
  Cached.Jobs = 1;
  Cached.CacheDir = CacheDir;
  DiagEngine ColdDiags, WarmDiags;
  auto ACC = core::AutoCorres::run(Row.Source, ColdDiags, Cached);
  auto ACW = core::AutoCorres::run(Row.Source, WarmDiags, Cached);
  std::filesystem::remove_all(CacheDir);
  if (!ACC || !ACW) {
    printf("%-22s FAILED (cached run)\n", Row.Name.c_str());
    return 1;
  }
  unsigned Mismatches = 0;
  for (const std::string &Name : AC->order())
    if (ACW->render(Name) != AC->render(Name))
      ++Mismatches;
  if (Mismatches || ACW->stats().CacheHits != ACW->stats().NumFunctions) {
    printf("%-22s FAILED: warm cache run diverged (%u mismatched specs, "
           "%u/%u hits)\n",
           Row.Name.c_str(), Mismatches, ACW->stats().CacheHits,
           ACW->stats().NumFunctions);
    return 1;
  }

  const core::ACStats &S = AC->stats();
  const core::ACStats &P = ACP->stats();
  const core::ACStats &W = ACW->stats();
  double LinesRatio =
      S.ParserSpecLines ? 100.0 * S.ACSpecLines / S.ParserSpecLines : 0;
  double TermRatio = S.parserAvgTermSize()
                         ? 100.0 * S.acAvgTermSize() / S.parserAvgTermSize()
                         : 0;
  double Speedup = P.AutoCorresWallSeconds
                       ? S.AutoCorresWallSeconds / P.AutoCorresWallSeconds
                       : 0;
  double WarmSpeedup = W.AutoCorresWallSeconds
                           ? S.AutoCorresWallSeconds / W.AutoCorresWallSeconds
                           : 0;
  printf("%-22s %6u %5u | %8.2f %7.2f %8.2f %8.2f %6.2fx | %8.3f %6.0fx | "
         "%7u %7u (%3.0f%%) | %7.0f %7.0f (%3.0f%%)\n",
         Row.Name.c_str(), S.SourceLines, S.NumFunctions, S.ParserSeconds,
         S.AutoCorresSeconds, S.AutoCorresWallSeconds,
         P.AutoCorresWallSeconds, Speedup, W.AutoCorresWallSeconds,
         WarmSpeedup, S.ParserSpecLines, S.ACSpecLines, LinesRatio,
         S.parserAvgTermSize(), S.acAvgTermSize(), TermRatio);
  return 0;
}

} // namespace

int main() {
  printf("Table 5: C parser vs AutoCorres outputs\n");
  printf("%-22s %6s %5s | %8s %7s %8s %8s %7s | %8s %7s | %15s        | "
         "%s\n",
         "Program", "LoC", "Fns", "parse(s)", "AC-cpu", "wall(j1)",
         "wall(j4)", "speedup", "warm(s)", "warm-x", "lines of spec",
         "avg term size");
  printf("%s\n", std::string(142, '-').c_str());
  int Rc = 0;
  Rc |= runRow({"seL4-scale*",
                corpus::generateSyntheticProgram(corpus::sel4Scale())});
  Rc |= runRow({"CapDL-SysInit-scale*",
                corpus::generateSyntheticProgram(corpus::capdlScale())});
  Rc |= runRow({"Piccolo-scale*",
                corpus::generateSyntheticProgram(corpus::piccoloScale())});
  Rc |= runRow({"eChronos-scale*",
                corpus::generateSyntheticProgram(corpus::echronosScale())});
  Rc |= runRow({"Schorr-Waite", corpus::schorrWaiteSource()});
  printf("\n* synthetic corpora sized to the paper's rows "
         "(see DESIGN.md / EXPERIMENTS.md)\n");
  printf("paper's shape: AC CPU time > parser time; spec lines 25-53%% "
         "smaller; terms 40-61%% smaller\n");
  printf("speedup = wall(Jobs=1) / wall(Jobs=4); needs >=2 hardware "
         "threads to exceed 1.0x\n");
  printf("warm(s)/warm-x = wall and speedup of a fully warm abstraction "
         "cache (AC_CACHE_DIR), output verified byte-identical\n");
  return Rc;
}
