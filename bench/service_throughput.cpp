//===- service_throughput.cpp - Daemon vs cold-process latency -------------===//
//
// Measures what the verification daemon exists for: the latency of a
// re-check of an unchanged translation unit. The cold baseline runs the
// full uncached pipeline in-process per request — what a from-scratch
// CLI invocation pays, minus even its process startup, so the comparison
// is conservative. The warm path sends the same source to a live acd
// (real Unix-socket round-trips through the real client) whose
// in-memory cache tier was primed by one prior request; every
// subsequent check is a fingerprint probe plus a render replay.
//
// Corpus: the Piccolo-scale synthetic program (~936 LoC / 56 functions,
// Table 5 row 3). Acceptance target (ISSUE 3): warm daemon re-checks at
// least 10x lower median latency than the cold baseline. A concurrent
// section drives 4 clients at once for a requests/sec figure.
//
// Results are printed as a table and written to BENCH_service.json.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Synthetic.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace ac;
using namespace ac::service;
using ac::support::Json;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

double percentile(std::vector<double> V, double Q) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(Q * (V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

Json latencyJson(const std::vector<double> &Ms) {
  Json J = Json::object();
  J.set("samples", static_cast<uint64_t>(Ms.size()));
  J.set("p50_ms", percentile(Ms, 0.50));
  J.set("p99_ms", percentile(Ms, 0.99));
  return J;
}

} // namespace

int main() {
  const std::string Source =
      corpus::generateSyntheticProgram(corpus::piccoloScale());

  // Cold baseline: uncached full pipeline, once per request.
  constexpr int ColdIters = 5;
  std::vector<double> ColdMs;
  for (int I = 0; I != ColdIters; ++I) {
    DiagEngine Diags;
    core::ACOptions Opts;
    Opts.Jobs = 1;
    auto T0 = Clock::now();
    auto AC = core::AutoCorres::run(Source, Diags, Opts);
    ColdMs.push_back(msSince(T0));
    if (!AC) {
      std::printf("cold run FAILED:\n%s\n", Diags.str().c_str());
      return 1;
    }
  }

  // Live daemon on a private socket, with a disk-backed cache tier.
  std::string Root =
      (std::filesystem::temp_directory_path() / "ac-service-bench")
          .string();
  std::filesystem::remove_all(Root);
  std::filesystem::create_directories(Root);
  ServerOptions SO;
  SO.SocketPath = Root + "/acd.sock";
  SO.Workers = 4;
  SO.QueueCapacity = 16;
  SO.CacheDir = Root + "/cache";
  Server Srv(SO);
  if (!Srv.start()) {
    std::printf("cannot start daemon on %s\n", SO.SocketPath.c_str());
    return 1;
  }

  CheckRequest Req;
  Req.Source = Source;
  std::string Err;

  // Prime the tier (one cold daemon-side run), checking the served
  // bytes against an in-process reference as we go.
  DiagEngine RefDiags;
  auto RefAC = core::AutoCorres::run(Source, RefDiags);
  {
    Client C = Client::connect(SO.SocketPath);
    CheckResponse Prime;
    if (!C.checkRetry(Req, Prime, Err) || !Prime.Ok) {
      std::printf("prime request failed: %s %s\n", Err.c_str(),
                  Prime.Message.c_str());
      return 1;
    }
    for (const FuncResult &F : Prime.Functions)
      if (!RefAC || F.Render != RefAC->render(F.Name)) {
        std::printf("daemon-served spec diverged for %s\n",
                    F.Name.c_str());
        return 1;
      }
  }

  // Warm re-checks, serial: the headline median-latency number.
  constexpr int WarmIters = 40;
  std::vector<double> WarmMs;
  unsigned WarmMisses = 0;
  {
    Client C = Client::connect(SO.SocketPath);
    for (int I = 0; I != WarmIters; ++I) {
      CheckResponse Resp;
      auto T0 = Clock::now();
      if (!C.checkRetry(Req, Resp, Err) || !Resp.Ok) {
        std::printf("warm request failed: %s %s\n", Err.c_str(),
                    Resp.Message.c_str());
        return 1;
      }
      WarmMs.push_back(msSince(T0));
      WarmMisses += Resp.CacheMisses;
    }
  }

  // Warm re-checks, 4 concurrent clients: requests/sec under load.
  constexpr int Clients = 4, PerClient = 10;
  std::vector<std::thread> Ts;
  std::vector<int> OkCount(Clients, 0);
  auto TConc = Clock::now();
  for (int CI = 0; CI != Clients; ++CI)
    Ts.emplace_back([&, CI] {
      Client C = Client::connect(SO.SocketPath);
      for (int I = 0; I != PerClient; ++I) {
        CheckResponse Resp;
        std::string E;
        if (C.checkRetry(Req, Resp, E) && Resp.Ok)
          ++OkCount[CI];
      }
    });
  for (std::thread &T : Ts)
    T.join();
  double ConcSeconds = msSince(TConc) / 1e3;
  int ConcOk = 0;
  for (int N : OkCount)
    ConcOk += N;
  double Rps = ConcOk / ConcSeconds;

  Srv.stop();

  double ColdP50 = percentile(ColdMs, 0.50);
  double WarmP50 = percentile(WarmMs, 0.50);
  double Speedup = WarmP50 > 0 ? ColdP50 / WarmP50 : 0;

  std::printf("service throughput (Piccolo-scale corpus, %u functions)\n",
              RefAC ? RefAC->stats().NumFunctions : 0);
  std::printf("  %-28s p50 %9.2f ms   p99 %9.2f ms  (%d iters)\n",
              "cold in-process pipeline", ColdP50,
              percentile(ColdMs, 0.99), ColdIters);
  std::printf("  %-28s p50 %9.2f ms   p99 %9.2f ms  (%d iters)\n",
              "warm daemon re-check", WarmP50, percentile(WarmMs, 0.99),
              WarmIters);
  std::printf("  warm-vs-cold median speedup  %.1fx  (target >= 10x)\n",
              Speedup);
  std::printf("  concurrent (%d clients)      %.1f requests/sec  "
              "(%d/%d ok)\n",
              Clients, Rps, ConcOk, Clients * PerClient);
  if (WarmMisses)
    std::printf("  WARNING: %u cache misses during warm phase\n",
                WarmMisses);

  Json Out = Json::object();
  Out.set("bench", "service_throughput");
  Out.set("corpus", "piccolo");
  Out.set("cold", latencyJson(ColdMs));
  Out.set("warm", latencyJson(WarmMs));
  Out.set("median_speedup", Speedup);
  Out.set("target_speedup", 10);
  Out.set("concurrent_clients", Clients);
  Out.set("requests_per_sec", Rps);
  Out.set("warm_cache_misses", WarmMisses);
  {
    FILE *F = std::fopen("BENCH_service.json", "w");
    if (F) {
      std::string S = Out.dump();
      std::fwrite(S.data(), 1, S.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
      std::printf("  wrote BENCH_service.json\n");
    }
  }
  std::filesystem::remove_all(Root);
  return Speedup >= 10.0 ? 0 : 1;
}
