//===- table2_word_identities.cpp - Reproduces Table 2 --------------------===//
//
// For each identity of Table 2, searches the word32 domain with the
// executable word semantics and reports the counterexample the paper
// lists — and checks that the identity *does* hold on the ideal nat/int
// images (which is what word abstraction buys, Sec 3.2).
//
//===----------------------------------------------------------------------===//

#include "hol/Builder.h"
#include "hol/GroundEval.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace ac::hol;

namespace {

struct Row {
  const char *Identity;
  const char *PaperCounterexample;
  // Returns true when the identity HOLDS at this word value.
  std::function<bool(uint32_t)> HoldsAtWord;
  // The same statement on the ideal image.
  std::function<bool(long long)> HoldsAtIdeal;
};

int32_t asSigned(uint32_t V) { return static_cast<int32_t>(V); }

} // namespace

int main() {
  std::vector<Row> Rows = {
      {"s = s + 1 - 1 (signed, no overflow)", "s = 2^31 - 1 (undefined)",
       [](uint32_t U) {
         // Undefined when s + 1 overflows: report as failing there.
         int32_t S = asSigned(U);
         if (S == INT32_MAX)
           return false; // s + 1 is UB
         return S + 1 - 1 == S;
       },
       [](long long S) { return S + 1 - 1 == S; }},
      {"s = -(-s) (signed)", "s = -2^31 (undefined)",
       [](uint32_t U) {
         int32_t S = asSigned(U);
         if (S == INT32_MIN)
           return false; // -s is UB
         return -(-S) == S;
       },
       [](long long S) { return -(-S) == S; }},
      {"u + 1 > u (unsigned)", "u = 2^32 - 1 (incorrect)",
       [](uint32_t U) { return static_cast<uint32_t>(U + 1) > U; },
       [](long long U) { return U + 1 > U; }},
      {"u * 2 = 4 --> u = 2", "u = 2^31 + 2 (incorrect)",
       [](uint32_t U) {
         return !(static_cast<uint32_t>(U * 2) == 4) || U == 2;
       },
       [](long long U) { return !(U * 2 == 4) || U == 2; }},
      {"-u = u --> u = 0 (unsigned)", "u = 2^31 (incorrect)",
       [](uint32_t U) {
         return !(static_cast<uint32_t>(-U) == U) || U == 0;
       },
       [](long long U) { return !(-U == U) || U == 0; }},
  };

  printf("%-38s | %-26s | %s\n", "Identity", "paper's counterexample",
         "found counterexample");
  printf("%s\n", std::string(100, '-').c_str());
  int Rc = 0;
  for (const Row &R : Rows) {
    // Directed search over boundary values plus a sweep.
    std::vector<uint32_t> Candidates = {
        0, 1, 2, 0x7ffffffe, 0x7fffffff, 0x80000000, 0x80000001,
        0x80000002, 0xfffffffe, 0xffffffff};
    for (uint32_t I = 0; I != 4096; ++I)
      Candidates.push_back(I * 1048583u);
    bool Found = false;
    uint32_t Witness = 0;
    for (uint32_t C : Candidates)
      if (!R.HoldsAtWord(C)) {
        Found = true;
        Witness = C;
        break;
      }
    // The ideal-image version must hold everywhere we look.
    bool IdealOk = true;
    for (uint32_t C : Candidates) {
      long long Ideal = R.Identity[0] == 's'
                            ? static_cast<long long>(asSigned(C))
                            : static_cast<long long>(C);
      if (!R.HoldsAtIdeal(Ideal))
        IdealOk = false;
    }
    printf("%-38s | %-26s | %s0x%08x; ideal image holds: %s\n",
           R.Identity, R.PaperCounterexample, Found ? "" : "NONE ",
           Witness, IdealOk ? "yes" : "NO");
    if (!Found || !IdealOk)
      Rc = 1;
  }
  printf("\nAll five Table 2 identities fail at the word level and hold "
         "after abstraction.\n");
  return Rc;
}
