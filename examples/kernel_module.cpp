//===- kernel_module.cpp - Systems code at scale ----------------------------===//
//
// The scenario the paper's intro motivates: a kernel-style module —
// object tables, flags, linked structures, byte-level helpers — pushed
// through the pipeline with per-function abstraction choices (Secs 3.2,
// 4.6): the byte-copy helper stays on the low-level heap; everything
// else gets the typed split heaps and ideal arithmetic.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "hol/Print.h"

#include <cstdio>

using namespace ac;

int main() {
  const char *Source =
      "struct tcb { struct tcb *next; unsigned tid; unsigned prio;\n"
      "             unsigned state; };\n"
      "unsigned ready_count = 0;\n"
      "\n"
      "void enqueue(struct tcb *queue, struct tcb *t) {\n"
      "  if (t == NULL || queue == NULL)\n"
      "    return;\n"
      "  t->next = queue->next;\n"
      "  queue->next = t;\n"
      "  t->state = 1;\n"
      "  ready_count = ready_count + 1;\n"
      "}\n"
      "\n"
      "struct tcb *find(struct tcb *queue, unsigned tid) {\n"
      "  unsigned steps = 0;\n"
      "  while (queue != NULL && steps < 1024) {\n"
      "    if (queue->tid == tid)\n"
      "      return queue;\n"
      "    queue = queue->next;\n"
      "    steps = steps + 1;\n"
      "  }\n"
      "  return NULL;\n"
      "}\n"
      "\n"
      "unsigned checksum(unsigned char *p, unsigned n) {\n"
      "  unsigned acc = 0;\n"
      "  unsigned i = 0;\n"
      "  while (i < n) {\n"
      "    acc = (acc * 31) + p[i];\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return acc;\n"
      "}\n";

  // checksum pokes at raw bytes; keep it on the byte-level heap
  // (Sec 4.6's per-function selection).
  core::ACOptions Opts;
  Opts.NoHeapAbs.insert("checksum");
  Opts.NoWordAbs.insert("checksum");

  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Source, Diags, Opts);
  if (!AC) {
    fprintf(stderr, "translation failed:\n%s", Diags.str().c_str());
    return 1;
  }

  for (const std::string &Fn : AC->order()) {
    const core::FuncOutput *F = AC->func(Fn);
    printf("==== %s (%s heap, %s arithmetic) ====\n%s\n\n", Fn.c_str(),
           F->HeapLifted ? "typed split" : "byte-level",
           F->WordAbstracted ? "ideal" : "machine-word",
           AC->render(Fn).substr(0, 1500).c_str());
  }

  const core::ACStats &S = AC->stats();
  printf("module: %u LoC / %u functions; parser %.0f ms, abstraction "
         "%.0f ms\n",
         S.SourceLines, S.NumFunctions, S.ParserSeconds * 1000,
         S.AutoCorresSeconds * 1000);
  printf("spec lines %u -> %u; avg term size %.0f -> %.0f\n",
         S.ParserSpecLines, S.ACSpecLines, S.parserAvgTermSize(),
         S.acAvgTermSize());
  return 0;
}
