//===- verified_swap.cpp - Pointer program verification, end to end --------===//
//
// The paper's running heap example: abstract `swap`, state its Hoare
// triple over the split typed heap (Fig 5's statement), and discharge
// the verification conditions with the auto tactic — including the
// aliased case swap(a, a).
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Print.h"
#include "proof/Auto.h"
#include "proof/Hoare.h"

#include <cstdio>

using namespace ac;
using namespace ac::hol;
using namespace ac::proof;

int main() {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(corpus::swapSource(), Diags);
  if (!AC) {
    fprintf(stderr, "translation failed:\n%s", Diags.str().c_str());
    return 1;
  }
  const core::FuncOutput *F = AC->func("swap");
  printf("abstracted swap:\n%s\n\n", AC->render("swap").c_str());

  // Build the Fig 5 correctness statement over the lifted state.
  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TypeRef W = wordTy(32);
  TermRef A = Term::mkFree("a", ptrTy(W));
  TermRef B = Term::mkFree("b", ptrTy(W));
  TermRef X = Term::mkFree("x", natTy());
  TermRef Y = Term::mkFree("y", natTy());
  TermRef SV = Term::mkFree("sv", S);
  auto At = [&](const TermRef &P) { return mkUnat(LG.heapVal(W, SV, P)); };

  TermRef Pre = lambdaFree(
      "sv", S,
      mkConjs({LG.isValid(W, SV, A), LG.isValid(W, SV, B),
               mkEq(At(A), X), mkEq(At(B), Y)}));
  TermRef Post = lambdaFree(
      "rv", unitTy(),
      lambdaFree("sv", S, mkConj(mkEq(At(A), Y), mkEq(At(B), X))));
  printf("triple:\n  {|valid a, valid b, s[a]=x, s[b]=y|}\n"
         "  swap' a b\n  {|s[a]=y, s[b]=x|}\n\n");

  VCResult VCs = generateVCs(F->finalBody(), Pre, Post);
  AutoProver P;
  bool Ok = VCs.Ok;
  for (size_t I = 0; I != VCs.Goals.size(); ++I) {
    bool G = Ok && P.prove(VCs.Goals[I]).has_value();
    printf("  VC %zu (%s): %s\n", I, VCs.Labels[I].c_str(),
           G ? "discharged" : "FAILED");
    Ok = Ok && G;
  }
  printf("\nswap is %s (total correctness: %s)\n",
         Ok ? "verified" : "NOT verified",
         VCs.TotalCorrectness ? "yes" : "no");

  // Aliasing: swap(a, a) leaves *a unchanged.
  TermRef Def = F->finalBody();
  for (size_t I = F->ArgNames.size(); I-- > 0;)
    Def = lambdaFree(F->ArgNames[I], F->FinalArgTys[I], Def);
  TermRef Applied = betaNorm(mkApps(Def, {A, A}));
  TermRef PreA = lambdaFree(
      "sv", S, mkConj(LG.isValid(W, SV, A), mkEq(At(A), X)));
  TermRef PostA = lambdaFree(
      "rv", unitTy(), lambdaFree("sv", S, mkEq(At(A), X)));
  VCResult VCs2 = generateVCs(Applied, PreA, PostA);
  bool Ok2 = VCs2.Ok;
  for (const TermRef &G : VCs2.Goals)
    Ok2 = Ok2 && P.prove(G).has_value();
  printf("aliased swap(a, a) keeps *a: %s\n",
         Ok2 ? "verified" : "NOT verified");
  return (Ok && Ok2) ? 0 : 1;
}
