//===- quickstart.cpp - Five-minute tour of the library --------------------===//
//
// Run AutoCorres on a small C program and look at what you get back:
// the abstracted specification for every function, and the end-to-end
// refinement theorem with its auditable trusted base.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "hol/Print.h"

#include <cstdio>

using namespace ac;

int main() {
  const char *Source =
      "unsigned counter = 0;\n"
      "\n"
      "unsigned bump(unsigned by) {\n"
      "  counter = counter + by;\n"
      "  return counter;\n"
      "}\n"
      "\n"
      "int clamp(int v, int lo, int hi) {\n"
      "  if (v < lo) return lo;\n"
      "  if (hi < v) return hi;\n"
      "  return v;\n"
      "}\n";

  printf("input C:\n%s\n", Source);

  // One call runs the whole Fig 1 pipeline: parse -> Simpl -> monadic
  // L1 -> local-variable lifting L2 -> heap abstraction -> word
  // abstraction.
  DiagEngine Diags;
  std::unique_ptr<core::AutoCorres> AC = core::AutoCorres::run(Source, Diags);
  if (!AC) {
    fprintf(stderr, "translation failed:\n%s", Diags.str().c_str());
    return 1;
  }

  for (const std::string &Fn : AC->order()) {
    const core::FuncOutput *F = AC->func(Fn);
    printf("---- %s ----\n", Fn.c_str());
    printf("heap-lifted: %s, word-abstracted: %s\n",
           F->HeapLifted ? "yes" : "no",
           F->WordAbstracted ? "yes" : "no");
    printf("%s\n\n", AC->render(Fn).c_str());

    // Every output comes with a machine-checked derivation; inspect its
    // trusted base.
    std::set<std::string> Axioms, Oracles;
    hol::collectLeaves(F->Pipeline, Axioms, Oracles);
    printf("refinement theorem: %s...\n",
           F->Pipeline.str().substr(0, 100).c_str());
    printf("derivation: %zu nodes; axiom families used:",
           hol::derivSize(F->Pipeline));
    std::set<std::string> Families;
    for (const std::string &A : Axioms)
      Families.insert(A.substr(0, A.find('.')));
    for (const std::string &Fam : Families)
      printf(" %s", Fam.c_str());
    printf("\n\n");
  }

  const core::ACStats &S = AC->stats();
  printf("stats: %u LoC, %u functions, parse %.3fs, abstraction %.3fs\n",
         S.SourceLines, S.NumFunctions, S.ParserSeconds,
         S.AutoCorresSeconds);
  return 0;
}
