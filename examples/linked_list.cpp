//===- linked_list.cpp - Proving and running a pointer algorithm -----------===//
//
// The Sec 5.2 scenario as a user would drive it: translate in-place list
// reversal, port the Mehta & Nipkow-style proof (List library, loop
// invariant, termination measure), and — because the specifications are
// executable — run the abstracted program on a concrete list to watch it
// work.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/CaseStudies.h"
#include "corpus/Sources.h"
#include "hol/Print.h"
#include "monad/SimplInterp.h"

#include <cstdio>

using namespace ac;
using namespace ac::monad;

int main() {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(corpus::reverseSource(), Diags);
  if (!AC) {
    fprintf(stderr, "translation failed:\n%s", Diags.str().c_str());
    return 1;
  }
  printf("AutoCorres translation (Fig 6):\n%s\n\n",
         AC->render("reverse").c_str());

  // 1. The ported total-correctness proof.
  corpus::CaseStudyReport Rep = corpus::verifyListReversal();
  printf("proof: %s (%s); script components:\n",
         Rep.Verified ? "verified" : "FAILED",
         Rep.TotalCorrectness ? "total correctness" : "partial");
  for (const auto &C : Rep.Components)
    printf("  %-22s %4u lines\n", C.Name.c_str(), C.ScriptLines);

  // 2. The abstracted spec is executable: build a 5-node list in the
  // typed heap and run reverse' on it.
  InterpCtx &Ctx = AC->ctx();
  hol::TypeRef NodeTy = hol::recordTy("node_C");
  unsigned Size = Ctx.sizeOfTy(NodeTy);
  auto H = std::make_shared<HeapVal>();
  const unsigned N = 5;
  std::vector<uint32_t> Addr;
  for (unsigned I = 0; I != N; ++I)
    Addr.push_back(0x1000 + I * Size);
  for (unsigned I = 0; I != N; ++I) {
    std::map<std::string, Value> Fs;
    Fs.emplace("next", Value::ptr(I + 1 < N ? Addr[I + 1] : 0, "node_C"));
    Fs.emplace("data", Value::num(10 * (I + 1), hol::wordTy(32)));
    Ctx.encode(*H, Addr[I], Value::record("node_C", Fs), NodeTy);
    Ctx.retype(*H, Addr[I], NodeTy);
  }
  std::map<std::string, Value> GF;
  GF.emplace(simpl::heapFieldName(), Value::heap(H));
  Value G = Value::record(simpl::globalsRecName(), GF);
  Value Lifted = Ctx.LiftGlobalHeap(G, Ctx);

  const core::FuncOutput *F = AC->func("reverse");
  Ctx.reset();
  Value Fun = evalClosed(Ctx.FunDefs.at(F->finalKey()), Ctx);
  MonadResult MR =
      runMonad(Fun.Fun(Value::ptr(Addr[0], "node_C")), Lifted, Ctx);
  if (MR.Failed || MR.Results.size() != 1) {
    printf("execution failed\n");
    return 1;
  }
  Value Head = MR.Results[0].V;
  const Value &HeapFn = MR.Results[0].State.Rec->at("heap_node_C");
  printf("\nexecuting reverse' on [10, 20, 30, 40, 50]: [");
  Value P = Head;
  bool First = true;
  while (P.addr() != 0) {
    Value Node = HeapFn.Fun(P);
    printf("%s%lld", First ? "" : ", ",
           static_cast<long long>(Node.Rec->at("data").N));
    First = false;
    P = Node.Rec->at("next");
  }
  printf("]\n");
  return Rep.Verified ? 0 : 1;
}
