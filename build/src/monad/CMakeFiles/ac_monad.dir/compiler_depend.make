# Empty compiler generated dependencies file for ac_monad.
# This may be replaced when dependencies are built.
