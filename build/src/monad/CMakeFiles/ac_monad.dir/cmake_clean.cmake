file(REMOVE_RECURSE
  "CMakeFiles/ac_monad.dir/Interp.cpp.o"
  "CMakeFiles/ac_monad.dir/Interp.cpp.o.d"
  "CMakeFiles/ac_monad.dir/L1.cpp.o"
  "CMakeFiles/ac_monad.dir/L1.cpp.o.d"
  "CMakeFiles/ac_monad.dir/L2.cpp.o"
  "CMakeFiles/ac_monad.dir/L2.cpp.o.d"
  "CMakeFiles/ac_monad.dir/Peephole.cpp.o"
  "CMakeFiles/ac_monad.dir/Peephole.cpp.o.d"
  "CMakeFiles/ac_monad.dir/SimplInterp.cpp.o"
  "CMakeFiles/ac_monad.dir/SimplInterp.cpp.o.d"
  "CMakeFiles/ac_monad.dir/Value.cpp.o"
  "CMakeFiles/ac_monad.dir/Value.cpp.o.d"
  "libac_monad.a"
  "libac_monad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_monad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
