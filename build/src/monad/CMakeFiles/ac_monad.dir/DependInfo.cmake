
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monad/Interp.cpp" "src/monad/CMakeFiles/ac_monad.dir/Interp.cpp.o" "gcc" "src/monad/CMakeFiles/ac_monad.dir/Interp.cpp.o.d"
  "/root/repo/src/monad/L1.cpp" "src/monad/CMakeFiles/ac_monad.dir/L1.cpp.o" "gcc" "src/monad/CMakeFiles/ac_monad.dir/L1.cpp.o.d"
  "/root/repo/src/monad/L2.cpp" "src/monad/CMakeFiles/ac_monad.dir/L2.cpp.o" "gcc" "src/monad/CMakeFiles/ac_monad.dir/L2.cpp.o.d"
  "/root/repo/src/monad/Peephole.cpp" "src/monad/CMakeFiles/ac_monad.dir/Peephole.cpp.o" "gcc" "src/monad/CMakeFiles/ac_monad.dir/Peephole.cpp.o.d"
  "/root/repo/src/monad/SimplInterp.cpp" "src/monad/CMakeFiles/ac_monad.dir/SimplInterp.cpp.o" "gcc" "src/monad/CMakeFiles/ac_monad.dir/SimplInterp.cpp.o.d"
  "/root/repo/src/monad/Value.cpp" "src/monad/CMakeFiles/ac_monad.dir/Value.cpp.o" "gcc" "src/monad/CMakeFiles/ac_monad.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simpl/CMakeFiles/ac_simpl.dir/DependInfo.cmake"
  "/root/repo/build/src/hol/CMakeFiles/ac_hol.dir/DependInfo.cmake"
  "/root/repo/build/src/cparser/CMakeFiles/ac_cparser.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
