file(REMOVE_RECURSE
  "libac_monad.a"
)
