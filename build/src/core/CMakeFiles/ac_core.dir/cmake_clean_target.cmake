file(REMOVE_RECURSE
  "libac_core.a"
)
