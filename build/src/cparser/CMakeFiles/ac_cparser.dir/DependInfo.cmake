
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cparser/CTypes.cpp" "src/cparser/CMakeFiles/ac_cparser.dir/CTypes.cpp.o" "gcc" "src/cparser/CMakeFiles/ac_cparser.dir/CTypes.cpp.o.d"
  "/root/repo/src/cparser/Lexer.cpp" "src/cparser/CMakeFiles/ac_cparser.dir/Lexer.cpp.o" "gcc" "src/cparser/CMakeFiles/ac_cparser.dir/Lexer.cpp.o.d"
  "/root/repo/src/cparser/Parser.cpp" "src/cparser/CMakeFiles/ac_cparser.dir/Parser.cpp.o" "gcc" "src/cparser/CMakeFiles/ac_cparser.dir/Parser.cpp.o.d"
  "/root/repo/src/cparser/Sema.cpp" "src/cparser/CMakeFiles/ac_cparser.dir/Sema.cpp.o" "gcc" "src/cparser/CMakeFiles/ac_cparser.dir/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
