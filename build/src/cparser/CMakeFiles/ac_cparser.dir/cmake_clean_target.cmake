file(REMOVE_RECURSE
  "libac_cparser.a"
)
