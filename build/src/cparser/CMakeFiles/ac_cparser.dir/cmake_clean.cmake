file(REMOVE_RECURSE
  "CMakeFiles/ac_cparser.dir/CTypes.cpp.o"
  "CMakeFiles/ac_cparser.dir/CTypes.cpp.o.d"
  "CMakeFiles/ac_cparser.dir/Lexer.cpp.o"
  "CMakeFiles/ac_cparser.dir/Lexer.cpp.o.d"
  "CMakeFiles/ac_cparser.dir/Parser.cpp.o"
  "CMakeFiles/ac_cparser.dir/Parser.cpp.o.d"
  "CMakeFiles/ac_cparser.dir/Sema.cpp.o"
  "CMakeFiles/ac_cparser.dir/Sema.cpp.o.d"
  "libac_cparser.a"
  "libac_cparser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_cparser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
