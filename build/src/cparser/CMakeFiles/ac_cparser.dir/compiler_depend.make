# Empty compiler generated dependencies file for ac_cparser.
# This may be replaced when dependencies are built.
