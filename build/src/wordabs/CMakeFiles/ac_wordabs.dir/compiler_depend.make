# Empty compiler generated dependencies file for ac_wordabs.
# This may be replaced when dependencies are built.
