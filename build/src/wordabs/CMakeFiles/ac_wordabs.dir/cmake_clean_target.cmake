file(REMOVE_RECURSE
  "libac_wordabs.a"
)
