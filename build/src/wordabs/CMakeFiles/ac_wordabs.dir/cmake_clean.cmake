file(REMOVE_RECURSE
  "CMakeFiles/ac_wordabs.dir/WordAbs.cpp.o"
  "CMakeFiles/ac_wordabs.dir/WordAbs.cpp.o.d"
  "libac_wordabs.a"
  "libac_wordabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_wordabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
