file(REMOVE_RECURSE
  "libac_hol.a"
)
