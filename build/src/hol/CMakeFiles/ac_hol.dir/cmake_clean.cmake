file(REMOVE_RECURSE
  "CMakeFiles/ac_hol.dir/Builder.cpp.o"
  "CMakeFiles/ac_hol.dir/Builder.cpp.o.d"
  "CMakeFiles/ac_hol.dir/GroundEval.cpp.o"
  "CMakeFiles/ac_hol.dir/GroundEval.cpp.o.d"
  "CMakeFiles/ac_hol.dir/Print.cpp.o"
  "CMakeFiles/ac_hol.dir/Print.cpp.o.d"
  "CMakeFiles/ac_hol.dir/ProofState.cpp.o"
  "CMakeFiles/ac_hol.dir/ProofState.cpp.o.d"
  "CMakeFiles/ac_hol.dir/Simp.cpp.o"
  "CMakeFiles/ac_hol.dir/Simp.cpp.o.d"
  "CMakeFiles/ac_hol.dir/Term.cpp.o"
  "CMakeFiles/ac_hol.dir/Term.cpp.o.d"
  "CMakeFiles/ac_hol.dir/Thm.cpp.o"
  "CMakeFiles/ac_hol.dir/Thm.cpp.o.d"
  "CMakeFiles/ac_hol.dir/Type.cpp.o"
  "CMakeFiles/ac_hol.dir/Type.cpp.o.d"
  "CMakeFiles/ac_hol.dir/Unify.cpp.o"
  "CMakeFiles/ac_hol.dir/Unify.cpp.o.d"
  "libac_hol.a"
  "libac_hol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_hol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
