# Empty dependencies file for ac_hol.
# This may be replaced when dependencies are built.
