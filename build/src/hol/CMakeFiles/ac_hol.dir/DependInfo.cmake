
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hol/Builder.cpp" "src/hol/CMakeFiles/ac_hol.dir/Builder.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/Builder.cpp.o.d"
  "/root/repo/src/hol/GroundEval.cpp" "src/hol/CMakeFiles/ac_hol.dir/GroundEval.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/GroundEval.cpp.o.d"
  "/root/repo/src/hol/Print.cpp" "src/hol/CMakeFiles/ac_hol.dir/Print.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/Print.cpp.o.d"
  "/root/repo/src/hol/ProofState.cpp" "src/hol/CMakeFiles/ac_hol.dir/ProofState.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/ProofState.cpp.o.d"
  "/root/repo/src/hol/Simp.cpp" "src/hol/CMakeFiles/ac_hol.dir/Simp.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/Simp.cpp.o.d"
  "/root/repo/src/hol/Term.cpp" "src/hol/CMakeFiles/ac_hol.dir/Term.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/Term.cpp.o.d"
  "/root/repo/src/hol/Thm.cpp" "src/hol/CMakeFiles/ac_hol.dir/Thm.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/Thm.cpp.o.d"
  "/root/repo/src/hol/Type.cpp" "src/hol/CMakeFiles/ac_hol.dir/Type.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/Type.cpp.o.d"
  "/root/repo/src/hol/Unify.cpp" "src/hol/CMakeFiles/ac_hol.dir/Unify.cpp.o" "gcc" "src/hol/CMakeFiles/ac_hol.dir/Unify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
