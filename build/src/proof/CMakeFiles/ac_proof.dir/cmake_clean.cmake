file(REMOVE_RECURSE
  "CMakeFiles/ac_proof.dir/Auto.cpp.o"
  "CMakeFiles/ac_proof.dir/Auto.cpp.o.d"
  "CMakeFiles/ac_proof.dir/Hoare.cpp.o"
  "CMakeFiles/ac_proof.dir/Hoare.cpp.o.d"
  "CMakeFiles/ac_proof.dir/ListLib.cpp.o"
  "CMakeFiles/ac_proof.dir/ListLib.cpp.o.d"
  "libac_proof.a"
  "libac_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
