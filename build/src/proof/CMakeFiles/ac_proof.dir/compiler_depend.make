# Empty compiler generated dependencies file for ac_proof.
# This may be replaced when dependencies are built.
