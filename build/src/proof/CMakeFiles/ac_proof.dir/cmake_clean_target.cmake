file(REMOVE_RECURSE
  "libac_proof.a"
)
