
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proof/Auto.cpp" "src/proof/CMakeFiles/ac_proof.dir/Auto.cpp.o" "gcc" "src/proof/CMakeFiles/ac_proof.dir/Auto.cpp.o.d"
  "/root/repo/src/proof/Hoare.cpp" "src/proof/CMakeFiles/ac_proof.dir/Hoare.cpp.o" "gcc" "src/proof/CMakeFiles/ac_proof.dir/Hoare.cpp.o.d"
  "/root/repo/src/proof/ListLib.cpp" "src/proof/CMakeFiles/ac_proof.dir/ListLib.cpp.o" "gcc" "src/proof/CMakeFiles/ac_proof.dir/ListLib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monad/CMakeFiles/ac_monad.dir/DependInfo.cmake"
  "/root/repo/build/src/simpl/CMakeFiles/ac_simpl.dir/DependInfo.cmake"
  "/root/repo/build/src/hol/CMakeFiles/ac_hol.dir/DependInfo.cmake"
  "/root/repo/build/src/cparser/CMakeFiles/ac_cparser.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
