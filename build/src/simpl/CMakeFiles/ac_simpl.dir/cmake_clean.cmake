file(REMOVE_RECURSE
  "CMakeFiles/ac_simpl.dir/PrintSimpl.cpp.o"
  "CMakeFiles/ac_simpl.dir/PrintSimpl.cpp.o.d"
  "CMakeFiles/ac_simpl.dir/Simpl.cpp.o"
  "CMakeFiles/ac_simpl.dir/Simpl.cpp.o.d"
  "CMakeFiles/ac_simpl.dir/Translate.cpp.o"
  "CMakeFiles/ac_simpl.dir/Translate.cpp.o.d"
  "libac_simpl.a"
  "libac_simpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_simpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
