file(REMOVE_RECURSE
  "libac_simpl.a"
)
