# Empty dependencies file for ac_simpl.
# This may be replaced when dependencies are built.
