# CMake generated Testfile for 
# Source directory: /root/repo/src/simpl
# Build directory: /root/repo/build/src/simpl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
