file(REMOVE_RECURSE
  "CMakeFiles/ac_corpus.dir/CaseStudies.cpp.o"
  "CMakeFiles/ac_corpus.dir/CaseStudies.cpp.o.d"
  "CMakeFiles/ac_corpus.dir/Sources.cpp.o"
  "CMakeFiles/ac_corpus.dir/Sources.cpp.o.d"
  "CMakeFiles/ac_corpus.dir/Synthetic.cpp.o"
  "CMakeFiles/ac_corpus.dir/Synthetic.cpp.o.d"
  "libac_corpus.a"
  "libac_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
