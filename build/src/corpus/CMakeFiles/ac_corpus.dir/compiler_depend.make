# Empty compiler generated dependencies file for ac_corpus.
# This may be replaced when dependencies are built.
