file(REMOVE_RECURSE
  "libac_corpus.a"
)
