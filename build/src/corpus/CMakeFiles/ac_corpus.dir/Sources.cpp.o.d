src/corpus/CMakeFiles/ac_corpus.dir/Sources.cpp.o: \
 /root/repo/src/corpus/Sources.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/Sources.h
