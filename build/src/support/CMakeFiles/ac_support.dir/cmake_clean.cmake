file(REMOVE_RECURSE
  "CMakeFiles/ac_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/ac_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/ac_support.dir/StringUtils.cpp.o"
  "CMakeFiles/ac_support.dir/StringUtils.cpp.o.d"
  "libac_support.a"
  "libac_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
