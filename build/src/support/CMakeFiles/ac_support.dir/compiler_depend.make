# Empty compiler generated dependencies file for ac_support.
# This may be replaced when dependencies are built.
