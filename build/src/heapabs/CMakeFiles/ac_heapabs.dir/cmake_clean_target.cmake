file(REMOVE_RECURSE
  "libac_heapabs.a"
)
