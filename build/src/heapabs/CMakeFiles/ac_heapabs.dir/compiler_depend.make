# Empty compiler generated dependencies file for ac_heapabs.
# This may be replaced when dependencies are built.
