file(REMOVE_RECURSE
  "CMakeFiles/ac_heapabs.dir/HeapAbs.cpp.o"
  "CMakeFiles/ac_heapabs.dir/HeapAbs.cpp.o.d"
  "CMakeFiles/ac_heapabs.dir/LiftedGlobals.cpp.o"
  "CMakeFiles/ac_heapabs.dir/LiftedGlobals.cpp.o.d"
  "libac_heapabs.a"
  "libac_heapabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_heapabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
