file(REMOVE_RECURSE
  "CMakeFiles/kernel_module.dir/kernel_module.cpp.o"
  "CMakeFiles/kernel_module.dir/kernel_module.cpp.o.d"
  "kernel_module"
  "kernel_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
