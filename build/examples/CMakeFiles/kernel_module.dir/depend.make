# Empty dependencies file for kernel_module.
# This may be replaced when dependencies are built.
