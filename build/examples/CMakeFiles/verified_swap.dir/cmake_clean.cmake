file(REMOVE_RECURSE
  "CMakeFiles/verified_swap.dir/verified_swap.cpp.o"
  "CMakeFiles/verified_swap.dir/verified_swap.cpp.o.d"
  "verified_swap"
  "verified_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
