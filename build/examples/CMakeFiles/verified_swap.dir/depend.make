# Empty dependencies file for verified_swap.
# This may be replaced when dependencies are built.
