# Empty compiler generated dependencies file for test_cparser.
# This may be replaced when dependencies are built.
