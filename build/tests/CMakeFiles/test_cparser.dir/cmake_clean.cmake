file(REMOVE_RECURSE
  "CMakeFiles/test_cparser.dir/cparser/ParserTest.cpp.o"
  "CMakeFiles/test_cparser.dir/cparser/ParserTest.cpp.o.d"
  "test_cparser"
  "test_cparser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cparser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
