file(REMOVE_RECURSE
  "CMakeFiles/test_l1l2.dir/monad/L1L2Test.cpp.o"
  "CMakeFiles/test_l1l2.dir/monad/L1L2Test.cpp.o.d"
  "test_l1l2"
  "test_l1l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
