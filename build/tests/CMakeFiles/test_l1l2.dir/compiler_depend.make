# Empty compiler generated dependencies file for test_l1l2.
# This may be replaced when dependencies are built.
