file(REMOVE_RECURSE
  "CMakeFiles/test_proof.dir/proof/ProofTest.cpp.o"
  "CMakeFiles/test_proof.dir/proof/ProofTest.cpp.o.d"
  "test_proof"
  "test_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
