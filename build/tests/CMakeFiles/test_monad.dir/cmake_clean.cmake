file(REMOVE_RECURSE
  "CMakeFiles/test_monad.dir/monad/InterpTest.cpp.o"
  "CMakeFiles/test_monad.dir/monad/InterpTest.cpp.o.d"
  "test_monad"
  "test_monad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
