# Empty dependencies file for test_monad.
# This may be replaced when dependencies are built.
