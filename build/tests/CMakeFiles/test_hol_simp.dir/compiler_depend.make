# Empty compiler generated dependencies file for test_hol_simp.
# This may be replaced when dependencies are built.
