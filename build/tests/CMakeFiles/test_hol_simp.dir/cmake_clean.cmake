file(REMOVE_RECURSE
  "CMakeFiles/test_hol_simp.dir/hol/SimpTest.cpp.o"
  "CMakeFiles/test_hol_simp.dir/hol/SimpTest.cpp.o.d"
  "test_hol_simp"
  "test_hol_simp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hol_simp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
