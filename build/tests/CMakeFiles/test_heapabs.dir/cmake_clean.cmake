file(REMOVE_RECURSE
  "CMakeFiles/test_heapabs.dir/heapabs/HeapAbsTest.cpp.o"
  "CMakeFiles/test_heapabs.dir/heapabs/HeapAbsTest.cpp.o.d"
  "test_heapabs"
  "test_heapabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heapabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
