# Empty dependencies file for test_heapabs.
# This may be replaced when dependencies are built.
