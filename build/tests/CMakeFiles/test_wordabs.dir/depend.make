# Empty dependencies file for test_wordabs.
# This may be replaced when dependencies are built.
