file(REMOVE_RECURSE
  "CMakeFiles/test_wordabs.dir/wordabs/WordAbsTest.cpp.o"
  "CMakeFiles/test_wordabs.dir/wordabs/WordAbsTest.cpp.o.d"
  "test_wordabs"
  "test_wordabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wordabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
