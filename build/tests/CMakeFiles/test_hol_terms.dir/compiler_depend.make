# Empty compiler generated dependencies file for test_hol_terms.
# This may be replaced when dependencies are built.
