file(REMOVE_RECURSE
  "CMakeFiles/test_hol_terms.dir/hol/TermTest.cpp.o"
  "CMakeFiles/test_hol_terms.dir/hol/TermTest.cpp.o.d"
  "test_hol_terms"
  "test_hol_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hol_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
