file(REMOVE_RECURSE
  "CMakeFiles/test_hol_unify.dir/hol/UnifyTest.cpp.o"
  "CMakeFiles/test_hol_unify.dir/hol/UnifyTest.cpp.o.d"
  "test_hol_unify"
  "test_hol_unify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hol_unify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
