# Empty dependencies file for test_hol_unify.
# This may be replaced when dependencies are built.
