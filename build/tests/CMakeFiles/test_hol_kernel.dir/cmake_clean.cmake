file(REMOVE_RECURSE
  "CMakeFiles/test_hol_kernel.dir/hol/KernelTest.cpp.o"
  "CMakeFiles/test_hol_kernel.dir/hol/KernelTest.cpp.o.d"
  "test_hol_kernel"
  "test_hol_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hol_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
