# Empty dependencies file for test_hol_kernel.
# This may be replaced when dependencies are built.
