# Empty compiler generated dependencies file for test_simpl.
# This may be replaced when dependencies are built.
