file(REMOVE_RECURSE
  "CMakeFiles/test_simpl.dir/simpl/TranslateTest.cpp.o"
  "CMakeFiles/test_simpl.dir/simpl/TranslateTest.cpp.o.d"
  "test_simpl"
  "test_simpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
