# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_hol_terms "/root/repo/build/tests/test_hol_terms")
set_tests_properties(test_hol_terms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hol_unify "/root/repo/build/tests/test_hol_unify")
set_tests_properties(test_hol_unify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hol_kernel "/root/repo/build/tests/test_hol_kernel")
set_tests_properties(test_hol_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hol_simp "/root/repo/build/tests/test_hol_simp")
set_tests_properties(test_hol_simp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cparser "/root/repo/build/tests/test_cparser")
set_tests_properties(test_cparser PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_simpl "/root/repo/build/tests/test_simpl")
set_tests_properties(test_simpl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_monad "/root/repo/build/tests/test_monad")
set_tests_properties(test_monad PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_l1l2 "/root/repo/build/tests/test_l1l2")
set_tests_properties(test_l1l2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_heapabs "/root/repo/build/tests/test_heapabs")
set_tests_properties(test_heapabs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_wordabs "/root/repo/build/tests/test_wordabs")
set_tests_properties(test_wordabs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_proof "/root/repo/build/tests/test_proof")
set_tests_properties(test_proof PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;ac_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_corpus "/root/repo/build/tests/test_corpus")
set_tests_properties(test_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;ac_test;/root/repo/tests/CMakeLists.txt;0;")
