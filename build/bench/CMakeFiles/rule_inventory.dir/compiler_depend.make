# Empty compiler generated dependencies file for rule_inventory.
# This may be replaced when dependencies are built.
