file(REMOVE_RECURSE
  "CMakeFiles/rule_inventory.dir/rule_inventory.cpp.o"
  "CMakeFiles/rule_inventory.dir/rule_inventory.cpp.o.d"
  "rule_inventory"
  "rule_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
