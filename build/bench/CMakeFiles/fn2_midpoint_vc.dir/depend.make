# Empty dependencies file for fn2_midpoint_vc.
# This may be replaced when dependencies are built.
