file(REMOVE_RECURSE
  "CMakeFiles/fn2_midpoint_vc.dir/fn2_midpoint_vc.cpp.o"
  "CMakeFiles/fn2_midpoint_vc.dir/fn2_midpoint_vc.cpp.o.d"
  "fn2_midpoint_vc"
  "fn2_midpoint_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fn2_midpoint_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
