# Empty compiler generated dependencies file for table2_word_identities.
# This may be replaced when dependencies are built.
