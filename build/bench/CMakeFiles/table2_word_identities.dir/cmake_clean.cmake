file(REMOVE_RECURSE
  "CMakeFiles/table2_word_identities.dir/table2_word_identities.cpp.o"
  "CMakeFiles/table2_word_identities.dir/table2_word_identities.cpp.o.d"
  "table2_word_identities"
  "table2_word_identities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_word_identities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
