# Empty dependencies file for fig3_5_swap.
# This may be replaced when dependencies are built.
