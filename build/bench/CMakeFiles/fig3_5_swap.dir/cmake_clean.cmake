file(REMOVE_RECURSE
  "CMakeFiles/fig3_5_swap.dir/fig3_5_swap.cpp.o"
  "CMakeFiles/fig3_5_swap.dir/fig3_5_swap.cpp.o.d"
  "fig3_5_swap"
  "fig3_5_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_5_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
