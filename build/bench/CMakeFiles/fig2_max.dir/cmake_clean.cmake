file(REMOVE_RECURSE
  "CMakeFiles/fig2_max.dir/fig2_max.cpp.o"
  "CMakeFiles/fig2_max.dir/fig2_max.cpp.o.d"
  "fig2_max"
  "fig2_max.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
