# Empty compiler generated dependencies file for fig2_max.
# This may be replaced when dependencies are built.
