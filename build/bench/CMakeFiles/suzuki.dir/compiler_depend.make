# Empty compiler generated dependencies file for suzuki.
# This may be replaced when dependencies are built.
