file(REMOVE_RECURSE
  "CMakeFiles/suzuki.dir/suzuki.cpp.o"
  "CMakeFiles/suzuki.dir/suzuki.cpp.o.d"
  "suzuki"
  "suzuki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suzuki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
