
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table6_proof_effort.cpp" "bench/CMakeFiles/table6_proof_effort.dir/table6_proof_effort.cpp.o" "gcc" "bench/CMakeFiles/table6_proof_effort.dir/table6_proof_effort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/ac_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proof/CMakeFiles/ac_proof.dir/DependInfo.cmake"
  "/root/repo/build/src/wordabs/CMakeFiles/ac_wordabs.dir/DependInfo.cmake"
  "/root/repo/build/src/heapabs/CMakeFiles/ac_heapabs.dir/DependInfo.cmake"
  "/root/repo/build/src/monad/CMakeFiles/ac_monad.dir/DependInfo.cmake"
  "/root/repo/build/src/simpl/CMakeFiles/ac_simpl.dir/DependInfo.cmake"
  "/root/repo/build/src/cparser/CMakeFiles/ac_cparser.dir/DependInfo.cmake"
  "/root/repo/build/src/hol/CMakeFiles/ac_hol.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
