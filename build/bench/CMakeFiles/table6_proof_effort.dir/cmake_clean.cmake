file(REMOVE_RECURSE
  "CMakeFiles/table6_proof_effort.dir/table6_proof_effort.cpp.o"
  "CMakeFiles/table6_proof_effort.dir/table6_proof_effort.cpp.o.d"
  "table6_proof_effort"
  "table6_proof_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_proof_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
