# Empty compiler generated dependencies file for table6_proof_effort.
# This may be replaced when dependencies are built.
