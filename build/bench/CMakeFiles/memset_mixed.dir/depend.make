# Empty dependencies file for memset_mixed.
# This may be replaced when dependencies are built.
