file(REMOVE_RECURSE
  "CMakeFiles/memset_mixed.dir/memset_mixed.cpp.o"
  "CMakeFiles/memset_mixed.dir/memset_mixed.cpp.o.d"
  "memset_mixed"
  "memset_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memset_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
