# Empty compiler generated dependencies file for fig6_reverse.
# This may be replaced when dependencies are built.
