file(REMOVE_RECURSE
  "CMakeFiles/fig6_reverse.dir/fig6_reverse.cpp.o"
  "CMakeFiles/fig6_reverse.dir/fig6_reverse.cpp.o.d"
  "fig6_reverse"
  "fig6_reverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
