file(REMOVE_RECURSE
  "CMakeFiles/phase_times.dir/phase_times.cpp.o"
  "CMakeFiles/phase_times.dir/phase_times.cpp.o.d"
  "phase_times"
  "phase_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
