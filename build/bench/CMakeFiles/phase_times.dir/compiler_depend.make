# Empty compiler generated dependencies file for phase_times.
# This may be replaced when dependencies are built.
