//===- WordAbsTest.cpp - Word abstraction (Sec 3) --------------------------===//
//
// Validates the abs_w_stmt refinement statement of Sec 3.3 differentially
// and reproduces the paper's worked examples: Fig 2's max, the binary
// search midpoint with its UINT_MAX guard, gcd, and the custom
// overflow-test idiom rule.
//
//===----------------------------------------------------------------------===//

#include "../common/TestUtil.h"

#include "heapabs/HeapAbs.h"
#include "hol/Print.h"
#include "wordabs/WordAbs.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::hol;
using namespace ac::monad;
using namespace ac::test;
using namespace ac::wordabs;

namespace {

/// Full pipeline: parse -> L1 -> L2 -> HL -> WA.
struct FullPipeline {
  std::unique_ptr<simpl::SimplProgram> Prog;
  InterpCtx Ctx;
  std::map<std::string, L2Result> L2;
  std::unique_ptr<heapabs::HeapAbstraction> HL;
  std::unique_ptr<WordAbstraction> WA;

  explicit FullPipeline(const std::string &Src) : Ctx(nullptr) {
    DiagEngine Diags;
    Prog = simpl::parseAndTranslate(Src, Diags);
    EXPECT_TRUE(Prog != nullptr) << Diags.str();
    Ctx = InterpCtx(Prog.get());
    convertAllL1(*Prog, Ctx);
    L2 = convertAllL2(*Prog, Ctx);
    HL = std::make_unique<heapabs::HeapAbstraction>(*Prog, Ctx);
    WA = std::make_unique<WordAbstraction>(Ctx);
    for (const std::string &Name : Prog->FunctionOrder) {
      const simpl::SimplFunc *F = Prog->function(Name);
      const heapabs::HLResult &H =
          HL->abstractFunction(*F, L2.at(Name));
      const L2Result &L = L2.at(Name);
      WA->abstractFunction(Name, H.AppliedBody, L.ArgNames, L.ArgTys);
    }
  }

  const WAResult &result(const std::string &Fn) const {
    return WA->results().at(Fn);
  }
  bool lifted(const std::string &Fn) const {
    return HL->results().at(Fn).Lifted;
  }
};

/// The rx image of a concrete runtime value.
Value rxValue(const Value &V, const TypeRef &CTy) {
  switch (kindOf(CTy)) {
  case AbsKind::Nat:
    return Value::num(V.N, natTy()); // unsigned words are non-negative
  case AbsKind::Int:
    return Value::num(V.N, intTy()); // stored sign-extended
  case AbsKind::Pair:
    return Value::pair(rxValue(V.PairV->first, CTy->arg(0)),
                       rxValue(V.PairV->second, CTy->arg(1)));
  case AbsKind::Id:
    return V;
  }
  return V;
}

/// One differential trial of abs_w_stmt over the heap-lifted program.
Diff checkWAOnce(FullPipeline &P, const std::string &Fn, Rng &R) {
  const simpl::SimplFunc *F = P.Prog->function(Fn);
  InterpCtx &Ctx = P.Ctx;
  TestWorld W = buildWorld(*P.Prog, Ctx, R);
  std::vector<Value> Args, AbsArgs;
  for (const auto &[Name, Ty] : F->Params) {
    Value V = randomValue(Ty, W, R, Ctx);
    AbsArgs.push_back(rxValue(V, Ty));
    Args.push_back(std::move(V));
  }
  Value Globals = randomGlobals(*P.Prog, W, R, Ctx);
  Value State = P.lifted(Fn) ? Ctx.LiftGlobalHeap(Globals, Ctx) : Globals;

  auto Apply = [&](const std::string &Prefix,
                   const std::vector<Value> &As) {
    Ctx.reset();
    Value Fun = evalClosed(Ctx.FunDefs.at(Prefix + Fn), Ctx);
    for (const Value &A : As)
      Fun = Fun.Fun(A);
    return runMonad(Fun, State, Ctx);
  };

  std::string CPrefix = P.lifted(Fn) ? "hl:" : "l2:";
  MonadResult CR = Apply(CPrefix, Args);
  bool CFuel = Ctx.OutOfFuel;
  MonadResult AR = Apply("wa:", AbsArgs);
  bool AFuel = Ctx.OutOfFuel;
  if (CFuel || AFuel)
    return Diff::Skip;

  // abs_w_stmt: if A does not fail, then C's values abstract to A's and
  // C does not fail.
  if (AR.Failed)
    return Diff::Ok;
  if (CR.Failed)
    return Diff::Mismatch;
  if (CR.Results.size() != 1 || AR.Results.size() != 1)
    return Diff::Mismatch;
  const auto &CRes = CR.Results[0];
  const auto &ARes = AR.Results[0];
  if (CRes.IsExn != ARes.IsExn)
    return Diff::Mismatch;
  TypeRef RetTy = F->RetTy ? F->RetTy : unitTy();
  if (!Value::equal(rxValue(CRes.V, RetTy), ARes.V))
    return Diff::Mismatch;
  // The state is untouched by word abstraction; final states must agree
  // on plain-global observations (heap comparisons happen in the HL
  // tests; here both sides run the same state transformers).
  return Diff::Ok;
}

const char *MaxSrc = "int max(int a, int b) {\n"
                     "  if (a < b) return b;\n"
                     "  return a;\n"
                     "}\n";

const char *MidpointSrc =
    "unsigned mid(unsigned l, unsigned r) { return (l + r) / 2; }\n";

const char *GcdSrc = "unsigned gcd(unsigned a, unsigned b) {\n"
                     "  while (b != 0) {\n"
                     "    unsigned t = b;\n"
                     "    b = a % b;\n"
                     "    a = t;\n"
                     "  }\n"
                     "  return a;\n"
                     "}\n";

const char *SignedSumSrc = "int add(int a, int b) { return a + b; }\n";

const char *SwapSrc = "void swap(unsigned *a, unsigned *b) {\n"
                      "  unsigned t = *a;\n"
                      "  *a = *b;\n"
                      "  *b = t;\n"
                      "}\n";

const char *OverflowTestSrc =
    "unsigned safe_add(unsigned x, unsigned y) {\n"
    "  if (x + y < x) return 0;\n"
    "  return x + y;\n"
    "}\n";

} // namespace

TEST(WordAbs, MidpointMatchesPaper) {
  // Sec 3.3: the running example. Expected output:
  //   do guard (l + r <= UINT_MAX); return ((l + r) div 2) od
  FullPipeline P(MidpointSrc);
  const WAResult &R = P.result("mid");
  ASSERT_TRUE(R.Abstracted);
  std::string Out = printTerm(R.AppliedBody);
  EXPECT_NE(Out.find("l + r ≤ 4294967295"), std::string::npos) << Out;
  EXPECT_NE(Out.find("(l + r) div 2"), std::string::npos) << Out;
  // The arguments became ideal naturals.
  ASSERT_EQ(R.AbsArgTys.size(), 2u);
  EXPECT_TRUE(typeEq(R.AbsArgTys[0], natTy()));
}

TEST(WordAbs, MidpointDifferential) {
  FullPipeline P(MidpointSrc);
  EXPECT_TRUE(runTrials(300, 31,
                        [&](Rng &R) { return checkWAOnce(P, "mid", R); }));
}

TEST(WordAbs, MaxBecomesIdealMax) {
  // Fig 2: max' a b = if a < b then b else a — over ideal integers.
  FullPipeline P(MaxSrc);
  const WAResult &R = P.result("max");
  ASSERT_TRUE(R.Abstracted);
  std::string Out = printTerm(R.AppliedBody);
  EXPECT_NE(Out.find("if a < b then b else a"), std::string::npos) << Out;
  // No machine-word operators remain.
  EXPECT_EQ(Out.find("<s"), std::string::npos) << Out;
  EXPECT_TRUE(typeEq(R.AbsArgTys[0], intTy()));
}

TEST(WordAbs, MaxDifferential) {
  FullPipeline P(MaxSrc);
  EXPECT_TRUE(runTrials(300, 32,
                        [&](Rng &R) { return checkWAOnce(P, "max", R); }));
}

TEST(WordAbs, SignedSumEmitsIdealGuards) {
  FullPipeline P(SignedSumSrc);
  const WAResult &R = P.result("add");
  ASSERT_TRUE(R.Abstracted);
  std::string Out = printTerm(R.AppliedBody);
  // INT_MIN <= a + b and a + b <= INT_MAX over ideal integers.
  EXPECT_NE(Out.find("-2147483648 ≤ a + b"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a + b ≤ 2147483647"), std::string::npos) << Out;
}

TEST(WordAbs, SignedSumDifferential) {
  FullPipeline P(SignedSumSrc);
  EXPECT_TRUE(runTrials(300, 33,
                        [&](Rng &R) { return checkWAOnce(P, "add", R); }));
}

TEST(WordAbs, GcdDifferentialAndLoopLifts) {
  FullPipeline P(GcdSrc);
  const WAResult &R = P.result("gcd");
  ASSERT_TRUE(R.Abstracted);
  std::string Out = printTerm(R.AppliedBody);
  EXPECT_NE(Out.find("whileLoop"), std::string::npos) << Out;
  // The loop iterates over ideal naturals (mod needs no guard).
  EXPECT_EQ(Out.find("unat"), std::string::npos) << Out;
  EXPECT_TRUE(runTrials(200, 34,
                        [&](Rng &R2) { return checkWAOnce(P, "gcd", R2); }));
}

TEST(WordAbs, HeapProgramsAbstract) {
  // swap: pointers stay, the word32 heap values get unat images.
  FullPipeline P(SwapSrc);
  const WAResult &R = P.result("swap");
  ASSERT_TRUE(R.Abstracted);
  EXPECT_TRUE(runTrials(200, 35,
                        [&](Rng &R2) { return checkWAOnce(P, "swap", R2); }));
}

TEST(WordAbs, CorresTheoremShape) {
  FullPipeline P(MidpointSrc);
  const Thm &T = P.result("mid").Corres;
  std::vector<TermRef> Args;
  TermRef Head = stripApp(T.prop(), Args);
  EXPECT_TRUE(Head->isConst(names::AbsWStmt));
  ASSERT_EQ(Args.size(), 5u);
  // rx is unat (the function returns unsigned).
  EXPECT_TRUE(Args[1]->isConst(names::Unat));
  std::set<std::string> Axs, Oracles;
  collectLeaves(T, Axs, Oracles);
  for (const std::string &A : Axs)
    EXPECT_TRUE(A.rfind("WA.", 0) == 0) << "unexpected axiom " << A;
  EXPECT_TRUE(Oracles.empty());
  EXPECT_TRUE(Inventory::instance().hasAxiom("WA.triv"));
  EXPECT_TRUE(Inventory::instance().hasAxiom("WA.nat_plus_pp.32") ||
              Inventory::instance().hasAxiom("WA.nat_plus.32"));
}

TEST(WordAbs, RuleCountMatchesPaperScale) {
  // "approximately 40 rules built-in ... an additional 11 for each type"
  FullPipeline P(MidpointSrc);
  EXPECT_GE(WordAbstraction::ruleCount(), 20u);
}

TEST(WordAbs, CustomIdiomRule) {
  // Sec 3.3: `x + y < x` tests unsigned overflow; without a custom rule
  // the abstraction guards the addition (making the test useless); with
  // the rule it becomes UINT_MAX < x + y.
  DiagEngine Diags;
  auto Prog = simpl::parseAndTranslate(OverflowTestSrc, Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  InterpCtx Ctx(Prog.get());
  convertAllL1(*Prog, Ctx);
  auto L2 = convertAllL2(*Prog, Ctx);
  heapabs::HeapAbstraction HL(*Prog, Ctx);
  const heapabs::HLResult &H =
      HL.abstractFunction(*Prog->function("safe_add"),
                          L2.at("safe_add"));
  WordAbstraction WA(Ctx);
  // Build the custom rule:
  //   abs_w_val P unat x' x ==> abs_w_val Q unat y' y ==>
  //   abs_w_val (P & Q) id_abs (UINT_MAX < x' + y') (x +w y <w x)
  TypeRef W32 = wordTy(32);
  TermRef UnatC = Term::mkConst(names::Unat, funTy(W32, natTy()));
  TermRef IdB = Term::mkConst("id_abs", funTy(boolTy(), boolTy()));
  TermRef Pv = Term::mkVar("P", 0, boolTy());
  TermRef Qv = Term::mkVar("Q", 0, boolTy());
  TermRef Xa = Term::mkVar("x'", 0, natTy());
  TermRef Xc = Term::mkVar("x", 0, W32);
  TermRef Ya = Term::mkVar("y'", 0, natTy());
  TermRef Yc = Term::mkVar("y", 0, W32);
  TermRef JV = Term::mkConst(
      names::AbsWVal,
      funTys({boolTy(), funTy(W32, natTy()), natTy(), W32}, boolTy()));
  TermRef JB = Term::mkConst(
      names::AbsWVal,
      funTys({boolTy(), funTy(boolTy(), boolTy()), boolTy(), boolTy()},
             boolTy()));
  TermRef Prem1 = mkApps(JV, {Pv, UnatC, Xa, Xc});
  TermRef Prem2 = mkApps(JV, {Qv, UnatC, Ya, Yc});
  TermRef AbsSide =
      mkLess(mkNumOf(natTy(), wordMaxVal(32)), mkPlus(Xa, Ya));
  TermRef ConcSide = mkLess(mkPlus(Xc, Yc), Xc);
  TermRef Concl = mkApps(JB, {mkConj(Pv, Qv), IdB, AbsSide, ConcSide});
  Thm Rule = Kernel::axiom("user.unsigned_overflow_test",
                           mkImp(Prem1, mkImp(Prem2, Concl)));
  WA.addValRule(Rule);
  const L2Result &L = L2.at("safe_add");
  const WAResult &R = WA.abstractFunction("safe_add", H.AppliedBody,
                                          L.ArgNames, L.ArgTys);
  ASSERT_TRUE(R.Abstracted);
  std::string Out = printTerm(R.AppliedBody);
  EXPECT_NE(Out.find("4294967295 < x + y"), std::string::npos) << Out;
}

TEST(WordAbs, Table2IdentitiesHoldAfterAbstraction) {
  // The Table 2 counterexamples live at the word level; after
  // abstraction the identities are restored on ideal types. Check the
  // semantics: unat images never wrap.
  InterpCtx Ctx;
  Rng R(77);
  for (int I = 0; I != 1000; ++I) {
    uint32_t U = static_cast<uint32_t>(R.next());
    // u + 1 > u: false at the word level for u = 2^32-1...
    uint32_t WordSum = U + 1;
    bool WordHolds = WordSum > U;
    // ...but always true on the ideal image.
    unsigned long long Ideal = static_cast<unsigned long long>(U) + 1;
    EXPECT_TRUE(Ideal > U);
    if (U == 0xffffffffu)
      EXPECT_FALSE(WordHolds);
  }
}
