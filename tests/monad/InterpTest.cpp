//===- InterpTest.cpp - Evaluator and Simpl interpreter --------------------===//

#include "../common/TestUtil.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::hol;
using namespace ac::monad;
using namespace ac::test;

namespace {

std::unique_ptr<simpl::SimplProgram> translate(const std::string &Src) {
  DiagEngine Diags;
  auto P = simpl::parseAndTranslate(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  return P;
}

Value numV(long long V, TypeRef Ty) {
  return Value::num(normalizeToType(V, Ty), Ty);
}

} // namespace

TEST(Interp, TermEvaluation) {
  InterpCtx Ctx;
  // (%x. x * x) 7.
  TermRef X = Term::mkFree("x", natTy());
  TermRef Lam = lambdaFree("x", natTy(), mkTimes(X, X));
  Value F = evalClosed(Lam, Ctx);
  Value R = F.Fun(numV(7, natTy()));
  EXPECT_EQ(static_cast<long long>(R.N), 49);
}

TEST(Interp, MonadSemantics) {
  InterpCtx Ctx;
  TypeRef S = natTy(); // a trivial numeric state
  // do x <- gets id; guard (x < 10); return (x + 1) od
  TermRef SV = Term::mkFree("s", S);
  TermRef XV = Term::mkFree("x", S);
  TermRef GetsId = mkGets(S, unitTy(), lambdaFree("s", S, SV));
  TermRef Guard = mkGuard(
      S, unitTy(), lambdaFree("s", S, mkLess(SV, mkNumOf(S, 10))));
  TermRef Inner = mkBind(
      Guard, Term::mkLam("_", unitTy(),
                         mkReturn(S, unitTy(),
                                  mkPlus(XV, mkNumOf(S, 1)))));
  TermRef Prog = mkBind(GetsId, lambdaFree("x", S, Inner));
  Value M = evalClosed(Prog, Ctx);
  MonadResult R1 = runMonad(M, numV(5, natTy()), Ctx);
  ASSERT_FALSE(R1.Failed);
  ASSERT_EQ(R1.Results.size(), 1u);
  EXPECT_EQ(static_cast<long long>(R1.Results[0].V.N), 6);
  MonadResult R2 = runMonad(M, numV(50, natTy()), Ctx);
  EXPECT_TRUE(R2.Failed); // guard fails
}

TEST(Interp, WhileLoopSemantics) {
  InterpCtx Ctx;
  TypeRef S = unitTy();
  TypeRef N = natTy();
  // whileLoop (%r s. r < 10) (%r. return (r + 2)) 0 == 10.
  TermRef RV = Term::mkFree("r", N);
  TermRef Cond = lambdaFree(
      "r", N, lambdaFree("s", S, mkLess(RV, mkNumOf(N, 10))));
  TermRef Body = lambdaFree(
      "r", N, mkReturn(S, unitTy(), mkPlus(RV, mkNumOf(N, 2))));
  TermRef Loop = mkWhileLoop(Cond, Body, mkNumOf(N, 0));
  Value M = evalClosed(Loop, Ctx);
  MonadResult R = runMonad(M, Value::unit(), Ctx);
  ASSERT_FALSE(R.Failed);
  ASSERT_EQ(R.Results.size(), 1u);
  EXPECT_EQ(static_cast<long long>(R.Results[0].V.N), 10);
}

TEST(Interp, NonTerminatingLoopRunsOutOfFuel) {
  InterpCtx Ctx;
  Ctx.Fuel = 1000;
  TypeRef S = unitTy();
  TypeRef N = natTy();
  TermRef RV = Term::mkFree("r", N);
  TermRef Cond = Term::mkLam("r", N, Term::mkLam("s", S, mkTrue()));
  TermRef Body = lambdaFree("r", N, mkReturn(S, unitTy(), RV));
  TermRef Loop = mkWhileLoop(Cond, Body, mkNumOf(N, 0));
  Value M = evalClosed(Loop, Ctx);
  MonadResult R = runMonad(M, Value::unit(), Ctx);
  EXPECT_TRUE(R.Failed);
  EXPECT_TRUE(Ctx.OutOfFuel);
}

TEST(Interp, HeapEncodeDecode) {
  auto P = translate("struct node { struct node *next; unsigned data; };\n"
                     "unsigned f(struct node *p) { return p->data; }\n");
  InterpCtx Ctx(P.get());
  HeapVal H;
  TypeRef NodeTy = recordTy("node_C");
  std::map<std::string, Value> Fields;
  Fields.emplace("next", Value::ptr(0x40, "node_C"));
  Fields.emplace("data", numV(0xdeadbeef, wordTy(32)));
  Value Node = Value::record("node_C", Fields);
  Ctx.encode(H, 0x100, Node, NodeTy);
  Value Back = Ctx.decode(H, 0x100, NodeTy);
  EXPECT_TRUE(Value::equal(Node, Back));
  // Individual field bytes land at the right offsets (little endian).
  EXPECT_EQ(H.readByte(0x100), 0x40); // next pointer low byte
  EXPECT_EQ(H.readByte(0x104), 0xef); // data low byte
}

TEST(Interp, TypeTags) {
  auto P = translate("unsigned f(unsigned *p) { return *p; }\n");
  InterpCtx Ctx(P.get());
  HeapVal H;
  TypeRef W = wordTy(32);
  Ctx.retype(H, 0x100, W);
  EXPECT_TRUE(Ctx.typeTagValid(H, 0x100, W));
  EXPECT_FALSE(Ctx.typeTagValid(H, 0x102, W)); // footprint, not start
  EXPECT_FALSE(Ctx.typeTagValid(H, 0x200, W)); // untyped
}

TEST(SimplInterp, MaxComputes) {
  auto P = translate("int max(int a, int b) {\n"
                     "  if (a < b) return b;\n"
                     "  return a;\n"
                     "}\n");
  InterpCtx Ctx(P.get());
  const simpl::SimplFunc *F = P->function("max");
  Value G = Ctx.defaultValue(P->GlobalsTy);
  SimplOutcome R = runSimplFunction(
      *F, {numV(-5, swordTy(32)), numV(3, swordTy(32))}, G, Ctx);
  ASSERT_EQ(R.K, SimplOutcome::Kind::Normal);
  EXPECT_EQ(static_cast<long long>(R.State.Rec->at("ret").N), 3);
}

TEST(SimplInterp, SignedOverflowFaults) {
  auto P = translate("int add(int a, int b) { return a + b; }\n");
  InterpCtx Ctx(P.get());
  const simpl::SimplFunc *F = P->function("add");
  Value G = Ctx.defaultValue(P->GlobalsTy);
  SimplOutcome Ok = runSimplFunction(
      *F, {numV(1, swordTy(32)), numV(2, swordTy(32))}, G, Ctx);
  EXPECT_EQ(Ok.K, SimplOutcome::Kind::Normal);
  SimplOutcome Bad = runSimplFunction(
      *F, {numV(0x7fffffff, swordTy(32)), numV(1, swordTy(32))}, G, Ctx);
  EXPECT_EQ(Bad.K, SimplOutcome::Kind::Fault);
  EXPECT_EQ(Bad.FaultKind, simpl::GuardKind::SignedOverflow);
}

TEST(SimplInterp, NullDerefFaults) {
  auto P = translate("unsigned deref(unsigned *p) { return *p; }\n");
  InterpCtx Ctx(P.get());
  const simpl::SimplFunc *F = P->function("deref");
  Value G = Ctx.defaultValue(P->GlobalsTy);
  SimplOutcome R =
      runSimplFunction(*F, {Value::ptr(0, "word32")}, G, Ctx);
  EXPECT_EQ(R.K, SimplOutcome::Kind::Fault);
  EXPECT_EQ(R.FaultKind, simpl::GuardKind::PtrValid);
  SimplOutcome R2 =
      runSimplFunction(*F, {Value::ptr(0x101, "word32")}, G, Ctx);
  EXPECT_EQ(R2.K, SimplOutcome::Kind::Fault); // misaligned
}

TEST(SimplInterp, CallsAndGlobals) {
  auto P = translate("unsigned counter = 0;\n"
                     "void bump(unsigned by) { counter = counter + by; }\n"
                     "unsigned twice(unsigned by) {\n"
                     "  bump(by);\n"
                     "  bump(by);\n"
                     "  return counter;\n"
                     "}\n");
  InterpCtx Ctx(P.get());
  const simpl::SimplFunc *F = P->function("twice");
  Value G = Ctx.defaultValue(P->GlobalsTy);
  SimplOutcome R =
      runSimplFunction(*F, {numV(21, wordTy(32))}, G, Ctx);
  ASSERT_EQ(R.K, SimplOutcome::Kind::Normal);
  EXPECT_EQ(static_cast<long long>(R.State.Rec->at("ret").N), 42);
}

TEST(SimplInterp, HeapSwap) {
  auto P = translate("void swap(unsigned *a, unsigned *b) {\n"
                     "  unsigned t = *a;\n"
                     "  *a = *b;\n"
                     "  *b = t;\n"
                     "}\n");
  InterpCtx Ctx(P.get());
  const simpl::SimplFunc *F = P->function("swap");
  auto H = std::make_shared<HeapVal>();
  Ctx.encode(*H, 0x100, numV(11, wordTy(32)), wordTy(32));
  Ctx.encode(*H, 0x104, numV(22, wordTy(32)), wordTy(32));
  std::map<std::string, Value> GF;
  GF.emplace(simpl::heapFieldName(), Value::heap(H));
  Value G = Value::record(simpl::globalsRecName(), GF);
  SimplOutcome R = runSimplFunction(
      *F, {Value::ptr(0x100, "word32"), Value::ptr(0x104, "word32")}, G,
      Ctx);
  ASSERT_EQ(R.K, SimplOutcome::Kind::Normal);
  const Value &HOut =
      R.State.Rec->at("globals").Rec->at(simpl::heapFieldName());
  EXPECT_EQ(static_cast<long long>(
                Ctx.decode(*HOut.Heap, 0x100, wordTy(32)).N),
            22);
  EXPECT_EQ(static_cast<long long>(
                Ctx.decode(*HOut.Heap, 0x104, wordTy(32)).N),
            11);
}
