//===- PeepholeTest.cpp - Flow-simplification unit tests --------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic unit tests for the guard-run deduplication inside
/// simplifyMonadTerm, pinning the soundness fix the randomized
/// differential harness caught in the parallel-pipeline PR: a data-only
/// heap write (`heap_T_update`) preserves *validity* knowledge but
/// clobbers any guard conjunct that reads the heap data being written, so
/// only data-update-immune conjuncts may survive in the "seen" set. These
/// tests build the guard/modify spines directly, so the behavior no
/// longer relies on the randomized harness to be caught.
///
//===----------------------------------------------------------------------===//

#include "monad/Peephole.h"

#include "hol/Builder.h"
#include "hol/Print.h"

#include <gtest/gtest.h>

#include <cassert>

using namespace ac;
using namespace ac::hol;
namespace nm = ac::hol::names;

namespace {

//===----------------------------------------------------------------------===//
// Term scaffolding: a hand-built lifted_globals state with one w32 heap.
//===----------------------------------------------------------------------===//

const TypeRef &stateTy() {
  static TypeRef S = recordTy("lifted_globals");
  return S;
}
const TypeRef &heapFieldTy() {
  static TypeRef T = funTy(ptrTy(wordTy(32)), wordTy(32));
  return T;
}
const TypeRef &validFieldTy() {
  static TypeRef T = funTy(ptrTy(wordTy(32)), boolTy());
  return T;
}

TermRef ptrFree(const char *Name) {
  return Term::mkFree(Name, ptrTy(wordTy(32)));
}

/// s[p] — a heap *data* read on the state variable (Bound 0 inside the
/// guard lambda).
TermRef heapRead(const TermRef &P) {
  TermRef Fld = mkFieldGet("lifted_globals", "heap_w32", heapFieldTy(),
                           stateTy(), Term::mkBound(0));
  return Term::mkApp(Fld, P);
}

/// is_valid_w32 s p — a validity read, immune to data-only updates.
TermRef validRead(const TermRef &P) {
  TermRef Fld = mkFieldGet("lifted_globals", "is_valid_w32",
                           validFieldTy(), stateTy(), Term::mkBound(0));
  return Term::mkApp(Fld, P);
}

TermRef mkStateGuard(const TermRef &Cond) {
  return mkGuard(stateTy(), unitTy(),
                 Term::mkLam("s", stateTy(), Cond));
}

/// modify (λs. heap_w32_update (λh. <h or a rewrite>) s) — the data-only
/// shape isDataOnlyModify recognizes.
TermRef dataOnlyModify() {
  TermRef UpdFn = Term::mkLam("h", heapFieldTy(), Term::mkBound(0));
  TermRef Body = mkFieldUpdate("lifted_globals", "heap_w32",
                               heapFieldTy(), stateTy(), UpdFn,
                               Term::mkBound(0));
  return mkModify(stateTy(), unitTy(),
                  Term::mkLam("s", stateTy(), Body));
}

/// modify (λs. is_valid_w32_update (λv. v) s) — NOT data-only: validity
/// changes must clear all guard knowledge.
TermRef validityModify() {
  TermRef UpdFn = Term::mkLam("v", validFieldTy(), Term::mkBound(0));
  TermRef Body = mkFieldUpdate("lifted_globals", "is_valid_w32",
                               validFieldTy(), stateTy(), UpdFn,
                               Term::mkBound(0));
  return mkModify(stateTy(), unitTy(),
                  Term::mkLam("s", stateTy(), Body));
}

/// bind chain m1 >>= λ_. m2 >>= λ_. ... >>= λ_. return 0. Each binder
/// takes the step's value type (unit for guard/modify, w32 for gets).
TermRef spine(const std::vector<TermRef> &Steps) {
  TermRef Tail = mkReturn(stateTy(), unitTy(),
                          Term::mkNum(0, wordTy(32)));
  for (size_t I = Steps.size(); I-- > 0;) {
    TypeRef S, A, E;
    bool IsMonad = destMonadTy(typeOf(Steps[I]), S, A, E);
    assert(IsMonad && "spine step is not monadic");
    (void)IsMonad;
    Tail = mkBind(Steps[I], Term::mkLam("u", A, Tail));
  }
  return Tail;
}

unsigned countGuards(const TermRef &T) {
  switch (T->kind()) {
  case Term::Kind::Const:
    return T->isConst(nm::Guard) ? 1 : 0;
  case Term::Kind::App:
    return countGuards(T->fun()) + countGuards(T->argTerm());
  case Term::Kind::Lam:
    return countGuards(T->body());
  default:
    return 0;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Baseline dedup behavior (state-preserving steps keep the seen set).
//===----------------------------------------------------------------------===//

TEST(GuardDedup, RepeatedGuardAcrossGetsIsDropped) {
  TermRef P = ptrFree("p");
  TermRef G = mkStateGuard(validRead(P));
  TermRef Gets = mkGets(stateTy(), unitTy(),
                        Term::mkLam("s", stateTy(), heapRead(P)));
  TermRef In = spine({G, Gets, G});
  TermRef Out = monad::simplifyMonadTerm(In);
  EXPECT_EQ(countGuards(Out), 1u)
      << "gets preserves guard knowledge; got:\n" << printTerm(Out);
}

TEST(GuardDedup, DistinctGuardsBothSurvive) {
  TermRef G1 = mkStateGuard(validRead(ptrFree("p")));
  TermRef G2 = mkStateGuard(validRead(ptrFree("q")));
  TermRef Out = monad::simplifyMonadTerm(spine({G1, G2}));
  EXPECT_EQ(countGuards(Out), 2u) << printTerm(Out);
}

//===----------------------------------------------------------------------===//
// The PR 1 soundness fix: data-only heap writes.
//===----------------------------------------------------------------------===//

TEST(GuardDedup, DataReadingGuardIsNotDeduplicatedAcrossDataWrite) {
  // guard (s[p] < n); modify (heap data); guard (s[p] < n)
  //
  // The write changes exactly the data the guard reads: dropping the
  // second guard was the soundness bug the differential harness caught.
  TermRef P = ptrFree("p");
  TermRef N = Term::mkFree("n", wordTy(32));
  TermRef G = mkStateGuard(mkLess(heapRead(P), N));
  TermRef In = spine({G, dataOnlyModify(), G});
  TermRef Out = monad::simplifyMonadTerm(In);
  EXPECT_EQ(countGuards(Out), 2u)
      << "arithmetic guard over heap data must survive a data-only "
         "write; got:\n"
      << printTerm(Out);
}

TEST(GuardDedup, ValidityGuardIsDeduplicatedAcrossDataWrite) {
  // guard (is_valid s p); modify (heap data); guard (is_valid s p)
  //
  // The Sec 4.4 design point: data writes cannot change validity, so the
  // repeated validity guard stays redundant (the fix must not be
  // over-broad and pessimize the common split-heap pattern).
  TermRef P = ptrFree("p");
  TermRef G = mkStateGuard(validRead(P));
  TermRef In = spine({G, dataOnlyModify(), G});
  TermRef Out = monad::simplifyMonadTerm(In);
  EXPECT_EQ(countGuards(Out), 1u)
      << "validity knowledge survives data-only writes; got:\n"
      << printTerm(Out);
}

TEST(GuardDedup, MixedConjunctionKeepsOnlyTheDataHalf) {
  // guard (is_valid s p ∧ s[p] < n); data write; same guard again.
  // The repeat is not fully covered (its data conjunct was clobbered),
  // so the second guard must survive.
  TermRef P = ptrFree("p");
  TermRef N = Term::mkFree("n", wordTy(32));
  TermRef G =
      mkStateGuard(mkConj(validRead(P), mkLess(heapRead(P), N)));
  TermRef In = spine({G, dataOnlyModify(), G});
  TermRef Out = monad::simplifyMonadTerm(In);
  EXPECT_EQ(countGuards(Out), 2u) << printTerm(Out);
}

TEST(GuardDedup, ValidityWriteClearsAllGuardKnowledge) {
  // guard (is_valid s p); modify (is_valid field); guard (is_valid s p)
  //
  // A write that can change validity invalidates even validity facts.
  TermRef P = ptrFree("p");
  TermRef G = mkStateGuard(validRead(P));
  TermRef In = spine({G, validityModify(), G});
  TermRef Out = monad::simplifyMonadTerm(In);
  EXPECT_EQ(countGuards(Out), 2u)
      << "non-data-only writes must clear the seen set; got:\n"
      << printTerm(Out);
}
