//===- L1L2Test.cpp - Differential validation of L1/L2 ---------------------===//
//
// Validates the oracle-backed monadic-conversion and local-var-lifting
// phases: for random initial states, the Simpl execution and the L1/L2
// monads must agree on final states, return values and failure.
//
//===----------------------------------------------------------------------===//

#include "../common/TestUtil.h"

#include "hol/Print.h"
#include "monad/Peephole.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::hol;
using namespace ac::monad;
using namespace ac::test;

namespace {

struct Pipeline {
  std::unique_ptr<simpl::SimplProgram> Prog;
  InterpCtx Ctx;
  std::map<std::string, L1Result> L1;
  std::map<std::string, L2Result> L2;

  explicit Pipeline(const std::string &Src) : Ctx(nullptr) {
    DiagEngine Diags;
    Prog = simpl::parseAndTranslate(Src, Diags);
    EXPECT_TRUE(Prog != nullptr) << Diags.str();
    Ctx = InterpCtx(Prog.get());
    L1 = convertAllL1(*Prog, Ctx);
    L2 = convertAllL2(*Prog, Ctx);
  }
};

const char *MaxSrc = "int max(int a, int b) {\n"
                     "  if (a < b) return b;\n"
                     "  return a;\n"
                     "}\n";

const char *GcdSrc = "unsigned gcd(unsigned a, unsigned b) {\n"
                     "  while (b != 0) {\n"
                     "    unsigned t = b;\n"
                     "    b = a % b;\n"
                     "    a = t;\n"
                     "  }\n"
                     "  return a;\n"
                     "}\n";

const char *SwapSrc = "void swap(unsigned *a, unsigned *b) {\n"
                      "  unsigned t = *a;\n"
                      "  *a = *b;\n"
                      "  *b = t;\n"
                      "}\n";

const char *ReverseSrc =
    "struct node { struct node *next; unsigned data; };\n"
    "struct node *reverse(struct node *list) {\n"
    "  struct node *rev = NULL;\n"
    "  while (list) {\n"
    "    struct node *next = list->next;\n"
    "    list->next = rev; rev = list; list = next;\n"
    "  }\n"
    "  return rev;\n"
    "}\n";

const char *BreakSrc = "int firstover(int n) {\n"
                       "  int i = 0;\n"
                       "  while (i < 1000) {\n"
                       "    if (i * i > n) break;\n"
                       "    i = i + 1;\n"
                       "  }\n"
                       "  return i;\n"
                       "}\n";

const char *CallSrc = "unsigned counter = 0;\n"
                      "unsigned bump(unsigned by) {\n"
                      "  counter = counter + by;\n"
                      "  return counter;\n"
                      "}\n"
                      "unsigned twice(unsigned by) {\n"
                      "  unsigned a = bump(by);\n"
                      "  unsigned b = bump(by);\n"
                      "  return b - a;\n"
                      "}\n";

const char *FactSrc = "unsigned fact(unsigned n) {\n"
                      "  if (n == 0) return 1;\n"
                      "  return n * fact(n % 16 - 1);\n"
                      "}\n";

const char *ForContinueSrc = "int sum(int n) {\n"
                             "  int s = 0;\n"
                             "  for (int i = 0; i < n % 50; i++) {\n"
                             "    if (i == 3) continue;\n"
                             "    s = s + i;\n"
                             "  }\n"
                             "  return s;\n"
                             "}\n";

} // namespace

TEST(L1, MaxDifferential) {
  Pipeline P(MaxSrc);
  EXPECT_TRUE(runTrials(200, 1, [&](Rng &R) {
    return checkL1Once(*P.Prog, "max", P.Ctx, R);
  }));
}

TEST(L1, GcdDifferential) {
  Pipeline P(GcdSrc);
  EXPECT_TRUE(runTrials(100, 2, [&](Rng &R) {
    return checkL1Once(*P.Prog, "gcd", P.Ctx, R);
  }));
}

TEST(L1, SwapDifferential) {
  Pipeline P(SwapSrc);
  EXPECT_TRUE(runTrials(200, 3, [&](Rng &R) {
    return checkL1Once(*P.Prog, "swap", P.Ctx, R);
  }));
}

TEST(L1, CallsDifferential) {
  Pipeline P(CallSrc);
  EXPECT_TRUE(runTrials(100, 4, [&](Rng &R) {
    return checkL1Once(*P.Prog, "twice", P.Ctx, R);
  }));
}

TEST(L1, CorresTheoremShape) {
  Pipeline P(MaxSrc);
  const Thm &T = P.L1.at("max").Corres;
  std::set<std::string> Axs, Oracles;
  collectLeaves(T, Axs, Oracles);
  EXPECT_TRUE(Oracles.count("monadic_conversion"));
  EXPECT_NE(T.str().find("L1corres"), std::string::npos);
}

TEST(L2, MaxDifferential) {
  Pipeline P(MaxSrc);
  EXPECT_TRUE(runTrials(200, 11, [&](Rng &R) {
    return checkL2Once(*P.Prog, "max", P.Ctx, R);
  }));
}

TEST(L2, MaxIsPureConditional) {
  // Flow simplification should reduce max to a single pure return.
  Pipeline P(MaxSrc);
  const L2Result &R = P.L2.at("max");
  std::string Out = printTerm(R.AppliedBody);
  EXPECT_NE(Out.find("return"), std::string::npos) << Out;
  EXPECT_NE(Out.find("if a <s b then b else a"), std::string::npos) << Out;
}

TEST(L2, GcdDifferential) {
  Pipeline P(GcdSrc);
  EXPECT_TRUE(runTrials(150, 12, [&](Rng &R) {
    return checkL2Once(*P.Prog, "gcd", P.Ctx, R);
  }));
}

TEST(L2, SwapDifferential) {
  Pipeline P(SwapSrc);
  EXPECT_TRUE(runTrials(200, 13, [&](Rng &R) {
    return checkL2Once(*P.Prog, "swap", P.Ctx, R);
  }));
}

TEST(L2, ReverseDifferential) {
  Pipeline P(ReverseSrc);
  EXPECT_TRUE(runTrials(150, 14, [&](Rng &R) {
    return checkL2Once(*P.Prog, "reverse", P.Ctx, R);
  }));
}

TEST(L2, ReverseLoopLiftsLiveTuple) {
  // Fig 6: the loop iterates over (list, rev); `next` is loop-local.
  Pipeline P(ReverseSrc);
  std::string Out = printTerm(P.L2.at("reverse").AppliedBody);
  EXPECT_NE(Out.find("whileLoop"), std::string::npos) << Out;
  // The iterator tuple mentions list and rev but not next.
  size_t Loop = Out.find("whileLoop");
  std::string CondPart = Out.substr(Loop, 120);
  EXPECT_NE(CondPart.find("list"), std::string::npos) << Out;
  EXPECT_NE(CondPart.find("rev"), std::string::npos) << Out;
  EXPECT_EQ(CondPart.find("next"), std::string::npos) << Out;
}

TEST(L2, BreakDifferential) {
  Pipeline P(BreakSrc);
  EXPECT_TRUE(runTrials(150, 15, [&](Rng &R) {
    return checkL2Once(*P.Prog, "firstover", P.Ctx, R);
  }));
}

TEST(L2, CallsDifferential) {
  Pipeline P(CallSrc);
  EXPECT_TRUE(runTrials(150, 16, [&](Rng &R) {
    return checkL2Once(*P.Prog, "twice", P.Ctx, R);
  }));
}

TEST(L2, RecursionDifferential) {
  Pipeline P(FactSrc);
  EXPECT_TRUE(runTrials(60, 17, [&](Rng &R) {
    return checkL2Once(*P.Prog, "fact", P.Ctx, R);
  }));
}

TEST(L2, ForContinueDifferential) {
  Pipeline P(ForContinueSrc);
  EXPECT_TRUE(runTrials(100, 18, [&](Rng &R) {
    return checkL2Once(*P.Prog, "sum", P.Ctx, R);
  }));
}

TEST(L2, NoStateRecordLeaks) {
  // The lifted body must never mention the Simpl state record fields.
  Pipeline P(ReverseSrc);
  std::string Out = printTerm(P.L2.at("reverse").AppliedBody);
  EXPECT_EQ(Out.find("fld:reverse_state"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("global_exn_var"), std::string::npos) << Out;
}

TEST(Peephole, MonadLaws) {
  TypeRef S = natTy();
  TypeRef E = unitTy();
  // bind (return 1) (%v. return v) --> return 1.
  TermRef One = mkNumOf(natTy(), 1);
  TermRef V = Term::mkFree("v", natTy());
  TermRef T = mkBind(mkReturn(S, E, One),
                     lambdaFree("v", natTy(), mkReturn(S, E, V)));
  TermRef R = simplifyMonadTerm(T);
  std::vector<TermRef> Args;
  TermRef Head = stripApp(R, Args);
  EXPECT_TRUE(Head->isConst(hol::names::Return));
  ASSERT_EQ(Args.size(), 1u);
  EXPECT_TRUE(termEq(Args[0], One));
}
