//===- ChaosTest.cpp - Fault-injection coverage of the failure paths ------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives every registered fault-injection site (support/FaultInject.h)
/// through its failure and recovery path. The suite is table-driven and
/// closed over the site inventory: a site registered in the code but
/// missing from the driver table fails ChaosCoverage, as does a driver
/// naming a site that does not exist — the inventory and the tests can
/// never drift apart silently.
///
/// The invariant every driver enforces is the project's core promise:
/// an injected fault may cost a retry, a cache miss, or a refused save,
/// but never wrong bytes. After any fault, a re-run produces output
/// byte-identical to a never-faulted reference run.
///
/// Drivers here are single-threaded and deterministic (raw socket pairs,
/// direct ResultCache/ThreadPool use). Whole-process failure — SIGKILL of
/// a live daemon mid-request, fallback, restart — is exercised by
/// scripts/tier1.sh pass 6, where client and daemon are separate
/// processes and the fault registry is not shared.
///
//===----------------------------------------------------------------------===//

#include "cache/RemoteCache.h"
#include "core/AutoCorres.h"
#include "core/ResultCache.h"
#include "hol/Print.h"
#include "hol/Simp.h"
#include "router/Router.h"
#include "service/CheckRunner.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/FaultInject.h"
#include "support/FileLock.h"
#include "support/Json.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ac;
using support::FaultInject;
using support::FaultSite;
using support::FileLock;
using support::Socket;
using support::ThreadPool;

namespace {

/// A registered site that exists only to test the framework itself:
/// nth/count schedules, pass/fire counters, and counter rewind.
const FaultSite SelfTest("chaos.selftest");

/// Fresh empty directory for one driver run.
std::string freshDir(const std::string &Tag) {
  // Pid-unique root: concurrent invocations of this binary must not
  // race each other's remove_all.
  std::string D = ::testing::TempDir() + "ac-chaos-" +
                  std::to_string(::getpid()) + "/" + Tag;
  std::error_code EC;
  std::filesystem::remove_all(D, EC);
  std::filesystem::create_directories(D);
  return D;
}

//===----------------------------------------------------------------------===//
// Pipeline snapshot helpers (the byte-identity oracle, as in CacheTest)
//===----------------------------------------------------------------------===//

/// Five functions: a call chain (invalidation flows), a pure function,
/// and a pointer function (heap path) — enough shape that a lost or
/// damaged cache entry is visible in hit/miss counts.
const char *chainSource() {
  return "unsigned int leaf(unsigned int x) { return x + 1u; }\n"
         "unsigned int mid(unsigned int x) { return leaf(x) * 2u; }\n"
         "unsigned int top(unsigned int x) { return mid(x) + leaf(x); }\n"
         "unsigned int lone(unsigned int a, unsigned int b) {\n"
         "  if (a < b) { return a; }\n"
         "  return b;\n"
         "}\n"
         "void bump(unsigned int *p) { *p = *p + 1u; }\n";
}

struct Snapshot {
  std::vector<std::string> Names, Rendered, FinalKeys, Pipelines, Diags;
  core::ACStats Stats;
};

Snapshot runWith(const std::string &Src, const std::string &CacheDir,
                 const std::string &TracePath = "") {
  DiagEngine Diags;
  core::ACOptions Opts;
  Opts.Jobs = 1;
  Opts.CacheDir = CacheDir;
  Opts.TracePath = TracePath;
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  EXPECT_TRUE(AC) << Diags.str();
  Snapshot S;
  if (!AC)
    return S;
  for (const std::string &Name : AC->order()) {
    const core::FuncOutput *F = AC->func(Name);
    if (!F) {
      ADD_FAILURE() << "no output for " << Name;
      continue;
    }
    S.Names.push_back(Name);
    S.Rendered.push_back(AC->render(Name));
    S.FinalKeys.push_back(F->finalKey());
    S.Pipelines.push_back(F->pipelineProp());
  }
  for (const Diagnostic &D : Diags.diagnostics())
    S.Diags.push_back(D.str());
  S.Stats = AC->stats();
  return S;
}

void expectIdentical(const Snapshot &A, const Snapshot &B,
                     const std::string &What) {
  ASSERT_EQ(A.Names.size(), B.Names.size()) << What;
  for (size_t I = 0; I != A.Names.size(); ++I) {
    ASSERT_EQ(A.Names[I], B.Names[I]) << What;
    EXPECT_EQ(A.FinalKeys[I], B.FinalKeys[I]) << What << ": " << A.Names[I];
    EXPECT_EQ(A.Rendered[I], B.Rendered[I])
        << What << ": spec diverged after fault for " << A.Names[I];
    EXPECT_EQ(A.Pipelines[I], B.Pipelines[I])
        << What << ": theorem diverged after fault for " << A.Names[I];
  }
  EXPECT_EQ(A.Diags, B.Diags) << What << ": diagnostic stream diverged";
}

std::string cacheFilePath(const std::string &Dir) {
  return Dir + "/accache-v" +
         std::to_string(core::ResultCache::FormatVersion) + ".txt";
}

//===----------------------------------------------------------------------===//
// Per-site drivers. Each arms its site, provokes the failure, asserts the
// site actually fired, then proves recovery — usually by byte-comparing a
// post-fault run against a never-faulted reference.
//===----------------------------------------------------------------------===//

void driveSelfTest() {
  EXPECT_FALSE(FaultInject::arm("chaos.no.such.site", 1))
      << "arming an unregistered site must fail, not silently never fire";
  ASSERT_TRUE(FaultInject::arm("chaos.selftest", /*Nth=*/2, /*Count=*/2));
  EXPECT_FALSE(SelfTest.fire()); // passage 1
  EXPECT_TRUE(SelfTest.fire());  // 2: first of the armed window
  EXPECT_TRUE(SelfTest.fire());  // 3: count extends the window
  EXPECT_FALSE(SelfTest.fire()); // 4: window over
  EXPECT_EQ(FaultInject::passes("chaos.selftest"), 4u);
  EXPECT_EQ(FaultInject::fired("chaos.selftest"), 2u);
  // resetCounters rewinds the passage clock but keeps the schedule.
  FaultInject::resetCounters();
  EXPECT_FALSE(SelfTest.fire());
  EXPECT_TRUE(SelfTest.fire());
  EXPECT_EQ(FaultInject::fired("chaos.selftest"), 1u);
}

void driveConnectFail() {
  std::string Dir = freshDir("connect");
  Socket L = Socket::listenUnix(Dir + "/s.sock");
  ASSERT_TRUE(L.valid());
  ASSERT_TRUE(FaultInject::arm("socket.connect.fail", 1));
  EXPECT_FALSE(Socket::connectUnix(Dir + "/s.sock").valid());
  EXPECT_EQ(FaultInject::fired("socket.connect.fail"), 1u);
  FaultInject::disarmAll();
  EXPECT_TRUE(Socket::connectUnix(Dir + "/s.sock").valid());
}

void driveAcceptFail() {
  std::string Dir = freshDir("accept");
  Socket L = Socket::listenUnix(Dir + "/s.sock");
  ASSERT_TRUE(L.valid());
  ASSERT_TRUE(FaultInject::arm("socket.accept.fail", 1));
  Socket C = Socket::connectUnix(Dir + "/s.sock");
  ASSERT_TRUE(C.valid());
  ASSERT_TRUE(L.waitReadable(2000));
  EXPECT_FALSE(L.accept().valid());
  EXPECT_EQ(FaultInject::fired("socket.accept.fail"), 1u);
  FaultInject::disarmAll();
  // The connection is still pending in the backlog; the retry serves it.
  EXPECT_TRUE(L.accept().valid());
}

void driveWriteFail() {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  ASSERT_TRUE(FaultInject::arm("socket.write.fail", 1));
  EXPECT_FALSE(A.sendFrame("doomed"));
  EXPECT_EQ(FaultInject::fired("socket.write.fail"), 1u);
  FaultInject::disarmAll();
  // The failure fired before any byte left, so the stream has no torn
  // frame: the retry round-trips cleanly.
  ASSERT_TRUE(A.sendFrame("after"));
  std::string P;
  ASSERT_TRUE(B.recvFrame(P));
  EXPECT_EQ(P, "after");
}

void driveWriteShort() {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  ASSERT_TRUE(FaultInject::arm("socket.write.short", 1, /*Count=*/3));
  ASSERT_TRUE(A.sendFrame("short-write payload"));
  EXPECT_EQ(FaultInject::fired("socket.write.short"), 3u);
  std::string P;
  ASSERT_TRUE(B.recvFrame(P));
  EXPECT_EQ(P, "short-write payload") << "writeAll must resume after "
                                         "partial sends";
}

void driveWriteEintr() {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  ASSERT_TRUE(FaultInject::arm("socket.write.eintr", 1));
  ASSERT_TRUE(A.sendFrame("interrupted"));
  EXPECT_EQ(FaultInject::fired("socket.write.eintr"), 1u);
  std::string P;
  ASSERT_TRUE(B.recvFrame(P));
  EXPECT_EQ(P, "interrupted") << "EINTR must be transparent to framing";
}

void driveReadFail() {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  ASSERT_TRUE(A.sendFrame("never-arrives"));
  ASSERT_TRUE(FaultInject::arm("socket.read.fail", 1));
  std::string P;
  EXPECT_FALSE(B.recvFrame(P));
  EXPECT_EQ(FaultInject::fired("socket.read.fail"), 1u);
  FaultInject::disarmAll();
  Socket C, D;
  ASSERT_TRUE(support::socketPair(C, D));
  ASSERT_TRUE(C.sendFrame("fresh"));
  ASSERT_TRUE(D.recvFrame(P));
  EXPECT_EQ(P, "fresh");
}

void driveReadShort() {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  ASSERT_TRUE(A.sendFrame("short-read payload"));
  ASSERT_TRUE(FaultInject::arm("socket.read.short", 1, /*Count=*/3));
  std::string P;
  ASSERT_TRUE(B.recvFrame(P));
  EXPECT_EQ(P, "short-read payload") << "readAll must resume after "
                                        "partial reads";
  EXPECT_EQ(FaultInject::fired("socket.read.short"), 3u);
}

void driveReadEintr() {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  ASSERT_TRUE(A.sendFrame("interrupted"));
  ASSERT_TRUE(FaultInject::arm("socket.read.eintr", 1));
  std::string P;
  ASSERT_TRUE(B.recvFrame(P));
  EXPECT_EQ(P, "interrupted");
  EXPECT_EQ(FaultInject::fired("socket.read.eintr"), 1u);
}

void driveFileLockFail() {
  std::string Dir = freshDir("filelock");
  ASSERT_TRUE(FaultInject::arm("filelock.acquire.fail", 1));
  FileLock L = FileLock::acquire(Dir + "/x.lock", /*Exclusive=*/true);
  EXPECT_FALSE(L.held()) << "callers must degrade to lockless operation";
  EXPECT_EQ(FaultInject::fired("filelock.acquire.fail"), 1u);
  FaultInject::disarmAll();
  FileLock L2 = FileLock::acquire(Dir + "/x.lock", /*Exclusive=*/true);
  EXPECT_TRUE(L2.held());
}

void drivePoolPostThrow() {
  ThreadPool P(2);
  std::atomic<int> Ran{0};
  ASSERT_TRUE(FaultInject::arm("pool.post.throw", 2));
  for (int I = 0; I != 4; ++I)
    P.post([&] { Ran.fetch_add(1); });
  P.drain();
  EXPECT_EQ(Ran.load(), 3) << "the injected throw replaces exactly one task";
  EXPECT_EQ(FaultInject::fired("pool.post.throw"), 1u);
  std::exception_ptr E = P.takeError();
  ASSERT_TRUE(E) << "the worker exception must be captured, not lost";
  try {
    std::rethrow_exception(E);
  } catch (const std::exception &Ex) {
    EXPECT_NE(std::string(Ex.what()).find("pool.post.throw"),
              std::string::npos);
  }
  FaultInject::disarmAll();
  // The pool survives a worker exception: same workers, clean error slate.
  for (int I = 0; I != 2; ++I)
    P.post([&] { Ran.fetch_add(1); });
  P.drain();
  EXPECT_EQ(Ran.load(), 5);
  EXPECT_FALSE(P.takeError());
}

void drivePoolGraphThrow() {
  ThreadPool P(1); // one worker: passage order == task order
  std::atomic<int> Ran{0};
  std::vector<std::function<void()>> Tasks;
  for (int I = 0; I != 4; ++I)
    Tasks.push_back([&] { Ran.fetch_add(1); });
  // 0 and 1 independent; 2 needs 1; 3 needs 2.
  std::vector<std::vector<unsigned>> Deps = {{}, {}, {1}, {2}};
  ASSERT_TRUE(FaultInject::arm("pool.graph.throw", 2));
  EXPECT_THROW(support::runTaskGraph(P, Tasks, Deps), std::runtime_error);
  EXPECT_EQ(FaultInject::fired("pool.graph.throw"), 1u);
  EXPECT_EQ(Ran.load(), 1) << "dependents of the failed node must be "
                              "skipped, independent work completed";
  FaultInject::disarmAll();
  support::runTaskGraph(P, Tasks, Deps);
  EXPECT_EQ(Ran.load(), 5);
}

/// Common shape of the four clean-failure save sites: the save reports
/// failure, the published cache file is untouched (here: absent), and
/// the next run rebuilds full warmth with byte-identical output.
void driveSaveFailure(const char *Site) {
  std::string Dir = freshDir(Site);
  Snapshot Ref = runWith(chainSource(), /*CacheDir=*/"");

  ASSERT_TRUE(FaultInject::arm(Site, 1));
  Snapshot Cold = runWith(chainSource(), Dir);
  EXPECT_EQ(FaultInject::fired(Site), 1u);
  FaultInject::disarmAll();
  EXPECT_FALSE(std::filesystem::exists(cacheFilePath(Dir)))
      << Site << ": a failed save must not publish anything";
  expectIdentical(Ref, Cold, std::string(Site) + ": faulted cold run");

  Snapshot Retry = runWith(chainSource(), Dir); // save succeeds this time
  EXPECT_EQ(Retry.Stats.CacheHits, 0u);
  expectIdentical(Ref, Retry, std::string(Site) + ": retry run");

  Snapshot Warm = runWith(chainSource(), Dir);
  EXPECT_EQ(Warm.Stats.CacheHits, 5u)
      << Site << ": warmth must be fully restored";
  expectIdentical(Ref, Warm, std::string(Site) + ": warm run");
}

void driveSaveOpen() { driveSaveFailure("cache.save.open"); }
void driveSaveWrite() { driveSaveFailure("cache.save.write"); }
void driveSaveFsync() { driveSaveFailure("cache.save.fsync"); }
void driveSaveRename() { driveSaveFailure("cache.save.rename"); }

void driveSaveCrash() {
  std::string Dir = freshDir("crash");
  Snapshot Ref = runWith(chainSource(), /*CacheDir=*/"");

  // The crash site publishes a torn image — the state a power cut leaves.
  ASSERT_TRUE(FaultInject::arm("cache.save.crash", 1));
  Snapshot Cold = runWith(chainSource(), Dir);
  EXPECT_EQ(FaultInject::fired("cache.save.crash"), 1u);
  FaultInject::disarmAll();
  ASSERT_TRUE(std::filesystem::exists(cacheFilePath(Dir)));
  expectIdentical(Ref, Cold, "crash: faulted cold run");

  // Recovery: damaged tail entries are dropped (with a warning naming
  // the count), intact ones still serve, and the output is exact.
  ::testing::internal::CaptureStderr();
  Snapshot Rec = runWith(chainSource(), Dir);
  std::string Warn = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(Warn.find("dropped"), std::string::npos)
      << "recovery must warn about dropped entries, got: " << Warn;
  EXPECT_GE(Rec.Stats.CacheDroppedEntries, 1u);
  EXPECT_EQ(Rec.Stats.CacheHits + Rec.Stats.CacheMisses, 5u);
  EXPECT_GE(Rec.Stats.CacheMisses, 1u) << "the torn tail must re-verify";
  expectIdentical(Ref, Rec, "crash: recovery run");

  // The recovery run re-saved a clean file: full warmth, no drops.
  Snapshot Warm = runWith(chainSource(), Dir);
  EXPECT_EQ(Warm.Stats.CacheDroppedEntries, 0u);
  EXPECT_EQ(Warm.Stats.CacheHits, 5u);
  expectIdentical(Ref, Warm, "crash: healed warm run");
}

void driveSaveBitflip() {
  std::string Dir = freshDir("bitflip");
  Snapshot Ref = runWith(chainSource(), /*CacheDir=*/"");

  // Silent corruption: the save itself claims success.
  ASSERT_TRUE(FaultInject::arm("cache.save.bitflip", 1));
  Snapshot Cold = runWith(chainSource(), Dir);
  EXPECT_EQ(FaultInject::fired("cache.save.bitflip"), 1u);
  FaultInject::disarmAll();
  expectIdentical(Ref, Cold, "bitflip: faulted cold run");

  // The flipped entry must be *detected* (CRC) and re-verified — a
  // corrupt entry served as-is would mean wrong specs, the one outcome
  // this whole subsystem exists to prevent.
  Snapshot Rec = runWith(chainSource(), Dir);
  EXPECT_EQ(Rec.Stats.CacheHits + Rec.Stats.CacheMisses, 5u);
  EXPECT_GE(Rec.Stats.CacheMisses, 1u)
      << "the flipped entry must miss, never be served";
  expectIdentical(Ref, Rec, "bitflip: recovery run");

  Snapshot Warm = runWith(chainSource(), Dir);
  EXPECT_EQ(Warm.Stats.CacheHits, 5u);
  EXPECT_EQ(Warm.Stats.CacheDroppedEntries, 0u);
  expectIdentical(Ref, Warm, "bitflip: healed warm run");
}

/// The observability promise: a trace sink that cannot be written costs
/// the trace and nothing else — the verification run still succeeds,
/// byte-identical to an untraced run, and a healthy retry produces a
/// parseable Chrome trace.
void driveTraceWriteFail() {
  std::string Dir = freshDir("tracewrite");
  std::string TracePath = Dir + "/run.json";
  Snapshot Ref = runWith(chainSource(), /*CacheDir=*/"");

  ASSERT_TRUE(FaultInject::arm("trace.write.fail", 1));
  Snapshot Faulted = runWith(chainSource(), /*CacheDir=*/"", TracePath);
  EXPECT_EQ(FaultInject::fired("trace.write.fail"), 1u);
  FaultInject::disarmAll();
  EXPECT_FALSE(std::filesystem::exists(TracePath))
      << "a failed trace flush must not leave a partial file";
  expectIdentical(Ref, Faulted, "trace.write.fail: faulted traced run");

  Snapshot Retry = runWith(chainSource(), /*CacheDir=*/"", TracePath);
  expectIdentical(Ref, Retry, "trace.write.fail: healthy traced run");
  ASSERT_TRUE(std::filesystem::exists(TracePath));
  std::ifstream In(TracePath, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  support::Json J;
  std::string Err;
  ASSERT_TRUE(support::Json::parse(Buf.str(), J, Err)) << Err;
  EXPECT_TRUE(J.get("traceEvents").isArray());
}

/// The simplifier's normal-form memo is a pure accelerator: entries are
/// only written for results that are depth- and budget-independent, so
/// dropping any subset of them mid-run — the memo equivalent of a cache
/// eviction under memory pressure — may cost recomputation but can never
/// change a byte of output. The workload is a family of terms built
/// around one shared irreducible core, so once the first simplification
/// certifies the core normal, every later term's walk consults the memo
/// for it. Two eviction schedules prove the invariant: a total one
/// (every memo insert is dropped and every hit evicts its entry: the
/// memo is effectively off) and a partial one (a block of mid-run
/// operations fails, so hits, misses and dropped inserts all mix in one
/// run).
void driveSimpMemoEvict() {
  using hol::Term;
  using hol::TermRef;

  auto family = [] {
    std::vector<TermRef> Ts;
    TermRef P = Term::mkFree("p", hol::boolTy());
    TermRef A = Term::mkFree("a", hol::natTy());
    TermRef B = Term::mkFree("b", hol::natTy());
    // `if p then a else b` has no rule match — simp-normal, memoised.
    TermRef Core = hol::mkIte(P, A, B);
    for (unsigned I = 0; I != 16; ++I) {
      TermRef T = Core;
      for (unsigned J = 0; J != I % 5; ++J)
        T = hol::mkIte(hol::mkTrue(), T, Core); // reducible spine
      Ts.push_back(hol::mkConj(hol::mkTrue(),
                               hol::mkConj(hol::mkEq(T, Core),
                                           hol::mkTrue())));
    }
    return Ts;
  };
  // Each render starts from a fresh copy of the shared basic simpset
  // (same rules, private memo), so the three runs differ only in the
  // armed eviction schedule.
  auto render = [&family] {
    hol::Simpset SS = hol::basicSimpset();
    std::vector<std::string> Out;
    for (const TermRef &T : family())
      Out.push_back(hol::printTerm(hol::simplify(SS, T).Result));
    return Out;
  };

  std::vector<std::string> Ref = render();

  ASSERT_TRUE(FaultInject::arm("simp.memo.evict", 1, /*Count=*/100000000));
  std::vector<std::string> NoMemo = render();
  EXPECT_GE(FaultInject::fired("simp.memo.evict"), 1u)
      << "the rewriter never touched the memo; the driver is vacuous";
  FaultInject::disarmAll();
  EXPECT_EQ(Ref, NoMemo) << "simp.memo.evict: memo fully evicted";

  ASSERT_TRUE(FaultInject::arm("simp.memo.evict", 7, /*Count=*/200));
  std::vector<std::string> Partial = render();
  FaultInject::disarmAll();
  EXPECT_EQ(Ref, Partial) << "simp.memo.evict: partial eviction";
}

//===----------------------------------------------------------------------===//
// The fleet sites: remote cache tier and router network edges
//===----------------------------------------------------------------------===//

core::CachedFunc remoteSampleEntry() {
  core::CachedFunc E;
  E.Key = 0xc0ffee123456ull;
  E.Name = "sample";
  E.Render = "sample' x == gets (λs. x)";
  E.PipelineProp = "ccorres ... sample";
  E.Notes = {"driver entry"};
  return E;
}

/// Every client-side remote-tier failure must degrade to a miss or a
/// dropped put — the tier is an accelerator, never a correctness input.
void driveRemoteDialFail() {
  std::string Dir = freshDir("remotedial");
  cache::RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  cache::RemoteCacheServer Srv(O);
  ASSERT_TRUE(Srv.start());
  cache::RemoteCacheClient C(O.SocketPath);
  core::CachedFunc E = remoteSampleEntry(), Out;

  ASSERT_TRUE(FaultInject::arm("remote.dial.fail", 1));
  EXPECT_FALSE(C.get(E.Key, Out)) << "a refused dial is a miss";
  EXPECT_EQ(FaultInject::fired("remote.dial.fail"), 1u);
  FaultInject::disarmAll();

  C.put(E); // re-dials transparently
  ASSERT_TRUE(C.get(E.Key, Out));
  EXPECT_EQ(core::serializeCachedFunc(Out), core::serializeCachedFunc(E));
  Srv.stop();
}

void driveRemoteGetFail() {
  std::string Dir = freshDir("remoteget");
  cache::RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  cache::RemoteCacheServer Srv(O);
  ASSERT_TRUE(Srv.start());
  cache::RemoteCacheClient C(O.SocketPath);
  core::CachedFunc E = remoteSampleEntry(), Out;
  C.put(E);

  ASSERT_TRUE(FaultInject::arm("remote.get.fail", 1));
  EXPECT_FALSE(C.get(E.Key, Out)) << "a torn fetch is a miss, never "
                                     "partial bytes";
  EXPECT_EQ(FaultInject::fired("remote.get.fail"), 1u);
  FaultInject::disarmAll();

  ASSERT_TRUE(C.get(E.Key, Out)) << "the entry survived the client's bad "
                                    "round-trip";
  EXPECT_EQ(core::serializeCachedFunc(Out), core::serializeCachedFunc(E));
  Srv.stop();
}

void driveRemotePutFail() {
  std::string Dir = freshDir("remoteput");
  cache::RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  cache::RemoteCacheServer Srv(O);
  ASSERT_TRUE(Srv.start());
  cache::RemoteCacheClient C(O.SocketPath);
  core::CachedFunc E = remoteSampleEntry(), Out;

  ASSERT_TRUE(FaultInject::arm("remote.put.fail", 1));
  C.put(E); // silently dropped
  EXPECT_EQ(FaultInject::fired("remote.put.fail"), 1u);
  FaultInject::disarmAll();
  EXPECT_FALSE(C.get(E.Key, Out)) << "the dropped put must not have "
                                     "half-published anything";

  C.put(E);
  ASSERT_TRUE(C.get(E.Key, Out));
  EXPECT_EQ(core::serializeCachedFunc(Out), core::serializeCachedFunc(E));
  Srv.stop();
}

void driveRemoteStoreTorn() {
  std::string Dir = freshDir("remotetorn");
  cache::RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  cache::RemoteCacheServer Srv(O);
  ASSERT_TRUE(Srv.start());
  cache::RemoteCacheClient C(O.SocketPath);
  core::CachedFunc E = remoteSampleEntry(), Out;

  // The store accepts the put but persists a truncated image — a torn
  // write inside the tier. The later get must reject it by CRC and
  // report a miss: a damaged entry may cost a recompute, never serve
  // wrong bytes (the invariant the whole cache family enforces).
  ASSERT_TRUE(FaultInject::arm("remotecache.store.torn", 1));
  C.put(E);
  EXPECT_EQ(FaultInject::fired("remotecache.store.torn"), 1u);
  FaultInject::disarmAll();
  EXPECT_FALSE(C.get(E.Key, Out))
      << "a torn stored entry must be a miss, never wrong bytes";

  C.put(E); // clean overwrite heals the slot
  ASSERT_TRUE(C.get(E.Key, Out));
  EXPECT_EQ(core::serializeCachedFunc(Out), core::serializeCachedFunc(E));
  Srv.stop();
}

/// Shared harness for the two router edges: one real shard on loopback
/// TCP, a router with local fallback, and byte-identity of the faulted
/// answer against a never-faulted in-process reference.
void driveRouterEdge(const char *Site) {
  std::string Dir = freshDir(Site);
  service::ServerOptions SO;
  SO.SocketPath = "";
  SO.ListenAddr = "127.0.0.1:0";
  SO.Workers = 1;
  service::Server Shard(SO);
  ASSERT_TRUE(Shard.start());

  router::RouterOptions RO;
  RO.SocketPath = Dir + "/r.sock";
  RO.Shards = {"127.0.0.1:" + std::to_string(Shard.tcpPort())};
  RO.HealthProbeMs = 50;
  router::Router R(RO);
  ASSERT_TRUE(R.start());

  service::Client C = service::Client::connect(RO.SocketPath);
  ASSERT_TRUE(C.connected());
  service::CheckRequest Req;
  Req.Source = "unsigned int edge(unsigned int x) { return x + 3u; }\n";
  service::CheckResponse Ref = service::runLocalCheck(Req);

  auto snapshot = [](const service::CheckResponse &Resp) {
    std::string S;
    for (const service::FuncResult &F : Resp.Functions)
      S += F.Name + "\n" + F.FinalKey + "\n" + F.Render + "\n" +
           F.Pipeline + "\n";
    for (const std::string &D : Resp.Diagnostics)
      S += D + "\n";
    return S;
  };

  // The armed edge tears the only shard's forward; the router marks it
  // down and degrades to the in-process pipeline — same bytes.
  std::string Err;
  service::CheckResponse Faulted;
  ASSERT_TRUE(FaultInject::arm(Site, 1));
  ASSERT_TRUE(C.check(Req, Faulted, Err)) << Err;
  EXPECT_EQ(FaultInject::fired(Site), 1u);
  FaultInject::disarmAll();
  ASSERT_TRUE(Faulted.Ok) << Faulted.Message;
  EXPECT_EQ(snapshot(Faulted), snapshot(Ref))
      << Site << ": the faulted answer diverged";

  // Recovery: the prober revives the shard and the next request is
  // served by it, still byte-identical.
  support::Json Stats;
  bool Revived = false;
  for (int I = 0; I != 100 && !Revived; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(C.stats(Stats, Err)) << Err;
    Revived = Stats.get("shards").items().front().get("healthy").asBool();
  }
  ASSERT_TRUE(Revived) << Site << ": the prober never revived the shard";
  service::CheckResponse After;
  ASSERT_TRUE(C.check(Req, After, Err)) << Err;
  ASSERT_TRUE(After.Ok) << After.Message;
  EXPECT_EQ(snapshot(After), snapshot(Ref));
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_GE(Stats.get("shards").items().front().get("forwarded").asInt(), 1)
      << Site << ": recovery must forward to the real shard again";

  R.stop();
  Shard.stop();
}

void driveRouterDialFail() { driveRouterEdge("router.dial.fail"); }
void driveRouterForwardFail() { driveRouterEdge("router.forward.fail"); }

//===----------------------------------------------------------------------===//
// The overload decision points: admission shedding, circuit breakers,
// and hedged forwards. Every site forces one decision the happy path
// would only take under real overload, so the refusal/recovery bytes
// are reachable deterministically.
//===----------------------------------------------------------------------===//

std::string respSnapshot(const service::CheckResponse &Resp) {
  std::string S;
  for (const service::FuncResult &F : Resp.Functions)
    S += F.Name + "\n" + F.FinalKey + "\n" + F.Render + "\n" + F.Pipeline +
         "\n";
  for (const std::string &D : Resp.Diagnostics)
    S += D + "\n";
  return S;
}

/// The staleness shed: a bulk request with a deadline is refused with
/// the typed `shed` answer before it enters the queue; the retry (the
/// client replanning) is served byte-identically to a never-shed run.
void driveServerShedStale() {
  std::string Dir = freshDir("shedstale");
  service::ServerOptions SO;
  SO.SocketPath = Dir + "/acd.sock";
  SO.Workers = 1;
  service::Server Srv(SO);
  ASSERT_TRUE(Srv.start());
  service::Client C = service::Client::connect(SO.SocketPath);
  ASSERT_TRUE(C.connected());

  service::CheckRequest Req;
  Req.Source = "unsigned int stale(unsigned int x) { return x + 7u; }\n";
  Req.Prio = service::Priority::Bulk;
  Req.TimeoutMs = 60000; // shed-eligible: bulk with a deadline
  service::CheckResponse Ref = service::runLocalCheck(Req);

  std::string Err;
  service::CheckResponse Resp;
  ASSERT_TRUE(FaultInject::arm("server.shed.stale", 1));
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  EXPECT_EQ(FaultInject::fired("server.shed.stale"), 1u);
  FaultInject::disarmAll();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Err, service::ErrorCode::Shed);
  EXPECT_EQ(Srv.metrics().Shed.load(), 1u);
  EXPECT_EQ(Srv.metrics().QuotaRejected.load(), 0u)
      << "a staleness shed is not a quota refusal";
  EXPECT_EQ(Srv.metrics().Received.load(), 0u)
      << "a shed request must never count as received";

  service::CheckResponse After;
  ASSERT_TRUE(C.check(Req, After, Err)) << Err;
  ASSERT_TRUE(After.Ok) << After.Message;
  EXPECT_EQ(respSnapshot(After), respSnapshot(Ref))
      << "the post-shed retry diverged";
  Srv.stop();
}

/// The quota shed: a request naming a tenant is refused with `shed`
/// plus a refill hint; the tenant's counters record the refusal and
/// the retry is admitted and served byte-identically.
void driveServerQuotaReject() {
  std::string Dir = freshDir("quotareject");
  service::ServerOptions SO;
  SO.SocketPath = Dir + "/acd.sock";
  SO.Workers = 1;
  service::Server Srv(SO);
  ASSERT_TRUE(Srv.start());
  service::Client C = service::Client::connect(SO.SocketPath);
  ASSERT_TRUE(C.connected());

  service::CheckRequest Req;
  Req.Source = "unsigned int quota(unsigned int x) { return x * 3u; }\n";
  Req.Tenant = "tenant-a";
  service::CheckResponse Ref = service::runLocalCheck(Req);

  std::string Err;
  service::CheckResponse Resp;
  ASSERT_TRUE(FaultInject::arm("server.quota.reject", 1));
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  EXPECT_EQ(FaultInject::fired("server.quota.reject"), 1u);
  FaultInject::disarmAll();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Err, service::ErrorCode::Shed);
  EXPECT_GE(Resp.RetryAfterMs, 1u) << "a quota shed must hint when the "
                                      "bucket refills";
  EXPECT_EQ(Srv.metrics().Shed.load(), 1u);
  EXPECT_EQ(Srv.metrics().QuotaRejected.load(), 1u);

  service::CheckResponse After;
  ASSERT_TRUE(C.check(Req, After, Err)) << Err;
  ASSERT_TRUE(After.Ok) << After.Message;
  EXPECT_EQ(respSnapshot(After), respSnapshot(Ref))
      << "the post-shed retry diverged";

  // The per-tenant ledger saw both outcomes.
  auto Snap = Srv.metrics().snapshot(0, 0, 0, 1, 0, false);
  ASSERT_EQ(Snap.Tenants.size(), 1u);
  EXPECT_EQ(Snap.Tenants[0].Name, "tenant-a");
  EXPECT_EQ(Snap.Tenants[0].Shed, 1u);
  EXPECT_EQ(Snap.Tenants[0].Admitted, 1u);
  Srv.stop();
}

/// One real shard behind a router, as in driveRouterEdge, but tuned for
/// the breaker sites: the trip site opens the breaker on the *first*
/// torn forward instead of the third.
struct BreakerFleet {
  service::ServerOptions SO;
  router::RouterOptions RO;
  std::unique_ptr<service::Server> Shard;
  std::unique_ptr<router::Router> R;

  bool Ok = false;

  explicit BreakerFleet(const std::string &Dir, unsigned CooldownMs) {
    SO.SocketPath = "";
    SO.ListenAddr = "127.0.0.1:0";
    SO.Workers = 1;
    Shard.reset(new service::Server(SO));
    if (!Shard->start())
      return;
    RO.SocketPath = Dir + "/r.sock";
    RO.Shards = {"127.0.0.1:" + std::to_string(Shard->tcpPort())};
    RO.HealthProbeMs = 30;
    RO.BreakerCooldownMs = CooldownMs;
    R.reset(new router::Router(RO));
    Ok = R->start();
  }
  ~BreakerFleet() {
    if (R)
      R->stop();
    if (Shard)
      Shard->stop();
  }
};

/// Forced breaker trip: one torn forward opens the breaker, the answer
/// degrades byte-identically, and the prober walks the shard back to
/// closed through the normal cooldown → half-open → probe path.
void driveBreakerTrip() {
  std::string Dir = freshDir("breakertrip");
  BreakerFleet F(Dir, /*CooldownMs=*/30);
  ASSERT_TRUE(F.Ok);

  service::Client C = service::Client::connect(F.RO.SocketPath);
  ASSERT_TRUE(C.connected());
  service::CheckRequest Req;
  Req.Source = "unsigned int trip(unsigned int x) { return x * 2u; }\n";
  service::CheckResponse Ref = service::runLocalCheck(Req);

  std::string Err;
  service::CheckResponse Faulted;
  ASSERT_TRUE(FaultInject::arm("router.forward.fail", 1));
  ASSERT_TRUE(FaultInject::arm("router.breaker.trip", 1));
  ASSERT_TRUE(C.check(Req, Faulted, Err)) << Err;
  EXPECT_EQ(FaultInject::fired("router.forward.fail"), 1u);
  EXPECT_EQ(FaultInject::fired("router.breaker.trip"), 1u);
  FaultInject::disarmAll();
  ASSERT_TRUE(Faulted.Ok) << Faulted.Message;
  EXPECT_EQ(respSnapshot(Faulted), respSnapshot(Ref))
      << "the tripped forward's fallback answer diverged";

  // Recovery: cooldown elapses, the probe closes the breaker again.
  support::Json Stats;
  bool Revived = false;
  for (int I = 0; I != 100 && !Revived; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(C.stats(Stats, Err)) << Err;
    Revived = Stats.get("shards").items().front().get("healthy").asBool();
  }
  ASSERT_TRUE(Revived) << "the prober never closed the tripped breaker";
  support::Json SJ = Stats.get("shards").items().front();
  EXPECT_EQ(SJ.get("breaker").asString(), "closed");
  EXPECT_GE(SJ.get("breaker_trips").asInt(), 1)
      << "the forced trip must be visible in stats";

  service::CheckResponse After;
  ASSERT_TRUE(C.check(Req, After, Err)) << Err;
  ASSERT_TRUE(After.Ok) << After.Message;
  EXPECT_EQ(respSnapshot(After), respSnapshot(Ref));
}

/// Forced half-open: with a cooldown too long to ever elapse in-test,
/// the breaker stays open (observable in stats) until the armed site
/// forces the half-open transition, whose trial probe succeeds and
/// closes the breaker.
void driveBreakerHalfOpen() {
  std::string Dir = freshDir("breakerhalfopen");
  BreakerFleet F(Dir, /*CooldownMs=*/60000);
  ASSERT_TRUE(F.Ok);

  service::Client C = service::Client::connect(F.RO.SocketPath);
  ASSERT_TRUE(C.connected());
  service::CheckRequest Req;
  Req.Source = "unsigned int half(unsigned int x) { return x + 9u; }\n";
  service::CheckResponse Ref = service::runLocalCheck(Req);

  std::string Err;
  service::CheckResponse Faulted;
  ASSERT_TRUE(FaultInject::arm("router.forward.fail", 1));
  ASSERT_TRUE(FaultInject::arm("router.breaker.trip", 1));
  ASSERT_TRUE(C.check(Req, Faulted, Err)) << Err;
  FaultInject::disarmAll();
  ASSERT_TRUE(Faulted.Ok) << Faulted.Message;
  EXPECT_EQ(respSnapshot(Faulted), respSnapshot(Ref));

  // The cooldown is an hour out: without the fault the breaker must
  // still be open however many probe rounds have passed.
  support::Json Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_EQ(Stats.get("shards").items().front().get("breaker").asString(),
            "open");
  EXPECT_FALSE(Stats.get("shards").items().front().get("healthy").asBool());

  ASSERT_TRUE(FaultInject::arm("router.breaker.halfopen", 1));
  bool Revived = false;
  for (int I = 0; I != 100 && !Revived; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(C.stats(Stats, Err)) << Err;
    Revived = Stats.get("shards").items().front().get("healthy").asBool();
  }
  EXPECT_EQ(FaultInject::fired("router.breaker.halfopen"), 1u);
  FaultInject::disarmAll();
  ASSERT_TRUE(Revived) << "the forced half-open probe never closed the "
                          "breaker";

  service::CheckResponse After;
  ASSERT_TRUE(C.check(Req, After, Err)) << Err;
  ASSERT_TRUE(After.Ok) << After.Message;
  EXPECT_EQ(respSnapshot(After), respSnapshot(Ref));
}

/// Forced hedge: with two healthy shards and a deadline-carrying
/// request, the armed site collapses the hedge delay to zero, so the
/// forward is raced on both shards. First answer wins; both are
/// byte-identical by construction, so the client sees exact bytes
/// either way.
void driveHedgeFire() {
  std::string Dir = freshDir("hedgefire");
  service::ServerOptions SO;
  SO.SocketPath = "";
  SO.ListenAddr = "127.0.0.1:0";
  SO.Workers = 1;
  service::Server ShardA(SO), ShardB(SO);
  ASSERT_TRUE(ShardA.start());
  ASSERT_TRUE(ShardB.start());

  router::RouterOptions RO;
  RO.SocketPath = Dir + "/r.sock";
  RO.Shards = {"127.0.0.1:" + std::to_string(ShardA.tcpPort()),
               "127.0.0.1:" + std::to_string(ShardB.tcpPort())};
  RO.HealthProbeMs = 50;
  router::Router R(RO);
  ASSERT_TRUE(R.start());

  service::Client C = service::Client::connect(RO.SocketPath);
  ASSERT_TRUE(C.connected());
  service::CheckRequest Req;
  Req.Source = "unsigned int hedge(unsigned int x) { return x - 1u; }\n";
  Req.TimeoutMs = 10000; // hedging needs a deadline budget to split
  service::CheckResponse Ref = service::runLocalCheck(Req);

  std::string Err;
  service::CheckResponse Resp;
  ASSERT_TRUE(FaultInject::arm("router.hedge.fire", 1));
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  EXPECT_EQ(FaultInject::fired("router.hedge.fire"), 1u);
  FaultInject::disarmAll();
  ASSERT_TRUE(Resp.Ok) << Resp.Message;
  EXPECT_EQ(respSnapshot(Resp), respSnapshot(Ref))
      << "the hedged answer diverged";

  support::Json Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_GE(Stats.get("hedges").asInt(), 1)
      << "the forced hedge must be visible in stats";

  R.stop();
  ShardA.stop();
  ShardB.stop();
}

//===----------------------------------------------------------------------===//
// The driver table and the coverage gate
//===----------------------------------------------------------------------===//

struct SiteCase {
  const char *Site;
  void (*Drive)();
};

const SiteCase AllSites[] = {
    {"chaos.selftest", driveSelfTest},
    {"socket.connect.fail", driveConnectFail},
    {"socket.accept.fail", driveAcceptFail},
    {"socket.write.fail", driveWriteFail},
    {"socket.write.short", driveWriteShort},
    {"socket.write.eintr", driveWriteEintr},
    {"socket.read.fail", driveReadFail},
    {"socket.read.short", driveReadShort},
    {"socket.read.eintr", driveReadEintr},
    {"filelock.acquire.fail", driveFileLockFail},
    {"pool.post.throw", drivePoolPostThrow},
    {"pool.graph.throw", drivePoolGraphThrow},
    {"cache.save.open", driveSaveOpen},
    {"cache.save.write", driveSaveWrite},
    {"cache.save.fsync", driveSaveFsync},
    {"cache.save.rename", driveSaveRename},
    {"cache.save.crash", driveSaveCrash},
    {"cache.save.bitflip", driveSaveBitflip},
    {"trace.write.fail", driveTraceWriteFail},
    {"simp.memo.evict", driveSimpMemoEvict},
    {"remote.dial.fail", driveRemoteDialFail},
    {"remote.get.fail", driveRemoteGetFail},
    {"remote.put.fail", driveRemotePutFail},
    {"remotecache.store.torn", driveRemoteStoreTorn},
    {"router.dial.fail", driveRouterDialFail},
    {"router.forward.fail", driveRouterForwardFail},
    {"server.shed.stale", driveServerShedStale},
    {"server.quota.reject", driveServerQuotaReject},
    {"router.breaker.trip", driveBreakerTrip},
    {"router.breaker.halfopen", driveBreakerHalfOpen},
    {"router.hedge.fire", driveHedgeFire},
};

class ChaosSite : public ::testing::TestWithParam<SiteCase> {
protected:
  void SetUp() override {
    ::unsetenv("AC_CACHE");
    ::unsetenv("AC_CACHE_DIR");
    ::unsetenv("AC_FAULTS");
    FaultInject::disarmAll();
  }
  void TearDown() override { FaultInject::disarmAll(); }
};

TEST_P(ChaosSite, InjectAndRecover) {
  ASSERT_TRUE(FaultInject::isKnown(GetParam().Site))
      << "driver names an unregistered site: " << GetParam().Site;
  GetParam().Drive();
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, ChaosSite, ::testing::ValuesIn(AllSites),
    [](const ::testing::TestParamInfo<SiteCase> &Info) {
      std::string Name = Info.param.Site;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

/// The closure gate: the driver table and the registered inventory must
/// be the same set. Registering a new FaultSite without writing a chaos
/// driver — or driving a name that no code registers — fails here.
TEST(ChaosCoverage, DriverTableMatchesRegisteredSites) {
  std::set<std::string> Driven;
  for (const SiteCase &C : AllSites)
    Driven.insert(C.Site);
  std::set<std::string> Registered;
  for (const std::string &S : FaultInject::sites())
    Registered.insert(S);
  EXPECT_EQ(Registered, Driven)
      << "every registered fault site needs a chaos driver (and every "
         "driver a registered site)";
}

} // namespace
