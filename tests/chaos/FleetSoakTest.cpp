//===- FleetSoakTest.cpp - Seeded fleet soak under churn ------------------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature fleet — three acd shards behind an acrouter front-end
/// with an accached remote tier — soaked with mixed bulk/interactive,
/// multi-tenant load while a seeded chaos schedule stops and restarts
/// shards and takes the cache daemon through outages. The whole
/// schedule derives from one seed (AC_SOAK_SEED, default pinned), so a
/// failing run replays exactly.
///
/// The invariants are the fleet's overload contract:
///   - every request gets exactly one *typed* answer: success or a
///     protocol error code, never a transport error or a hang;
///   - every completed answer is byte-identical to the in-process
///     golden for its source — churn may cost retries, never bytes;
///   - no tenant starves: each tenant completes work despite quotas
///     and shedding;
///   - the router's stats surface stays coherent (counters present and
///     parseable) through the churn.
///
/// Whole-process SIGKILL soak — real processes, real signals — is
/// scripts/tier1.sh pass 11; this in-process twin runs under ASan in
/// every ctest invocation (label: fleet).
///
//===----------------------------------------------------------------------===//

#include "cache/RemoteCache.h"
#include "router/Router.h"
#include "service/CheckRunner.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ac;
using service::CheckRequest;
using service::CheckResponse;
using service::ErrorCode;
using service::Priority;

namespace {

std::string freshDir(const std::string &Tag) {
  std::string D = ::testing::TempDir() + "ac-fleetsoak-" +
                  std::to_string(::getpid()) + "/" + Tag;
  std::error_code EC;
  std::filesystem::remove_all(D, EC);
  std::filesystem::create_directories(D);
  return D;
}

/// The soak corpus: small, distinct sources so cache keys differ and
/// every shard can serve any of them.
const std::array<const char *, 3> SoakSources = {
    "unsigned int soak_a(unsigned int x) { return x + 1u; }\n",
    "unsigned int soak_b(unsigned int x, unsigned int y) {\n"
    "  if (x < y) { return x; }\n"
    "  return y;\n"
    "}\n",
    "void soak_c(unsigned int *p) { *p = *p + 2u; }\n",
};

std::string respSnapshot(const CheckResponse &Resp) {
  std::string S;
  for (const service::FuncResult &F : Resp.Functions)
    S += F.Name + "\n" + F.FinalKey + "\n" + F.Render + "\n" + F.Pipeline +
         "\n";
  for (const std::string &D : Resp.Diagnostics)
    S += D + "\n";
  return S;
}

/// One shard that can be stopped and restarted on its original port, as
/// the chaos schedule demands.
struct SoakShard {
  service::ServerOptions SO;
  std::unique_ptr<cache::RemoteCacheClient> Remote;
  std::unique_ptr<service::Server> Srv;
  uint16_t Port = 0;

  bool startFresh(const std::string &CachedSock) {
    Remote.reset(new cache::RemoteCacheClient(CachedSock));
    SO.SocketPath = "";
    SO.ListenAddr = "127.0.0.1:0";
    SO.Workers = 2;
    SO.QueueCapacity = 8;
    SO.TenantQuotaRps = 200; // high enough that no tenant starves
    SO.Remote = Remote.get();
    Srv.reset(new service::Server(SO));
    if (!Srv->start())
      return false;
    Port = Srv->tcpPort();
    return true;
  }

  void kill() {
    if (Srv)
      Srv->stop();
    Srv.reset();
  }

  bool restart() {
    SO.ListenAddr = "127.0.0.1:" + std::to_string(Port);
    Srv.reset(new service::Server(SO));
    return Srv->start();
  }
};

TEST(FleetSoak, SeededChurnYieldsTypedAnswersAndExactBytes) {
  unsigned Seed = 20260808;
  if (const char *S = std::getenv("AC_SOAK_SEED"))
    Seed = static_cast<unsigned>(std::strtoul(S, nullptr, 10));
  std::mt19937 Rng(Seed);
  SCOPED_TRACE("AC_SOAK_SEED=" + std::to_string(Seed));

  std::string Dir = freshDir("soak");

  // Goldens first: the byte oracle every completed answer is held to.
  std::array<std::string, SoakSources.size()> Golden;
  for (size_t I = 0; I != SoakSources.size(); ++I) {
    CheckRequest Req;
    Req.Source = SoakSources[I];
    CheckResponse Ref = service::runLocalCheck(Req);
    ASSERT_TRUE(Ref.Ok) << Ref.Message;
    Golden[I] = respSnapshot(Ref);
  }

  // The shared remote tier (restarted mid-soak by the chaos schedule).
  cache::RemoteCacheServerOptions CO;
  CO.SocketPath = Dir + "/cached.sock";
  std::unique_ptr<cache::RemoteCacheServer> Cached(
      new cache::RemoteCacheServer(CO));
  ASSERT_TRUE(Cached->start());

  // Three shards, then the router over them. Local fallback stays on:
  // with the whole fleet down mid-churn the router must still answer
  // with the same bytes, not an error.
  std::array<SoakShard, 3> Shards;
  router::RouterOptions RO;
  RO.SocketPath = Dir + "/router.sock";
  RO.HealthProbeMs = 40;
  RO.BreakerCooldownMs = 80;
  for (SoakShard &S : Shards) {
    ASSERT_TRUE(S.startFresh(CO.SocketPath));
    RO.Shards.push_back("127.0.0.1:" + std::to_string(S.Port));
  }
  router::Router R(RO);
  ASSERT_TRUE(R.start());

  // Mixed load: 4 clients, 3:1 bulk:interactive, three tenants. Issue
  // counts and the per-request mix all derive from the seed.
  constexpr int ClientThreads = 4;
  constexpr int RequestsPerThread = 30;
  const std::array<const char *, 3> Tenants = {"t0", "t1", "t2"};

  std::atomic<uint64_t> Completed{0}, Refused{0}, Untyped{0}, Wrong{0};
  std::mutex TenantsM;
  std::map<std::string, uint64_t> TenantCompleted;

  // Per-thread RNGs forked off the master seed keep the schedule
  // deterministic regardless of thread interleaving.
  std::vector<std::thread> Clients;
  for (int T = 0; T != ClientThreads; ++T) {
    unsigned ThreadSeed = Rng();
    Clients.emplace_back([&, T, ThreadSeed] {
      std::mt19937 MyRng(ThreadSeed);
      for (int I = 0; I != RequestsPerThread; ++I) {
        size_t Src = MyRng() % SoakSources.size();
        CheckRequest Req;
        Req.Source = SoakSources[Src];
        Req.Prio = (MyRng() % 4 != 0) ? Priority::Bulk
                                      : Priority::Interactive;
        Req.Tenant = Tenants[MyRng() % Tenants.size()];
        if (Req.Prio == Priority::Bulk)
          Req.TimeoutMs = 30000; // ample: sheds come from quota/churn
        Req.TraceId = "soak-" + std::to_string(T) + "-" + std::to_string(I);

        // One fresh connection per request: mid-churn the router may
        // drop a connection whose forward died with a shard; the
        // contract under test is the *answer* stream, so a dial retry
        // is allowed, an untyped answer is not.
        service::Client C = service::Client::connect(RO.SocketPath);
        if (!C.connected()) {
          Untyped.fetch_add(1);
          continue;
        }
        CheckResponse Resp;
        std::string Err;
        if (!C.check(Req, Resp, Err)) {
          Untyped.fetch_add(1);
          continue;
        }
        if (Resp.Ok) {
          Completed.fetch_add(1);
          if (respSnapshot(Resp) != Golden[Src])
            Wrong.fetch_add(1);
          std::lock_guard<std::mutex> L(TenantsM);
          TenantCompleted[Req.Tenant]++;
        } else if (Resp.Err == ErrorCode::Busy ||
                   Resp.Err == ErrorCode::Shed ||
                   Resp.Err == ErrorCode::Draining ||
                   Resp.Err == ErrorCode::DeadlineExceeded) {
          Refused.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected typed error "
                        << service::errorCodeName(Resp.Err) << ": "
                        << Resp.Message;
          Untyped.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(MyRng() % 8));
      }
    });
  }

  // The chaos schedule: four rounds of seeded shard churn, with one
  // accached outage in the middle. Runs concurrently with the load.
  std::thread Chaos([&] {
    std::mt19937 ChaosRng(Seed ^ 0x5eed);
    for (int Round = 0; Round != 4; ++Round) {
      size_t Victim = ChaosRng() % Shards.size();
      Shards[Victim].kill();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(60 + ChaosRng() % 80));
      ASSERT_TRUE(Shards[Victim].restart())
          << "shard " << Victim << " could not rebind its port";
      if (Round == 1) {
        Cached->stop();
        Cached.reset();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        Cached.reset(new cache::RemoteCacheServer(CO));
        ASSERT_TRUE(Cached->start());
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(40 + ChaosRng() % 60));
    }
  });

  for (std::thread &C : Clients)
    C.join();
  Chaos.join();

  // The contract: all issued requests were answered, typed; completed
  // answers carried exact bytes; nobody starved.
  uint64_t Issued =
      static_cast<uint64_t>(ClientThreads) * RequestsPerThread;
  EXPECT_EQ(Completed.load() + Refused.load() + Untyped.load(), Issued);
  EXPECT_EQ(Untyped.load(), 0u)
      << "some requests got transport errors instead of typed answers";
  EXPECT_EQ(Wrong.load(), 0u) << "churn changed answer bytes";
  EXPECT_GE(Completed.load(), Issued / 2)
      << "churn refused most of the load; the fleet never stabilised";
  {
    std::lock_guard<std::mutex> L(TenantsM);
    for (const char *T : Tenants)
      EXPECT_GE(TenantCompleted[T], 1u) << "tenant " << T << " starved";
  }

  // The stats surface survived the churn coherently.
  service::Client C = service::Client::connect(RO.SocketPath);
  ASSERT_TRUE(C.connected());
  support::Json Stats;
  std::string Err;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_GE(Stats.get("completed").asInt(), 1);
  EXPECT_TRUE(Stats.get("hedges").isNumber());
  EXPECT_TRUE(Stats.get("retry_budget_exhausted").isNumber());
  ASSERT_EQ(Stats.get("shards").items().size(), Shards.size());
  for (const support::Json &SJ : Stats.get("shards").items())
    EXPECT_TRUE(SJ.get("breaker").isString());

  R.stop();
  for (SoakShard &S : Shards)
    S.kill();
  if (Cached)
    Cached->stop();
}

} // namespace
