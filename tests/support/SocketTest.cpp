//===- SocketTest.cpp - TCP transport and auth handshake ------------------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet transport contract (docs/PROTOCOL.md): the length-prefixed
/// frame layer must behave identically over TCP and Unix sockets —
/// partial reads, EINTR, and oversized frames included — and the TCP
/// auth handshake must answer a typed `auth_failed` and close the
/// connection for a wrong or missing token, while Unix connections are
/// never challenged (filesystem permissions are their auth).
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include "service/Server.h"
#include "service/Client.h"
#include "support/FaultInject.h"
#include "support/Json.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace ac;
using support::FaultInject;
using support::Json;
using support::Socket;

namespace {

std::string freshDir(const std::string &Tag) {
  // Pid-unique root: concurrent invocations of this binary must not
  // race each other's remove_all.
  std::string D = ::testing::TempDir() + "ac-socket-" +
                  std::to_string(::getpid()) + "/" + Tag;
  std::error_code EC;
  std::filesystem::remove_all(D, EC);
  std::filesystem::create_directories(D);
  return D;
}

/// A loopback TCP listener plus a connected pair through it.
struct TcpPair {
  Socket Listener, Client, Server;

  TcpPair() {
    Listener = Socket::listenTcp("127.0.0.1", 0);
    EXPECT_TRUE(Listener.valid());
    Client = Socket::connectTcp("127.0.0.1", Listener.boundPort());
    EXPECT_TRUE(Client.valid());
    EXPECT_TRUE(Listener.waitReadable(2000));
    Server = Listener.accept();
    EXPECT_TRUE(Server.valid());
  }
};

class SocketTcp : public ::testing::Test {
protected:
  void SetUp() override { FaultInject::disarmAll(); }
  void TearDown() override { FaultInject::disarmAll(); }
};

TEST_F(SocketTcp, FramesRoundTripOverLoopback) {
  TcpPair P;
  ASSERT_TRUE(P.Client.sendFrame("hello fleet"));
  std::string Got;
  ASSERT_TRUE(P.Server.recvFrame(Got));
  EXPECT_EQ(Got, "hello fleet");
  // Both directions, including an empty and a binary payload.
  ASSERT_TRUE(P.Server.sendFrame(""));
  ASSERT_TRUE(P.Client.recvFrame(Got));
  EXPECT_EQ(Got, "");
  std::string Binary("\x00\xff\n\x01", 4);
  ASSERT_TRUE(P.Server.sendFrame(Binary));
  ASSERT_TRUE(P.Client.recvFrame(Got));
  EXPECT_EQ(Got, Binary);
}

TEST_F(SocketTcp, LargeFrameSurvivesKernelChunking) {
  // 8 MiB forces many partial send/recv cycles through loopback buffers.
  TcpPair P;
  std::string Big(8u << 20, 'x');
  for (size_t I = 0; I != Big.size(); I += 4096)
    Big[I] = static_cast<char>('a' + (I / 4096) % 26);
  std::thread Writer([&] { EXPECT_TRUE(P.Client.sendFrame(Big)); });
  std::string Got;
  ASSERT_TRUE(P.Server.recvFrame(Got));
  Writer.join();
  EXPECT_EQ(Got, Big);
}

TEST_F(SocketTcp, PartialReadsAndEintrAreTransparent) {
  // The same fault sites that harden the Unix path fire on TCP reads:
  // framing must resume after short reads and retry after EINTR.
  TcpPair P;
  ASSERT_TRUE(P.Client.sendFrame("tcp short-read payload"));
  ASSERT_TRUE(FaultInject::arm("socket.read.short", 1, /*Count=*/3));
  std::string Got;
  ASSERT_TRUE(P.Server.recvFrame(Got));
  EXPECT_EQ(Got, "tcp short-read payload");
  EXPECT_EQ(FaultInject::fired("socket.read.short"), 3u);
  FaultInject::disarmAll();

  ASSERT_TRUE(P.Client.sendFrame("tcp interrupted"));
  ASSERT_TRUE(FaultInject::arm("socket.read.eintr", 1));
  ASSERT_TRUE(P.Server.recvFrame(Got));
  EXPECT_EQ(Got, "tcp interrupted");
  EXPECT_EQ(FaultInject::fired("socket.read.eintr"), 1u);
  FaultInject::disarmAll();

  ASSERT_TRUE(FaultInject::arm("socket.write.short", 1, /*Count=*/2));
  ASSERT_TRUE(P.Server.sendFrame("tcp short-write payload"));
  EXPECT_EQ(FaultInject::fired("socket.write.short"), 2u);
  ASSERT_TRUE(P.Client.recvFrame(Got));
  EXPECT_EQ(Got, "tcp short-write payload");
}

TEST_F(SocketTcp, OversizedFrameHeaderIsRejected) {
  // A peer announcing a frame beyond MaxFrameBytes must be refused
  // before any allocation of that size — write the raw header by hand.
  TcpPair P;
  uint32_t Huge = htonl(static_cast<uint32_t>(Socket::MaxFrameBytes) + 1);
  ASSERT_EQ(::send(P.Client.fd(), &Huge, sizeof(Huge), 0),
            static_cast<ssize_t>(sizeof(Huge)));
  std::string Got;
  EXPECT_FALSE(P.Server.recvFrame(Got));
}

TEST_F(SocketTcp, OversizedSendIsRefusedLocally) {
  TcpPair P;
  std::string TooBig(Socket::MaxFrameBytes + 1, 'x');
  EXPECT_FALSE(P.Client.sendFrame(TooBig));
  // The refusal wrote nothing: the stream still frames cleanly.
  ASSERT_TRUE(P.Client.sendFrame("still clean"));
  std::string Got;
  ASSERT_TRUE(P.Server.recvFrame(Got));
  EXPECT_EQ(Got, "still clean");
}

TEST_F(SocketTcp, ConnectToClosedPortFails) {
  uint16_t DeadPort = 0;
  {
    Socket L = Socket::listenTcp("127.0.0.1", 0);
    ASSERT_TRUE(L.valid());
    DeadPort = L.boundPort();
  } // closed: nothing listens there now
  EXPECT_FALSE(Socket::connectTcp("127.0.0.1", DeadPort).valid());
}

TEST(ParseHostPort, AcceptsAndRejects) {
  std::string H;
  uint16_t P = 0;
  EXPECT_TRUE(support::parseHostPort("127.0.0.1:8080", H, P));
  EXPECT_EQ(H, "127.0.0.1");
  EXPECT_EQ(P, 8080);
  EXPECT_TRUE(support::parseHostPort("localhost:65535", H, P));
  EXPECT_EQ(P, 65535);
  // Port 0 means "pick for me" — only listeners may ask for that.
  EXPECT_FALSE(support::parseHostPort("127.0.0.1:0", H, P));
  EXPECT_TRUE(
      support::parseHostPort("127.0.0.1:0", H, P, /*AllowPortZero=*/true));
  EXPECT_FALSE(support::parseHostPort("no-port-here", H, P));
  EXPECT_FALSE(support::parseHostPort(":80", H, P));
  EXPECT_FALSE(support::parseHostPort("host:", H, P));
  EXPECT_FALSE(support::parseHostPort("host:abc", H, P));
  EXPECT_FALSE(support::parseHostPort("host:65536", H, P));
  EXPECT_FALSE(support::parseHostPort("", H, P));
}

TEST(ConstantTimeEqual, Compares) {
  using service::constantTimeEqual;
  EXPECT_TRUE(constantTimeEqual("", ""));
  EXPECT_TRUE(constantTimeEqual("secret", "secret"));
  EXPECT_FALSE(constantTimeEqual("secret", "secreT"));
  EXPECT_FALSE(constantTimeEqual("secret", "secret2"));
  EXPECT_FALSE(constantTimeEqual("secret", ""));
  EXPECT_FALSE(constantTimeEqual("", "secret"));
}

//===----------------------------------------------------------------------===//
// The auth handshake against a live daemon
//===----------------------------------------------------------------------===//

/// A TCP-only daemon requiring `Token`, plus a raw frame round-tripper.
struct AuthFixture {
  service::ServerOptions Opts;
  service::Server Srv;

  explicit AuthFixture(const std::string &Token, const std::string &Unix = "")
      : Opts([&] {
          service::ServerOptions O;
          O.SocketPath = Unix;
          O.ListenAddr = "127.0.0.1:0";
          O.AuthToken = Token;
          O.Workers = 1;
          return O;
        }()),
        Srv(Opts) {
    EXPECT_TRUE(Srv.start());
  }

  ~AuthFixture() { Srv.stop(); }

  Socket dial() { return Socket::connectTcp("127.0.0.1", Srv.tcpPort()); }

  static bool roundTrip(Socket &S, const Json &Req, Json &Resp) {
    if (!S.sendFrame(Req.dump()))
      return false;
    std::string Raw, Err;
    if (!S.recvFrame(Raw))
      return false;
    return Json::parse(Raw, Resp, Err);
  }

  static Json op(const std::string &Op) {
    Json J = Json::object();
    J.set("v", static_cast<int64_t>(service::ProtocolVersion));
    J.set("op", Op);
    return J;
  }
};

TEST(TcpAuth, WrongTokenGetsTypedErrorAndClose) {
  AuthFixture F("right-token");
  Socket S = F.dial();
  ASSERT_TRUE(S.valid());
  Json Req = AuthFixture::op("auth");
  Req.set("token", "wrong-token");
  Json Resp;
  ASSERT_TRUE(AuthFixture::roundTrip(S, Req, Resp));
  EXPECT_FALSE(Resp.get("ok").asBool());
  EXPECT_EQ(Resp.get("error").asString(), "auth_failed");
  // The daemon hangs up after a failed handshake: either the next send
  // bounces off the closed socket or its reply never comes.
  bool Sent = S.sendFrame(AuthFixture::op("ping").dump());
  std::string Raw;
  EXPECT_FALSE(Sent && S.recvFrame(Raw));
}

TEST(TcpAuth, MissingAuthGetsTypedErrorAndClose) {
  AuthFixture F("right-token");
  Socket S = F.dial();
  ASSERT_TRUE(S.valid());
  Json Resp;
  ASSERT_TRUE(AuthFixture::roundTrip(S, AuthFixture::op("ping"), Resp));
  EXPECT_FALSE(Resp.get("ok").asBool());
  EXPECT_EQ(Resp.get("error").asString(), "auth_failed");
  bool Sent = S.sendFrame(AuthFixture::op("ping").dump());
  std::string Raw;
  EXPECT_FALSE(Sent && S.recvFrame(Raw));
}

TEST(TcpAuth, RightTokenUnlocksTheConnection) {
  AuthFixture F("right-token");
  Socket S = F.dial();
  ASSERT_TRUE(S.valid());
  Json Req = AuthFixture::op("auth");
  Req.set("token", "right-token");
  Json Resp;
  ASSERT_TRUE(AuthFixture::roundTrip(S, Req, Resp));
  EXPECT_TRUE(Resp.get("ok").asBool());
  ASSERT_TRUE(AuthFixture::roundTrip(S, AuthFixture::op("ping"), Resp));
  EXPECT_TRUE(Resp.get("ok").asBool());
  EXPECT_EQ(Resp.get("op").asString(), "pong");
}

TEST(TcpAuth, ClientHelperSurfacesAuthFailure) {
  AuthFixture F("right-token");
  std::string Err;
  std::string Addr = "127.0.0.1:" + std::to_string(F.Srv.tcpPort());
  service::Client Bad = service::Client::connectTcp(Addr, "wrong", Err);
  EXPECT_FALSE(Bad.connected());
  EXPECT_NE(Err.find("auth_failed"), std::string::npos) << Err;

  service::Client Good = service::Client::connectTcp(Addr, "right-token", Err);
  ASSERT_TRUE(Good.connected()) << Err;
  EXPECT_TRUE(Good.ping(Err)) << Err;
}

TEST(TcpAuth, UnixListenerIsNeverChallenged) {
  // Same daemon, both listeners: TCP requires the token, the Unix socket
  // answers without any handshake (filesystem permissions are its auth).
  std::string Dir = freshDir("unix-open");
  AuthFixture F("right-token", Dir + "/acd.sock");
  service::Client C = service::Client::connect(Dir + "/acd.sock");
  ASSERT_TRUE(C.connected());
  std::string Err;
  EXPECT_TRUE(C.ping(Err)) << Err;
}

TEST(TcpAuth, OpenListenerSkipsHandshake) {
  // No token configured: TCP connections work without auth frames.
  AuthFixture F("");
  std::string Err;
  std::string Addr = "127.0.0.1:" + std::to_string(F.Srv.tcpPort());
  service::Client C = service::Client::connectTcp(Addr, "", Err);
  ASSERT_TRUE(C.connected()) << Err;
  EXPECT_TRUE(C.ping(Err)) << Err;
}

TEST(ReadTokenFile, FirstLineStripped) {
  std::string Dir = freshDir("token");
  std::string Tok;
  EXPECT_FALSE(service::readTokenFile(Dir + "/missing", Tok));
  {
    std::ofstream Out(Dir + "/tok");
    Out << "  seekrit \n# trailing junk ignored\n";
  }
  ASSERT_TRUE(service::readTokenFile(Dir + "/tok", Tok));
  EXPECT_EQ(Tok, "  seekrit ") << "only line endings are stripped; the "
                                  "token's own bytes are preserved";
  {
    std::ofstream Out(Dir + "/empty");
    Out << "\n";
  }
  EXPECT_FALSE(service::readTokenFile(Dir + "/empty", Tok))
      << "an empty token would silently disable auth";
}

} // namespace
