//===- TraceTest.cpp - Pipeline span recorder -------------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The span recorder behind AC_TRACE: nesting, multi-thread collection,
/// the Chrome trace-event JSON export (must parse, must carry the spans
/// and their attributes), rule-profile embedding, and the zero-cost
/// contract when tracing is off.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/RuleProfile.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

using namespace ac::support;

namespace {

/// Fresh collection for every test: these tests own the process-wide
/// recorder state.
struct TraceTest : ::testing::Test {
  void SetUp() override {
    Trace::reset();
    Trace::start();
  }
  void TearDown() override {
    Trace::stop();
    Trace::reset();
    RuleProfile::setEnabled(false);
    RuleProfile::reset();
  }
};

Json parseTrace() {
  Json J;
  std::string Err;
  EXPECT_TRUE(Json::parse(Trace::exportJson(), J, Err)) << Err;
  return J;
}

/// Events named \p Name in a parsed export.
std::vector<Json> eventsNamed(const Json &J, const std::string &Name) {
  std::vector<Json> Out;
  for (const Json &E : J.get("traceEvents").items())
    if (E.get("name").asString() == Name)
      Out.push_back(E);
  return Out;
}

} // namespace

TEST_F(TraceTest, SpansRecordWithNesting) {
  {
    Span Outer("outer");
    Outer.arg("fn", std::string("max"));
    {
      AC_SPAN("inner");
    }
  }
  EXPECT_EQ(Trace::eventCount(), 2u);

  Json J = parseTrace();
  ASSERT_TRUE(J.get("traceEvents").isArray());
  auto Outer = eventsNamed(J, "outer");
  auto Inner = eventsNamed(J, "inner");
  ASSERT_EQ(Outer.size(), 1u);
  ASSERT_EQ(Inner.size(), 1u);

  // Complete events ("ph":"X") on the same thread; the inner span lies
  // within the outer one.
  EXPECT_EQ(Outer[0].get("ph").asString(), "X");
  EXPECT_EQ(Inner[0].get("ph").asString(), "X");
  EXPECT_EQ(Outer[0].get("tid").asInt(), Inner[0].get("tid").asInt());
  double OutS = Outer[0].get("ts").asNumber();
  double OutEnd = OutS + Outer[0].get("dur").asNumber();
  double InS = Inner[0].get("ts").asNumber();
  double InEnd = InS + Inner[0].get("dur").asNumber();
  EXPECT_LE(OutS, InS);
  EXPECT_LE(InEnd, OutEnd);

  // Attributes land in the event's args object.
  EXPECT_EQ(Outer[0].get("args").get("fn").asString(), "max");
}

TEST_F(TraceTest, MultiThreadSpansAllCollected) {
  const unsigned Threads = 8, PerThread = 50;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([] {
      for (unsigned I = 0; I != PerThread; ++I) {
        AC_SPAN("worker.step");
      }
    });
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(Trace::eventCount(), size_t(Threads) * PerThread);
  EXPECT_EQ(Trace::droppedEvents(), 0u);

  Json J = parseTrace();
  auto Steps = eventsNamed(J, "worker.step");
  EXPECT_EQ(Steps.size(), size_t(Threads) * PerThread);

  // Spans from distinct threads keep distinct tids.
  std::set<int64_t> Tids;
  for (const Json &E : Steps)
    Tids.insert(E.get("tid").asInt());
  EXPECT_EQ(Tids.size(), Threads);
}

TEST_F(TraceTest, ExportIsValidChromeJson) {
  {
    AC_SPAN("phase.a");
  }
  Json J = parseTrace();
  EXPECT_TRUE(J.isObject());
  EXPECT_TRUE(J.get("traceEvents").isArray());
  EXPECT_EQ(J.get("displayTimeUnit").asString(), "ms");
  for (const Json &E : J.get("traceEvents").items()) {
    EXPECT_TRUE(E.get("name").isString());
    EXPECT_EQ(E.get("cat").asString(), "ac");
    EXPECT_EQ(E.get("ph").asString(), "X");
    EXPECT_TRUE(E.get("ts").isNumber());
    EXPECT_TRUE(E.get("dur").isNumber());
    EXPECT_TRUE(E.get("pid").isNumber());
    EXPECT_TRUE(E.get("tid").isNumber());
  }
}

TEST_F(TraceTest, RuleProfileEmbedsInExport) {
  RuleProfile::setEnabled(true);
  RuleProfile::record("WA.test_rule", /*Fired=*/true, /*SelfNs=*/1000);
  RuleProfile::record("WA.test_rule", /*Fired=*/false, 0);

  Json J = parseTrace();
  ASSERT_TRUE(J.get("ruleProfile").isObject());
  const Json &R = J.get("ruleProfile").get("WA.test_rule");
  ASSERT_TRUE(R.isObject());
  EXPECT_EQ(R.get("fires").asInt(), 1);
  EXPECT_EQ(R.get("misses").asInt(), 1);
  EXPECT_EQ(R.get("ns").asInt(), 1000);
}

TEST_F(TraceTest, SummarizeAggregatesByName) {
  for (int I = 0; I != 3; ++I) {
    AC_SPAN("agg.phase");
  }
  auto S = Trace::summarize();
  ASSERT_TRUE(S.count("agg.phase"));
  EXPECT_EQ(S["agg.phase"].Count, 3u);
}

TEST_F(TraceTest, FlushWritesLoadableFile) {
  {
    AC_SPAN("flushed.span");
  }
  std::string Path = ::testing::TempDir() + "trace_test_flush.json";
  ASSERT_TRUE(Trace::flush(Path));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  Json J;
  std::string Err;
  ASSERT_TRUE(Json::parse(SS.str(), J, Err)) << Err;
  EXPECT_EQ(eventsNamed(J, "flushed.span").size(), 1u);
  std::remove(Path.c_str());
}

TEST_F(TraceTest, FlushResetDrainsEvents) {
  {
    AC_SPAN("drained");
  }
  std::string Path = ::testing::TempDir() + "trace_test_flushreset.json";
  ASSERT_TRUE(Trace::flushReset(Path));
  EXPECT_EQ(Trace::eventCount(), 0u);
  std::remove(Path.c_str());
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  Trace::stop();
  Trace::reset();
  EXPECT_FALSE(Trace::enabled());
  {
    Span S("invisible");
    EXPECT_FALSE(S.active());
    S.arg("k", std::string("v")); // must be a no-op, not a crash
  }
  EXPECT_EQ(Trace::eventCount(), 0u);

  // The off-path is one relaxed load: a large burst must be far cheaper
  // than anything that allocates or locks. Bound it loosely enough for
  // loaded CI machines while still catching an accidentally-armed
  // hot path (recording 1M spans takes well over this budget).
  const int N = 1000000;
  auto T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != N; ++I) {
    AC_SPAN("off");
  }
  double S = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           T0)
                 .count();
  EXPECT_EQ(Trace::eventCount(), 0u);
  EXPECT_LT(S, 1.0);
}

TEST_F(TraceTest, ExplicitEndRecordsOnceBeforeScopeExit) {
  {
    Span S("early");
    S.arg("k", std::string("v"));
    S.end();
    // The event is already recorded — a flush/reset later in the same
    // scope (the run-local trace pattern) sees it.
    EXPECT_EQ(Trace::eventCount(), 1u);
    S.end();                         // idempotent
    S.arg("late", std::string("x")); // no-op after end()
  }
  // The destructor must not record a second copy.
  EXPECT_EQ(Trace::eventCount(), 1u);
  Json J = parseTrace();
  auto E = eventsNamed(J, "early");
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0].get("args").get("k").asString(), "v");
  EXPECT_FALSE(E[0].get("args").get("late").isString());
}

TEST_F(TraceTest, StopKeepsEventsUntilReset) {
  {
    AC_SPAN("kept");
  }
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), 1u);
  Trace::reset();
  EXPECT_EQ(Trace::eventCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Distributed trace context
//===----------------------------------------------------------------------===//

TEST_F(TraceTest, SpanIdsAreUniqueAndNonZero) {
  std::set<uint64_t> Ids;
  for (int I = 0; I != 1000; ++I) {
    uint64_t Id = Trace::nextSpanId();
    EXPECT_NE(Id, 0u);
    Ids.insert(Id);
  }
  EXPECT_EQ(Ids.size(), 1000u);
}

TEST_F(TraceTest, NestedSpansChainParentIds) {
  TraceContextScope Scope("ctx-test-1", 0);
  uint64_t OuterId, InnerId;
  {
    Span Outer("chain.outer");
    OuterId = Outer.id();
    {
      Span Inner("chain.inner");
      InnerId = Inner.id();
    }
  }
  Json J = parseTrace();
  auto O = eventsNamed(J, "chain.outer");
  auto I = eventsNamed(J, "chain.inner");
  ASSERT_EQ(O.size(), 1u);
  ASSERT_EQ(I.size(), 1u);
  // Both spans stamp the scope's trace id; the inner one chains to the
  // outer (decimal-string ids — JSON numbers are doubles).
  EXPECT_EQ(O[0].get("args").get("trace_id").asString(), "ctx-test-1");
  EXPECT_EQ(I[0].get("args").get("trace_id").asString(), "ctx-test-1");
  EXPECT_EQ(O[0].get("args").get("span").asString(),
            std::to_string(OuterId));
  EXPECT_EQ(I[0].get("args").get("parent").asString(),
            std::to_string(OuterId));
  EXPECT_EQ(I[0].get("args").get("span").asString(),
            std::to_string(InnerId));
  // The root span has no parent arg (its wire parent was 0).
  EXPECT_FALSE(O[0].get("args").get("parent").isString());
}

TEST_F(TraceTest, ContextScopeInstallsWireParentAndRestores) {
  EXPECT_TRUE(Trace::context().TraceId.empty());
  {
    TraceContextScope Scope("wire-trace", 777);
    EXPECT_EQ(Trace::context().TraceId, "wire-trace");
    EXPECT_EQ(Trace::context().ParentSpan, 777u);
    {
      Span S("wire.child");
    }
  }
  EXPECT_TRUE(Trace::context().TraceId.empty());
  EXPECT_EQ(Trace::context().ParentSpan, 0u);
  Json J = parseTrace();
  auto C = eventsNamed(J, "wire.child");
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].get("args").get("parent").asString(), "777");
}

TEST_F(TraceTest, ExportWithResetDrainsBuffers) {
  {
    AC_SPAN("pull.once");
  }
  std::string First = Trace::exportJson(/*Reset=*/true);
  EXPECT_NE(First.find("pull.once"), std::string::npos);
  EXPECT_EQ(Trace::eventCount(), 0u);
  std::string Again = Trace::exportJson(/*Reset=*/true);
  EXPECT_EQ(Again.find("pull.once"), std::string::npos);
}

TEST_F(TraceTest, ExportEmbedsRoleAndAnchor) {
  Trace::setRole("shard");
  {
    AC_SPAN("anchored");
  }
  Json J = parseTrace();
  EXPECT_EQ(J.get("otherData").get("role").asString(), "shard");
  EXPECT_GT(J.get("otherData").get("anchorUnixUs").asNumber(), 0.0);
  Trace::setRole("");
}
