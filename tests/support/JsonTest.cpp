//===- JsonTest.cpp - Wire-format building blocks ---------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the service's wire-format building blocks: the JSON value /
/// parser / serializer (round-trips, escapes, strictness on malformed
/// input) and the log-bucketed latency histogram behind the daemon's
/// p50/p90/p99 metrics.
///
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace ac::support;

namespace {

Json parseOk(const std::string &Text) {
  Json J;
  std::string Err;
  EXPECT_TRUE(Json::parse(Text, J, Err)) << Text << ": " << Err;
  return J;
}

void expectParseFails(const std::string &Text) {
  Json J;
  std::string Err;
  EXPECT_FALSE(Json::parse(Text, J, Err)) << "accepted: " << Text;
}

} // namespace

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(parseOk("null").kind(), Json::Kind::Null);
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool(true));
  EXPECT_EQ(parseOk("42").asInt(), 42);
  EXPECT_EQ(parseOk("-7").asInt(), -7);
  EXPECT_DOUBLE_EQ(parseOk("2.5e3").asNumber(), 2500.0);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(Json, IntegralNumbersPrintWithoutFraction) {
  // Byte-stable framing depends on this: 3 must not re-serialize as
  // 3.0 after a decode/encode hop.
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(uint64_t(1) << 40).dump(), "1099511627776");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(parseOk("17").dump(), "17");
}

TEST(Json, StringEscapes) {
  Json J = parseOk(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(J.asString(), "a\"b\\c\nd\teA");
  // Control characters and quotes re-escape on dump.
  EXPECT_EQ(Json("x\n\"y\"").dump(), R"("x\n\"y\"")");
  // Non-ASCII UTF-8 passes through untouched.
  EXPECT_EQ(parseOk("\"\xC3\xA9\"").asString(), "\xC3\xA9");
  // \u escapes outside ASCII decode to UTF-8.
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xC3\xA9");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json J = Json::object();
  J.set("zeta", 1);
  J.set("alpha", 2);
  J.set("mid", Json::array());
  EXPECT_EQ(J.dump(), R"({"zeta":1,"alpha":2,"mid":[]})");
  // Overwriting a key keeps its original position.
  J.set("zeta", 9);
  EXPECT_EQ(J.dump(), R"({"zeta":9,"alpha":2,"mid":[]})");
}

TEST(Json, NestedRoundTrip) {
  const std::string Text =
      R"({"v":1,"op":"check","options":{"jobs":4,"no_heap_abs":["f","g"]},"ok":true})";
  Json J = parseOk(Text);
  EXPECT_EQ(J.get("op").asString(), "check");
  EXPECT_EQ(J.get("options").get("jobs").asInt(), 4);
  ASSERT_EQ(J.get("options").get("no_heap_abs").items().size(), 2u);
  EXPECT_EQ(J.get("options").get("no_heap_abs").items()[1].asString(), "g");
  // Missing keys are a null value, not a crash.
  EXPECT_TRUE(J.get("nope").isNull());
  EXPECT_EQ(J.dump(), Text); // insertion order == source order
}

TEST(Json, RejectsMalformedInput) {
  expectParseFails("");
  expectParseFails("{");
  expectParseFails("[1,]");
  expectParseFails("{\"a\":}");
  expectParseFails("{\"a\" 1}");
  expectParseFails("nul");
  expectParseFails("\"unterminated");
  expectParseFails("\"bad\\q\"");
  expectParseFails("01");
  expectParseFails("1 trailing");
  expectParseFails("{} {}");
}

TEST(Json, ParsesItsOwnDump) {
  Json J = Json::object();
  J.set("s", "line1\nline2 \"quoted\"");
  Json A = Json::array();
  for (int I = -3; I != 4; ++I)
    A.push(I);
  A.push(true);
  A.push(nullptr);
  J.set("mixed", std::move(A));
  Json Back = parseOk(J.dump());
  EXPECT_EQ(Back.dump(), J.dump());
  EXPECT_EQ(Back.get("s").asString(), "line1\nline2 \"quoted\"");
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, EmptyIsAllZero) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesBracketTheSamples) {
  Histogram H;
  // 90 fast samples at ~1ms, 10 slow at ~1s: p50 must look like the
  // fast cluster, p99 like the slow one. Log bucketing gives ~9%
  // relative error, so compare with generous brackets.
  for (int I = 0; I != 90; ++I)
    H.record(0.001);
  for (int I = 0; I != 10; ++I)
    H.record(1.0);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_NEAR(H.sum(), 10.09, 0.05);
  EXPECT_GT(H.quantile(0.50), 0.0005);
  EXPECT_LT(H.quantile(0.50), 0.002);
  EXPECT_GT(H.quantile(0.99), 0.5);
  EXPECT_LT(H.quantile(0.99), 2.0);
  // Quantiles are monotone in Q.
  EXPECT_LE(H.quantile(0.5), H.quantile(0.9));
  EXPECT_LE(H.quantile(0.9), H.quantile(0.99));
}

TEST(Histogram, ClampsOutOfRangeSamples) {
  Histogram H;
  H.record(-1.0);       // clamps to zero-ish, must not crash
  H.record(1e9);        // beyond the last octave, clamps to last bucket
  EXPECT_EQ(H.count(), 2u);
  EXPECT_GT(H.quantile(1.0), 1000.0);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram H;
  for (int I = 0; I != 10; ++I)
    H.record(0.01);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.quantile(0.9), 0.0);
}

TEST(Histogram, ConcurrentRecordsAllLand) {
  Histogram H;
  constexpr int PerThread = 5000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != 4; ++T)
    Ts.emplace_back([&H] {
      for (int I = 0; I != PerThread; ++I)
        H.record(0.0001 * (1 + (I % 7)));
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), 4u * PerThread);
}
