//===- JsonTest.cpp - Wire-format building blocks ---------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the service's wire-format building blocks: the JSON value /
/// parser / serializer (round-trips, escapes, strictness on malformed
/// input) and the log-bucketed latency histogram behind the daemon's
/// p50/p90/p99 metrics.
///
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace ac::support;

namespace {

Json parseOk(const std::string &Text) {
  Json J;
  std::string Err;
  EXPECT_TRUE(Json::parse(Text, J, Err)) << Text << ": " << Err;
  return J;
}

void expectParseFails(const std::string &Text) {
  Json J;
  std::string Err;
  EXPECT_FALSE(Json::parse(Text, J, Err)) << "accepted: " << Text;
}

} // namespace

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(parseOk("null").kind(), Json::Kind::Null);
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool(true));
  EXPECT_EQ(parseOk("42").asInt(), 42);
  EXPECT_EQ(parseOk("-7").asInt(), -7);
  EXPECT_DOUBLE_EQ(parseOk("2.5e3").asNumber(), 2500.0);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(Json, IntegralNumbersPrintWithoutFraction) {
  // Byte-stable framing depends on this: 3 must not re-serialize as
  // 3.0 after a decode/encode hop.
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(uint64_t(1) << 40).dump(), "1099511627776");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(parseOk("17").dump(), "17");
}

TEST(Json, StringEscapes) {
  Json J = parseOk(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(J.asString(), "a\"b\\c\nd\teA");
  // Control characters and quotes re-escape on dump.
  EXPECT_EQ(Json("x\n\"y\"").dump(), R"("x\n\"y\"")");
  // Non-ASCII UTF-8 passes through untouched.
  EXPECT_EQ(parseOk("\"\xC3\xA9\"").asString(), "\xC3\xA9");
  // \u escapes outside ASCII decode to UTF-8.
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xC3\xA9");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json J = Json::object();
  J.set("zeta", 1);
  J.set("alpha", 2);
  J.set("mid", Json::array());
  EXPECT_EQ(J.dump(), R"({"zeta":1,"alpha":2,"mid":[]})");
  // Overwriting a key keeps its original position.
  J.set("zeta", 9);
  EXPECT_EQ(J.dump(), R"({"zeta":9,"alpha":2,"mid":[]})");
}

TEST(Json, NestedRoundTrip) {
  const std::string Text =
      R"({"v":1,"op":"check","options":{"jobs":4,"no_heap_abs":["f","g"]},"ok":true})";
  Json J = parseOk(Text);
  EXPECT_EQ(J.get("op").asString(), "check");
  EXPECT_EQ(J.get("options").get("jobs").asInt(), 4);
  ASSERT_EQ(J.get("options").get("no_heap_abs").items().size(), 2u);
  EXPECT_EQ(J.get("options").get("no_heap_abs").items()[1].asString(), "g");
  // Missing keys are a null value, not a crash.
  EXPECT_TRUE(J.get("nope").isNull());
  EXPECT_EQ(J.dump(), Text); // insertion order == source order
}

TEST(Json, RejectsMalformedInput) {
  expectParseFails("");
  expectParseFails("{");
  expectParseFails("[1,]");
  expectParseFails("{\"a\":}");
  expectParseFails("{\"a\" 1}");
  expectParseFails("nul");
  expectParseFails("\"unterminated");
  expectParseFails("\"bad\\q\"");
  expectParseFails("01");
  expectParseFails("1 trailing");
  expectParseFails("{} {}");
}

TEST(Json, ParsesItsOwnDump) {
  Json J = Json::object();
  J.set("s", "line1\nline2 \"quoted\"");
  Json A = Json::array();
  for (int I = -3; I != 4; ++I)
    A.push(I);
  A.push(true);
  A.push(nullptr);
  J.set("mixed", std::move(A));
  Json Back = parseOk(J.dump());
  EXPECT_EQ(Back.dump(), J.dump());
  EXPECT_EQ(Back.get("s").asString(), "line1\nline2 \"quoted\"");
}

//===----------------------------------------------------------------------===//
// Fuzz corpus: mutated wire payloads
//===----------------------------------------------------------------------===//

namespace {

/// The canonical payloads from docs/PROTOCOL.md — the exact shapes a
/// confused or malicious peer would start from before the bytes went
/// wrong in transit.
const char *const WirePayloads[] = {
    R"({"v":1,"op":"check","source":"unsigned max(unsigned a, unsigned b) { return a < b ? b : a; }","options":{"no_heap_abs":["f","g"],"no_word_abs":["h"],"jobs":4,"cache_dir":"/path/to/cache"},"want_specs":true,"timeout_ms":2000})",
    R"({"v":1,"op":"stats"})",
    R"({"v":1,"op":"ping"})",
    R"({"v":1,"op":"drain"})",
    R"json({"ok":true,"functions":[{"name":"max","final":"wa:max","heap_lifted":false,"word_abstracted":true,"render":"max' a b ==\nreturn (if a < b then b else a)","pipeline":"ac_corres (return (if a < b then b else a)) SIMPL[max]","specs":{"l1":"...","l2":"...","hl":"","wa":"..."}}],"diagnostics":[],"stats":{"source_lines":4,"functions":1,"jobs":1,"parse_s":0.001,"abstract_wall_s":0.002,"cache_enabled":true,"cache_hits":0,"cache_misses":1,"cache_invalidations":0,"cache_dropped":0}})json",
    R"({"ok":false,"error":"busy","message":"queue full","retry_after_ms":50})",
    R"({"ok":false,"error":"deadline_exceeded","message":"deadline of 100 ms exceeded"})",
    R"({"ok":true,"uptime_s":12.3,"draining":false,"workers":2,"queue_depth":0,"queue_capacity":8,"in_flight":1,"requests":{"received":10,"completed":8,"failed":1,"cancelled":1,"rejected":2,"deadline_exceeded":0}})",
};

/// One deterministic byte-level mutation. The shapes mirror what torn
/// frames, bad length prefixes, and bit rot actually produce.
std::string mutate(const std::string &Base, std::minstd_rand &Rng) {
  std::string S = Base;
  switch (Rng() % 6) {
  case 0: // truncate anywhere (a torn frame)
    S.resize(Rng() % (S.size() + 1));
    break;
  case 1: // flip one bit
    if (!S.empty())
      S[Rng() % S.size()] ^= static_cast<char>(1u << (Rng() % 8));
    break;
  case 2: // delete one byte
    if (!S.empty())
      S.erase(S.begin() + Rng() % S.size());
    break;
  case 3: // insert a random byte (including NUL and controls)
    S.insert(S.begin() + Rng() % (S.size() + 1),
             static_cast<char>(Rng() % 256));
    break;
  case 4: // duplicate a span
    if (!S.empty()) {
      size_t At = Rng() % S.size();
      size_t N = 1 + Rng() % std::min<size_t>(16, S.size() - At);
      S.insert(At, S.substr(At, N));
    }
    break;
  default: // swap two bytes
    if (S.size() >= 2) {
      size_t A = Rng() % S.size(), B = Rng() % S.size();
      std::swap(S[A], S[B]);
    }
    break;
  }
  return S;
}

} // namespace

/// A daemon must survive any bytes a peer can put in a frame: 200
/// deterministic mutations of the PROTOCOL.md example payloads. Every
/// mutant must either be rejected with an error message, or — when the
/// mutation happened to keep the text well-formed — parse to a value
/// whose dump() round-trips. Never a crash, never a hang, and on
/// rejection the output value must be reset to null, not left holding
/// partially-parsed state.
TEST(Json, SurvivesMutatedWirePayloads) {
  std::minstd_rand Rng(20140604); // fixed seed: failures must replay
  const size_t NumPayloads = sizeof(WirePayloads) / sizeof(WirePayloads[0]);
  size_t Rejected = 0, Accepted = 0;
  for (int I = 0; I != 200; ++I) {
    const std::string Base = WirePayloads[I % NumPayloads];
    const std::string Mutant = mutate(Base, Rng);
    Json J(42); // poison: must not survive a failed parse
    std::string Err;
    if (!Json::parse(Mutant, J, Err)) {
      EXPECT_FALSE(Err.empty())
          << "rejection must say why; input: " << Mutant;
      EXPECT_TRUE(J.isNull())
          << "failed parse must not leak partial state; input: " << Mutant;
      ++Rejected;
      continue;
    }
    ++Accepted;
    // A survivor must at least be internally consistent.
    Json Back;
    ASSERT_TRUE(Json::parse(J.dump(), Back, Err))
        << "dump of accepted mutant does not re-parse: " << J.dump();
    EXPECT_EQ(Back.dump(), J.dump());
  }
  // Byte-level damage to tightly-structured JSON should almost always
  // be fatal; a mostly-accepting parser would mean the corpus (or the
  // parser) is broken.
  EXPECT_GT(Rejected, Accepted);
  EXPECT_GT(Rejected, 100u);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, EmptyIsAllZero) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesBracketTheSamples) {
  Histogram H;
  // 90 fast samples at ~1ms, 10 slow at ~1s: p50 must look like the
  // fast cluster, p99 like the slow one. Log bucketing gives ~9%
  // relative error, so compare with generous brackets.
  for (int I = 0; I != 90; ++I)
    H.record(0.001);
  for (int I = 0; I != 10; ++I)
    H.record(1.0);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_NEAR(H.sum(), 10.09, 0.05);
  EXPECT_GT(H.quantile(0.50), 0.0005);
  EXPECT_LT(H.quantile(0.50), 0.002);
  EXPECT_GT(H.quantile(0.99), 0.5);
  EXPECT_LT(H.quantile(0.99), 2.0);
  // Quantiles are monotone in Q.
  EXPECT_LE(H.quantile(0.5), H.quantile(0.9));
  EXPECT_LE(H.quantile(0.9), H.quantile(0.99));
}

TEST(Histogram, ClampsOutOfRangeSamples) {
  Histogram H;
  H.record(-1.0);       // clamps to zero-ish, must not crash
  H.record(1e9);        // beyond the last octave, clamps to last bucket
  EXPECT_EQ(H.count(), 2u);
  EXPECT_GT(H.quantile(1.0), 1000.0);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram H;
  for (int I = 0; I != 10; ++I)
    H.record(0.01);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.quantile(0.9), 0.0);
}

TEST(Histogram, ConcurrentRecordsAllLand) {
  Histogram H;
  constexpr int PerThread = 5000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != 4; ++T)
    Ts.emplace_back([&H] {
      for (int I = 0; I != PerThread; ++I)
        H.record(0.0001 * (1 + (I % 7)));
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), 4u * PerThread);
}
