//===- ThreadPoolTest.cpp - Worker pool and task graphs ---------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the thread pool under the parallel abstraction pipeline:
/// lifecycle, result/exception propagation through submit() futures, and
/// dependency-ordered completion of runTaskGraph() — including the
/// diamond shape and skip-propagation past a failed task.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

using namespace ac::support;

TEST(ThreadPool, SpawnsRequestedWorkers) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.jobs(), 3u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 50; ++I)
      Pool.post([&Ran] { ++Ran; });
  } // destructor joins after the queue drains
  EXPECT_EQ(Ran.load(), 50);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool Pool(2);
  std::future<int> F = Pool.submit([] { return 6 * 7; });
  EXPECT_EQ(F.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionToCaller) {
  ThreadPool Pool(2);
  std::future<int> F = Pool.submit(
      []() -> int { throw std::runtime_error("worker blew up"); });
  try {
    F.get();
    FAIL() << "expected the worker's exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "worker blew up");
  }
}

TEST(ThreadPool, ManyConcurrentSubmits) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futs;
  for (int I = 0; I != 100; ++I)
    Futs.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Futs[I].get(), I * I);
}

//===----------------------------------------------------------------------===//
// post() error propagation and drain()
//===----------------------------------------------------------------------===//

TEST(ThreadPool, PostedExceptionReachesTheSubmitter) {
  // A fire-and-forget task that throws must not take the process down
  // (the daemon posts such tasks); the error is captured for takeError.
  ThreadPool Pool(2);
  Pool.post([] { throw std::runtime_error("fire-and-forget blew up"); });
  Pool.drain();
  std::exception_ptr E = Pool.takeError();
  ASSERT_TRUE(E != nullptr);
  try {
    std::rethrow_exception(E);
    FAIL() << "expected the captured exception";
  } catch (const std::runtime_error &Ex) {
    EXPECT_STREQ(Ex.what(), "fire-and-forget blew up");
  }
  // takeError clears the slot, so later failures are observable anew.
  EXPECT_TRUE(Pool.takeError() == nullptr);
}

TEST(ThreadPool, FirstPostedErrorWins) {
  ThreadPool Pool(1);
  Pool.post([] { throw std::runtime_error("first"); });
  Pool.post([] { throw std::runtime_error("second"); });
  Pool.drain();
  try {
    Pool.rethrowIfError();
    FAIL() << "expected an error";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
  Pool.rethrowIfError(); // slot cleared: no-op, must not throw
}

TEST(ThreadPool, RethrowIfErrorIsANoOpWhenClean) {
  ThreadPool Pool(2);
  Pool.post([] {});
  Pool.drain();
  Pool.rethrowIfError();
  EXPECT_TRUE(Pool.takeError() == nullptr);
}

TEST(ThreadPool, DrainWaitsForBusyWorkersAndQueuedTasks) {
  // Shutdown-while-busy: drain() is called while every worker is inside
  // a task and more tasks are still queued; it must return only once
  // all of them ran to completion.
  ThreadPool Pool(2);
  std::atomic<int> Done{0};
  for (int I = 0; I != 10; ++I)
    Pool.post([&Done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      Done.fetch_add(1);
    });
  Pool.drain();
  EXPECT_EQ(Done.load(), 10);
}

TEST(ThreadPool, DrainSurvivesThrowingTasksMidQueue) {
  // Errors must not wedge the drain: workers keep consuming the queue
  // after a task throws, and every non-throwing task still runs.
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 20; ++I)
    Pool.post([&Ran, I] {
      if (I % 3 == 0)
        throw std::runtime_error("task " + std::to_string(I));
      Ran.fetch_add(1);
    });
  Pool.drain();
  EXPECT_EQ(Ran.load(), 13); // 20 minus the 7 multiples of 3
  EXPECT_TRUE(Pool.takeError() != nullptr);
}

//===----------------------------------------------------------------------===//
// runTaskGraph
//===----------------------------------------------------------------------===//

namespace {

/// Records completion order with a lock-free append.
struct OrderLog {
  std::vector<unsigned> Seen = std::vector<unsigned>(64);
  std::atomic<unsigned> N{0};

  void done(unsigned I) { Seen[N.fetch_add(1)] = I; }
  /// Position of task \p I in the completion order.
  size_t posOf(unsigned I) const {
    for (size_t P = 0; P != N.load(); ++P)
      if (Seen[P] == I)
        return P;
    return ~size_t(0);
  }
};

} // namespace

TEST(TaskGraph, DiamondRespectsDependencies) {
  // 0 -> {1, 2} -> 3: the two middle tasks need 0, the join needs both.
  ThreadPool Pool(4);
  OrderLog Log;
  std::vector<std::function<void()>> Tasks;
  for (unsigned I = 0; I != 4; ++I)
    Tasks.push_back([&Log, I] {
      // Give dependency violations a chance to manifest as reordering.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Log.done(I);
    });
  std::vector<std::vector<unsigned>> Deps = {{}, {0}, {0}, {1, 2}};
  runTaskGraph(Pool, Tasks, Deps);

  ASSERT_EQ(Log.N.load(), 4u);
  EXPECT_LT(Log.posOf(0), Log.posOf(1));
  EXPECT_LT(Log.posOf(0), Log.posOf(2));
  EXPECT_LT(Log.posOf(1), Log.posOf(3));
  EXPECT_LT(Log.posOf(2), Log.posOf(3));
}

TEST(TaskGraph, ChainRunsInOrderOnWidePool) {
  ThreadPool Pool(8);
  OrderLog Log;
  std::vector<std::function<void()>> Tasks;
  std::vector<std::vector<unsigned>> Deps;
  for (unsigned I = 0; I != 16; ++I) {
    Tasks.push_back([&Log, I] { Log.done(I); });
    Deps.push_back(I == 0 ? std::vector<unsigned>{}
                          : std::vector<unsigned>{I - 1});
  }
  runTaskGraph(Pool, Tasks, Deps);
  ASSERT_EQ(Log.N.load(), 16u);
  for (unsigned I = 0; I + 1 != 16; ++I)
    EXPECT_LT(Log.posOf(I), Log.posOf(I + 1));
}

TEST(TaskGraph, FailureSkipsDependentsAndRethrows) {
  // 0 fails; 1 and 2 depend on it (transitively) and must not run; the
  // independent task 3 still runs.
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  std::atomic<bool> SkippedRan{false};
  std::vector<std::function<void()>> Tasks = {
      [] { throw std::runtime_error("phase failed"); },
      [&SkippedRan] { SkippedRan = true; },
      [&SkippedRan] { SkippedRan = true; },
      [&Ran] { ++Ran; },
  };
  std::vector<std::vector<unsigned>> Deps = {{}, {0}, {1}, {}};
  try {
    runTaskGraph(Pool, Tasks, Deps);
    FAIL() << "expected the failed task's exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "phase failed");
  }
  EXPECT_FALSE(SkippedRan.load());
  EXPECT_EQ(Ran.load(), 1);
}

TEST(TaskGraph, LowestIndexFailureWins) {
  // Several tasks fail under contention; the reported error must be the
  // lowest-index one regardless of schedule.
  for (int Round = 0; Round != 10; ++Round) {
    ThreadPool Pool(4);
    std::vector<std::function<void()>> Tasks;
    std::vector<std::vector<unsigned>> Deps;
    for (unsigned I = 0; I != 8; ++I) {
      Tasks.push_back([I] {
        if (I % 2 == 1)
          throw std::runtime_error("fail:" + std::to_string(I));
      });
      Deps.push_back({});
    }
    try {
      runTaskGraph(Pool, Tasks, Deps);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "fail:1");
    }
  }
}

TEST(TaskGraph, EmptyGraphIsANoOp) {
  ThreadPool Pool(2);
  runTaskGraph(Pool, {}, {});
}
