//===- TraceMergeTest.cpp - Fleet trace fragment merger ---------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The actrace merge step on synthetic fragments: per-process pid lanes
/// get process_name metadata from the fragment's role, timestamps rebase
/// onto the earliest wall-clock anchor, rule profiles and drop counters
/// sum, and malformed fragments fail loudly instead of producing a
/// silently partial trace.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/TraceMerge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ac::support;

namespace {

/// One synthetic single-event fragment, the shape Trace::exportJson
/// emits: a complete event on \p Pid at \p TsUs, a role, a wall-clock
/// anchor in microseconds.
std::string fragment(int Pid, const std::string &Role, double AnchorUs,
                     double TsUs, const std::string &TraceId,
                     const std::string &Span, const std::string &Parent) {
  Json E = Json::object();
  E.set("name", "synthetic.span");
  E.set("cat", "ac");
  E.set("ph", "X");
  E.set("ts", TsUs);
  E.set("dur", 10.0);
  E.set("pid", Pid);
  E.set("tid", 1);
  Json Args = Json::object();
  Args.set("trace_id", TraceId);
  Args.set("span", Span);
  if (!Parent.empty())
    Args.set("parent", Parent);
  E.set("args", std::move(Args));
  Json Events = Json::array();
  Events.push(std::move(E));
  Json Root = Json::object();
  Root.set("traceEvents", std::move(Events));
  Root.set("displayTimeUnit", "ms");
  Json RP = Json::object();
  Json R = Json::object();
  R.set("fires", 2);
  R.set("misses", 1);
  R.set("ns", 500);
  RP.set("WA.synthetic", std::move(R));
  Root.set("ruleProfile", std::move(RP));
  Json Other = Json::object();
  Other.set("role", Role);
  Other.set("anchorUnixUs", AnchorUs);
  Other.set("droppedEvents", 3);
  Root.set("otherData", std::move(Other));
  return Root.dump();
}

Json mergeOk(const std::vector<std::string> &Frags) {
  std::string Merged, Err;
  EXPECT_TRUE(mergeTraceFragments(Frags, Merged, Err)) << Err;
  Json J;
  EXPECT_TRUE(Json::parse(Merged, J, Err)) << Err;
  return J;
}

} // namespace

TEST(TraceMerge, PidLanesGetRoleNamesAndOneTimeline) {
  // Three processes; the router booted 1000 µs before the shard and
  // 2000 µs before the cache (wall-clock anchors).
  Json J = mergeOk({
      fragment(100, "router", 1000000, 50, "t-1", "101", ""),
      fragment(200, "shard", 1001000, 50, "t-1", "201", "101"),
      fragment(300, "cache", 1002000, 50, "t-1", "301", "201"),
  });
  ASSERT_TRUE(J.get("traceEvents").isArray());

  int Meta = 0, Spans = 0;
  double RouterTs = -1, ShardTs = -1, CacheTs = -1;
  for (const Json &E : J.get("traceEvents").items()) {
    if (E.get("ph").asString() == "M") {
      ++Meta;
      EXPECT_EQ(E.get("name").asString(), "process_name");
      const std::string &Role = E.get("args").get("name").asString();
      EXPECT_TRUE(Role == "router" || Role == "shard" || Role == "cache")
          << Role;
      continue;
    }
    ++Spans;
    double Ts = E.get("ts").asNumber();
    switch (static_cast<int>(E.get("pid").asNumber())) {
    case 100:
      RouterTs = Ts;
      break;
    case 200:
      ShardTs = Ts;
      break;
    case 300:
      CacheTs = Ts;
      break;
    }
  }
  EXPECT_EQ(Meta, 3);  // one lane label per process
  EXPECT_EQ(Spans, 3);
  // Rebased onto the earliest anchor: the shard's event lands 1000 µs
  // after the router's, the cache's 2000 µs after.
  EXPECT_DOUBLE_EQ(RouterTs, 50);
  EXPECT_DOUBLE_EQ(ShardTs, 1050);
  EXPECT_DOUBLE_EQ(CacheTs, 2050);
  EXPECT_EQ(J.get("otherData").get("mergedFragments").asInt(), 3);
}

TEST(TraceMerge, RuleProfilesAndDropCountersSum) {
  Json J = mergeOk({
      fragment(1, "shard", 0, 0, "t-2", "11", ""),
      fragment(2, "shard", 0, 0, "t-2", "12", "11"),
  });
  const Json &R = J.get("ruleProfile").get("WA.synthetic");
  ASSERT_TRUE(R.isObject());
  EXPECT_EQ(R.get("fires").asInt(), 4);
  EXPECT_EQ(R.get("misses").asInt(), 2);
  EXPECT_EQ(R.get("ns").asInt(), 1000);
  EXPECT_EQ(J.get("otherData").get("droppedEvents").asInt(), 6);
}

TEST(TraceMerge, EmptyFragmentsAreSkippedNotFatal) {
  Json J = mergeOk({
      "",
      fragment(7, "router", 0, 5, "t-3", "71", ""),
      "",
  });
  EXPECT_EQ(J.get("otherData").get("mergedFragments").asInt(), 1);
}

TEST(TraceMerge, MalformedFragmentFailsLoudly) {
  std::string Merged, Err;
  EXPECT_FALSE(mergeTraceFragments({"{not json"}, Merged, Err));
  EXPECT_FALSE(Err.empty());
  Err.clear();
  EXPECT_FALSE(mergeTraceFragments({"{\"noEvents\":1}"}, Merged, Err));
  EXPECT_NE(Err.find("traceEvents"), std::string::npos);
}
