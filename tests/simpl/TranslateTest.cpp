//===- TranslateTest.cpp - C-to-Simpl translation with guards -------------===//

#include "simpl/PrintSimpl.h"
#include "simpl/Program.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::simpl;

namespace {

std::unique_ptr<SimplProgram> translate(const std::string &Src) {
  DiagEngine Diags;
  auto P = parseAndTranslate(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  return P;
}

unsigned countGuards(const SimplFunc &F, GuardKind K) {
  unsigned N = 0;
  std::vector<const SimplStmt *> Stack{F.Body.get()};
  while (!Stack.empty()) {
    const SimplStmt *S = Stack.back();
    Stack.pop_back();
    if (!S)
      continue;
    if (S->kind() == SimplStmt::Kind::Guard && S->GK == K)
      ++N;
    Stack.push_back(S->A.get());
    Stack.push_back(S->B.get());
  }
  return N;
}

} // namespace

TEST(Translate, MaxHasFig2Shape) {
  auto P = translate("int max(int a, int b) {\n"
                     "  if (a < b)\n"
                     "    return b;\n"
                     "  return a;\n"
                     "}\n");
  const SimplFunc *F = P->function("max");
  ASSERT_NE(F, nullptr);
  // Outer TRY...CATCH for Return, a DontReach guard at the end.
  EXPECT_EQ(F->Body->kind(), SimplStmt::Kind::TryCatch);
  EXPECT_EQ(F->Body->Frame, FrameKind::FunctionBody);
  EXPECT_EQ(countGuards(*F, GuardKind::DontReach), 1u);
  // The comparison a < b requires no overflow guard.
  EXPECT_EQ(countGuards(*F, GuardKind::SignedOverflow), 0u);
  std::string Printed = printSimplFunc(*F);
  EXPECT_NE(Printed.find("TRY"), std::string::npos);
  EXPECT_NE(Printed.find("THROW"), std::string::npos);
  EXPECT_NE(Printed.find("´ret :== "), std::string::npos);
  EXPECT_NE(Printed.find("global_exn_var :== Return"), std::string::npos);
}

TEST(Translate, SignedOverflowGuards) {
  // Signed a + b gets a lower and an upper bound guard.
  auto P = translate("int add(int a, int b) { return a + b; }\n");
  const SimplFunc *F = P->function("add");
  EXPECT_EQ(countGuards(*F, GuardKind::SignedOverflow), 2u);
  // Unsigned addition wraps; no guard.
  auto P2 = translate("unsigned add(unsigned a, unsigned b) "
                      "{ return a + b; }\n");
  EXPECT_EQ(countGuards(*P2->function("add"), GuardKind::SignedOverflow),
            0u);
}

TEST(Translate, DivisionGuards) {
  auto P = translate("int div(int a, int b) { return a / b; }\n");
  const SimplFunc *F = P->function("div");
  EXPECT_EQ(countGuards(*F, GuardKind::DivByZero), 1u);
  // INT_MIN / -1.
  EXPECT_EQ(countGuards(*F, GuardKind::SignedOverflow), 1u);
  auto P2 =
      translate("unsigned d(unsigned a, unsigned b) { return a / b; }\n");
  EXPECT_EQ(countGuards(*P2->function("d"), GuardKind::DivByZero), 1u);
  EXPECT_EQ(countGuards(*P2->function("d"), GuardKind::SignedOverflow), 0u);
}

TEST(Translate, PointerGuards) {
  auto P = translate("unsigned deref(unsigned *p) { return *p; }\n");
  EXPECT_EQ(countGuards(*P->function("deref"), GuardKind::PtrValid), 1u);
  // swap: two reads + two writes, each access guarded (Fig 3 shows the
  // guards merged per statement; we emit one per heap access).
  auto P2 = translate("void swap(unsigned *a, unsigned *b) {\n"
                      "  unsigned t = *a;\n"
                      "  *a = *b;\n"
                      "  *b = t;\n"
                      "}\n");
  EXPECT_GE(countGuards(*P2->function("swap"), GuardKind::PtrValid), 4u);
}

TEST(Translate, ShortCircuitGuardsAreWeakened) {
  // In `p != NULL && p->data == 0`, the p->data guard only applies when
  // the left side is true; the translation must not emit an unconditional
  // pointer guard.
  auto P = translate("struct node { unsigned data; };\n"
                     "int check(struct node *p) {\n"
                     "  if (p != NULL && p->data == 0) return 1;\n"
                     "  return 0;\n"
                     "}\n");
  const SimplFunc *F = P->function("check");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(countGuards(*F, GuardKind::PtrValid), 1u);
  // The guard must mention the short-circuit disjunction.
  std::string Printed = printSimplFunc(*F);
  EXPECT_NE(Printed.find("∨"), std::string::npos) << Printed;
}

TEST(Translate, HeapTypesAreCollected) {
  auto P = translate("struct node { struct node *next; unsigned data; };\n"
                     "unsigned f(struct node *p, unsigned *q) {\n"
                     "  return p->data + *q;\n"
                     "}\n");
  // node_C and word32 heaps.
  EXPECT_EQ(P->HeapTypes.size(), 2u);
}

TEST(Translate, LoopsUseExnEncoding) {
  auto P = translate("int f(int n) {\n"
                     "  int i = 0;\n"
                     "  while (i < n) {\n"
                     "    if (i == 7) break;\n"
                     "    i = i + 1;\n"
                     "  }\n"
                     "  return i;\n"
                     "}\n");
  const SimplFunc *F = P->function("f");
  // Loop frame + function frame.
  unsigned Frames = 0;
  std::vector<const SimplStmt *> Stack{F->Body.get()};
  while (!Stack.empty()) {
    const SimplStmt *S = Stack.back();
    Stack.pop_back();
    if (!S)
      continue;
    if (S->kind() == SimplStmt::Kind::TryCatch)
      ++Frames;
    Stack.push_back(S->A.get());
    Stack.push_back(S->B.get());
  }
  EXPECT_GE(Frames, 3u); // function + loop-break + loop-continue
}

TEST(Translate, StateRecordsContainLocalsAndGlobals) {
  auto P = translate("unsigned g_counter = 5;\n"
                     "unsigned next(void) {\n"
                     "  unsigned v = g_counter;\n"
                     "  g_counter = v + 1;\n"
                     "  return v;\n"
                     "}\n");
  const hol::RecordInfo *G = P->Records.lookup(globalsRecName());
  ASSERT_NE(G, nullptr);
  EXPECT_NE(G->fieldType("g_counter"), nullptr);
  EXPECT_NE(G->fieldType(heapFieldName()), nullptr);
  const hol::RecordInfo *S = P->Records.lookup("next_state");
  ASSERT_NE(S, nullptr);
  EXPECT_NE(S->fieldType("v"), nullptr);
  EXPECT_NE(S->fieldType("ret"), nullptr);
  EXPECT_NE(S->fieldType(exnVarName()), nullptr);
}

TEST(Translate, RecursionIsMarked) {
  auto P = translate("unsigned fact(unsigned n) {\n"
                     "  if (n == 0) return 1;\n"
                     "  return n * fact(n - 1);\n"
                     "}\n"
                     "unsigned top(unsigned n) { return fact(n); }\n");
  EXPECT_TRUE(P->function("fact")->IsRecursive);
  EXPECT_FALSE(P->function("top")->IsRecursive);
}

TEST(Translate, MetricsAreComputable) {
  auto P = translate("int max(int a, int b) {\n"
                     "  if (a < b) return b;\n"
                     "  return a;\n"
                     "}\n");
  const SimplFunc *F = P->function("max");
  EXPECT_GT(F->Body->termSize(), 20u);
  EXPECT_GT(simplSpecLines(*F), 10u);
}
