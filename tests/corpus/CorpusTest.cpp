//===- CorpusTest.cpp - Case studies, List theory, synthetic corpus -------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the Sec 5 layer end-to-end: the two case-study proofs go
/// through, every axiom of the ported List theory survives countermodel
/// search, the paper's Fig 8 sources all translate with an auditable
/// trusted base, and the synthetic Table 5 corpora both translate and
/// agree with the executable Simpl semantics on sampled runs.
///
//===----------------------------------------------------------------------===//

#include "../common/TestUtil.h"
#include "core/AutoCorres.h"
#include "corpus/CaseStudies.h"
#include "corpus/Sources.h"
#include "corpus/Synthetic.h"
#include "hol/Print.h"
#include "proof/Auto.h"
#include "proof/ListLib.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::hol;
using namespace ac::proof;
using namespace ac::test;

namespace {

std::unique_ptr<core::AutoCorres> runAC(const std::string &Src,
                                        core::ACOptions Opts = {}) {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  EXPECT_TRUE(AC) << Diags.str();
  return AC;
}

//===----------------------------------------------------------------------===//
// Sec 5.2 / 5.3 case studies as regression tests.
//===----------------------------------------------------------------------===//

TEST(CaseStudies, ListReversalVerifiedTotal) {
  corpus::CaseStudyReport R = corpus::verifyListReversal();
  for (const std::string &F : R.Failures)
    ADD_FAILURE() << F;
  EXPECT_TRUE(R.Verified);
  EXPECT_TRUE(R.TotalCorrectness);
  // The Table 6 breakdown has all four components, each non-empty.
  ASSERT_EQ(R.Components.size(), 4u);
  for (const corpus::ProofComponent &C : R.Components) {
    EXPECT_TRUE(C.Ok) << C.Name;
    EXPECT_GT(C.ScriptLines, 0u) << C.Name;
  }
}

TEST(CaseStudies, SchorrWaiteBoundedGraphs) {
  // Reduced family for the unit-test run (exhaustive <= 2 nodes plus 60
  // random graphs); the full Table 6 configuration runs in the bench.
  corpus::CaseStudyReport R = corpus::verifySchorrWaite(2, 60);
  for (const std::string &F : R.Failures)
    ADD_FAILURE() << F;
  EXPECT_TRUE(R.Verified);
  EXPECT_TRUE(R.TotalCorrectness);
  ASSERT_EQ(R.Components.size(), 4u);
}

//===----------------------------------------------------------------------===//
// List theory validation: every registered axiom must survive the
// countermodel search that kills Table 2's unsound variants.
//===----------------------------------------------------------------------===//

class ListLemmaTest : public ::testing::TestWithParam<size_t> {
public:
  static void SetUpTestSuite() {
    DiagEngine Diags;
    AC = core::AutoCorres::run(corpus::reverseSource(), Diags).release();
    ASSERT_TRUE(AC) << Diags.str();
    Theory = new ListTheory(makeListTheory("node_C", "next"));
  }
  static void TearDownTestSuite() {
    delete Theory;
    delete AC;
    Theory = nullptr;
    AC = nullptr;
  }
  static core::AutoCorres *AC;
  static ListTheory *Theory;
};

core::AutoCorres *ListLemmaTest::AC = nullptr;
ListTheory *ListLemmaTest::Theory = nullptr;

/// Axioms are stated with schematic variables (so the engines can
/// instantiate them); the evaluator wants frees.
TermRef varsToFrees(const TermRef &T) {
  switch (T->kind()) {
  case Term::Kind::Var:
    return Term::mkFree("sk_" + T->name(), T->type());
  case Term::Kind::App:
    return Term::mkApp(varsToFrees(T->fun()), varsToFrees(T->argTerm()));
  case Term::Kind::Lam:
    return Term::mkLam(T->name(), T->type(), varsToFrees(T->body()));
  default:
    return T;
  }
}

TEST_P(ListLemmaTest, AxiomSurvivesCountermodelSearch) {
  if (GetParam() >= Theory->Lemmas.size())
    GTEST_SKIP() << "theory has " << Theory->Lemmas.size() << " lemmas";
  const Thm &L = Theory->Lemmas[GetParam()];
  SCOPED_TRACE(L.str());
  EXPECT_FALSE(
      AutoProver::refute(varsToFrees(L.prop()), AC->ctx(), 400, 11))
      << "countermodel found for " << L.str();
}

INSTANTIATE_TEST_SUITE_P(AllLemmas, ListLemmaTest,
                         ::testing::Range<size_t>(0, 12));

TEST_F(ListLemmaTest, TheoryHasExpectedShape) {
  EXPECT_GE(Theory->Lemmas.size(), 6u);
  EXPECT_EQ(Theory->RecName, "node_C");
  EXPECT_TRUE(Theory->NodeTy->isCon("record:node_C"));
}

TEST_F(ListLemmaTest, MutatedStepLemmaIsRefuted) {
  // Negative control: an unsound variant of the step lemma — extend the
  // chain through p's next-field without requiring p to be a valid
  // non-NULL node — must be killed by the same countermodel search that
  // the real axioms survive (Table 2's methodology).
  TermRef V = Term::mkFree("v", funTy(Theory->PtrTy, boolTy()));
  TermRef H = Term::mkFree("h", funTy(Theory->PtrTy, Theory->NodeTy));
  TermRef P = Term::mkFree("p", Theory->PtrTy);
  TermRef Ps = Term::mkFree("ps", Theory->listTy());
  TermRef Node = Term::mkApp(H, P);
  TermRef Next = mkFieldGet(Theory->RecName, Theory->NextField,
                            Theory->PtrTy, Theory->NodeTy, Node);
  TermRef ConsC = Term::mkConst(
      names::Cons,
      funTy(Theory->PtrTy, funTy(Theory->listTy(), Theory->listTy())));
  TermRef Bad = mkImp(Theory->list(V, H, Next, Ps),
                      Theory->list(V, H, P, mkApps(ConsC, {P, Ps})));
  EXPECT_TRUE(AutoProver::refute(Bad, AC->ctx(), 3000, 7));
}

//===----------------------------------------------------------------------===//
// Fig 8 sources: every benchmark program in the paper's appendix
// translates, and the pipeline theorem's trusted base is exactly the
// documented oracle/axiom set.
//===----------------------------------------------------------------------===//

struct NamedSource {
  const char *Name;
  const char *(*Source)();
};

class Fig8Test : public ::testing::TestWithParam<NamedSource> {};

TEST_P(Fig8Test, TranslatesWithAuditableTrustedBase) {
  auto AC = runAC(GetParam().Source());
  ASSERT_TRUE(AC);
  ASSERT_FALSE(AC->order().empty());
  static const std::set<std::string> KnownOracles = {
      "monadic_conversion", "local_var_lifting", "function_definition",
      "heap_abs_call",      "word_abs_call",     "refinement_composition",
      "ground_eval",        "auto"};
  for (const std::string &Fn : AC->order()) {
    const core::FuncOutput *F = AC->func(Fn);
    ASSERT_NE(F, nullptr);
    EXPECT_TRUE(F->Pipeline.isValid()) << Fn;
    std::set<std::string> Axioms, Oracles;
    collectLeaves(F->Pipeline, Axioms, Oracles);
    for (const std::string &O : Oracles)
      EXPECT_TRUE(KnownOracles.count(O))
          << "undocumented oracle " << O << " in " << Fn;
    for (const std::string &A : Axioms) {
      std::string Fam = A.substr(0, A.find('.'));
      EXPECT_TRUE(Fam == "HL" || Fam == "WA" || Fam == "List" ||
                  Fam == "Word")
          << "undocumented axiom family " << A << " in " << Fn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPrograms, Fig8Test,
    ::testing::Values(NamedSource{"max", corpus::maxSource},
                      NamedSource{"gcd", corpus::gcdSource},
                      NamedSource{"swap", corpus::swapSource},
                      NamedSource{"midpoint", corpus::midpointSource},
                      NamedSource{"bsearch", corpus::binarySearchSource},
                      NamedSource{"suzuki", corpus::suzukiSource},
                      NamedSource{"memset", corpus::memsetSource},
                      NamedSource{"reverse", corpus::reverseSource},
                      NamedSource{"schorr_waite",
                                  corpus::schorrWaiteSource}),
    [](const ::testing::TestParamInfo<NamedSource> &I) {
      return I.param.Name;
    });

//===----------------------------------------------------------------------===//
// Synthetic Table 5 corpora.
//===----------------------------------------------------------------------===//

TEST(Synthetic, GeneratorIsDeterministic) {
  corpus::SyntheticSpec Spec = corpus::echronosScale();
  EXPECT_EQ(corpus::generateSyntheticProgram(Spec),
            corpus::generateSyntheticProgram(Spec));
  Spec.Seed += 1;
  EXPECT_NE(corpus::generateSyntheticProgram(Spec),
            corpus::generateSyntheticProgram(corpus::echronosScale()));
}

TEST(Synthetic, ScalePresetsMatchTable5Rows) {
  // LoC within ~15% of the paper's rows.
  struct Row {
    corpus::SyntheticSpec Spec;
    unsigned LoC;
  };
  const Row Rows[] = {{corpus::sel4Scale(), 10121},
                      {corpus::capdlScale(), 2079},
                      {corpus::piccoloScale(), 936},
                      {corpus::echronosScale(), 563}};
  for (const Row &R : Rows) {
    std::string Src = corpus::generateSyntheticProgram(R.Spec);
    unsigned Lines = 1;
    for (char C : Src)
      Lines += C == '\n';
    EXPECT_NEAR(double(Lines), double(R.LoC), 0.15 * R.LoC) << R.Spec.Name;
  }
}

TEST(Synthetic, EchronosScaleCorpusTranslates) {
  std::string Src =
      corpus::generateSyntheticProgram(corpus::echronosScale());
  auto AC = runAC(Src);
  ASSERT_TRUE(AC);
  EXPECT_GE(AC->order().size(), 40u);
  // Table 5's message: the abstract specs are smaller than the parser
  // output at corpus scale.
  const core::ACStats &S = AC->stats();
  EXPECT_LT(S.ACSpecLines, S.ParserSpecLines);
}

/// rx image of a concrete runtime value under the Sec 3 abstraction.
monad::Value rxOf(const monad::Value &V, const TypeRef &CTy) {
  if (isWordTy(CTy))
    return monad::Value::num(V.N, natTy());
  if (isSwordTy(CTy))
    return monad::Value::num(V.N, intTy());
  return V;
}

/// One end-to-end differential trial: the *final* abstract spec of \p Fn
/// (through heap lifting and word abstraction) against the Simpl
/// operational semantics at the very bottom of the refinement chain.
Diff checkEndToEndOnce(core::AutoCorres &AC, const std::string &Fn,
                       Rng &R) {
  const simpl::SimplProgram &Prog = AC.program();
  const simpl::SimplFunc *F = Prog.function(Fn);
  const core::FuncOutput *Out = AC.func(Fn);
  monad::InterpCtx &Ctx = AC.ctx();

  TestWorld W = buildWorld(Prog, Ctx, R);
  std::vector<monad::Value> Args, AbsArgs;
  for (const auto &[Name, Ty] : F->Params) {
    monad::Value V = randomValue(Ty, W, R, Ctx);
    AbsArgs.push_back(Out->WordAbstracted ? rxOf(V, Ty) : V);
    Args.push_back(std::move(V));
  }
  monad::Value Globals = randomGlobals(Prog, W, R, Ctx);

  Ctx.reset();
  monad::SimplOutcome SO =
      monad::runSimplFunction(*F, Args, Globals, Ctx);
  if (SO.K == monad::SimplOutcome::Kind::Stuck)
    return Diff::Skip;

  Ctx.reset();
  monad::Value Fun = monad::evalClosed(Ctx.FunDefs.at(Out->finalKey()), Ctx);
  for (const monad::Value &A : AbsArgs)
    Fun = Fun.Fun(A);
  monad::Value State =
      Out->HeapLifted ? Ctx.LiftGlobalHeap(Globals, Ctx) : Globals;
  monad::MonadResult MR = monad::runMonad(Fun, State, Ctx);
  if (Ctx.OutOfFuel)
    return Diff::Skip;

  // ac_corres direction: when the abstract program does not fail, the
  // concrete one neither faults nor diverges and the results correspond.
  if (MR.Failed)
    return Diff::Ok;
  if (SO.K == monad::SimplOutcome::Kind::Fault)
    return Diff::Mismatch;
  if (MR.Results.size() != 1 || MR.Results[0].IsExn)
    return Diff::Mismatch;
  if (F->RetTy) {
    monad::Value CRet = SO.State.Rec->at(simpl::retVarName());
    monad::Value Want = Out->WordAbstracted ? rxOf(CRet, F->RetTy) : CRet;
    if (!monad::Value::equal(Want, MR.Results[0].V))
      return Diff::Mismatch;
  }
  return Diff::Ok;
}

TEST(Synthetic, SampledFunctionsAgreeWithSimplSemantics) {
  corpus::SyntheticSpec Spec = corpus::echronosScale();
  Spec.TargetFunctions = 12;
  Spec.Seed = 77;
  Spec.Name = "sample";
  std::string Src = corpus::generateSyntheticProgram(Spec);
  auto AC = runAC(Src);
  ASSERT_TRUE(AC);
  for (const std::string &Fn : AC->order()) {
    SCOPED_TRACE(Fn);
    EXPECT_TRUE(runTrials(
        20, std::hash<std::string>()(Fn),
        [&](Rng &R) { return checkEndToEndOnce(*AC, Fn, R); }));
  }
}

//===----------------------------------------------------------------------===//
// Undefined-behaviour guards, end to end: the abstract spec must fail
// exactly where C's semantics gives out (Sec 3.1's "unavoidable" guards),
// and must NOT guard defined wrap-around.
//===----------------------------------------------------------------------===//

/// Runs the final abstract spec of \p Fn on the given abstract argument
/// values over an empty-heap state; returns the failure flag and result.
monad::MonadResult runAbstract(core::AutoCorres &AC, const std::string &Fn,
                               const std::vector<monad::Value> &Args) {
  monad::InterpCtx &Ctx = AC.ctx();
  const core::FuncOutput *F = AC.func(Fn);
  TestWorld W;
  Rng R(1);
  monad::Value Globals = randomGlobals(AC.program(), W, R, Ctx);
  monad::Value State =
      F->HeapLifted ? Ctx.LiftGlobalHeap(Globals, Ctx) : Globals;
  Ctx.reset();
  monad::Value Fun =
      monad::evalClosed(Ctx.FunDefs.at(F->finalKey()), Ctx);
  for (const monad::Value &A : Args)
    Fun = Fun.Fun(A);
  return monad::runMonad(Fun, State, Ctx);
}

TEST(Guards, SignedOverflowGuardFails) {
  auto AC = runAC("int inc(int x) { return x + 1; }");
  ASSERT_TRUE(AC);
  ASSERT_TRUE(AC->func("inc")->WordAbstracted);
  // x = INT_MAX: C has undefined behaviour; the abstract spec must fail.
  monad::MonadResult Bad = runAbstract(
      *AC, "inc", {monad::Value::num(2147483647, intTy())});
  EXPECT_TRUE(Bad.Failed);
  // x = 41: defined; must succeed with the ideal result.
  monad::MonadResult Ok =
      runAbstract(*AC, "inc", {monad::Value::num(41, intTy())});
  ASSERT_FALSE(Ok.Failed);
  ASSERT_EQ(Ok.Results.size(), 1u);
  EXPECT_EQ((long long)Ok.Results[0].V.N, 42);
}

TEST(Guards, UnsignedOverflowGuardedUnderWA) {
  // Sec 3.1: abstraction to ideal ℕ guards unsigned additions (the
  // midpoint example's `l + r <= UINT_MAX`), even though C defines the
  // wrap — the guard is the price of ideal arithmetic.
  auto AC = runAC("unsigned inc(unsigned x) { return x + 1; }");
  ASSERT_TRUE(AC);
  ASSERT_TRUE(AC->func("inc")->WordAbstracted);
  monad::MonadResult R = runAbstract(
      *AC, "inc", {monad::Value::num(4294967295LL, natTy())});
  EXPECT_TRUE(R.Failed);
  monad::MonadResult Ok =
      runAbstract(*AC, "inc", {monad::Value::num(7, natTy())});
  ASSERT_FALSE(Ok.Failed);
  ASSERT_EQ(Ok.Results.size(), 1u);
  EXPECT_EQ((long long)Ok.Results[0].V.N, 8);
}

TEST(Guards, UnsignedWrapDefinedWithoutWA) {
  // Sec 3.2: code that *means* to wrap opts out of word abstraction and
  // keeps C's defined modular semantics.
  core::ACOptions Opts;
  Opts.NoWordAbs.insert("inc");
  auto AC = runAC("unsigned inc(unsigned x) { return x + 1; }", Opts);
  ASSERT_TRUE(AC);
  ASSERT_FALSE(AC->func("inc")->WordAbstracted);
  monad::MonadResult R = runAbstract(
      *AC, "inc", {monad::Value::num(4294967295LL, wordTy(32))});
  ASSERT_FALSE(R.Failed);
  ASSERT_EQ(R.Results.size(), 1u);
  EXPECT_EQ((long long)R.Results[0].V.N, 0);
}

TEST(Guards, DivisionByZeroGuardFails) {
  auto AC = runAC("unsigned div(unsigned a, unsigned b) "
                  "{ return a / b; }");
  ASSERT_TRUE(AC);
  monad::MonadResult Bad =
      runAbstract(*AC, "div", {monad::Value::num(6, natTy()),
                               monad::Value::num(0, natTy())});
  EXPECT_TRUE(Bad.Failed);
  monad::MonadResult Ok =
      runAbstract(*AC, "div", {monad::Value::num(6, natTy()),
                               monad::Value::num(3, natTy())});
  ASSERT_FALSE(Ok.Failed);
  ASSERT_EQ(Ok.Results.size(), 1u);
  EXPECT_EQ((long long)Ok.Results[0].V.N, 2);
}

TEST(Guards, IntMinDividedByMinusOneGuardFails) {
  auto AC = runAC("int div(int a, int b) { return a / b; }");
  ASSERT_TRUE(AC);
  monad::MonadResult Bad = runAbstract(
      *AC, "div", {monad::Value::num(-2147483648LL, intTy()),
                   monad::Value::num(-1, intTy())});
  EXPECT_TRUE(Bad.Failed);
  monad::MonadResult Ok = runAbstract(
      *AC, "div", {monad::Value::num(-12, intTy()),
                   monad::Value::num(-3, intTy())});
  ASSERT_FALSE(Ok.Failed);
  ASSERT_EQ(Ok.Results.size(), 1u);
  EXPECT_EQ((long long)Ok.Results[0].V.N, 4);
}

TEST(Guards, NullDereferenceGuardFails) {
  auto AC = runAC("unsigned get(unsigned *p) { return *p; }");
  ASSERT_TRUE(AC);
  monad::MonadResult Bad =
      runAbstract(*AC, "get", {monad::Value::ptr(0, "word32")});
  EXPECT_TRUE(Bad.Failed);
}

//===----------------------------------------------------------------------===//
// Operator/type sweep: every binary operator of the C subset, at several
// integer types, abstracted end-to-end and differentially validated
// against the Simpl semantics (guards included — division, shifts and
// signed overflow must fail on exactly the same inputs).
//===----------------------------------------------------------------------===//

struct OpCase {
  const char *TypeName; ///< C type spelling
  const char *TypeTag;  ///< for the gtest name
  const char *Op;
  const char *OpTag;
};

class BinOpTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(BinOpTest, AgreesWithSimplSemantics) {
  const OpCase &C = GetParam();
  std::string Src = std::string(C.TypeName) + " f(" + C.TypeName +
                    " a, " + C.TypeName + " b) { return a " + C.Op +
                    " b; }";
  auto AC = runAC(Src);
  ASSERT_TRUE(AC);
  EXPECT_TRUE(runTrials(40, std::hash<std::string>()(Src), [&](Rng &R) {
    return checkEndToEndOnce(*AC, "f", R);
  }));
}

INSTANTIATE_TEST_SUITE_P(
    Arith, BinOpTest,
    ::testing::Values(OpCase{"unsigned", "u32", "+", "add"},
                      OpCase{"unsigned", "u32", "-", "sub"},
                      OpCase{"unsigned", "u32", "*", "mul"},
                      OpCase{"unsigned", "u32", "/", "div"},
                      OpCase{"unsigned", "u32", "%", "mod"},
                      OpCase{"int", "s32", "+", "add"},
                      OpCase{"int", "s32", "-", "sub"},
                      OpCase{"int", "s32", "*", "mul"},
                      OpCase{"int", "s32", "/", "div"},
                      OpCase{"int", "s32", "%", "mod"},
                      // Sub-int widths exercise the C integer promotions
                      // (ucast to int, guard, cast back).
                      OpCase{"unsigned char", "u8", "+", "add"},
                      OpCase{"unsigned char", "u8", "*", "mul"},
                      OpCase{"unsigned char", "u8", "-", "sub"},
                      OpCase{"unsigned short", "u16", "+", "add"},
                      OpCase{"unsigned short", "u16", "/", "div"},
                      OpCase{"short", "s16", "+", "add"},
                      OpCase{"short", "s16", "*", "mul"}),
    [](const ::testing::TestParamInfo<OpCase> &I) {
      return std::string(I.param.TypeTag) + "_" + I.param.OpTag;
    });

INSTANTIATE_TEST_SUITE_P(
    Bitwise, BinOpTest,
    ::testing::Values(OpCase{"unsigned", "u32", "&", "and"},
                      OpCase{"unsigned", "u32", "|", "or"},
                      OpCase{"unsigned", "u32", "^", "xor"},
                      OpCase{"unsigned", "u32", "<<", "shl"},
                      OpCase{"unsigned", "u32", ">>", "shr"},
                      OpCase{"int", "s32", "&", "and"},
                      OpCase{"int", "s32", "^", "xor"},
                      OpCase{"int", "s32", ">>", "shr"}),
    [](const ::testing::TestParamInfo<OpCase> &I) {
      return std::string(I.param.TypeTag) + "_" + I.param.OpTag;
    });

struct CmpCase {
  const char *TypeName;
  const char *TypeTag;
  const char *Op;
  const char *OpTag;
};

class CmpOpTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(CmpOpTest, AgreesWithSimplSemantics) {
  const CmpCase &C = GetParam();
  // Comparisons yield int in C; exercise them through a branch so the
  // result also feeds control flow.
  std::string Src = std::string("unsigned f(") + C.TypeName + " a, " +
                    C.TypeName + " b) { if (a " + C.Op +
                    " b) return 1u; return 0u; }";
  auto AC = runAC(Src);
  ASSERT_TRUE(AC);
  EXPECT_TRUE(runTrials(40, std::hash<std::string>()(Src), [&](Rng &R) {
    return checkEndToEndOnce(*AC, "f", R);
  }));
}

INSTANTIATE_TEST_SUITE_P(
    AllCmps, CmpOpTest,
    ::testing::Values(CmpCase{"unsigned", "u32", "<", "lt"},
                      CmpCase{"unsigned", "u32", "<=", "le"},
                      CmpCase{"unsigned", "u32", ">", "gt"},
                      CmpCase{"unsigned", "u32", ">=", "ge"},
                      CmpCase{"unsigned", "u32", "==", "eq"},
                      CmpCase{"unsigned", "u32", "!=", "ne"},
                      CmpCase{"int", "s32", "<", "lt"},
                      CmpCase{"int", "s32", "<=", "le"},
                      CmpCase{"int", "s32", ">", "gt"},
                      CmpCase{"int", "s32", ">=", "ge"},
                      CmpCase{"int", "s32", "==", "eq"},
                      CmpCase{"int", "s32", "!=", "ne"}),
    [](const ::testing::TestParamInfo<CmpCase> &I) {
      return std::string(I.param.TypeTag) + "_" + I.param.OpTag;
    });

//===----------------------------------------------------------------------===//
// Control-flow shapes: every statement form of the subset, composed into
// small canonical programs and checked end-to-end.
//===----------------------------------------------------------------------===//

struct FlowCase {
  const char *Name;
  const char *Source;
};

class ControlFlowTest : public ::testing::TestWithParam<FlowCase> {};

TEST_P(ControlFlowTest, AgreesWithSimplSemantics) {
  auto AC = runAC(GetParam().Source);
  ASSERT_TRUE(AC);
  for (const std::string &Fn : AC->order()) {
    SCOPED_TRACE(Fn);
    EXPECT_TRUE(runTrials(
        30, std::hash<std::string>()(GetParam().Name),
        [&](Rng &R) { return checkEndToEndOnce(*AC, Fn, R); }));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ControlFlowTest,
    ::testing::Values(
        FlowCase{"while_break",
                 "unsigned f(unsigned n) {\n"
                 "  unsigned i = 0;\n"
                 "  n = n % 50u;\n"
                 "  while (1) {\n"
                 "    if (i >= n) break;\n"
                 "    i = i + 2;\n"
                 "  }\n"
                 "  return i;\n"
                 "}\n"},
        FlowCase{"while_continue",
                 "unsigned f(unsigned n) {\n"
                 "  unsigned i = 0; unsigned acc = 0;\n"
                 "  n = n % 50u;\n"
                 "  while (i < n) {\n"
                 "    i = i + 1;\n"
                 "    if (i % 2u == 0u) continue;\n"
                 "    acc = acc + 1;\n"
                 "  }\n"
                 "  return acc;\n"
                 "}\n"},
        FlowCase{"for_loop",
                 "unsigned f(unsigned n) {\n"
                 "  unsigned acc = 0;\n"
                 "  unsigned i;\n"
                 "  n = n % 50u;\n"
                 "  for (i = 0; i < n; i = i + 1)\n"
                 "    acc = acc + i;\n"
                 "  return acc;\n"
                 "}\n"},
        FlowCase{"do_while",
                 "unsigned f(unsigned n) {\n"
                 "  unsigned i = 0;\n"
                 "  n = n % 50u;\n"
                 "  do {\n"
                 "    i = i + 1;\n"
                 "  } while (i < n);\n"
                 "  return i;\n"
                 "}\n"},
        FlowCase{"nested_loops",
                 "unsigned f(unsigned n) {\n"
                 "  unsigned acc = 0; unsigned i = 0;\n"
                 "  n = n % 20u;\n"
                 "  while (i < n) {\n"
                 "    unsigned j = 0;\n"
                 "    while (j < i) {\n"
                 "      acc = acc + 1;\n"
                 "      j = j + 1;\n"
                 "    }\n"
                 "    i = i + 1;\n"
                 "  }\n"
                 "  return acc;\n"
                 "}\n"},
        FlowCase{"early_return_in_loop",
                 "unsigned f(unsigned n, unsigned k) {\n"
                 "  unsigned i = 0;\n"
                 "  n = n % 50u;\n"
                 "  while (i < n) {\n"
                 "    if (i == k) return i * 10u;\n"
                 "    i = i + 1;\n"
                 "  }\n"
                 "  return 0u;\n"
                 "}\n"},
        FlowCase{"else_if_chain",
                 "int f(int v) {\n"
                 "  if (v < -10) return -1;\n"
                 "  else if (v < 0) return -2;\n"
                 "  else if (v == 0) return 0;\n"
                 "  else if (v < 10) return 2;\n"
                 "  return 1;\n"
                 "}\n"},
        FlowCase{"global_state",
                 "unsigned hits = 0;\n"
                 "unsigned misses = 0;\n"
                 "unsigned f(unsigned x) {\n"
                 "  if (x % 3u == 0u) hits = hits + 1;\n"
                 "  else misses = misses + 1;\n"
                 "  return hits;\n"
                 "}\n"},
        FlowCase{"short_circuit",
                 "unsigned f(unsigned a, unsigned b) {\n"
                 "  if (a != 0u && 100u / a > b)\n"
                 "    return 1u;\n"
                 "  if (a == 0u || b / a == 0u)\n"
                 "    return 2u;\n"
                 "  return 3u;\n"
                 "}\n"},
        FlowCase{"struct_chain",
                 "struct pt { int x; int y; };\n"
                 "struct box { struct pt *lo; struct pt *hi; };\n"
                 "int f(struct box *b) {\n"
                 "  if (b == NULL || b->lo == NULL || b->hi == NULL)\n"
                 "    return 0;\n"
                 "  return (b->hi->x - b->lo->x) + (b->hi->y - b->lo->y);\n"
                 "}\n"},
        FlowCase{"ternary_via_if",
                 "unsigned f(unsigned a, unsigned b) {\n"
                 "  unsigned m;\n"
                 "  if (a < b) m = b; else m = a;\n"
                 "  return m - (a < b ? a : b);\n"
                 "}\n"},
        FlowCase{"call_chain",
                 "unsigned sq(unsigned x) { return x * x; }\n"
                 "unsigned cube(unsigned x) { return sq(x) * x; }\n"
                 "unsigned f(unsigned x) { return cube(x) + sq(x); }\n"}),
    [](const ::testing::TestParamInfo<FlowCase> &I) {
      return I.param.Name;
    });

class UnaryOpTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(UnaryOpTest, AgreesWithSimplSemantics) {
  const OpCase &C = GetParam();
  std::string Src = std::string(C.TypeName) + " f(" + C.TypeName +
                    " a) { return " + C.Op + "a; }";
  auto AC = runAC(Src);
  ASSERT_TRUE(AC);
  EXPECT_TRUE(runTrials(40, std::hash<std::string>()(Src), [&](Rng &R) {
    return checkEndToEndOnce(*AC, "f", R);
  }));
}

INSTANTIATE_TEST_SUITE_P(
    AllUnary, UnaryOpTest,
    ::testing::Values(OpCase{"unsigned", "u32", "-", "neg"},
                      OpCase{"unsigned", "u32", "~", "not"},
                      OpCase{"int", "s32", "-", "neg"},
                      OpCase{"int", "s32", "~", "not"}),
    [](const ::testing::TestParamInfo<OpCase> &I) {
      return std::string(I.param.TypeTag) + "_" + I.param.OpTag;
    });

//===----------------------------------------------------------------------===//
// Sec 4.6: exec_concrete semantics — run a byte-level (type-unsafe)
// function from a lifted state and observe the effect on the typed heap.
//===----------------------------------------------------------------------===//

/// Runs the byte-level my_memset over a fresh heap holding one typed
/// word32 object at \p Addr, then re-lifts and returns the lifted state.
monad::Value memsetAndLift(core::AutoCorres &AC, uint32_t Addr,
                           unsigned Count) {
  monad::InterpCtx &Ctx = AC.ctx();
  auto H = std::make_shared<monad::HeapVal>();
  Ctx.encode(*H, Addr, monad::Value::num(0xdeadbeef, wordTy(32)),
             wordTy(32));
  Ctx.retype(*H, Addr, wordTy(32));
  std::map<std::string, monad::Value> GF;
  GF.emplace(simpl::heapFieldName(), monad::Value::heap(H));
  monad::Value G =
      monad::Value::record(simpl::globalsRecName(), std::move(GF));

  // The low-level run (the role of exec_concrete).
  Ctx.reset();
  monad::Value Fun =
      monad::evalClosed(Ctx.FunDefs.at("l2:my_memset"), Ctx);
  Fun = Fun.Fun(monad::Value::ptr(Addr, "sword8"));
  Fun = Fun.Fun(monad::Value::num(0, swordTy(8)));
  Fun = Fun.Fun(monad::Value::num(Count, wordTy(32)));
  monad::MonadResult MR = monad::runMonad(Fun, G, Ctx);
  EXPECT_FALSE(MR.Failed);
  EXPECT_EQ(MR.Results.size(), 1u);
  return Ctx.LiftGlobalHeap(MR.Results[0].State, Ctx);
}

TEST(ExecConcrete, MemsetUpdatesTypedHeap) {
  // read_word forces word32 into the program's heap types so the lifted
  // state has a heap_w32 field to observe.
  auto AC = runAC(std::string(corpus::memsetSource()) +
                  "unsigned read_word(unsigned *p) { return *p; }\n");
  ASSERT_TRUE(AC);
  // The paper's triple: {is_valid p} memset' p 0 4 {is_valid p, s[p]=0}.
  monad::Value Lifted = memsetAndLift(*AC, 0x100, 4);
  monad::Value P = monad::Value::ptr(0x100, "word32");
  EXPECT_TRUE(Lifted.Rec->at("is_valid_w32").Fun(P).B);
  EXPECT_EQ((long long)Lifted.Rec->at("heap_w32").Fun(P).N, 0);
}

TEST(ExecConcrete, PartialMemsetStillTypedAndObservable) {
  // Clearing only the low half of the word: the object stays typed and
  // the lift shows exactly the bytes written (little-endian ILP32).
  auto AC = runAC(std::string(corpus::memsetSource()) +
                  "unsigned read_word(unsigned *p) { return *p; }\n");
  ASSERT_TRUE(AC);
  monad::Value Lifted = memsetAndLift(*AC, 0x200, 2);
  monad::Value P = monad::Value::ptr(0x200, "word32");
  EXPECT_TRUE(Lifted.Rec->at("is_valid_w32").Fun(P).B);
  EXPECT_EQ((unsigned long long)Lifted.Rec->at("heap_w32").Fun(P).N,
            0xdead0000ULL);
}

//===----------------------------------------------------------------------===//
// Cross-boundary word-abstraction coercion (Sec 3.2): an abstracted
// caller of a machine-word callee must still agree with the Simpl
// semantics.
//===----------------------------------------------------------------------===//

TEST(Boundary, AbstractedCallerOfMachineWordCallee) {
  const char *Src = "unsigned mask(unsigned x) { return x & 0xffu; }\n"
                    "unsigned twice_masked(unsigned x) {\n"
                    "  return mask(x) + mask(x + 1);\n"
                    "}\n";
  core::ACOptions Opts;
  Opts.NoWordAbs.insert("mask");
  auto AC = runAC(Src, Opts);
  ASSERT_TRUE(AC);
  EXPECT_FALSE(AC->func("mask")->WordAbstracted);
  EXPECT_TRUE(AC->func("twice_masked")->WordAbstracted);
  for (const std::string &Fn : AC->order()) {
    SCOPED_TRACE(Fn);
    EXPECT_TRUE(runTrials(
        25, 99 + std::hash<std::string>()(Fn),
        [&](Rng &R) { return checkEndToEndOnce(*AC, Fn, R); }));
  }
}

TEST(Boundary, ByteLevelCalleeUnderLiftedCaller) {
  // Sec 4.6 analogue at scale: the caller is heap-lifted and
  // word-abstracted, the callee stays fully concrete.
  const char *Src =
      "unsigned load(unsigned *p) { return *p; }\n"
      "unsigned sum2(unsigned *p, unsigned *q) {\n"
      "  return load(p) + load(q);\n"
      "}\n";
  core::ACOptions Opts;
  Opts.NoWordAbs.insert("load");
  auto AC = runAC(Src, Opts);
  ASSERT_TRUE(AC);
  for (const std::string &Fn : AC->order()) {
    SCOPED_TRACE(Fn);
    EXPECT_TRUE(runTrials(
        25, 7 + std::hash<std::string>()(Fn),
        [&](Rng &R) { return checkEndToEndOnce(*AC, Fn, R); }));
  }
}

TEST(Synthetic, PaperProgramsAgreeWithSimplSemantics) {
  // The same end-to-end differential over the Fig 8 programs that have
  // word/pointer signatures.
  for (const char *Src :
       {corpus::maxSource(), corpus::gcdSource(), corpus::swapSource(),
        corpus::midpointSource(), corpus::suzukiSource(),
        corpus::reverseSource()}) {
    auto AC = runAC(Src);
    ASSERT_TRUE(AC);
    for (const std::string &Fn : AC->order()) {
      SCOPED_TRACE(Fn);
      EXPECT_TRUE(runTrials(
          25, 1234 + std::hash<std::string>()(Fn),
          [&](Rng &R) { return checkEndToEndOnce(*AC, Fn, R); }));
    }
  }
}

} // namespace
