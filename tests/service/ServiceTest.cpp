//===- ServiceTest.cpp - The acd verification service -----------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the verification daemon (service/Server.h) and its
/// client: wire framing over a socketpair, byte-identity of daemon-served
/// specs against in-process runs (including under concurrent clients and
/// across a drain/restart cycle on a shared cache directory),
/// backpressure on a full admission queue, request cancellation when the
/// client hangs up, and the stats surface that proves no session leaks.
///
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "service/CheckRunner.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Log.h"
#include "support/Socket.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ac;
using namespace ac::service;
using ac::support::Json;
using ac::support::Socket;

namespace {

//===----------------------------------------------------------------------===//
// Wire framing and protocol encode/decode (no server involved)
//===----------------------------------------------------------------------===//

TEST(WireFraming, FramesRoundTripOverASocketPair) {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  ASSERT_TRUE(A.sendFrame("hello"));
  ASSERT_TRUE(A.sendFrame("")); // empty payloads are legal
  std::string P1, P2;
  ASSERT_TRUE(B.recvFrame(P1));
  ASSERT_TRUE(B.recvFrame(P2));
  EXPECT_EQ(P1, "hello");
  EXPECT_EQ(P2, "");
}

TEST(WireFraming, BinaryPayloadSurvives) {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  std::string Payload;
  for (int I = 0; I != 1000; ++I)
    Payload.push_back(static_cast<char>(I % 256));
  ASSERT_TRUE(A.sendFrame(Payload));
  std::string Back;
  ASSERT_TRUE(B.recvFrame(Back));
  EXPECT_EQ(Back, Payload);
}

TEST(WireFraming, OversizedLengthPrefixIsRejected) {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  // A corrupt 4-byte prefix claiming ~4 GiB must not allocate; the
  // receiver drops the connection instead.
  unsigned char Hdr[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(A.writeAll(Hdr, 4));
  std::string P;
  EXPECT_FALSE(B.recvFrame(P));
}

TEST(WireFraming, EofMidFrameIsAnError) {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  unsigned char Hdr[4] = {0, 0, 0, 100}; // promises 100 bytes
  ASSERT_TRUE(A.writeAll(Hdr, 4));
  ASSERT_TRUE(A.writeAll("short", 5));
  A.close();
  std::string P;
  EXPECT_FALSE(B.recvFrame(P));
}

TEST(WireFraming, PeerClosedDetection) {
  Socket A, B;
  ASSERT_TRUE(support::socketPair(A, B));
  EXPECT_FALSE(B.peerClosed());
  A.close();
  EXPECT_TRUE(B.peerClosed());
}

TEST(Protocol, CheckRequestRoundTrips) {
  CheckRequest Req;
  Req.Source = "int f(void) { return 1; }\n";
  Req.NoHeapAbs = {"f", "g"};
  Req.NoWordAbs = {"h"};
  Req.Jobs = 4;
  Req.CacheDir = "/tmp/cache";
  Req.WantSpecs = true;
  Req.TimeoutMs = 2500;
  Req.Prio = Priority::Bulk;
  Req.Tenant = "ci-tenant";
  CheckRequest Back;
  std::string Err;
  ASSERT_TRUE(CheckRequest::fromJson(Req.toJson(), Back, Err)) << Err;
  EXPECT_EQ(Back.Source, Req.Source);
  EXPECT_EQ(Back.NoHeapAbs, Req.NoHeapAbs);
  EXPECT_EQ(Back.NoWordAbs, Req.NoWordAbs);
  EXPECT_EQ(Back.Jobs, 4u);
  EXPECT_EQ(Back.CacheDir, "/tmp/cache");
  EXPECT_TRUE(Back.WantSpecs);
  EXPECT_EQ(Back.TimeoutMs, 2500u);
  EXPECT_EQ(Back.Prio, Priority::Bulk);
  EXPECT_EQ(Back.Tenant, "ci-tenant");
}

TEST(Protocol, PriorityWireEncodingIsSparse) {
  // The default class and the empty tenant stay off the wire so the
  // pre-overload frame bytes are unchanged.
  CheckRequest Req;
  Req.Source = "int f(void) { return 1; }\n";
  std::string Wire = Req.toJson().dump();
  EXPECT_EQ(Wire.find("priority"), std::string::npos);
  EXPECT_EQ(Wire.find("tenant"), std::string::npos);

  CheckRequest Back;
  std::string Err;
  ASSERT_TRUE(CheckRequest::fromJson(Req.toJson(), Back, Err)) << Err;
  EXPECT_EQ(Back.Prio, Priority::Interactive);
  EXPECT_TRUE(Back.Tenant.empty());
}

TEST(Protocol, UnknownPriorityIsRejected) {
  CheckRequest Req;
  Req.Source = "int f(void) { return 1; }\n";
  Json J = Req.toJson();
  J.set("priority", "urgent");
  CheckRequest Back;
  std::string Err;
  EXPECT_FALSE(CheckRequest::fromJson(J, Back, Err));
  EXPECT_NE(Err.find("priority"), std::string::npos) << Err;
}

TEST(Protocol, ErrorEnvelopeRoundTrips) {
  CheckResponse R =
      CheckResponse::error(ErrorCode::Busy, "admission queue full", 75);
  CheckResponse Back;
  std::string Err;
  ASSERT_TRUE(CheckResponse::fromJson(R.toJson(), Back, Err)) << Err;
  EXPECT_FALSE(Back.Ok);
  EXPECT_EQ(Back.Err, ErrorCode::Busy);
  EXPECT_EQ(Back.Message, "admission queue full");
  EXPECT_EQ(Back.RetryAfterMs, 75u);
}

TEST(Protocol, ErrorCodeNamesRoundTrip) {
  for (ErrorCode E :
       {ErrorCode::None, ErrorCode::Busy, ErrorCode::Draining,
        ErrorCode::BadRequest, ErrorCode::ParseError, ErrorCode::Internal,
        ErrorCode::DeadlineExceeded, ErrorCode::Shed})
    EXPECT_EQ(errorCodeFromName(errorCodeName(E)), E);
}

//===----------------------------------------------------------------------===//
// checkRetry backoff determinism
//===----------------------------------------------------------------------===//

TEST(Backoff, UnditheredScheduleIsExact) {
  // Doubling from the daemon's hint, capped at 2 s per sleep.
  EXPECT_EQ(retryBackoffMs(0, 50), 50u);
  EXPECT_EQ(retryBackoffMs(1, 50), 100u);
  EXPECT_EQ(retryBackoffMs(2, 50), 200u);
  EXPECT_EQ(retryBackoffMs(3, 50), 400u);
  EXPECT_EQ(retryBackoffMs(4, 50), 800u);
  EXPECT_EQ(retryBackoffMs(5, 50), 1600u);
  EXPECT_EQ(retryBackoffMs(6, 50), 2000u);
  EXPECT_EQ(retryBackoffMs(100, 50), 2000u) << "the shift must saturate, "
                                               "not overflow";
  // A daemon that sent no hint backs off from 10 ms.
  EXPECT_EQ(retryBackoffMs(0, 0), 10u);
  EXPECT_EQ(retryBackoffMs(7, 0), 1280u);
  EXPECT_EQ(retryBackoffMs(8, 0), 2000u);
}

TEST(Backoff, SeededSleepSequenceIsPinned) {
  // One seed, one thread: the whole jittered sleep sequence replays
  // exactly — the repeatability AC_RETRY_SEED exists for.
  ::setenv("AC_RETRY_SEED", "1234", 1);
  std::minstd_rand A = retryRng();
  std::minstd_rand B = retryRng();
  std::vector<uint64_t> SeqA, SeqB;
  for (unsigned I = 0; I != 12; ++I) {
    SeqA.push_back(retryDelayMs(I, 50, A));
    SeqB.push_back(retryDelayMs(I, 50, B));
  }
  EXPECT_EQ(SeqA, SeqB) << "same seed, same thread: the sleep sequence "
                           "must replay exactly";

  // Every jittered sleep stays within ±25% of the exact schedule.
  for (unsigned I = 0; I != 12; ++I) {
    double Exact = static_cast<double>(retryBackoffMs(I, 50));
    EXPECT_GE(static_cast<double>(SeqA[I]), 0.75 * Exact - 1) << I;
    EXPECT_LE(static_cast<double>(SeqA[I]), 1.25 * Exact + 1) << I;
  }

  // A different seed must move the jitter stream.
  ::setenv("AC_RETRY_SEED", "5678", 1);
  std::minstd_rand C = retryRng();
  std::vector<uint64_t> SeqC;
  for (unsigned I = 0; I != 12; ++I)
    SeqC.push_back(retryDelayMs(I, 50, C));
  EXPECT_NE(SeqA, SeqC);
  ::unsetenv("AC_RETRY_SEED");
}

//===----------------------------------------------------------------------===//
// Live-server fixture
//===----------------------------------------------------------------------===//

/// What an in-process run produces for one source — the oracle daemon
/// responses are compared against, field by field, byte for byte.
struct RefRun {
  bool Ok = false;
  std::vector<std::string> Names, FinalKeys, Renders, Pipelines, Diags;
};

RefRun inProcessRun(const std::string &Src) {
  RefRun R;
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Src, Diags);
  for (const Diagnostic &D : Diags.diagnostics())
    R.Diags.push_back(D.str());
  if (!AC)
    return R;
  R.Ok = true;
  for (const std::string &Name : AC->order()) {
    const core::FuncOutput *F = AC->func(Name);
    R.Names.push_back(Name);
    R.FinalKeys.push_back(F->finalKey());
    R.Renders.push_back(AC->render(Name));
    R.Pipelines.push_back(F->pipelineProp());
  }
  return R;
}

void expectMatchesRef(const CheckResponse &Resp, const RefRun &Ref,
                      const std::string &What) {
  ASSERT_TRUE(Resp.Ok) << What << ": " << Resp.Message;
  ASSERT_EQ(Resp.Functions.size(), Ref.Names.size()) << What;
  for (size_t I = 0; I != Ref.Names.size(); ++I) {
    EXPECT_EQ(Resp.Functions[I].Name, Ref.Names[I]) << What;
    EXPECT_EQ(Resp.Functions[I].FinalKey, Ref.FinalKeys[I]) << What;
    EXPECT_EQ(Resp.Functions[I].Render, Ref.Renders[I])
        << What << ": daemon-served spec diverged for " << Ref.Names[I];
    EXPECT_EQ(Resp.Functions[I].Pipeline, Ref.Pipelines[I])
        << What << ": composed theorem diverged for " << Ref.Names[I];
  }
  EXPECT_EQ(Resp.Diagnostics, Ref.Diags) << What;
}

class ServiceTest : public ::testing::Test {
protected:
  void SetUp() override {
    ::unsetenv("AC_CACHE");
    ::unsetenv("AC_CACHE_DIR");
    ::unsetenv("AC_JOBS");
    const char *Name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Root = ::testing::TempDir() + "ac-service-" + Name;
    std::filesystem::remove_all(Root);
    std::filesystem::create_directories(Root);
    SockPath = Root + "/acd.sock";
  }
  void TearDown() override { std::filesystem::remove_all(Root); }

  ServerOptions baseOpts() {
    ServerOptions O;
    O.SocketPath = SockPath;
    O.Workers = 2;
    O.QueueCapacity = 4;
    return O;
  }

  /// Polls the daemon's stats endpoint until \p Pred holds.
  bool waitStats(const std::function<bool(const Json &)> &Pred,
                 int TimeoutMs = 5000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    while (std::chrono::steady_clock::now() < Deadline) {
      Client C = Client::connect(SockPath);
      Json J;
      std::string Err;
      if (C.connected() && C.stats(J, Err) && Pred(J))
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  std::string Root, SockPath;
};

/// The daemon flushes per-request trace files after delivering the
/// response, so a client that just got its answer may still be a few
/// microseconds ahead of the file.
bool waitForFile(const std::string &Path, int TimeoutMs = 5000) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (std::filesystem::exists(Path))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

} // namespace

TEST_F(ServiceTest, PingAndStats) {
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());
  std::string Err;
  EXPECT_TRUE(C.ping(Err)) << Err;
  Json St;
  ASSERT_TRUE(C.stats(St, Err)) << Err;
  EXPECT_TRUE(St.get("ok").asBool());
  EXPECT_FALSE(St.get("draining").asBool(true));
  EXPECT_EQ(St.get("workers").asInt(), 2);
  EXPECT_EQ(St.get("queue_capacity").asInt(), 4);
  EXPECT_EQ(St.get("requests").get("received").asInt(), 0);
  Srv.stop();
}

TEST_F(ServiceTest, ServedSpecsAreByteIdenticalToInProcessRuns) {
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());
  const char *Sources[] = {corpus::maxSource(), corpus::swapSource(),
                           corpus::reverseSource(),
                           corpus::suzukiSource()};
  for (const char *Src : Sources) {
    RefRun Ref = inProcessRun(Src);
    CheckRequest Req;
    Req.Source = Src;
    CheckResponse Resp;
    std::string Err;
    ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
    expectMatchesRef(Resp, Ref, "single client");
  }
  // Same connection, warm tier: second serving is identical too.
  RefRun Ref = inProcessRun(corpus::maxSource());
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  expectMatchesRef(Resp, Ref, "warm re-check");
  EXPECT_GT(Resp.CacheHits, 0u) << "in-memory tier did not warm up";
  Srv.stop();
}

TEST_F(ServiceTest, ConcurrentClientsEachGetExactResults) {
  // Different programs in flight at once exercise run()'s reentrancy
  // (shared intern tables, axiom inventory, lifted-globals axioms with
  // program-dependent names); every client must still get byte-exact
  // output for its own program.
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());

  const char *Sources[] = {corpus::maxSource(),      corpus::gcdSource(),
                           corpus::swapSource(),     corpus::midpointSource(),
                           corpus::reverseSource(),  corpus::suzukiSource()};
  constexpr size_t N = sizeof(Sources) / sizeof(Sources[0]);
  std::vector<RefRun> Refs(N);
  for (size_t I = 0; I != N; ++I)
    Refs[I] = inProcessRun(Sources[I]);

  std::atomic<int> Failures{0};
  std::vector<std::thread> Ts;
  for (size_t I = 0; I != N; ++I)
    Ts.emplace_back([&, I] {
      for (int Round = 0; Round != 3; ++Round) {
        Client C = Client::connect(SockPath);
        CheckRequest Req;
        Req.Source = Sources[I];
        CheckResponse Resp;
        std::string Err;
        if (!C.connected() || !C.checkRetry(Req, Resp, Err) || !Resp.Ok) {
          Failures.fetch_add(1);
          return;
        }
        if (Resp.Functions.size() != Refs[I].Names.size()) {
          Failures.fetch_add(1);
          return;
        }
        for (size_t F = 0; F != Refs[I].Names.size(); ++F)
          if (Resp.Functions[F].Render != Refs[I].Renders[F] ||
              Resp.Functions[F].Pipeline != Refs[I].Pipelines[F] ||
              Resp.Functions[F].FinalKey != Refs[I].FinalKeys[F])
            Failures.fetch_add(1);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  // Every admitted request is accounted for, nothing leaks.
  EXPECT_TRUE(waitStats([](const Json &St) {
    return St.get("in_flight").asInt() == 0 &&
           St.get("queue_depth").asInt() == 0;
  }));
  ServiceMetrics &M = Srv.metrics();
  EXPECT_EQ(M.Received.load(), M.Completed.load());
  EXPECT_EQ(M.Failed.load(), 0u);
  EXPECT_EQ(M.Cancelled.load(), 0u);
  Srv.stop();
}

TEST_F(ServiceTest, FullQueueGetsBusyWithRetryHint) {
  ServerOptions O = baseOpts();
  O.Workers = 1;
  O.QueueCapacity = 1;
  O.RetryAfterMs = 25;
  Server Srv(O);
  ASSERT_TRUE(Srv.start());

  CheckRequest Slow;
  Slow.Source = corpus::maxSource();
  Slow.DebugDelayMs = 400;

  // A occupies the single worker...
  Client A = Client::connect(SockPath);
  std::thread TA([&] {
    CheckResponse R;
    std::string E;
    A.check(Slow, R, E);
  });
  ASSERT_TRUE(waitStats(
      [](const Json &St) { return St.get("in_flight").asInt() == 1; }));

  // ...B fills the one queue slot...
  Client B = Client::connect(SockPath);
  std::thread TB([&] {
    CheckResponse R;
    std::string E;
    B.check(Slow, R, E);
  });
  ASSERT_TRUE(waitStats(
      [](const Json &St) { return St.get("queue_depth").asInt() == 1; }));

  // ...so C must be rejected immediately with the retry hint.
  Client C = Client::connect(SockPath);
  CheckRequest Quick;
  Quick.Source = corpus::maxSource();
  CheckResponse R;
  std::string Err;
  ASSERT_TRUE(C.check(Quick, R, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, ErrorCode::Busy);
  EXPECT_EQ(R.RetryAfterMs, 25u);
  EXPECT_GE(Srv.metrics().Rejected.load(), 1u);

  // Obeying the backpressure signal eventually gets through.
  CheckResponse R2;
  ASSERT_TRUE(C.checkRetry(Quick, R2, Err)) << Err;
  EXPECT_TRUE(R2.Ok) << R2.Message;

  TA.join();
  TB.join();
  Srv.stop();
}

TEST_F(ServiceTest, DisconnectedClientsRequestIsCancelledNotLeaked) {
  ServerOptions O = baseOpts();
  O.Workers = 1;
  Server Srv(O);
  ASSERT_TRUE(Srv.start());

  // Keep the single worker busy so the victim's request has to queue.
  CheckRequest Slow;
  Slow.Source = corpus::maxSource();
  Slow.DebugDelayMs = 300;
  Client A = Client::connect(SockPath);
  std::thread TA([&] {
    CheckResponse R;
    std::string E;
    A.check(Slow, R, E);
  });
  ASSERT_TRUE(waitStats(
      [](const Json &St) { return St.get("in_flight").asInt() == 1; }));

  // The victim submits a check, then hangs up without waiting.
  {
    Client B = Client::connect(SockPath);
    ASSERT_TRUE(B.connected());
    CheckRequest Req;
    Req.Source = corpus::gcdSource();
    ASSERT_TRUE(B.socket().sendFrame(Req.toJson().dump()));
    ASSERT_TRUE(waitStats(
        [](const Json &St) { return St.get("queue_depth").asInt() == 1; }));
  } // B's socket closes here, with its request still queued

  // The worker must detect the hang-up at dequeue, free the slot, and
  // account the request as cancelled — not run it, not leak it.
  TA.join();
  ASSERT_TRUE(waitStats([](const Json &St) {
    return St.get("requests").get("cancelled").asInt() == 1 &&
           St.get("in_flight").asInt() == 0 &&
           St.get("queue_depth").asInt() == 0;
  }));
  ServiceMetrics &M = Srv.metrics();
  EXPECT_EQ(M.Received.load(), 2u);
  EXPECT_EQ(M.Completed.load(), 1u); // A's
  EXPECT_EQ(M.Cancelled.load(), 1u); // B's
  EXPECT_EQ(M.Failed.load(), 0u);
  Srv.stop();
}

TEST_F(ServiceTest, MalformedAndInvalidRequestsGetTypedErrors) {
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());

  auto roundTripRaw = [&](const std::string &Raw, CheckResponse &Out) {
    EXPECT_TRUE(C.socket().sendFrame(Raw));
    std::string Reply;
    EXPECT_TRUE(C.socket().recvFrame(Reply));
    Json J;
    std::string Err;
    EXPECT_TRUE(Json::parse(Reply, J, Err)) << Err;
    EXPECT_TRUE(CheckResponse::fromJson(J, Out, Err)) << Err;
  };

  CheckResponse R;
  roundTripRaw("this is not json", R);
  EXPECT_EQ(R.Err, ErrorCode::BadRequest);

  roundTripRaw(R"({"v":1,"op":"frobnicate"})", R);
  EXPECT_EQ(R.Err, ErrorCode::BadRequest);

  roundTripRaw(R"({"v":99,"op":"ping"})", R);
  EXPECT_EQ(R.Err, ErrorCode::BadRequest);

  roundTripRaw(R"({"v":1,"op":"check"})", R); // no source
  EXPECT_EQ(R.Err, ErrorCode::BadRequest);

  // Valid request, invalid C: a parse_error with diagnostics, and the
  // connection stays usable afterwards.
  CheckRequest Req;
  Req.Source = "int broken(void) { return ; }\n";
  CheckResponse Bad;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Bad, Err)) << Err;
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Err, ErrorCode::ParseError);
  EXPECT_FALSE(Bad.Diagnostics.empty());
  // The failure counter is bumped after the response is delivered, so
  // observe it through the (eventually consistent) stats endpoint.
  EXPECT_TRUE(waitStats([](const Json &St) {
    return St.get("requests").get("failed").asInt() == 1;
  }));

  Req.Source = corpus::maxSource();
  CheckResponse Good;
  ASSERT_TRUE(C.check(Req, Good, Err)) << Err;
  EXPECT_TRUE(Good.Ok);
  Srv.stop();
}

TEST_F(ServiceTest, DrainRefusesNewWorkAndFinishesQueued) {
  ServerOptions O = baseOpts();
  O.Workers = 1;
  Server Srv(O);
  ASSERT_TRUE(Srv.start());

  CheckRequest Slow;
  Slow.Source = corpus::maxSource();
  Slow.DebugDelayMs = 250;
  Client A = Client::connect(SockPath);
  CheckResponse RA;
  std::string ErrA;
  std::thread TA([&] { A.check(Slow, RA, ErrA); });
  ASSERT_TRUE(waitStats(
      [](const Json &St) { return St.get("in_flight").asInt() == 1; }));

  Client D = Client::connect(SockPath);
  std::string Err;
  ASSERT_TRUE(D.drain(Err)) << Err;
  EXPECT_TRUE(Srv.draining());

  // New work is refused while the in-flight request still completes.
  Client C = Client::connect(SockPath);
  CheckRequest Req;
  Req.Source = corpus::gcdSource();
  CheckResponse R;
  ASSERT_TRUE(C.check(Req, R, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, ErrorCode::Draining);

  TA.join();
  EXPECT_TRUE(RA.Ok) << ErrA << " " << RA.Message;
  Srv.stop();
  EXPECT_EQ(Srv.metrics().Completed.load(), 1u);
}

TEST_F(ServiceTest, WarmCacheSurvivesDrainAndRestart) {
  std::string CacheDir = Root + "/cache";
  RefRun Ref = inProcessRun(corpus::reverseSource());

  ServerOptions O = baseOpts();
  O.CacheDir = CacheDir;
  {
    Server Srv(O);
    ASSERT_TRUE(Srv.start());
    Client C = Client::connect(SockPath);
    CheckRequest Req;
    Req.Source = corpus::reverseSource();
    CheckResponse Resp;
    std::string Err;
    ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
    expectMatchesRef(Resp, Ref, "first daemon, cold");
    EXPECT_GT(Resp.CacheMisses, 0u);
    Srv.stop(); // drains and flushes the tier to disk
  }
  ASSERT_TRUE(std::filesystem::exists(CacheDir));

  // A fresh daemon on the same directory serves the same bytes from a
  // warm tier: all hits, no recompute.
  {
    Server Srv(O);
    ASSERT_TRUE(Srv.start());
    Client C = Client::connect(SockPath);
    CheckRequest Req;
    Req.Source = corpus::reverseSource();
    CheckResponse Resp;
    std::string Err;
    ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
    expectMatchesRef(Resp, Ref, "second daemon, warm");
    EXPECT_EQ(Resp.CacheMisses, 0u);
    EXPECT_GT(Resp.CacheHits, 0u);
    Srv.stop();
  }
}

TEST_F(ServiceTest, PerRequestOptionsAreHonoured) {
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);

  // swap normally heap-lifts; NoHeapAbs must turn that off for exactly
  // this request and be reflected in the result signature.
  CheckRequest Req;
  Req.Source = corpus::swapSource();
  CheckResponse Lifted;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Lifted, Err)) << Err;
  ASSERT_EQ(Lifted.Functions.size(), 1u);
  EXPECT_TRUE(Lifted.Functions[0].HeapLifted);

  Req.NoHeapAbs = {"swap"};
  CheckResponse Raw;
  ASSERT_TRUE(C.check(Req, Raw, Err)) << Err;
  ASSERT_EQ(Raw.Functions.size(), 1u);
  EXPECT_FALSE(Raw.Functions[0].HeapLifted);
  EXPECT_NE(Raw.Functions[0].Render, Lifted.Functions[0].Render);

  // want_specs controls the per-phase payload.
  Req.NoHeapAbs.clear();
  Req.WantSpecs = true;
  CheckResponse Specs;
  ASSERT_TRUE(C.check(Req, Specs, Err)) << Err;
  ASSERT_EQ(Specs.Functions.size(), 1u);
  EXPECT_FALSE(Specs.Functions[0].L1Spec.empty());
  EXPECT_FALSE(Specs.Functions[0].HLSpec.empty());
  Srv.stop();
}

TEST_F(ServiceTest, ParallelRequestsUseTheSharedPool) {
  ServerOptions O = baseOpts();
  O.Jobs = 4; // daemon default: abstraction stages on the shared pool
  Server Srv(O);
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  RefRun Ref = inProcessRun(corpus::reverseSource());
  CheckRequest Req;
  Req.Source = corpus::reverseSource();
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  expectMatchesRef(Resp, Ref, "shared-pool run");
  EXPECT_EQ(Resp.Jobs, 4u);
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// Deadlines, retry bounds, and graceful degradation
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, QueuedRequestPastDeadlineIsAnsweredAndSlotFreed) {
  ServerOptions O = baseOpts();
  O.Workers = 1; // one slow request blocks the only worker
  Server Srv(O);
  ASSERT_TRUE(Srv.start());

  // Occupy the worker (generously: the suite may share a loaded box).
  std::thread Slow([&] {
    Client C = Client::connect(SockPath);
    CheckRequest Req;
    Req.Source = corpus::maxSource();
    Req.DebugDelayMs = 2000;
    CheckResponse Resp;
    std::string Err;
    EXPECT_TRUE(C.check(Req, Resp, Err)) << Err;
    EXPECT_TRUE(Resp.Ok) << Resp.Message;
  });
  bool Occupied = waitStats(
      [](const Json &St) { return St.get("in_flight").asInt() == 1; });
  if (!Occupied) {
    Slow.join();
    Srv.stop();
    FAIL() << "worker never became busy";
  }

  // A queued request with a 100 ms deadline must be answered by the
  // watchdog long before the worker frees up.
  Client C = Client::connect(SockPath);
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  Req.TimeoutMs = 100;
  CheckResponse Resp;
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Err, ErrorCode::DeadlineExceeded) << Resp.Message;
  EXPECT_LT(ElapsedMs, 1500) << "watchdog must not wait for the worker";
  // The expired request's queue slot was freed, not leaked.
  EXPECT_TRUE(waitStats([](const Json &St) {
    return St.get("queue_depth").asInt() == 0 &&
           St.get("requests").get("deadline_exceeded").asInt() == 1;
  }));
  Slow.join();
  Srv.stop();
}

TEST_F(ServiceTest, InFlightRequestOverDeadlineIsCancelled) {
  ServerOptions O = baseOpts();
  O.Workers = 1;
  Server Srv(O);
  ASSERT_TRUE(Srv.start());

  // The request itself dawdles past its own deadline.
  Client C = Client::connect(SockPath);
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  Req.DebugDelayMs = 2000;
  Req.TimeoutMs = 100;
  CheckResponse Resp;
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Err, ErrorCode::DeadlineExceeded) << Resp.Message;
  EXPECT_LT(ElapsedMs, 1500)
      << "the deadline response must not wait out the full delay";

  // The worker survives: it discards the cancelled result and serves the
  // next request normally.
  RefRun Ref = inProcessRun(corpus::maxSource());
  Client C2 = Client::connect(SockPath);
  CheckRequest Req2;
  Req2.Source = corpus::maxSource();
  CheckResponse Resp2;
  ASSERT_TRUE(C2.check(Req2, Resp2, Err)) << Err;
  expectMatchesRef(Resp2, Ref, "after a cancelled in-flight request");
  EXPECT_TRUE(waitStats([](const Json &St) {
    return St.get("requests").get("deadline_exceeded").asInt() == 1 &&
           St.get("in_flight").asInt() == 0;
  }));
  Srv.stop();
}

TEST_F(ServiceTest, CheckRetryBoundsTotalTimeUnderSaturation) {
  ServerOptions O = baseOpts();
  O.Workers = 1;
  O.QueueCapacity = 1;
  O.RetryAfterMs = 30;
  Server Srv(O);
  ASSERT_TRUE(Srv.start());

  // Saturate: one in flight, one queued — everything else gets `busy`.
  // Started one at a time (the second would itself bounce off the
  // size-1 queue while the first still sits in it), with holds generous
  // enough that the saturated window survives a loaded box.
  // The in-flight hold outlasts the 5 s saturation wait below by a
  // margin wider than the probe's 300 ms budget, so the probe can never
  // slip into a freed slot however slowly the wait converged.
  auto Holder = [&](unsigned DelayMs) {
    Client C = Client::connect(SockPath);
    CheckRequest Req;
    Req.Source = corpus::maxSource();
    Req.DebugDelayMs = DelayMs;
    CheckResponse Resp;
    std::string Err;
    C.check(Req, Resp, Err);
  };
  std::vector<std::thread> Holders;
  Holders.emplace_back(Holder, 8000u);
  bool InFlight = waitStats([](const Json &St) {
    return St.get("in_flight").asInt() == 1 &&
           St.get("queue_depth").asInt() == 0;
  });
  if (InFlight)
    Holders.emplace_back(Holder, 100u);
  bool Saturated =
      InFlight && waitStats([](const Json &St) {
        return St.get("in_flight").asInt() == 1 &&
               St.get("queue_depth").asInt() == 1;
      });
  if (!Saturated) {
    for (std::thread &T : Holders)
      T.join();
    Srv.stop();
    FAIL() << "daemon never reached the saturated state";
  }

  // A bounded retry loop must give up with the daemon's last `busy`
  // answer well before the holders finish, not spin until admitted.
  Client C = Client::connect(SockPath);
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  CheckResponse Resp;
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(C.checkRetry(Req, Resp, Err, /*MaxAttempts=*/50,
                           /*MaxTotalMs=*/300))
      << Err;
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Err, ErrorCode::Busy);
  // Far below the ~8 s the holders occupy the daemon: the loop gave up
  // on its own clock instead of waiting to be admitted.
  EXPECT_LT(ElapsedMs, 3000) << "retry loop must respect its time bound";
  for (std::thread &T : Holders)
    T.join();
  Srv.stop();
}

TEST_F(ServiceTest, FallbackServesIdenticalResultsWithNoDaemon) {
  RefRun Ref = inProcessRun(corpus::gcdSource());
  CheckRequest Req;
  Req.Source = corpus::gcdSource();
  bool UsedFallback = false;
  std::string Note;
  // Nothing listens on SockPath: the check must degrade to an
  // in-process run and still produce exact results.
  CheckResponse Resp = checkWithFallback(SockPath, Req, UsedFallback, Note);
  EXPECT_TRUE(UsedFallback);
  EXPECT_NE(Note.find("falling back"), std::string::npos) << Note;
  expectMatchesRef(Resp, Ref, "fallback with no daemon");
}

TEST_F(ServiceTest, FallbackKicksInWhenTheDaemonMissesTheDeadline) {
  ServerOptions O = baseOpts();
  O.Workers = 1;
  Server Srv(O);
  ASSERT_TRUE(Srv.start());

  RefRun Ref = inProcessRun(corpus::maxSource());
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  Req.DebugDelayMs = 800; // the daemon will sit on it...
  Req.TimeoutMs = 100;    // ...past the deadline
  bool UsedFallback = false;
  std::string Note;
  CheckResponse Resp = checkWithFallback(SockPath, Req, UsedFallback, Note);
  EXPECT_TRUE(UsedFallback);
  EXPECT_NE(Note.find("deadline"), std::string::npos) << Note;
  // The local run ignores the daemon-side debug delay and serves the
  // same bytes the daemon would have.
  expectMatchesRef(Resp, Ref, "fallback after deadline_exceeded");
  Srv.stop();
}

TEST_F(ServiceTest, FallbackDoesNotMaskRequestErrors) {
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  CheckRequest Req;
  Req.Source = "this is not C;"; // a parse_error, the *request's* fault
  bool UsedFallback = false;
  std::string Note;
  CheckResponse Resp = checkWithFallback(SockPath, Req, UsedFallback, Note);
  EXPECT_FALSE(UsedFallback)
      << "an error the daemon *diagnosed* must not silently re-run "
         "locally: " << Note;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Err, ErrorCode::ParseError) << Resp.Message;
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// Observability: trace ids, metrics exposition, structured logs
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, TraceIdRoundTripsAndIsMintedWhenAbsent) {
  ServerOptions O = baseOpts();
  O.TraceDir = Root + "/traces";
  std::filesystem::create_directories(O.TraceDir);
  Server Srv(O);
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());

  // Client-supplied id echoes back verbatim, on success...
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  Req.TraceId = "ci-run-42";
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  EXPECT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.TraceId, "ci-run-42");
  // ...and the per-request trace file lands under TraceDir by that name.
  EXPECT_TRUE(waitForFile(O.TraceDir + "/ci-run-42.json"));

  // ...and on failure.
  CheckRequest Bad;
  Bad.Source = "this is not C;";
  Bad.TraceId = "ci-run-43";
  CheckResponse BadResp;
  ASSERT_TRUE(C.check(Bad, BadResp, Err)) << Err;
  EXPECT_FALSE(BadResp.Ok);
  EXPECT_EQ(BadResp.TraceId, "ci-run-43");

  // Absent id: the daemon mints one and still echoes it.
  CheckRequest Anon;
  Anon.Source = corpus::maxSource();
  CheckResponse AnonResp;
  ASSERT_TRUE(C.check(Anon, AnonResp, Err)) << Err;
  EXPECT_TRUE(AnonResp.Ok);
  EXPECT_FALSE(AnonResp.TraceId.empty());
  EXPECT_EQ(AnonResp.TraceId.rfind("req-", 0), 0u) << AnonResp.TraceId;
  Srv.stop();
}

TEST_F(ServiceTest, UnsafeTraceIdsAreReplacedNeverUsedAsPaths) {
  ServerOptions O = baseOpts();
  O.TraceDir = Root + "/traces";
  std::filesystem::create_directories(O.TraceDir);
  Server Srv(O);
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());
  std::string Err;

  // A traversal id must not steer the trace file outside --trace-dir:
  // the daemon renames the request and answers with the id it used.
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  Req.TraceId = "../escape";
  CheckResponse Resp;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  EXPECT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.TraceId.rfind("req-", 0), 0u)
      << "unsafe id echoed back: " << Resp.TraceId;
  EXPECT_TRUE(waitForFile(O.TraceDir + "/" + Resp.TraceId + ".json"));
  EXPECT_FALSE(std::filesystem::exists(Root + "/escape.json"))
      << "trace file escaped --trace-dir";

  // Every other unsafe shape is replaced too...
  for (const char *Bad :
       {"a/b", "..", ".hidden", "-dash", "id with space",
        "nul\1byte"}) {
    CheckRequest B;
    B.Source = corpus::maxSource();
    B.TraceId = Bad;
    CheckResponse R;
    ASSERT_TRUE(C.check(B, R, Err)) << Err;
    EXPECT_EQ(R.TraceId.rfind("req-", 0), 0u)
        << "accepted unsafe id: " << Bad;
  }
  CheckRequest Long;
  Long.Source = corpus::maxSource();
  Long.TraceId = std::string(300, 'a');
  CheckResponse LongResp;
  ASSERT_TRUE(C.check(Long, LongResp, Err)) << Err;
  EXPECT_EQ(LongResp.TraceId.rfind("req-", 0), 0u);

  // ...while the documented safe alphabet passes through verbatim.
  CheckRequest Good;
  Good.Source = corpus::maxSource();
  Good.TraceId = "CI-run_7.3";
  CheckResponse GoodResp;
  ASSERT_TRUE(C.check(Good, GoodResp, Err)) << Err;
  EXPECT_EQ(GoodResp.TraceId, "CI-run_7.3");
  EXPECT_TRUE(waitForFile(O.TraceDir + "/CI-run_7.3.json"));
  Srv.stop();
}

TEST_F(ServiceTest, PerRequestTraceFilesAreValidChromeJson) {
  ServerOptions O = baseOpts();
  O.TraceDir = Root + "/traces";
  std::filesystem::create_directories(O.TraceDir);
  Server Srv(O);
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());
  CheckRequest Req;
  Req.Source = corpus::swapSource();
  Req.TraceId = "trace-json-check";
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  ASSERT_TRUE(Resp.Ok);
  ASSERT_TRUE(waitForFile(O.TraceDir + "/trace-json-check.json"));

  std::ifstream In(O.TraceDir + "/trace-json-check.json");
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  Json J;
  ASSERT_TRUE(Json::parse(SS.str(), J, Err)) << Err;
  ASSERT_TRUE(J.get("traceEvents").isArray());
  // The served pipeline's phases are in there.
  bool SawFn = false;
  for (const Json &E : J.get("traceEvents").items())
    if (E.get("name").asString() == "core.fn")
      SawFn = true;
  EXPECT_TRUE(SawFn) << "per-request trace carries no pipeline spans";
  Srv.stop();
}

TEST_F(ServiceTest, MetricsRequestServesPrometheusText) {
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());

  // One served request so the counters are warm.
  CheckRequest Req;
  Req.Source = corpus::maxSource();
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;

  std::string Body;
  ASSERT_TRUE(C.metricsText(Body, Err)) << Err;
  // Exposition-format lint: every non-comment line is `name{labels} value`,
  // every metric has # HELP and # TYPE headers before its samples.
  std::set<std::string> Typed;
  std::istringstream Lines(Body);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream T(Line.substr(7));
      std::string Name, Kind;
      T >> Name >> Kind;
      EXPECT_TRUE(Kind == "counter" || Kind == "gauge" ||
                  Kind == "summary" || Kind == "histogram")
          << Line;
      Typed.insert(Name);
      continue;
    }
    if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("#", 0) == 0)
      continue;
    // An exemplar rides after ` # ` on histogram bucket lines; lint the
    // sample half.
    std::string Sample = Line.substr(0, Line.find(" # "));
    size_t Sp = Sample.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    std::string Name = Sample.substr(0, Sample.find_first_of("{ "));
    // Summary/histogram _sum/_count/_bucket samples belong to the base
    // metric's TYPE.
    for (const char *Suffix : {"_sum", "_count", "_bucket"}) {
      size_t L = Name.size(), SL = strlen(Suffix);
      if (L > SL && Name.compare(L - SL, SL, Suffix) == 0 &&
          Typed.count(Name.substr(0, L - SL)))
        Name = Name.substr(0, L - SL);
    }
    EXPECT_TRUE(Typed.count(Name)) << "sample without TYPE: " << Line;
    EXPECT_NO_THROW((void)std::stod(Sample.substr(Sp + 1))) << Line;
  }
  EXPECT_TRUE(Typed.count("acd_requests_received_total"));
  EXPECT_TRUE(Typed.count("acd_in_flight_peak"));
  EXPECT_TRUE(Typed.count("acd_phase_parse_cpu_seconds_total"));
  EXPECT_TRUE(Typed.count("acd_latency_total_seconds"));
  // True Prometheus histograms: cumulative buckets up to +Inf, with a
  // trace-id exemplar attached to the bucket the request landed in.
  EXPECT_TRUE(Typed.count("acd_request_duration_seconds"));
  EXPECT_TRUE(Typed.count("acd_queue_wait_seconds"));
  EXPECT_NE(Body.find("acd_request_duration_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << Body;
  EXPECT_NE(Body.find(" # {trace_id=\""), std::string::npos)
      << "no exemplar in:\n"
      << Body;
  EXPECT_NE(Body.find("acd_requests_completed_total 1"), std::string::npos)
      << Body;
  // The CPU counters are fed from the run's thread-CPU clocks: one
  // completed request leaves both strictly positive.
  auto SampleValue = [&Body](const std::string &Name) {
    size_t At = Body.find("\n" + Name + " ");
    EXPECT_NE(At, std::string::npos) << Name;
    if (At == std::string::npos)
      return 0.0;
    return std::stod(Body.substr(At + Name.size() + 2));
  };
  EXPECT_GT(SampleValue("acd_phase_parse_cpu_seconds_total"), 0.0);
  EXPECT_GT(SampleValue("acd_phase_abstract_cpu_seconds_total"), 0.0);
  Srv.stop();
}

TEST_F(ServiceTest, TracePullDrainsLiveSpansExactlyOnce) {
  support::Trace::reset();
  ServerOptions O = baseOpts();
  O.TraceLive = true;
  Server Srv(O);
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());
  CheckRequest Req;
  Req.Source = corpus::swapSource();
  Req.TraceId = "fleet-pull-1";
  Req.ParentSpan = "424242"; // the router's forward span, on the wire
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  ASSERT_TRUE(Resp.Ok);

  Json Pull;
  ASSERT_TRUE(C.tracePull(Pull, Err)) << Err;
  EXPECT_EQ(Pull.get("role").asString(), "shard");
  EXPECT_GT(Pull.get("pid").asInt(), 0);
  Json Frag;
  ASSERT_TRUE(Json::parse(Pull.get("body").asString(), Frag, Err)) << Err;
  ASSERT_TRUE(Frag.get("traceEvents").isArray());
  // The request span carries the wire trace context: our trace id, the
  // remote parent, and a queue-wait child chained under it.
  bool SawReq = false, SawWait = false;
  for (const Json &E : Frag.get("traceEvents").items()) {
    const Json &Args = E.get("args");
    if (Args.get("trace_id").asString() != "fleet-pull-1")
      continue;
    if (E.get("name").asString() == "acd.request") {
      SawReq = true;
      EXPECT_EQ(Args.get("parent").asString(), "424242");
    }
    if (E.get("name").asString() == "acd.queue_wait") {
      SawWait = true;
      EXPECT_FALSE(Args.get("parent").asString().empty());
    }
  }
  EXPECT_TRUE(SawReq) << Pull.get("body").asString();
  EXPECT_TRUE(SawWait);
  // The pull drained the buffers: a second pull has no events for the
  // request (exactly-once fragment semantics).
  Json Again;
  ASSERT_TRUE(C.tracePull(Again, Err)) << Err;
  EXPECT_EQ(Again.get("body").asString().find("fleet-pull-1"),
            std::string::npos);
  Srv.stop();
  support::Trace::stop();
  support::Trace::reset();
}

TEST_F(ServiceTest, StatsCarryRecentRequestRing) {
  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());
  CheckRequest Req;
  Req.Source = corpus::swapSource();
  Req.TraceId = "recent-ring-1";
  Req.Tenant = "obs-tenant";
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  ASSERT_TRUE(Resp.Ok);

  Json Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  ASSERT_TRUE(Stats.get("recent").isArray());
  bool Found = false;
  for (const Json &R : Stats.get("recent").items())
    if (R.get("trace_id").asString() == "recent-ring-1") {
      Found = true;
      EXPECT_GT(R.get("total_ms").asNumber(), 0.0);
      EXPECT_EQ(R.get("tenant").asString(), "obs-tenant");
      EXPECT_TRUE(R.get("ok").asBool());
      EXPECT_GE(R.get("age_s").asNumber(), 0.0);
    }
  EXPECT_TRUE(Found) << Stats.dump();
  Srv.stop();
}

TEST_F(ServiceTest, FailedRequestsEmitStructuredLogLines) {
  std::string LogPath = Root + "/acd.jsonl";
  ASSERT_TRUE(support::Log::setFile(LogPath));
  support::Log::setLevel(support::LogLevel::Info);

  Server Srv(baseOpts());
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());
  CheckRequest Req;
  Req.Source = "this is not C;";
  Req.TraceId = "log-test-1";
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Req, Resp, Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  Srv.stop();
  support::Log::setFile(""); // back to stderr before asserting

  // Every line is one JSON object; among them are the received and
  // failed events for our trace id, in that order.
  std::ifstream In(LogPath);
  ASSERT_TRUE(In.good());
  std::string Line;
  int ReceivedAt = -1, FailedAt = -1, N = 0;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Json J;
    ASSERT_TRUE(Json::parse(Line, J, Err)) << Line << ": " << Err;
    EXPECT_TRUE(J.get("ts").isNumber()) << Line;
    EXPECT_TRUE(J.get("level").isString()) << Line;
    EXPECT_TRUE(J.get("event").isString()) << Line;
    if (J.get("trace_id").asString() == "log-test-1") {
      if (J.get("event").asString() == "request.received")
        ReceivedAt = N;
      if (J.get("event").asString() == "request.failed") {
        FailedAt = N;
        EXPECT_EQ(J.get("level").asString(), "error") << Line;
        EXPECT_EQ(J.get("error").asString(), "parse_error") << Line;
      }
    }
    ++N;
  }
  EXPECT_GE(ReceivedAt, 0) << "no request.received line for log-test-1";
  EXPECT_GT(FailedAt, ReceivedAt) << "no request.failed line after receive";
}

//===----------------------------------------------------------------------===//
// Overload: per-tenant quotas, priority classes, staleness shedding
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, TenantOverQuotaIsShedWithRefillHint) {
  ServerOptions O = baseOpts();
  O.TenantQuotaRps = 1;
  O.TenantQuotaBurst = 1; // one admission, then the bucket is dry
  Server Srv(O);
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());

  CheckRequest Req;
  Req.Source = "unsigned int q(unsigned int x) { return x + 1u; }\n";
  Req.Tenant = "greedy";
  CheckResponse First, Second;
  std::string Err;
  ASSERT_TRUE(C.check(Req, First, Err)) << Err;
  ASSERT_TRUE(First.Ok) << First.Message;
  ASSERT_TRUE(C.check(Req, Second, Err)) << Err;
  EXPECT_FALSE(Second.Ok);
  EXPECT_EQ(Second.Err, ErrorCode::Shed);
  EXPECT_GE(Second.RetryAfterMs, 1u)
      << "a quota shed must tell the tenant when its bucket refills";

  // An unnamed-tenant request is never quota-checked.
  CheckRequest Anon = Req;
  Anon.Tenant.clear();
  CheckResponse Third;
  ASSERT_TRUE(C.check(Anon, Third, Err)) << Err;
  EXPECT_TRUE(Third.Ok) << Third.Message;

  EXPECT_EQ(Srv.metrics().Shed.load(), 1u);
  EXPECT_EQ(Srv.metrics().QuotaRejected.load(), 1u);
  EXPECT_EQ(Srv.metrics().Received.load(), 2u)
      << "shed requests never count as received";
  auto Snap = Srv.metrics().snapshot(0, 0, 0, 1, 0, false);
  ASSERT_EQ(Snap.Tenants.size(), 1u);
  EXPECT_EQ(Snap.Tenants[0].Name, "greedy");
  EXPECT_EQ(Snap.Tenants[0].Admitted, 1u);
  EXPECT_EQ(Snap.Tenants[0].Shed, 1u);
  Srv.stop();
}

TEST_F(ServiceTest, StaleBulkIsShedInteractiveIsNot) {
  ServerOptions O = baseOpts();
  O.ShedMinSamples = 1; // one completed request is enough history
  Server Srv(O);
  ASSERT_TRUE(Srv.start());
  Client C = Client::connect(SockPath);
  ASSERT_TRUE(C.connected());

  // Teach the p99 estimator that requests take ~80 ms here.
  CheckRequest Warm;
  Warm.Source = "unsigned int w(unsigned int x) { return x; }\n";
  Warm.DebugDelayMs = 80;
  CheckResponse Resp;
  std::string Err;
  ASSERT_TRUE(C.check(Warm, Resp, Err)) << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Message;

  // A bulk request whose whole deadline is below that p99 would only
  // expire in queue: it is refused up front.
  CheckRequest Stale = Warm;
  Stale.DebugDelayMs = 0;
  Stale.Prio = Priority::Bulk;
  Stale.TimeoutMs = 10;
  ASSERT_TRUE(C.check(Stale, Resp, Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Err, ErrorCode::Shed);

  // The same hopeless deadline on interactive work is still admitted
  // (and may well run to deadline_exceeded — that is the client's
  // call): staleness shedding only ever touches bulk.
  CheckRequest Urgent = Stale;
  Urgent.Prio = Priority::Interactive;
  ASSERT_TRUE(C.check(Urgent, Resp, Err)) << Err;
  EXPECT_NE(Resp.Err, ErrorCode::Shed);

  // Ample-deadline bulk is admitted normally.
  CheckRequest Fine = Stale;
  Fine.TimeoutMs = 60000;
  ASSERT_TRUE(C.check(Fine, Resp, Err)) << Err;
  EXPECT_TRUE(Resp.Ok) << Resp.Message;
  EXPECT_EQ(Srv.metrics().Shed.load(), 1u);
  Srv.stop();
}
