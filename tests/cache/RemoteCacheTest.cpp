//===- RemoteCacheTest.cpp - The remote content-addressed cache tier ------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet's third cache tier (memory → disk → remote): entry blobs
/// must round-trip the v2 record format exactly, the store must reject
/// corrupt or mislabeled blobs, the daemon/client pair must serve
/// get/put over the wire, a ResultCache must promote remote hits into
/// its memory tier, and — the acceptance scenario — a cold shard's
/// second pass over a corpus another shard already verified must be
/// served by the remote tier with byte-identical output.
///
//===----------------------------------------------------------------------===//

#include "cache/RemoteCache.h"
#include "core/ResultCache.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/FaultInject.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>

using namespace ac;
using cache::RemoteCacheClient;
using cache::RemoteCacheServer;
using cache::RemoteCacheServerOptions;
using cache::RemoteCacheStore;
using core::CachedFunc;

namespace {

std::string freshDir(const std::string &Tag) {
  // Pid-unique root: concurrent invocations of this binary must not
  // race each other's remove_all.
  std::string D = ::testing::TempDir() + "ac-remotecache-" +
                  std::to_string(::getpid()) + "/" + Tag;
  std::error_code EC;
  std::filesystem::remove_all(D, EC);
  std::filesystem::create_directories(D);
  return D;
}

/// A representative entry with every field populated, so round-trip
/// equality is a real check of the serializer.
CachedFunc sampleEntry(uint64_t Key, const std::string &Name) {
  CachedFunc E;
  E.Key = Key;
  E.Name = Name;
  E.HeapLifted = true;
  E.WAEngineAbstracted = true;
  E.WordAbstracted = false;
  E.ArgNames = {"a", "b"};
  E.Render = Name + "' a b ==\ndo ret ← gets (λs. a + b);\nod";
  E.L1Spec = "l1 " + Name;
  E.L2Spec = "l2 " + Name;
  E.HLSpec = "hl " + Name;
  E.WASpec = "";
  E.PipelineProp = "ccorres ... " + Name;
  E.Notes = {"note one", "note two"};
  E.SpecLines = 3;
  E.TermSize = 42;
  return E;
}

std::string bytes(const CachedFunc &E) {
  return core::serializeCachedFunc(E);
}

TEST(RemoteCacheStore, RoundTripsValidEntries) {
  RemoteCacheStore S;
  CachedFunc E = sampleEntry(0x1234abcd5678ef00ull, "swap");
  ASSERT_TRUE(S.put(E.Key, bytes(E)));
  std::string Blob;
  ASSERT_TRUE(S.get(E.Key, Blob));
  CachedFunc Back;
  ASSERT_TRUE(core::parseCachedFunc(Blob, Back));
  EXPECT_EQ(bytes(Back), bytes(E));
  EXPECT_EQ(S.puts(), 1u);
  EXPECT_EQ(S.gets(), 1u);
  EXPECT_EQ(S.hits(), 1u);
  EXPECT_EQ(S.size(), 1u);
  // A miss counts a get but no hit.
  EXPECT_FALSE(S.get(0xdeadull, Blob));
  EXPECT_EQ(S.gets(), 2u);
  EXPECT_EQ(S.hits(), 1u);
}

TEST(RemoteCacheStore, RejectsCorruptAndMislabeledBlobs) {
  RemoteCacheStore S;
  CachedFunc E = sampleEntry(0x1111ull, "gcd");
  std::string Good = bytes(E);
  // Bit flip anywhere: the CRC trailer catches it.
  std::string Flipped = Good;
  Flipped[Good.size() / 2] ^= 0x20;
  EXPECT_FALSE(S.put(E.Key, Flipped));
  // Truncation: structurally broken.
  EXPECT_FALSE(S.put(E.Key, Good.substr(0, Good.size() / 2)));
  // Mislabeled: intact bytes filed under the wrong key would be served
  // to the wrong fingerprint later — rejected at the door.
  EXPECT_FALSE(S.put(0x2222ull, Good));
  EXPECT_FALSE(S.put(E.Key, ""));
  EXPECT_EQ(S.size(), 0u);
  EXPECT_EQ(S.puts(), 0u);
}

TEST(RemoteCacheWire, GetPutOverUnixSocket) {
  std::string Dir = freshDir("wire");
  RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  RemoteCacheServer Srv(O);
  ASSERT_TRUE(Srv.start());

  RemoteCacheClient C(O.SocketPath);
  EXPECT_TRUE(C.ping());

  CachedFunc E = sampleEntry(0xfeedbeefull, "mid");
  CachedFunc Out;
  EXPECT_FALSE(C.get(E.Key, Out)) << "empty store must miss";
  C.put(E);
  ASSERT_TRUE(C.get(E.Key, Out));
  EXPECT_EQ(bytes(Out), bytes(E));

  support::Json Stats;
  ASSERT_TRUE(C.stats(Stats));
  EXPECT_TRUE(Stats.get("ok").asBool());
  EXPECT_EQ(Stats.get("entries").asInt(), 1);
  EXPECT_EQ(Stats.get("puts").asInt(), 1);
  Srv.stop();
}

TEST(RemoteCacheWire, TraceContextStampsAccachedSpans) {
  support::Trace::reset();
  std::string Dir = freshDir("tracespans");
  RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  O.TraceLive = true;
  {
    RemoteCacheServer Srv(O);
    ASSERT_TRUE(Srv.start()); // enables process-wide live tracing
    RemoteCacheClient C(O.SocketPath);
    support::TraceContextScope Scope("cache-trace-1", 0);
    CachedFunc E = sampleEntry(0x1111222233334444ull, "traced");
    C.put(E);
    CachedFunc Out;
    ASSERT_TRUE(C.get(E.Key, Out));
    Srv.stop();
  }
  std::string Exported = support::Trace::exportJson(/*Reset=*/true);
  support::Trace::stop();

  support::Json J;
  std::string PErr;
  ASSERT_TRUE(support::Json::parse(Exported, J, PErr)) << PErr;
  // The wire carried the shard-side context: the store's get/put spans
  // hold the same correlation id and chain under the client's
  // remote.get/remote.put round-trip spans.
  std::set<std::string> Spans, Names;
  std::map<std::string, std::string> ParentOf;
  for (const support::Json &Ev : J.get("traceEvents").items()) {
    const support::Json &A = Ev.get("args");
    if (A.get("span").isString())
      Spans.insert(A.get("span").asString());
    if (!A.get("trace_id").isString() ||
        A.get("trace_id").asString() != "cache-trace-1")
      continue;
    std::string N = Ev.get("name").asString();
    Names.insert(N);
    if (N.rfind("accached.", 0) == 0 && A.get("parent").isString())
      ParentOf[N] = A.get("parent").asString();
  }
  EXPECT_TRUE(Names.count("remote.put"));
  EXPECT_TRUE(Names.count("remote.get"));
  ASSERT_TRUE(Names.count("accached.put")) << Exported.substr(0, 400);
  ASSERT_TRUE(Names.count("accached.get"));
  ASSERT_EQ(ParentOf.size(), 2u);
  for (const auto &[N, P] : ParentOf)
    EXPECT_TRUE(Spans.count(P)) << N << " has unresolved parent " << P;
  support::Trace::reset();
}

TEST(RemoteCacheWire, ClientSurvivesDaemonRestart) {
  std::string Dir = freshDir("restart");
  RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  CachedFunc E = sampleEntry(0xabba00ull, "top");
  RemoteCacheClient C(O.SocketPath);

  {
    RemoteCacheServer Srv(O);
    ASSERT_TRUE(Srv.start());
    C.put(E);
    CachedFunc Out;
    ASSERT_TRUE(C.get(E.Key, Out));
    Srv.stop();
  }
  // Daemon gone: every call degrades to a miss/drop, never an error the
  // caller must handle.
  CachedFunc Out;
  EXPECT_FALSE(C.get(E.Key, Out));
  C.put(E);

  // Fresh daemon (empty store — it is memory-only): the client re-dials
  // transparently and the tier works again.
  RemoteCacheServer Srv2(O);
  ASSERT_TRUE(Srv2.start());
  EXPECT_TRUE(C.ping());
  EXPECT_FALSE(C.get(E.Key, Out)) << "restarted store starts cold";
  C.put(E);
  ASSERT_TRUE(C.get(E.Key, Out));
  EXPECT_EQ(bytes(Out), bytes(E));
  Srv2.stop();
}

TEST(RemoteCacheWire, GetPutRacingRestartUnderFaultsNeverServesWrongBytes) {
  std::string Dir = freshDir("restartrace");
  RemoteCacheServerOptions O;
  O.SocketPath = Dir + "/cached.sock";
  CachedFunc E = sampleEntry(0x5eed5eedull, "race");
  const std::string Want = bytes(E);

  // Sprinkle dial/fetch/store failures through the run on top of the
  // restarts themselves: every injected fault must surface as a miss or
  // a dropped put — never wrong bytes, never a client-visible error.
  support::FaultInject::disarmAll();
  ASSERT_TRUE(support::FaultInject::arm("remote.dial.fail", 3, 2));
  ASSERT_TRUE(support::FaultInject::arm("remote.get.fail", 5, 2));
  ASSERT_TRUE(support::FaultInject::arm("remote.put.fail", 4, 2));

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Hits{0}, Misses{0}, Wrong{0};
  std::thread Hammer([&] {
    RemoteCacheClient C(O.SocketPath);
    while (!Stop.load()) {
      C.put(E);
      CachedFunc Out;
      if (C.get(E.Key, Out)) {
        Hits.fetch_add(1);
        if (bytes(Out) != Want)
          Wrong.fetch_add(1);
      } else {
        Misses.fetch_add(1);
      }
    }
  });

  // Three daemon lifetimes with dead gaps between them: the hammering
  // client races its round-trips against a socket that appears,
  // vanishes mid-conversation, and reappears cold.
  for (int Round = 0; Round != 3; ++Round) {
    RemoteCacheServer Srv(O);
    ASSERT_TRUE(Srv.start());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    Srv.stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Stop.store(true);
  Hammer.join();
  support::FaultInject::disarmAll();

  EXPECT_EQ(Wrong.load(), 0u)
      << "a restart- or fault-torn round-trip served wrong bytes";
  EXPECT_GE(Hits.load(), 1u) << "the live windows never served a hit; "
                                "the race is vacuous";
  EXPECT_GE(Misses.load(), 1u) << "the dead windows never degraded to a "
                                  "miss; the race is vacuous";

  // Steady state after the chaos: a clean daemon serves exact bytes.
  RemoteCacheServer Srv(O);
  ASSERT_TRUE(Srv.start());
  RemoteCacheClient C(O.SocketPath);
  C.put(E);
  CachedFunc Out;
  ASSERT_TRUE(C.get(E.Key, Out));
  EXPECT_EQ(bytes(Out), Want);
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// ResultCache integration: the third tier
//===----------------------------------------------------------------------===//

/// A RemoteTier over a local store — the transportless seam ResultCache
/// integration is tested through.
struct StoreTier : core::RemoteTier {
  RemoteCacheStore S;
  bool get(uint64_t Key, CachedFunc &Out) override {
    std::string Blob;
    return S.get(Key, Blob) && core::parseCachedFunc(Blob, Out) &&
           Out.Key == Key;
  }
  void put(const CachedFunc &E) override {
    S.put(E.Key, core::serializeCachedFunc(E));
  }
};

TEST(ResultCacheRemoteTier, WriteThroughAndPromotion) {
  StoreTier Tier;
  CachedFunc E = sampleEntry(0x77777ull, "lone");

  // Shard A computes: insert writes through to the remote tier.
  core::ResultCache A("");
  A.setRemote(&Tier);
  A.insert(E);
  EXPECT_EQ(Tier.S.size(), 1u);
  EXPECT_EQ(A.remoteHits(), 0u);
  ASSERT_TRUE(A.lookup(E.Key));
  EXPECT_EQ(A.remoteHits(), 0u) << "memory tier answers first";

  // Shard B is cold: its first lookup is a remote hit, promoted into its
  // memory tier so the second lookup never leaves the process.
  core::ResultCache B("");
  B.setRemote(&Tier);
  core::CachedFuncRef Got = B.lookup(E.Key);
  ASSERT_TRUE(Got);
  EXPECT_EQ(bytes(*Got), bytes(E));
  EXPECT_EQ(B.remoteHits(), 1u);
  EXPECT_TRUE(B.knowsFunction("lone"));
  uint64_t GetsBefore = Tier.S.gets();
  ASSERT_TRUE(B.lookup(E.Key));
  EXPECT_EQ(B.remoteHits(), 1u);
  EXPECT_EQ(Tier.S.gets(), GetsBefore) << "promotion must stick";

  // Detached tier: lookups are local again.
  core::ResultCache D("");
  EXPECT_FALSE(D.lookup(E.Key));
}

//===----------------------------------------------------------------------===//
// The acceptance scenario at daemon scale
//===----------------------------------------------------------------------===//

const char *fleetSource() {
  return "unsigned int add(unsigned int a, unsigned int b) {\n"
         "  return a + b;\n"
         "}\n"
         "unsigned int twice(unsigned int x) { return add(x, x); }\n";
}

std::string snapshot(const service::CheckResponse &R) {
  std::string S;
  for (const service::FuncResult &F : R.Functions) {
    S += "== " + F.Name + "\n" + F.FinalKey + "\n" + F.Render + "\n" +
         F.Pipeline + "\n";
  }
  for (const std::string &D : R.Diagnostics)
    S += D + "\n";
  return S;
}

TEST(RemoteCacheFleet, ColdShardIsServedByTheRemoteTier) {
  std::string Dir = freshDir("fleet");
  RemoteCacheServerOptions CO;
  CO.SocketPath = Dir + "/cached.sock";
  RemoteCacheServer Cached(CO);
  ASSERT_TRUE(Cached.start());

  RemoteCacheClient Tier1(CO.SocketPath), Tier2(CO.SocketPath);
  service::CheckRequest Req;
  Req.Source = fleetSource();
  std::string Err;

  // Shard 1, cold everything: computes, write-through populates accached.
  service::ServerOptions S1;
  S1.SocketPath = Dir + "/s1.sock";
  S1.Workers = 1;
  S1.CacheDir = Dir + "/d1";
  S1.Remote = &Tier1;
  service::Server Shard1(S1);
  ASSERT_TRUE(Shard1.start());
  service::Client C1 = service::Client::connect(S1.SocketPath);
  ASSERT_TRUE(C1.connected());
  service::CheckResponse R1;
  ASSERT_TRUE(C1.check(Req, R1, Err)) << Err;
  ASSERT_TRUE(R1.Ok) << R1.Message;
  EXPECT_EQ(R1.CacheHits, 0u);
  EXPECT_EQ(Cached.store().size(), 2u) << "both functions written through";
  Shard1.stop();

  // Shard 2, cold memory AND cold disk (fresh cache dir): every function
  // is served by the remote tier — hits, not misses — and the bytes are
  // identical to the computed run.
  service::ServerOptions S2;
  S2.SocketPath = Dir + "/s2.sock";
  S2.Workers = 1;
  S2.CacheDir = Dir + "/d2";
  S2.Remote = &Tier2;
  service::Server Shard2(S2);
  ASSERT_TRUE(Shard2.start());
  service::Client C2 = service::Client::connect(S2.SocketPath);
  ASSERT_TRUE(C2.connected());
  service::CheckResponse R2;
  uint64_t HitsBefore = Cached.store().hits();
  ASSERT_TRUE(C2.check(Req, R2, Err)) << Err;
  ASSERT_TRUE(R2.Ok) << R2.Message;
  EXPECT_EQ(R2.CacheHits, 2u) << "remote-tier hits count as cache hits";
  EXPECT_EQ(R2.CacheMisses, 0u);
  EXPECT_GE(Cached.store().hits(), HitsBefore + 2);
  EXPECT_EQ(snapshot(R2), snapshot(R1)) << "remote-served output must be "
                                           "byte-identical to computed";
  Shard2.stop();
  Cached.stop();
}

} // namespace
