//===- HeapAbsTest.cpp - Heap abstraction (Sec 4) --------------------------===//
//
// Validates the abs_h_stmt refinement statement of Sec 4.5 differentially:
// for every concrete execution of the byte-level program, the lifted
// program — run on the lifted state — produces the corresponding abstract
// behaviour, and abstract non-failure implies concrete non-failure.
//
//===----------------------------------------------------------------------===//

#include "../common/TestUtil.h"

#include "heapabs/HeapAbs.h"
#include "hol/Print.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::hol;
using namespace ac::monad;
using namespace ac::test;
using namespace ac::heapabs;

namespace {

struct HLPipeline {
  std::unique_ptr<simpl::SimplProgram> Prog;
  InterpCtx Ctx;
  std::map<std::string, L2Result> L2;
  std::unique_ptr<HeapAbstraction> HL;

  explicit HLPipeline(const std::string &Src) : Ctx(nullptr) {
    DiagEngine Diags;
    Prog = simpl::parseAndTranslate(Src, Diags);
    EXPECT_TRUE(Prog != nullptr) << Diags.str();
    Ctx = InterpCtx(Prog.get());
    convertAllL1(*Prog, Ctx);
    L2 = convertAllL2(*Prog, Ctx);
    HL = std::make_unique<HeapAbstraction>(*Prog, Ctx);
    for (const std::string &Name : Prog->FunctionOrder)
      HL->abstractFunction(*Prog->function(Name), L2.at(Name));
  }

  const HLResult &result(const std::string &Fn) const {
    return HL->results().at(Fn);
  }
};

/// Observational equality of lifted states: probe the split heaps at the
/// world's object addresses plus a few invalid ones, and compare plain
/// globals directly.
bool liftedEq(const Value &A, const Value &B, const LiftedGlobals &LG,
              const TestWorld &W, InterpCtx &Ctx) {
  for (const TypeRef &T : LG.HeapTypes) {
    std::vector<uint32_t> Probes = {0, 2, 0xfffffffc};
    if (const auto *Objs = W.objectsOf(typeStr(T)))
      Probes.insert(Probes.end(), Objs->begin(), Objs->end());
    // Probe every known object of every type (cross-type aliasing).
    for (const auto &[Name, Addrs] : W.Objects)
      Probes.insert(Probes.end(), Addrs.begin(), Addrs.end());
    const Value &VA = A.Rec->at(validFieldFor(T));
    const Value &VB = B.Rec->at(validFieldFor(T));
    const Value &HA = A.Rec->at(heapFieldFor(T));
    const Value &HB = B.Rec->at(heapFieldFor(T));
    for (uint32_t P : Probes) {
      Value PV = Value::ptr(P, typeStr(T));
      Value ValidA = VA.Fun(PV);
      Value ValidB = VB.Fun(PV);
      if (ValidA.B != ValidB.B)
        return false;
      if (ValidA.B && !Value::equal(HA.Fun(PV), HB.Fun(PV)))
        return false;
    }
  }
  for (const auto &[Name, Ty] : LG.PlainGlobals) {
    (void)Ty;
    if (!Value::equal(A.Rec->at(Name), B.Rec->at(Name)))
      return false;
  }
  return true;
}

/// One differential trial of abs_h_stmt for a function.
Diff checkHLOnce(HLPipeline &P, const std::string &Fn, Rng &R) {
  const simpl::SimplFunc *F = P.Prog->function(Fn);
  InterpCtx &Ctx = P.Ctx;
  TestWorld W = buildWorld(*P.Prog, Ctx, R);
  std::vector<Value> Args;
  for (const auto &[Name, Ty] : F->Params)
    Args.push_back(randomValue(Ty, W, R, Ctx));
  Value Globals = randomGlobals(*P.Prog, W, R, Ctx);

  auto Apply = [&](const std::string &Prefix, const Value &S) {
    Ctx.reset();
    Value Fun = evalClosed(Ctx.FunDefs.at(Prefix + Fn), Ctx);
    for (const Value &A : Args)
      Fun = Fun.Fun(A);
    return runMonad(Fun, S, Ctx);
  };

  MonadResult CR = Apply("l2:", Globals);
  bool CFuel = Ctx.OutOfFuel;
  Value Lifted = Ctx.LiftGlobalHeap(Globals, Ctx);
  MonadResult AR = Apply("hl:", Lifted);
  bool AFuel = Ctx.OutOfFuel;
  if (CFuel || AFuel)
    return Diff::Skip;

  // abs_h_stmt: if A does not fail, C's behaviours are reproduced and C
  // does not fail.
  if (AR.Failed)
    return Diff::Ok; // vacuous (A failed; nothing to check)
  if (CR.Failed)
    return Diff::Mismatch;
  if (CR.Results.size() != 1 || AR.Results.size() != 1)
    return Diff::Mismatch;
  const auto &CRes = CR.Results[0];
  const auto &ARes = AR.Results[0];
  if (CRes.IsExn != ARes.IsExn || !Value::equal(CRes.V, ARes.V))
    return Diff::Mismatch;
  Value LiftedFinal = Ctx.LiftGlobalHeap(CRes.State, Ctx);
  return liftedEq(LiftedFinal, ARes.State, P.HL->lifted(), W, Ctx)
             ? Diff::Ok
             : Diff::Mismatch;
}

const char *SwapSrc = "void swap(unsigned *a, unsigned *b) {\n"
                      "  unsigned t = *a;\n"
                      "  *a = *b;\n"
                      "  *b = t;\n"
                      "}\n";

const char *ReverseSrc =
    "struct node { struct node *next; unsigned data; };\n"
    "struct node *reverse(struct node *list) {\n"
    "  struct node *rev = NULL;\n"
    "  while (list) {\n"
    "    struct node *next = list->next;\n"
    "    list->next = rev; rev = list; list = next;\n"
    "  }\n"
    "  return rev;\n"
    "}\n";

const char *SuzukiSrc =
    "struct node { struct node *next; int data; };\n"
    "int suzuki(struct node *w, struct node *x, struct node *y,\n"
    "           struct node *z) {\n"
    "  w->next = x; x->next = y; y->next = z; x->next = z;\n"
    "  w->data = 1; x->data = 2; y->data = 3; z->data = 4;\n"
    "  return w->next->next->data;\n"
    "}\n";

const char *GlobalsSrc = "unsigned counter = 0;\n"
                         "unsigned bump(unsigned *p) {\n"
                         "  counter = counter + *p;\n"
                         "  *p = counter;\n"
                         "  return counter;\n"
                         "}\n";

const char *CallSrc = "unsigned get(unsigned *p) { return *p; }\n"
                      "void put(unsigned *p, unsigned v) { *p = v; }\n"
                      "void move(unsigned *a, unsigned *b) {\n"
                      "  unsigned v = get(a);\n"
                      "  put(b, v);\n"
                      "}\n";

} // namespace

TEST(HeapAbs, SwapLiftsAndMatchesFig5) {
  HLPipeline P(SwapSrc);
  const HLResult &R = P.result("swap");
  ASSERT_TRUE(R.Lifted);
  std::string Out = printTerm(R.AppliedBody);
  // Fig 5: guards become is_valid_w32; accesses become s[p] / s[p := v].
  EXPECT_NE(Out.find("is_valid_w32"), std::string::npos) << Out;
  EXPECT_NE(Out.find("s[a]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("s[b := "), std::string::npos) << Out;
  // No byte-level operations remain.
  EXPECT_EQ(Out.find("heap'"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("ptr_aligned"), std::string::npos) << Out;
}

TEST(HeapAbs, SwapDifferential) {
  HLPipeline P(SwapSrc);
  EXPECT_TRUE(runTrials(300, 21,
                        [&](Rng &R) { return checkHLOnce(P, "swap", R); }));
}

TEST(HeapAbs, ReverseLiftsAndDifferential) {
  HLPipeline P(ReverseSrc);
  ASSERT_TRUE(P.result("reverse").Lifted);
  std::string Out = printTerm(P.result("reverse").AppliedBody);
  EXPECT_NE(Out.find("is_valid_node_C"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[list"), std::string::npos) << Out;
  EXPECT_TRUE(runTrials(200, 22, [&](Rng &R) {
    return checkHLOnce(P, "reverse", R);
  }));
}

TEST(HeapAbs, SuzukiDifferential) {
  HLPipeline P(SuzukiSrc);
  ASSERT_TRUE(P.result("suzuki").Lifted);
  EXPECT_TRUE(runTrials(300, 23, [&](Rng &R) {
    return checkHLOnce(P, "suzuki", R);
  }));
}

TEST(HeapAbs, SuzukiComputesFourOnDistinctNodes) {
  HLPipeline P(SuzukiSrc);
  InterpCtx &Ctx = P.Ctx;
  Rng R(99);
  TestWorld W = buildWorld(*P.Prog, Ctx, R);
  const auto &Nodes = W.Objects.at("node_C");
  ASSERT_GE(Nodes.size(), 4u);
  Value Globals = randomGlobals(*P.Prog, W, R, Ctx);
  Value Lifted = Ctx.LiftGlobalHeap(Globals, Ctx);
  Value Fun = evalClosed(Ctx.FunDefs.at("hl:suzuki"), Ctx);
  for (unsigned I = 0; I != 4; ++I)
    Fun = Fun.Fun(Value::ptr(Nodes[I], "node_C"));
  Ctx.reset();
  MonadResult MR = runMonad(Fun, Lifted, Ctx);
  ASSERT_FALSE(MR.Failed);
  ASSERT_EQ(MR.Results.size(), 1u);
  EXPECT_EQ(static_cast<long long>(MR.Results[0].V.N), 4);
}

TEST(HeapAbs, GlobalsMixDifferential) {
  HLPipeline P(GlobalsSrc);
  ASSERT_TRUE(P.result("bump").Lifted);
  EXPECT_TRUE(runTrials(300, 24,
                        [&](Rng &R) { return checkHLOnce(P, "bump", R); }));
}

TEST(HeapAbs, CallsDifferential) {
  HLPipeline P(CallSrc);
  ASSERT_TRUE(P.result("move").Lifted);
  EXPECT_TRUE(runTrials(200, 25,
                        [&](Rng &R) { return checkHLOnce(P, "move", R); }));
}

TEST(HeapAbs, DerivationLeavesAreHLRules) {
  HLPipeline P(SwapSrc);
  std::set<std::string> Axs, Oracles;
  collectLeaves(P.result("swap").Corres, Axs, Oracles);
  for (const std::string &A : Axs)
    EXPECT_TRUE(A.rfind("HL.", 0) == 0) << "unexpected axiom " << A;
  // The swap derivation is pure rule application: no oracles at all.
  EXPECT_TRUE(Oracles.empty());
  // And the derivation is substantial (one instantiation per node).
  EXPECT_GT(derivSize(P.result("swap").Corres), 20u);
}

TEST(HeapAbs, CorrectTheoremStatement) {
  HLPipeline P(SwapSrc);
  const Thm &T = P.result("swap").Corres;
  std::vector<TermRef> Args;
  TermRef Head = stripApp(T.prop(), Args);
  EXPECT_TRUE(Head->isConst(names::AbsHStmt));
  ASSERT_EQ(Args.size(), 2u);
  // The concrete side is the L2 body.
  EXPECT_TRUE(termEq(Args[1], P.L2.at("swap").AppliedBody));
}

TEST(HeapAbs, RuleInventoryRegistered) {
  HLPipeline P(SwapSrc);
  EXPECT_GE(HeapAbstraction::ruleCount(), 15u);
  EXPECT_TRUE(Inventory::instance().hasAxiom("HL.bind"));
  EXPECT_TRUE(Inventory::instance().hasAxiom("HL.read.w32"));
  EXPECT_TRUE(Inventory::instance().hasAxiom("HL.write.w32"));
  EXPECT_TRUE(Inventory::instance().hasAxiom("HL.ptr_guard.w32"));
}

TEST(HeapAbs, HeapLiftSemantics) {
  // heap_lift (Fig 4): Some value iff tagged + aligned + in range.
  HLPipeline P(SwapSrc);
  InterpCtx &Ctx = P.Ctx;
  Rng R(7);
  TestWorld W = buildWorld(*P.Prog, Ctx, R);
  uint32_t Obj = W.Objects.at("word32")[0];
  std::map<std::string, Value> GF;
  GF.emplace(simpl::heapFieldName(), Value::heap(W.Heap));
  Value G = Value::record(simpl::globalsRecName(), GF);
  Value L = Ctx.LiftGlobalHeap(G, Ctx);
  const Value &Valid = L.Rec->at("is_valid_w32");
  EXPECT_TRUE(Valid.Fun(Value::ptr(Obj, "word32")).B);
  EXPECT_FALSE(Valid.Fun(Value::ptr(0, "word32")).B);       // NULL
  EXPECT_FALSE(Valid.Fun(Value::ptr(Obj + 1, "word32")).B); // misaligned
  EXPECT_FALSE(Valid.Fun(Value::ptr(0x9000, "word32")).B);  // untagged
  // The lifted value agrees with the byte decoding.
  const Value &Heap = L.Rec->at("heap_w32");
  EXPECT_TRUE(Value::equal(Heap.Fun(Value::ptr(Obj, "word32")),
                           Ctx.decode(*W.Heap, Obj, wordTy(32))));
}
