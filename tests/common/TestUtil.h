//===- TestUtil.h - Shared helpers for the test suite -----------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random-state generation and differential refinement checking shared by
/// the test binaries. A TestWorld allocates a handful of typed, tagged
/// objects per heap type so that pointer-typed arguments can point at
/// real, valid objects (or NULL), which is what exercises both the guard
/// logic and the heap-abstraction semantics.
///
//===----------------------------------------------------------------------===//

#ifndef AC_TESTS_TESTUTIL_H
#define AC_TESTS_TESTUTIL_H

#include "monad/L1.h"
#include "monad/L2.h"
#include "monad/SimplInterp.h"
#include "hol/GroundEval.h"

#include <gtest/gtest.h>

#include <random>

namespace ac::test {

using namespace ac;
using namespace ac::hol;
using namespace ac::monad;

/// Deterministic PRNG for reproducible tests.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b9) {}

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  /// Uniform-ish value in [0, N).
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
  bool flip() { return next() & 1; }

private:
  uint64_t State;
};

/// A concrete heap world: a few objects of every heap type the program
/// uses, correctly aligned and type-tagged.
struct TestWorld {
  std::shared_ptr<HeapVal> Heap = std::make_shared<HeapVal>();
  /// typeStr(pointee) -> object addresses.
  std::map<std::string, std::vector<uint32_t>> Objects;

  const std::vector<uint32_t> *objectsOf(const std::string &TyName) const {
    auto It = Objects.find(TyName);
    return It == Objects.end() ? nullptr : &It->second;
  }
};

/// Allocates \p PerType objects of every heap type in \p Prog.
inline TestWorld buildWorld(const simpl::SimplProgram &Prog, InterpCtx &Ctx,
                            Rng &R, unsigned PerType = 4) {
  TestWorld W;
  uint32_t Cursor = 0x1000;
  for (const TypeRef &T : Prog.HeapTypes) {
    unsigned Size = Ctx.sizeOfTy(T);
    unsigned Align = Ctx.alignOfTy(T);
    std::string Name = typeStr(T);
    for (unsigned I = 0; I != PerType; ++I) {
      Cursor = (Cursor + Align - 1) / Align * Align;
      for (unsigned B = 0; B != Size; ++B)
        W.Heap->Bytes[Cursor + B] = static_cast<uint8_t>(R.next());
      Ctx.retype(*W.Heap, Cursor, T);
      W.Objects[Name].push_back(Cursor);
      Cursor += Size + static_cast<uint32_t>(R.below(16));
    }
  }
  return W;
}

/// Random value of a HOL type. Pointers point at world objects or NULL.
inline Value randomValue(const TypeRef &T, const TestWorld &W, Rng &R,
                         InterpCtx &Ctx) {
  if (isWordTy(T) || isSwordTy(T)) {
    unsigned Bits = wordBits(T);
    Int128 Raw;
    // Mix small values (exercise boundary arithmetic) with full-range.
    switch (R.below(4)) {
    case 0:
      Raw = static_cast<Int128>(R.below(8));
      break;
    case 1:
      Raw = static_cast<Int128>(wordMaxVal(Bits)) -
            static_cast<Int128>(R.below(8));
      break;
    default:
      Raw = static_cast<Int128>(R.next());
      break;
    }
    return Value::num(normalizeToType(Raw, T), T);
  }
  if (T->isCon("nat") || T->isCon("int"))
    return Value::num(static_cast<Int128>(R.below(1000)), T);
  if (T->isCon("bool"))
    return Value::boolean(R.flip());
  if (T->isCon("unit"))
    return Value::unit();
  if (isPtrTy(T)) {
    std::string Name = typeStr(T->arg(0));
    const std::vector<uint32_t> *Objs = W.objectsOf(Name);
    if (!Objs || Objs->empty() || R.below(4) == 0)
      return Value::ptr(0, Name);
    return Value::ptr((*Objs)[R.below(Objs->size())], Name);
  }
  return Ctx.defaultValue(T);
}

/// Builds a globals record: the world heap plus random global variables.
inline Value randomGlobals(const simpl::SimplProgram &Prog,
                           const TestWorld &W, Rng &R, InterpCtx &Ctx) {
  const RecordInfo *RI = Prog.Records.lookup(simpl::globalsRecName());
  std::map<std::string, Value> Fields;
  for (const auto &[Name, Ty] : RI->Fields) {
    if (Name == simpl::heapFieldName())
      Fields.emplace(Name, Value::heap(W.Heap));
    else
      Fields.emplace(Name, randomValue(Ty, W, R, Ctx));
  }
  return Value::record(simpl::globalsRecName(), std::move(Fields));
}

/// Outcome of one differential trial.
enum class Diff {
  Ok,       ///< behaviours agree
  Skip,     ///< fuel ran out somewhere; inconclusive
  Mismatch, ///< refinement violated
};

/// Checks the L1 refinement on one random state: every Simpl behaviour
/// must be reproduced by the L1 monad (same final states, same
/// failure/fault classification).
inline Diff checkL1Once(const simpl::SimplProgram &Prog,
                        const std::string &Fn, InterpCtx &Ctx, Rng &R) {
  const simpl::SimplFunc *F = Prog.function(Fn);
  TestWorld W = buildWorld(Prog, Ctx, R);
  std::vector<Value> Args;
  for (const auto &[Name, Ty] : F->Params)
    Args.push_back(randomValue(Ty, W, R, Ctx));
  Value Globals = randomGlobals(Prog, W, R, Ctx);

  Ctx.reset();
  SimplOutcome SO = runSimplFunction(*F, Args, Globals, Ctx);
  if (SO.K == SimplOutcome::Kind::Stuck)
    return Diff::Skip;

  Ctx.reset();
  Value M = evalClosed(Ctx.FunDefs.at("l1:" + Fn), Ctx);
  Value S0 = initialSimplState(*F, Ctx, Args, Globals);
  MonadResult MR = runMonad(M, S0, Ctx);
  if (Ctx.OutOfFuel)
    return Diff::Skip;

  if (SO.K == SimplOutcome::Kind::Fault)
    return MR.Failed ? Diff::Ok : Diff::Mismatch;
  if (MR.Failed || MR.Results.size() != 1 || MR.Results[0].IsExn)
    return Diff::Mismatch;
  return Value::equal(MR.Results[0].State, SO.State) ? Diff::Ok
                                                     : Diff::Mismatch;
}

/// Checks the L2 refinement on one random state: the lifted function,
/// applied to the argument values, must produce the callee's return value
/// and final globals.
inline Diff checkL2Once(const simpl::SimplProgram &Prog,
                        const std::string &Fn, InterpCtx &Ctx, Rng &R) {
  const simpl::SimplFunc *F = Prog.function(Fn);
  TestWorld W = buildWorld(Prog, Ctx, R);
  std::vector<Value> Args;
  for (const auto &[Name, Ty] : F->Params)
    Args.push_back(randomValue(Ty, W, R, Ctx));
  Value Globals = randomGlobals(Prog, W, R, Ctx);

  Ctx.reset();
  SimplOutcome SO = runSimplFunction(*F, Args, Globals, Ctx);
  if (SO.K == SimplOutcome::Kind::Stuck)
    return Diff::Skip;

  Ctx.reset();
  Value Fun = evalClosed(Ctx.FunDefs.at("l2:" + Fn), Ctx);
  for (const Value &A : Args) {
    assert(Fun.K == Value::Kind::Fun);
    Fun = Fun.Fun(A);
  }
  MonadResult MR = runMonad(Fun, Globals, Ctx);
  if (Ctx.OutOfFuel)
    return Diff::Skip;

  if (SO.K == SimplOutcome::Kind::Fault)
    return MR.Failed ? Diff::Ok : Diff::Mismatch;
  if (MR.Failed || MR.Results.size() != 1 || MR.Results[0].IsExn)
    return Diff::Mismatch;
  const MonadResult::Res &Res = MR.Results[0];
  // Final globals agree.
  if (!Value::equal(Res.State, SO.State.Rec->at("globals")))
    return Diff::Mismatch;
  // Return value agrees.
  if (F->RetTy &&
      !Value::equal(Res.V, SO.State.Rec->at(simpl::retVarName())))
    return Diff::Mismatch;
  return Diff::Ok;
}

/// Runs \p Trials random trials of a checker, requiring every trial to be
/// Ok or Skip, and at least one Ok.
template <typename Checker>
inline ::testing::AssertionResult
runTrials(unsigned Trials, uint64_t Seed, Checker Check) {
  unsigned OkCount = 0;
  for (unsigned I = 0; I != Trials; ++I) {
    Rng R(Seed + I * 7919);
    Diff D = Check(R);
    if (D == Diff::Mismatch)
      return ::testing::AssertionFailure()
             << "refinement mismatch on trial " << I;
    if (D == Diff::Ok)
      ++OkCount;
  }
  if (OkCount == 0)
    return ::testing::AssertionFailure() << "all trials were inconclusive";
  return ::testing::AssertionSuccess();
}

} // namespace ac::test

#endif // AC_TESTS_TESTUTIL_H
