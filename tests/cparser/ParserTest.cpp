//===- ParserTest.cpp - Lexer/parser/Sema ----------------------------------===//

#include "cparser/Parser.h"
#include "cparser/Sema.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::cparser;

namespace {

std::unique_ptr<TranslationUnit> parseOk(const std::string &Src) {
  DiagEngine Diags;
  auto TU = parseTranslationUnit(Src, Diags);
  EXPECT_TRUE(TU != nullptr) << Diags.str();
  if (TU)
    EXPECT_TRUE(checkTranslationUnit(*TU, Diags)) << Diags.str();
  return TU;
}

bool parseFails(const std::string &Src) {
  DiagEngine Diags;
  auto TU = parseTranslationUnit(Src, Diags);
  if (!TU)
    return true;
  return !checkTranslationUnit(*TU, Diags);
}

} // namespace

TEST(Parser, MaxFunction) {
  auto TU = parseOk("int max(int a, int b) {\n"
                    "  if (a < b)\n"
                    "    return b;\n"
                    "  return a;\n"
                    "}\n");
  ASSERT_TRUE(TU);
  const FuncDecl *F = TU->function("max");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Params.size(), 2u);
  EXPECT_TRUE(F->RetType->isInt());
  EXPECT_EQ(TU->SourceLines, 5u);
}

TEST(Parser, StructsAndLayout) {
  auto TU = parseOk("struct node { struct node *next; unsigned data; };\n"
                    "unsigned get(struct node *p) { return p->data; }\n");
  ASSERT_TRUE(TU);
  const CStructInfo *Info = TU->Layout.lookupStruct("node");
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Size, 8u);
  EXPECT_EQ(Info->Align, 4u);
  EXPECT_EQ(Info->field("data")->Offset, 4u);
}

TEST(Parser, StructPadding) {
  auto TU = parseOk("struct mix { char c; unsigned x; short s; };\n"
                    "int dummy(void) { return 0; }\n");
  ASSERT_TRUE(TU);
  const CStructInfo *Info = TU->Layout.lookupStruct("mix");
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->field("x")->Offset, 4u);
  EXPECT_EQ(Info->field("s")->Offset, 8u);
  EXPECT_EQ(Info->Size, 12u);
}

TEST(Parser, CompoundAssignDesugars) {
  auto TU = parseOk("unsigned f(unsigned x) { x += 2; x++; return x; }\n");
  const FuncDecl *F = TU->function("f");
  const Stmt &S = *F->Body->Body[0];
  ASSERT_EQ(S.K, Stmt::Kind::Assign);
  EXPECT_EQ(S.Value->K, Expr::Kind::Binary);
  EXPECT_EQ(S.Value->BOp, BinOp::Add);
}

TEST(Parser, SizeofAndCasts) {
  auto TU = parseOk("struct pairy { unsigned a; unsigned b; };\n"
                    "unsigned f(void) { return sizeof(struct pairy); }\n"
                    "int g(unsigned u) { return (int)u; }\n");
  const FuncDecl *F = TU->function("f");
  const Stmt &Ret = *F->Body->Body[0];
  // sizeof is resolved to an unsigned constant by Sema.
  ASSERT_EQ(Ret.Value->K, Expr::Kind::IntLit);
  EXPECT_EQ(Ret.Value->IntValue, 8);
  EXPECT_FALSE(Ret.Value->Type->isSigned());
}

TEST(Parser, ArrayIndexDesugarsToDeref) {
  auto TU =
      parseOk("unsigned f(unsigned *p) { return p[3]; }\n");
  const FuncDecl *F = TU->function("f");
  const Stmt &Ret = *F->Body->Body[0];
  // p[3] == *(p + 3).
  const Expr *E = Ret.Value.get();
  ASSERT_EQ(E->K, Expr::Kind::Unary);
  EXPECT_EQ(E->UOp, UnOp::Deref);
}

TEST(Parser, ForLoopsAndBreakContinue) {
  parseOk("int sum(int n) {\n"
          "  int s = 0;\n"
          "  for (int i = 0; i < n; i++) {\n"
          "    if (i == 3) continue;\n"
          "    if (i > 100) break;\n"
          "    s = s + i;\n"
          "  }\n"
          "  return s;\n"
          "}\n");
}

TEST(Sema, RejectsOutsideSubset) {
  EXPECT_TRUE(parseFails("int f(void) { goto end; end: return 0; }"));
  EXPECT_TRUE(parseFails("union u { int a; };"));
  EXPECT_TRUE(parseFails("float f(void) { return 0; }"));
  EXPECT_TRUE(parseFails("int f(int x) { switch (x) { } return 0; }"));
  // Address of a local (no references to local variables).
  EXPECT_TRUE(parseFails("int f(void) { int x = 0; int *p = &x; "
                          "return *p; }"));
  // Uncontrolled side-effects in expressions.
  EXPECT_TRUE(parseFails("int f(int x) { return x++; }"));
}

TEST(Sema, TypeErrors) {
  EXPECT_TRUE(parseFails("int f(void) { return y; }"));
  EXPECT_TRUE(parseFails("int f(int *p) { return p->data; }"));
  EXPECT_TRUE(parseFails("int f(int x) { x = f; return 0; }"));
  EXPECT_TRUE(parseFails("void g(void) {} int f(void) { return g(); }"));
  EXPECT_TRUE(parseFails("int f(int x) { int x = 2; return x; }"));
}

TEST(Sema, UsualArithmeticConversions) {
  auto TU = parseOk("unsigned f(int s, unsigned u) { return s + u; }\n");
  const FuncDecl *F = TU->function("f");
  const Stmt &Ret = *F->Body->Body[0];
  // s + u has unsigned type; s gets an inserted cast.
  const Expr *Sum = Ret.Value.get();
  ASSERT_EQ(Sum->K, Expr::Kind::Binary);
  EXPECT_TRUE(Sum->Type->isInt());
  EXPECT_FALSE(Sum->Type->isSigned());
  EXPECT_EQ(Sum->A->K, Expr::Kind::Cast);
}

TEST(Sema, PromotionOfNarrowTypes) {
  auto TU = parseOk("int f(char a, char b) { return a + b; }\n");
  const FuncDecl *F = TU->function("f");
  const Expr *Sum = F->Body->Body[0]->Value.get();
  ASSERT_EQ(Sum->K, Expr::Kind::Binary);
  EXPECT_EQ(Sum->Type->bits(), 32u);
  EXPECT_TRUE(Sum->Type->isSigned());
}

TEST(Sema, PointerComparisonsAndNull) {
  parseOk("struct node { struct node *next; };\n"
          "int empty(struct node *p) { return p == NULL; }\n");
}

TEST(Sema, HeapAddressOfIsAllowed) {
  parseOk("struct node { unsigned data; };\n"
          "unsigned *field(struct node *p) { return &p->data; }\n");
}

TEST(Parser, Recursion) {
  parseOk("unsigned fact(unsigned n) {\n"
          "  if (n == 0) return 1;\n"
          "  return n * fact(n - 1);\n"
          "}\n");
}
