//===- RouterTest.cpp - The consistent-hash fleet front-end ---------------===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The acrouter routing contract (docs/PROTOCOL.md "Router"): keys are
/// fingerprints of request *content* (correlation ids and deadlines must
/// not move a request between shards), the ring maps keys to shards
/// stably under --shard flag reordering, requests forward to live shards
/// and reroute off dead ones with byte-identical answers, the bounded
/// in-flight window answers `busy` + retry_after without rerouting, and
/// deadlines are enforced in the router itself.
///
//===----------------------------------------------------------------------===//

#include "router/Router.h"
#include "service/CheckRunner.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/FaultInject.h"
#include "support/Fingerprint.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>

using namespace ac;
using namespace ac::router;
using service::CheckRequest;
using service::CheckResponse;

namespace {

std::string freshDir(const std::string &Tag) {
  // Pid-unique root: concurrent invocations of this binary (ctest -j,
  // stress loops) must not race each other's remove_all.
  std::string D = ::testing::TempDir() + "ac-router-" +
                  std::to_string(::getpid()) + "/" + Tag;
  std::error_code EC;
  std::filesystem::remove_all(D, EC);
  std::filesystem::create_directories(D);
  return D;
}

CheckRequest requestFor(const std::string &Src) {
  CheckRequest Req;
  Req.Source = Src;
  return Req;
}

std::string snapshot(const CheckResponse &R) {
  std::string S;
  for (const service::FuncResult &F : R.Functions)
    S += "== " + F.Name + "\n" + F.FinalKey + "\n" + F.Render + "\n" +
         F.Pipeline + "\n";
  for (const std::string &D : R.Diagnostics)
    S += D + "\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Routing keys and the ring
//===----------------------------------------------------------------------===//

TEST(RoutingKey, ContentOnly) {
  CheckRequest A = requestFor("int f(int x) { return x; }\n");
  CheckRequest B = A;
  // Correlation, deadlines, caching, and job count are delivery detail,
  // not content: they must not move the request to another shard.
  B.TraceId = "different-trace";
  B.TimeoutMs = 1234;
  B.CacheDir = "/elsewhere";
  B.Jobs = 7;
  B.DebugDelayMs = 9;
  EXPECT_EQ(Router::routingKey(A), Router::routingKey(B));

  CheckRequest C = A;
  C.Source += " ";
  EXPECT_NE(Router::routingKey(A), Router::routingKey(C));

  CheckRequest D = A;
  D.WantSpecs = true;
  EXPECT_NE(Router::routingKey(A), Router::routingKey(D));

  // Per-function options are content, but their order is not.
  CheckRequest E1 = A, E2 = A;
  E1.NoHeapAbs = {"f", "g"};
  E2.NoHeapAbs = {"g", "f"};
  EXPECT_EQ(Router::routingKey(E1), Router::routingKey(E2));
  EXPECT_NE(Router::routingKey(A), Router::routingKey(E1));
}

TEST(Ring, StableUnderShardReordering) {
  std::string Dir = freshDir("ring-order");
  auto mkRouter = [&](std::vector<std::string> Shards,
                      const std::string &Sock) {
    RouterOptions O;
    O.SocketPath = Dir + "/" + Sock;
    O.Shards = std::move(Shards);
    O.HealthProbeMs = 10000; // probes irrelevant here
    return std::make_unique<Router>(std::move(O));
  };
  // Ports chosen dead: nothing answers, but the ring is pure arithmetic.
  std::vector<std::string> Fwd = {"127.0.0.1:1", "127.0.0.1:2",
                                  "127.0.0.1:3"};
  std::vector<std::string> Rev = {"127.0.0.1:3", "127.0.0.1:2",
                                  "127.0.0.1:1"};
  auto R1 = mkRouter(Fwd, "a.sock");
  auto R2 = mkRouter(Rev, "b.sock");
  ASSERT_TRUE(R1->start());
  ASSERT_TRUE(R2->start());
  for (uint64_t I = 0; I != 512; ++I) {
    support::Fingerprint FP;
    FP.u64(I);
    uint64_t Key = FP.digest();
    EXPECT_EQ(R1->options().Shards[R1->shardFor(Key)],
              R2->options().Shards[R2->shardFor(Key)])
        << "key " << I << " moved when --shard flags were reordered";
  }
  R1->stop();
  R2->stop();
}

TEST(Ring, SpreadsKeysAcrossShards) {
  std::string Dir = freshDir("ring-spread");
  RouterOptions O;
  O.SocketPath = Dir + "/r.sock";
  O.Shards = {"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3",
              "127.0.0.1:4"};
  O.HealthProbeMs = 10000;
  Router R(O);
  ASSERT_TRUE(R.start());
  std::vector<unsigned> Count(O.Shards.size(), 0);
  const unsigned N = 2000;
  for (uint64_t I = 0; I != N; ++I) {
    support::Fingerprint FP;
    FP.u64(I);
    ++Count[R.shardFor(FP.digest())];
  }
  for (size_t S = 0; S != Count.size(); ++S) {
    EXPECT_GT(Count[S], N / 20) << "shard " << S << " is starved";
    EXPECT_LT(Count[S], N / 2) << "shard " << S << " dominates the ring";
  }
  R.stop();
}

//===----------------------------------------------------------------------===//
// Live forwarding
//===----------------------------------------------------------------------===//

/// A fleet fixture: N real acd shards on loopback TCP plus a router on a
/// Unix socket, all in-process.
struct Fleet {
  std::vector<std::unique_ptr<service::Server>> Shards;
  std::unique_ptr<Router> R;
  std::string Sock;

  explicit Fleet(unsigned NumShards, unsigned Window = 8,
                 bool LocalFallback = true, unsigned ProbeMs = 50,
                 bool TraceLive = false) {
    std::string Dir = freshDir("fleet-" + std::to_string(NumShards) + "-" +
                               std::to_string(Window) +
                               (LocalFallback ? "-lf" : "-nolf"));
    RouterOptions RO;
    for (unsigned I = 0; I != NumShards; ++I) {
      service::ServerOptions SO;
      SO.SocketPath = "";
      SO.ListenAddr = "127.0.0.1:0";
      SO.Workers = 2;
      SO.ShardId = "s" + std::to_string(I);
      SO.TraceLive = TraceLive;
      auto S = std::make_unique<service::Server>(SO);
      EXPECT_TRUE(S->start());
      RO.Shards.push_back("127.0.0.1:" + std::to_string(S->tcpPort()));
      Shards.push_back(std::move(S));
    }
    Sock = Dir + "/r.sock";
    RO.SocketPath = Sock;
    RO.MaxInFlightPerShard = Window;
    RO.LocalFallback = LocalFallback;
    RO.HealthProbeMs = ProbeMs;
    RO.TraceLive = TraceLive;
    R = std::make_unique<Router>(RO);
    EXPECT_TRUE(R->start());
  }

  ~Fleet() {
    if (R)
      R->stop();
    for (auto &S : Shards)
      if (S)
        S->stop();
  }

  service::Client client() {
    service::Client C = service::Client::connect(Sock);
    EXPECT_TRUE(C.connected());
    return C;
  }
};

TEST(RouterLive, ForwardsAndMatchesLocalBytes) {
  Fleet F(2);
  service::Client C = F.client();
  std::string Err;
  CheckRequest Req =
      requestFor("unsigned int inc(unsigned int x) { return x + 1u; }\n");
  CheckResponse Via, Local = service::runLocalCheck(Req);
  ASSERT_TRUE(C.check(Req, Via, Err)) << Err;
  ASSERT_TRUE(Via.Ok) << Via.Message;
  EXPECT_EQ(snapshot(Via), snapshot(Local));

  support::Json Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_EQ(Stats.get("role").asString(), "router");
  EXPECT_EQ(Stats.get("completed").asInt(), 1);
  EXPECT_EQ(Stats.get("fallbacks").asInt(), 0) << "a live shard served it";
}

TEST(RouterLive, ReroutesOffDeadShardByteIdentically) {
  Fleet F(2, /*Window=*/8, /*LocalFallback=*/false, /*ProbeMs=*/60000);
  service::Client C = F.client();
  std::string Err;

  // Find sources landing on each shard so killing shard 0 provably
  // reroutes at least one of them.
  std::vector<CheckRequest> Reqs;
  for (int I = 0; Reqs.size() < 2 && I != 64; ++I) {
    CheckRequest Req = requestFor(
        "unsigned int f" + std::to_string(I) + "(unsigned int x) { return x + " +
        std::to_string(I) + "u; }\n");
    size_t Shard = F.R->shardFor(Router::routingKey(Req));
    if (Shard == Reqs.size())
      Reqs.push_back(Req);
  }
  ASSERT_EQ(Reqs.size(), 2u) << "could not find sources for both shards";

  std::vector<CheckResponse> Local;
  for (const CheckRequest &Req : Reqs)
    Local.push_back(service::runLocalCheck(Req));

  // Kill shard 0 without warning (stop() is graceful but the router is
  // not told; with a 60 s probe interval it still believes it healthy).
  F.Shards[0]->stop();
  F.Shards[0].reset();

  for (size_t I = 0; I != Reqs.size(); ++I) {
    CheckResponse Via;
    ASSERT_TRUE(C.check(Reqs[I], Via, Err)) << Err;
    ASSERT_TRUE(Via.Ok) << Via.Message;
    EXPECT_EQ(snapshot(Via), snapshot(Local[I]))
        << "request " << I << " diverged after the shard died";
  }
  support::Json Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_GE(Stats.get("rerouted").asInt(), 1)
      << "shard 0's request must have rerouted, not fallen back";
  EXPECT_EQ(Stats.get("fallbacks").asInt(), 0);
}

TEST(RouterLive, AllShardsDownFallsBackInProcess) {
  Fleet F(1, /*Window=*/8, /*LocalFallback=*/true, /*ProbeMs=*/60000);
  service::Client C = F.client();
  std::string Err;
  F.Shards[0]->stop();
  F.Shards[0].reset();

  CheckRequest Req =
      requestFor("unsigned int dbl(unsigned int x) { return x * 2u; }\n");
  CheckResponse Via, Local = service::runLocalCheck(Req);
  ASSERT_TRUE(C.check(Req, Via, Err)) << Err;
  ASSERT_TRUE(Via.Ok) << Via.Message;
  EXPECT_EQ(snapshot(Via), snapshot(Local));

  support::Json Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_EQ(Stats.get("fallbacks").asInt(), 1);
}

TEST(RouterLive, NoFallbackAnswersBusyWhenFleetIsDown) {
  Fleet F(1, /*Window=*/8, /*LocalFallback=*/false, /*ProbeMs=*/60000);
  service::Client C = F.client();
  std::string Err;
  F.Shards[0]->stop();
  F.Shards[0].reset();

  CheckRequest Req = requestFor("int g(int x) { return x; }\n");
  CheckResponse Via;
  ASSERT_TRUE(C.check(Req, Via, Err)) << Err;
  EXPECT_FALSE(Via.Ok);
  EXPECT_EQ(Via.Err, service::ErrorCode::Busy);
  EXPECT_GT(Via.RetryAfterMs, 0u);
}

TEST(RouterLive, WindowFullAnswersBusyWithRetryAfter) {
  // Window of 1 with one shard: a slow request (debug delay) occupies
  // the window; the next must get busy + retry_after, not queue behind.
  Fleet F(1, /*Window=*/1);
  service::Client Slow = F.client();
  service::Client Fast = F.client();
  std::string Err;

  CheckRequest SlowReq =
      requestFor("unsigned int s(unsigned int x) { return x; }\n");
  SlowReq.DebugDelayMs = 1500;

  std::thread Holder([&] {
    CheckResponse R;
    EXPECT_TRUE(Slow.check(SlowReq, R, Err));
  });
  // Wait until the slow request actually occupies the shard window.
  CheckResponse Busy;
  std::string FErr;
  bool SawBusy = false;
  for (int I = 0; I != 100 && !SawBusy; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    CheckRequest Probe = requestFor("int p(int x) { return x; }\n");
    CheckResponse R;
    ASSERT_TRUE(Fast.check(Probe, R, FErr)) << FErr;
    if (!R.Ok && R.Err == service::ErrorCode::Busy) {
      SawBusy = true;
      EXPECT_GT(R.RetryAfterMs, 0u);
      EXPECT_NE(R.Message.find("window"), std::string::npos) << R.Message;
    }
  }
  Holder.join();
  EXPECT_TRUE(SawBusy) << "the window never filled";

  // After the slow request finishes the window reopens.
  CheckRequest After = requestFor("int q(int x) { return x; }\n");
  CheckResponse R;
  ASSERT_TRUE(Fast.check(After, R, FErr)) << FErr;
  EXPECT_TRUE(R.Ok) << R.Message;
}

TEST(RouterLive, DeadlinePropagatesThroughTheRouter) {
  // The router forwards the *remaining* budget; the shard's watchdog
  // enforces it against the held request and the typed error comes back
  // through the router unchanged.
  Fleet F(1, /*Window=*/8, /*LocalFallback=*/true, /*ProbeMs=*/60000);
  service::Client C = F.client();
  std::string Err;

  CheckRequest Req =
      requestFor("unsigned int d(unsigned int x) { return x; }\n");
  Req.DebugDelayMs = 400;
  Req.TimeoutMs = 120;
  CheckResponse R;
  ASSERT_TRUE(C.check(Req, R, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, service::ErrorCode::DeadlineExceeded)
      << "deadline must propagate to the shard and be enforced";
}

TEST(RouterLive, DrainRefusesNewWork) {
  Fleet F(1);
  service::Client C = F.client();
  std::string Err;
  ASSERT_TRUE(C.drain(Err)) << Err;
  EXPECT_TRUE(F.R->draining());
  CheckRequest Req = requestFor("int z(int x) { return x; }\n");
  CheckResponse R;
  ASSERT_TRUE(C.check(Req, R, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Err, service::ErrorCode::Draining);
}

//===----------------------------------------------------------------------===//
// Fleet observability: trace propagation, winner attribution, federation
//===----------------------------------------------------------------------===//

TEST(RouterTrace, OneTraceIdChainsRouterAndShardSpans) {
  support::Trace::reset();
  {
    Fleet F(2, /*Window=*/8, /*LocalFallback=*/true, /*ProbeMs=*/50,
            /*TraceLive=*/true);
    service::Client C = F.client();
    std::string Err;
    CheckRequest Req =
        requestFor("unsigned int tr(unsigned int x) { return x + 3u; }\n");
    Req.TraceId = "fleet-trace-1";
    CheckResponse R;
    ASSERT_TRUE(C.check(Req, R, Err)) << Err;
    ASSERT_TRUE(R.Ok) << R.Message;
  } // ~Fleet: Router::stop() waits out every forward attempt, so all
    // spans have landed in the (process-shared) buffers by here.
  std::string Exported = support::Trace::exportJson(/*Reset=*/true);
  support::Trace::stop();

  support::Json J;
  std::string PErr;
  ASSERT_TRUE(support::Json::parse(Exported, J, PErr)) << PErr;
  ASSERT_TRUE(J.get("traceEvents").isArray());
  // The shards run in-process, so one export holds the whole hop chain:
  // router.request -> router.forward -> acd.request, all stamped with
  // the client's correlation id and with parent refs resolving.
  std::set<std::string> Names, Spans;
  std::vector<std::string> Parents;
  for (const support::Json &E : J.get("traceEvents").items()) {
    const support::Json &A = E.get("args");
    if (A.get("span").isString())
      Spans.insert(A.get("span").asString());
    if (!A.get("trace_id").isString() ||
        A.get("trace_id").asString() != "fleet-trace-1")
      continue;
    Names.insert(E.get("name").asString());
    if (A.get("parent").isString())
      Parents.push_back(A.get("parent").asString());
  }
  EXPECT_TRUE(Names.count("router.request")) << Exported.substr(0, 400);
  EXPECT_TRUE(Names.count("router.forward"));
  EXPECT_TRUE(Names.count("acd.request"));
  EXPECT_TRUE(Names.count("acd.queue_wait"));
  ASSERT_FALSE(Parents.empty());
  for (const std::string &P : Parents)
    EXPECT_TRUE(Spans.count(P)) << "unresolved parent span " << P;
  support::Trace::reset();
}

TEST(RouterTrace, HedgedRequestStampsBothShardsWithOneTraceId) {
  support::Trace::reset();
  {
    Fleet F(2, /*Window=*/8, /*LocalFallback=*/false, /*ProbeMs=*/60000,
            /*TraceLive=*/true);
    service::Client C = F.client();
    std::string Err;
    // Fire the hedge timer immediately; the debug delay keeps the
    // primary busy long enough that the duplicate really dispatches,
    // so the same correlation id lands on both shards.
    ASSERT_TRUE(support::FaultInject::arm("router.hedge.fire", 1));
    CheckRequest Req =
        requestFor("unsigned int ht(unsigned int x) { return x + 9u; }\n");
    Req.TraceId = "fleet-hedge-trace-1";
    Req.TimeoutMs = 10000; // hedging requires a deadline
    Req.DebugDelayMs = 200;
    CheckResponse R;
    ASSERT_TRUE(C.check(Req, R, Err)) << Err;
    ASSERT_TRUE(R.Ok) << R.Message;
    support::FaultInject::disarmAll();
  } // ~Fleet: the losing attempt has fully landed by here.
  std::string Exported = support::Trace::exportJson(/*Reset=*/true);
  support::Trace::stop();

  support::Json J;
  std::string PErr;
  ASSERT_TRUE(support::Json::parse(Exported, J, PErr)) << PErr;
  std::set<std::string> ShardsSeen;
  for (const support::Json &E : J.get("traceEvents").items()) {
    const support::Json &A = E.get("args");
    if (E.get("name").asString() != "acd.request")
      continue;
    if (!A.get("trace_id").isString() ||
        A.get("trace_id").asString() != "fleet-hedge-trace-1")
      continue;
    if (A.get("shard_id").isString())
      ShardsSeen.insert(A.get("shard_id").asString());
  }
  EXPECT_EQ(ShardsSeen.size(), 2u) << Exported.substr(0, 400);
  EXPECT_TRUE(ShardsSeen.count("s0"));
  EXPECT_TRUE(ShardsSeen.count("s1"));
  support::Trace::reset();
}

TEST(RouterLive, HedgeWinnerIsAttributedExactlyOnce) {
  Fleet F(2, /*Window=*/8, /*LocalFallback=*/false, /*ProbeMs=*/60000);
  service::Client C = F.client();
  std::string Err;

  // Force the hedge timer to fire immediately; the 200 ms debug delay
  // keeps the primary busy long enough that both attempts run — and
  // both eventually complete, which is exactly the double-count trap.
  ASSERT_TRUE(support::FaultInject::arm("router.hedge.fire", 1));
  CheckRequest Req =
      requestFor("unsigned int hw(unsigned int x) { return x + 7u; }\n");
  Req.TimeoutMs = 10000; // hedging requires a deadline
  Req.DebugDelayMs = 200;
  CheckResponse R;
  ASSERT_TRUE(C.check(Req, R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Message;
  support::FaultInject::disarmAll();

  // Routed counts both launches (made before either answered); Won is
  // claimed under the hedge lock before the response goes out — the
  // still-running loser cannot move either number.
  support::Json S;
  ASSERT_TRUE(C.stats(S, Err)) << Err;
  EXPECT_EQ(S.get("hedges").asInt(), 1);
  EXPECT_EQ(S.get("completed").asInt(), 1);
  int64_t Routed = 0, Won = 0;
  for (const support::Json &SJ : S.get("shards").items()) {
    Routed += SJ.get("routed").asInt();
    Won += SJ.get("won").asInt();
  }
  EXPECT_EQ(Routed, 2) << "primary and hedge must both be attributed";
  EXPECT_EQ(Won, 1) << "exactly one winner even when both attempts complete";
}

TEST(RouterLive, FederatedMetricsMergeIntoOneExposition) {
  Fleet F(2);
  service::Client C = F.client();
  std::string Err;
  CheckRequest Req =
      requestFor("unsigned int fm(unsigned int x) { return x + 9u; }\n");
  CheckResponse R;
  ASSERT_TRUE(C.check(Req, R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Message;

  std::string Body;
  ASSERT_TRUE(C.metricsText(Body, Err)) << Err;
  // The router's own counters.
  EXPECT_NE(Body.find("acrouter_requests_completed_total 1"),
            std::string::npos);
  // Winner attribution, labeled per shard address.
  EXPECT_NE(Body.find("acrouter_forward_winner_total{shard=\"127.0.0.1:"),
            std::string::npos);
  // Scraped shard blocks carry their shard_id label and role.
  EXPECT_NE(Body.find("shard_id=\"s0\""), std::string::npos);
  EXPECT_NE(Body.find("shard_id=\"s1\""), std::string::npos);
  EXPECT_NE(Body.find("role=\"shard\""), std::string::npos);
  // Every scraped block gets a freshness gauge against one scrape
  // instant.
  EXPECT_NE(Body.find("acd_scrape_age_seconds{shard_id=\"127.0.0.1:"),
            std::string::npos);
  // The serving shard's latency histogram survives the merge, exemplar
  // included.
  EXPECT_NE(Body.find("acd_request_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(Body.find(" # {trace_id=\""), std::string::npos);
  // Merged, not concatenated: one TYPE header per family even with two
  // shards scraped.
  const std::string TypeLine = "# TYPE acd_requests_received_total counter\n";
  size_t First = Body.find(TypeLine);
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Body.find(TypeLine, First + 1), std::string::npos)
      << "family header duplicated — expositions concatenated, not merged";
}

TEST(RouterLive, FleetOpReportsEveryShardsLiveStats) {
  Fleet F(2);
  service::Client C = F.client();
  std::string Err;
  CheckRequest Req =
      requestFor("unsigned int fl(unsigned int x) { return x + 11u; }\n");
  CheckResponse R;
  ASSERT_TRUE(C.check(Req, R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Message;

  support::Json Out;
  ASSERT_TRUE(C.fleet(Out, Err)) << Err;
  EXPECT_EQ(Out.get("op").asString(), "fleet");
  EXPECT_EQ(Out.get("role").asString(), "router");
  EXPECT_EQ(Out.get("completed").asInt(), 1);
  ASSERT_TRUE(Out.get("shard_stats").isArray());
  ASSERT_EQ(Out.get("shard_stats").items().size(), 2u);
  int64_t ShardCompleted = 0;
  for (const support::Json &D : Out.get("shard_stats").items()) {
    EXPECT_TRUE(D.get("up").asBool()) << D.get("addr").asString();
    ASSERT_TRUE(D.get("stats").get("ok").asBool());
    ShardCompleted +=
        D.get("stats").get("requests").get("completed").asInt();
  }
  EXPECT_EQ(ShardCompleted, 1) << "exactly one shard served the request";
}

} // namespace
