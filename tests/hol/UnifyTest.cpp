//===- UnifyTest.cpp - Pattern unification --------------------------------===//

#include "hol/Unify.h"

#include "hol/Builder.h"

#include <gtest/gtest.h>

using namespace ac::hol;

namespace {

TermRef var(const char *N, TypeRef Ty) { return Term::mkVar(N, 0, Ty); }

} // namespace

TEST(Unify, FirstOrder) {
  // ?x + 1 against 41 + 1.
  TermRef X = var("x", natTy());
  TermRef One = mkNumOf(natTy(), 1);
  TermRef Pat = mkPlus(X, One);
  TermRef T = mkPlus(mkNumOf(natTy(), 41), One);
  Subst S;
  ASSERT_TRUE(unifyTerms(Pat, T, S));
  EXPECT_TRUE(termEq(S.apply(Pat), T));
}

TEST(Unify, Clash) {
  TermRef Pat = mkPlus(var("x", natTy()), mkNumOf(natTy(), 1));
  TermRef T = mkTimes(mkNumOf(natTy(), 2), mkNumOf(natTy(), 1));
  Subst S;
  EXPECT_FALSE(unifyTerms(Pat, T, S));
}

TEST(Unify, OccursCheck) {
  // ?x against ?x + 1 must fail.
  TermRef X = var("x", natTy());
  TermRef T = mkPlus(X, mkNumOf(natTy(), 1));
  Subst S;
  EXPECT_FALSE(unifyTerms(X, T, S));
}

TEST(Unify, BothSidesSchematic) {
  // The paper's algorithm instantiates schematics in the *goal* from the
  // rule: ?A against f ?B.
  TermRef A = var("A", natTy());
  TermRef B = var("B", natTy());
  TermRef FB = mkPlus(B, mkNumOf(natTy(), 1));
  Subst S;
  ASSERT_TRUE(unifyTerms(A, FB, S));
  EXPECT_TRUE(termEq(S.apply(A), S.apply(FB)));
}

TEST(Unify, MillerPattern) {
  // ?F applied to a bound variable: %x. ?F x  ==  %x. x + 1
  TypeRef N = natTy();
  TermRef F = var("F", funTy(N, N));
  TermRef XF = Term::mkFree("x", N);
  TermRef Lhs = lambdaFree("x", N, Term::mkApp(F, XF));
  TermRef Rhs = lambdaFree("x", N, mkPlus(XF, mkNumOf(N, 1)));
  Subst S;
  ASSERT_TRUE(unifyTerms(Lhs, Rhs, S));
  // ?F must be %x. x + 1.
  const TermRef *Bound = S.lookup("F", 0);
  ASSERT_NE(Bound, nullptr);
  EXPECT_TRUE(termEq(S.apply(Lhs), S.apply(Rhs)));
  TermRef App = betaNorm(Term::mkApp(*Bound, mkNumOf(N, 41)));
  EXPECT_TRUE(termEq(App, mkPlus(mkNumOf(N, 41), mkNumOf(N, 1))));
}

TEST(Unify, PatternScopeViolation) {
  // %x. ?F  ==  %x. x  has no solution (?F cannot capture x).
  TypeRef N = natTy();
  TermRef F = var("F", N);
  TermRef Lhs = Term::mkLam("x", N, F);
  TermRef Rhs = Term::mkLam("x", N, Term::mkBound(0));
  Subst S;
  EXPECT_FALSE(unifyTerms(Lhs, Rhs, S));
}

TEST(Unify, TypeVariables) {
  // Polymorphic eq: ?a = ?b at type 'v against 1 = 2 at nat.
  TypeRef V = Type::var("v");
  TermRef A = var("a", V), B = var("b", V);
  TermRef Pat = mkEq(A, B);
  TermRef T = mkEq(mkNumOf(natTy(), 1), mkNumOf(natTy(), 2));
  Subst S;
  ASSERT_TRUE(unifyTerms(Pat, T, S));
  EXPECT_TRUE(typeEq(S.applyTy(V), natTy()));
}

TEST(Unify, MatchIsOneSided) {
  // In matching mode the right side's schematics are rigid.
  TermRef X = var("x", natTy());
  TermRef Y = var("y", natTy());
  // Pattern ?x matches anything...
  EXPECT_TRUE(matchTerm(X, mkNumOf(natTy(), 3)).has_value());
  // ...including a rigid schematic; but a rigid constant cannot match a
  // schematic target.
  EXPECT_TRUE(matchTerm(X, Y).has_value());
  EXPECT_FALSE(matchTerm(mkNumOf(natTy(), 3), Y).has_value());
}

TEST(Unify, FreshenSchematics) {
  TermRef X = var("x", natTy());
  TermRef T = mkPlus(X, X);
  TermRef F = freshenSchematics(T, 500);
  EXPECT_FALSE(termEq(T, F));
  EXPECT_EQ(maxSchematicIndex(F), 500u);
}
