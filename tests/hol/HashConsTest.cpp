//===- HashConsTest.cpp - Hash-consing property suite ---------------------===//
//
// Randomized properties of the interned term/type representation
// (Term.h/Type.h/Intern.h):
//
//   * canonicity: building the same structure twice yields the same node
//     (pointer equality), and pointer equality holds *exactly* for full
//     structural identity — Lam display names and Free/Var types included;
//   * hash stability: node hashes are deterministic functions of the
//     structure termEq sees, so alpha-variant nodes hash alike;
//   * id uniqueness: intern ids never collide, across the term and the
//     type arena both;
//   * thread safety: 8 threads racing to intern the same and distinct
//     structures agree on canonical nodes and never duplicate ids
//     (scripts/tier1.sh replays this suite under ThreadSanitizer).
//
// The generators are seeded PRNGs, so every run checks the same terms.
//
//===----------------------------------------------------------------------===//

#include "hol/Builder.h"
#include "hol/Term.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <thread>
#include <vector>

using namespace ac::hol;

namespace {

using Rng = std::mt19937_64;

unsigned pick(Rng &R, unsigned N) {
  return static_cast<unsigned>(R() % N);
}

TypeRef randomType(Rng &R, unsigned Depth) {
  switch (pick(R, Depth == 0 ? 5u : 7u)) {
  case 0:
    return natTy();
  case 1:
    return boolTy();
  case 2:
    return wordTy(8u << pick(R, 3));
  case 3:
    return intTy();
  case 4:
    return Type::var("'t" + std::to_string(pick(R, 3)));
  case 5:
    return funTy(randomType(R, Depth - 1), randomType(R, Depth - 1));
  default:
    return ptrTy(randomType(R, Depth - 1));
  }
}

/// A random term over a small grammar. Interning does not typecheck, so
/// the generator is free to build ill-typed applications — the properties
/// under test are purely structural.
TermRef randomTerm(Rng &R, unsigned Depth) {
  switch (pick(R, Depth == 0 ? 5u : 7u)) {
  case 0:
    return Term::mkConst("k" + std::to_string(pick(R, 4)), randomType(R, 1));
  case 1:
    return Term::mkFree("x" + std::to_string(pick(R, 4)), randomType(R, 1));
  case 2:
    return Term::mkVar("V" + std::to_string(pick(R, 3)), pick(R, 2),
                       randomType(R, 1));
  case 3:
    return Term::mkBound(pick(R, 3));
  case 4:
    return Term::mkNum(static_cast<Int128>(R() % 1000), randomType(R, 0));
  case 5:
    return Term::mkLam("v" + std::to_string(pick(R, 2)), randomType(R, 1),
                       randomTerm(R, Depth - 1));
  default:
    return Term::mkApp(randomTerm(R, Depth - 1), randomTerm(R, Depth - 1));
  }
}

/// Reference implementation of the interner's equality: *full* structural
/// identity, strictly finer than termEq — Lam display names and Free/Var
/// types distinguish terms here. Written independently of the interner so
/// the test does not assume what it is checking.
bool structIdentical(const TermRef &A, const TermRef &B) {
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Term::Kind::Const:
  case Term::Kind::Free:
  case Term::Kind::Var:
    return A->name() == B->name() && A->index() == B->index() &&
           typeEq(A->type(), B->type());
  case Term::Kind::Bound:
    return A->index() == B->index();
  case Term::Kind::Num:
    return A->value() == B->value() && typeEq(A->type(), B->type());
  case Term::Kind::Lam:
    return A->name() == B->name() && typeEq(A->type(), B->type()) &&
           structIdentical(A->body(), B->body());
  case Term::Kind::App:
    return structIdentical(A->fun(), B->fun()) &&
           structIdentical(A->argTerm(), B->argTerm());
  }
  return false;
}

void collectIds(const TermRef &T, std::set<uint64_t> &TermIds,
                std::set<const Term *> &Seen) {
  if (!Seen.insert(T.get()).second)
    return;
  TermIds.insert(T->id());
  if (T->isLam())
    collectIds(T->body(), TermIds, Seen);
  if (T->isApp()) {
    collectIds(T->fun(), TermIds, Seen);
    collectIds(T->argTerm(), TermIds, Seen);
  }
}

} // namespace

/// Replaying one generator twice must reproduce every node pointer: the
/// second build of each structure is a pure lookup.
TEST(HashCons, CanonicalRebuild) {
  Rng R1(0xac5eed01), R2(0xac5eed01);
  for (int I = 0; I != 2000; ++I) {
    TermRef A = randomTerm(R1, 4);
    TermRef B = randomTerm(R2, 4);
    ASSERT_EQ(A.get(), B.get()) << "iteration " << I;
    ASSERT_EQ(A->id(), B->id());
    ASSERT_EQ(A->hash(), B->hash());
  }
}

/// Pointer equality ⇔ full structural identity, over random cross pairs.
/// The ⇐ direction is the hash-consing guarantee; ⇒ is interner
/// correctness (no two distinct structures share a node).
TEST(HashCons, PointerEqIffStructIdentical) {
  Rng R(0xac5eed02);
  std::vector<TermRef> Pool;
  // Depth 2 keeps the structure space small enough that identical pairs
  // actually occur (the ⇐ direction needs witnesses).
  for (int I = 0; I != 400; ++I)
    Pool.push_back(randomTerm(R, 2));
  size_t IdenticalPairs = 0;
  for (size_t I = 0; I != Pool.size(); ++I)
    for (size_t J = I + 1; J != Pool.size(); ++J) {
      bool SameNode = Pool[I].get() == Pool[J].get();
      ASSERT_EQ(SameNode, structIdentical(Pool[I], Pool[J]))
          << "pair " << I << "," << J;
      IdenticalPairs += SameNode;
    }
  EXPECT_GT(IdenticalPairs, 0u) << "generator never repeated a structure; "
                                   "the iff's ⇐ direction went untested";
}

/// Pointer equality must imply termEq (the fast path the kernel relies
/// on), and node hashes must be stable under the structure termEq
/// ignores: alpha-variant lambdas and retyped frees hash alike.
TEST(HashCons, HashConsistentWithTermEq) {
  Rng R(0xac5eed03);
  for (int I = 0; I != 500; ++I) {
    TermRef Body = randomTerm(R, 3);
    TermRef L1 = Term::mkLam("a", natTy(), Body);
    TermRef L2 = Term::mkLam("b", natTy(), Body);
    // Different display names: distinct interned nodes, alpha-equal,
    // equal hashes (hash must refine termEq, not the interner equality).
    ASSERT_NE(L1.get(), L2.get());
    ASSERT_TRUE(termEq(L1, L2));
    ASSERT_EQ(L1->hash(), L2->hash());
  }
  // Free variables are compared by name only under termEq; their types
  // distinguish interned nodes but may not influence the hash.
  TermRef F1 = Term::mkFree("h", natTy());
  TermRef F2 = Term::mkFree("h", boolTy());
  ASSERT_NE(F1.get(), F2.get());
  ASSERT_EQ(F1->hash(), F2->hash());
}

/// Intern ids are unique across *both* arenas: no term ever shares an id
/// with another term, a type with another type, nor terms with types —
/// the simplifier memo and the rule index key on the raw id.
TEST(HashCons, NoCrossArenaIdCollisions) {
  Rng R(0xac5eed04);
  std::set<uint64_t> TermIds, TypeIds;
  std::set<const Term *> SeenTerms;
  size_t DistinctTerms = 0;
  {
    std::set<const Term *> Roots;
    for (int I = 0; I != 1000; ++I) {
      TermRef T = randomTerm(R, 4);
      if (Roots.insert(T.get()).second)
        collectIds(T, TermIds, SeenTerms);
    }
    DistinctTerms = SeenTerms.size();
  }
  ASSERT_EQ(TermIds.size(), DistinctTerms)
      << "two distinct term nodes share an intern id";
  ASSERT_EQ(TermIds.count(0), 0u) << "id 0 is reserved";

  std::set<const Type *> SeenTypes;
  for (int I = 0; I != 1000; ++I) {
    TypeRef Ty = randomType(R, 3);
    if (SeenTypes.insert(Ty.get()).second)
      TypeIds.insert(Ty->id());
  }
  ASSERT_EQ(TypeIds.size(), SeenTypes.size())
      << "two distinct type nodes share an intern id";
  ASSERT_EQ(TypeIds.count(0), 0u) << "id 0 is reserved";

  // The arenas draw from one process-wide counter, so the id sets are
  // disjoint.
  for (uint64_t Id : TypeIds)
    ASSERT_EQ(TermIds.count(Id), 0u)
        << "type id " << Id << " collides with a term id";
}

/// 8 threads interning the same generator output must agree on every
/// canonical pointer, while thread-private structures get globally unique
/// ids. Run under TSan this doubles as the concurrency gate for the
/// intern store's sharded locking.
TEST(HashCons, ConcurrentInternStress) {
  constexpr unsigned NThreads = 8;
  constexpr int NShared = 1500, NPrivate = 200;

  std::vector<std::vector<TermRef>> Shared(NThreads);
  std::vector<std::vector<TermRef>> Private(NThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NThreads; ++T)
    Threads.emplace_back([T, &Shared, &Private] {
      // Same seed in every thread: all 8 race to intern each structure.
      Rng RS(0xac5eed05);
      for (int I = 0; I != NShared; ++I)
        Shared[T].push_back(randomTerm(RS, 3));
      // Thread-specific frees: each thread also mints nodes nobody else
      // builds, exercising fresh-insertion against concurrent lookups.
      Rng RP(0xac5eed06 + T);
      for (int I = 0; I != NPrivate; ++I)
        Private[T].push_back(Term::mkApp(
            Term::mkFree("t" + std::to_string(T) + "_" + std::to_string(I),
                         natTy()),
            randomTerm(RP, 2)));
    });
  for (std::thread &Th : Threads)
    Th.join();

  for (unsigned T = 1; T != NThreads; ++T)
    for (int I = 0; I != NShared; ++I) {
      ASSERT_EQ(Shared[0][I].get(), Shared[T][I].get())
          << "thread " << T << " interned a duplicate at " << I;
      ASSERT_EQ(Shared[0][I]->id(), Shared[T][I]->id());
    }

  std::set<uint64_t> Ids;
  std::set<const Term *> Nodes;
  for (unsigned T = 0; T != NThreads; ++T)
    for (const TermRef &P : Private[T])
      if (Nodes.insert(P.get()).second)
        ASSERT_TRUE(Ids.insert(P->id()).second)
            << "concurrently interned nodes share id " << P->id();
}
