//===- KernelTest.cpp - LCF kernel and resolution -------------------------===//

#include "hol/ProofState.h"

#include "hol/GroundEval.h"
#include "hol/Print.h"

#include <gtest/gtest.h>

using namespace ac::hol;
namespace nm = ac::hol::names;

namespace {

TermRef var(const char *N, TypeRef Ty) { return Term::mkVar(N, 0, Ty); }

} // namespace

TEST(Kernel, MpAndInstantiate) {
  TermRef P = Term::mkFree("P", boolTy());
  TermRef Q = Term::mkFree("Q", boolTy());
  Thm Ax = Kernel::axiom("test.pq", mkImp(P, Q));
  Thm PThm = Kernel::axiom("test.p", P);
  Thm QThm = Kernel::mp(Ax, PThm);
  EXPECT_TRUE(termEq(QThm.prop(), Q));
  std::set<std::string> Axs, Oracles;
  collectLeaves(QThm, Axs, Oracles);
  EXPECT_TRUE(Axs.count("test.pq"));
  EXPECT_TRUE(Axs.count("test.p"));
  EXPECT_TRUE(Oracles.empty());
}

TEST(Kernel, EquationalRules) {
  TermRef A = Term::mkFree("a", natTy());
  Thm R = Kernel::refl(A);
  Thm S = Kernel::sym(R);
  Thm T = Kernel::trans(R, S);
  TermRef L, Rr;
  ASSERT_TRUE(destEq(T.prop(), L, Rr));
  EXPECT_TRUE(termEq(L, A));
  EXPECT_TRUE(termEq(Rr, A));
}

TEST(Kernel, GeneralizeSpec) {
  TermRef X = Term::mkFree("x", natTy());
  Thm Base = Kernel::axiom("test.le_refl_x", mkLessEq(X, X));
  Thm All = Kernel::generalize("x", natTy(), Base);
  TermRef Lam;
  ASSERT_TRUE(destAll(All.prop(), Lam));
  Thm At7 = Kernel::spec(All, mkNumOf(natTy(), 7));
  EXPECT_TRUE(termEq(At7.prop(),
                     mkLessEq(mkNumOf(natTy(), 7), mkNumOf(natTy(), 7))));
}

TEST(Kernel, OracleTracking) {
  auto T = proveGround(mkLess(mkNumOf(natTy(), 1), mkNumOf(natTy(), 2)));
  ASSERT_TRUE(T.has_value());
  std::set<std::string> Axs, Oracles;
  collectLeaves(*T, Axs, Oracles);
  EXPECT_TRUE(Oracles.count("ground_eval"));
}

TEST(Kernel, InventoryRegistersAxioms) {
  Kernel::axiom("test.inventory_probe",
                mkEq(mkNumOf(natTy(), 1), mkNumOf(natTy(), 1)));
  EXPECT_TRUE(Inventory::instance().hasAxiom("test.inventory_probe"));
}

TEST(ProofState, SchematicResolutionComputesAnswer) {
  // Mimic the paper's Sec 3.3 mechanics on a toy judgement:
  //   rel ?A c  with rules  rel (f ?X) (g ?X)   and   rel base cbase.
  TypeRef U = Type::con("u");
  TypeRef V = Type::con("v");
  auto RelC = [&] {
    return Term::mkConst("rel", funTys({U, V}, boolTy()));
  };
  TermRef FC = Term::mkConst("f", funTy(U, U));
  TermRef GC = Term::mkConst("g", funTy(V, V));
  TermRef Base = Term::mkConst("base", U);
  TermRef CBase = Term::mkConst("cbase", V);

  TermRef X = Term::mkVar("X", 0, U);
  TermRef Y = Term::mkVar("Y", 0, V);
  Thm Step = Kernel::axiom(
      "test.rel_step",
      mkImp(mkApps(RelC(), {X, Y}),
            mkApps(RelC(), {Term::mkApp(FC, X), Term::mkApp(GC, Y)})));
  Thm BaseR =
      Kernel::axiom("test.rel_base", mkApps(RelC(), {Base, CBase}));

  // Goal: rel ?A (g (g cbase)) — resolution must *compute* ?A = f (f base).
  TermRef A = Term::mkVar("A", 0, U);
  TermRef Goal = mkApps(
      RelC(), {A, Term::mkApp(GC, Term::mkApp(GC, CBase))});
  ProofState PS(Goal);
  ASSERT_TRUE(PS.applyRule(Step));
  ASSERT_TRUE(PS.applyRule(Step));
  ASSERT_TRUE(PS.dischargeBy(BaseR));
  ASSERT_TRUE(PS.done());
  Thm Final = PS.finish();
  TermRef Expect = mkApps(
      RelC(), {Term::mkApp(FC, Term::mkApp(FC, Base)),
               Term::mkApp(GC, Term::mkApp(GC, CBase))});
  EXPECT_TRUE(termEq(Final.prop(), Expect))
      << "got: " << Final.str();
}

TEST(ProofState, IntroAll) {
  // Goal: ALL x. x <= x, via intro + a schematic axiom.
  TypeRef N = natTy();
  TermRef XV = var("x", N);
  Thm LeRefl = Kernel::axiom("test.le_refl", mkLessEq(XV, XV));
  TermRef Goal = mkAll("x", N, mkLessEq(Term::mkFree("x", N),
                                        Term::mkFree("x", N)));
  ProofState PS(Goal);
  ASSERT_TRUE(PS.introAll());
  ASSERT_TRUE(PS.dischargeBy(LeRefl));
  Thm Final = PS.finish();
  EXPECT_TRUE(termEq(Final.prop(), Goal));
}

TEST(ProofState, FailedRuleLeavesStateIntact) {
  TermRef Goal = mkLess(Term::mkFree("a", natTy()),
                        Term::mkFree("b", natTy()));
  ProofState PS(Goal);
  Thm Wrong = Kernel::axiom("test.wrong_rule",
                            mkEq(mkNumOf(natTy(), 1), mkNumOf(natTy(), 1)));
  EXPECT_FALSE(PS.applyRule(Wrong));
  EXPECT_EQ(PS.numOpen(), 1u);
  EXPECT_TRUE(termEq(PS.firstGoal(), Goal));
}
