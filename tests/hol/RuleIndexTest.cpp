//===- RuleIndexTest.cpp - Discrimination-tree retrieval equivalence ------===//
//
// The rule index (hol/RuleIndex.h) is pure retrieval: it may return rules
// whose lhs does not match, never miss one that does, and must preserve
// the linear scan's first-match order. This suite pins all three ways:
//
//   * handcrafted patterns covering every edge kind (rigid heads,
//     schematic wildcards, higher-order patterns, residual redexes);
//   * the superset property replayed over a *recorded* goal corpus — the
//     audit hook captures every goal the real pipeline ever looked up,
//     and each is checked against a full linear matchTerm scan of the
//     basic simpset and of every registered WA.*/HL.* rule head;
//   * a whole-pipeline A/B: the same program abstracted with the index
//     active and with AC_NO_RULE_INDEX-style bypass must render
//     byte-identical specs and record identical per-rule fire/miss
//     counts in the RuleProfile.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "heapabs/HeapAbs.h"
#include "hol/Builder.h"
#include "hol/ProofState.h"
#include "hol/RuleIndex.h"
#include "hol/Simp.h"
#include "hol/Unify.h"
#include "support/RuleProfile.h"
#include "wordabs/WordAbs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace ac;
using namespace ac::hol;

namespace {

/// A program touching every engine: unsigned and signed arithmetic (WA
/// per-width rules), heap reads/writes and a global (HL rules), calls,
/// branches and a loop (the simplifier's peephole diet).
const char *pipelineSource() {
  return "struct cell { unsigned v; int w; };\n"
         "unsigned g_total = 0;\n"
         "unsigned leaf(unsigned x) { return x + 1u; }\n"
         "unsigned mix(unsigned a, unsigned b) {\n"
         "  unsigned acc = leaf(a);\n"
         "  while (acc < b) { acc = acc * 2u + 1u; }\n"
         "  if (b > 3u) { acc = acc / (b % 7u + 1u); }\n"
         "  return acc ^ b;\n"
         "}\n"
         "int signedpart(int x, int y) {\n"
         "  int r = 0;\n"
         "  if (x > y) { r = x - y; } else { r = y / 3; }\n"
         "  return r;\n"
         "}\n"
         "unsigned heapy(struct cell *p, unsigned v) {\n"
         "  if (p == NULL) { return 0u; }\n"
         "  p->v = p->v + (v % 5u);\n"
         "  if (p->v > 10u) { p->w = 7; }\n"
         "  g_total = g_total + p->v;\n"
         "  return p->v;\n"
         "}\n";
}

struct Rendered {
  std::vector<std::string> Names, Specs, Keys;
};

Rendered runPipeline() {
  DiagEngine Diags;
  core::ACOptions Opts;
  Opts.Jobs = 1;
  auto AC = core::AutoCorres::run(pipelineSource(), Diags, Opts);
  EXPECT_TRUE(AC) << Diags.str();
  Rendered R;
  if (!AC)
    return R;
  for (const std::string &Name : AC->order()) {
    R.Names.push_back(Name);
    R.Specs.push_back(AC->render(Name));
    R.Keys.push_back(AC->func(Name)->finalKey());
  }
  return R;
}

/// The goals the pipeline actually resolved against rule indexes, via the
/// audit hook. Recorded once, shared by the superset tests.
const std::vector<TermRef> &auditedGoals() {
  static const std::vector<TermRef> *Goals = [] {
    RuleIndex::auditArm(true);
    runPipeline();
    RuleIndex::auditArm(false);
    auto *G = new std::vector<TermRef>(RuleIndex::auditDrain());
    return G;
  }();
  return *Goals;
}

/// The pattern a WA/HL rule is retrieved by: the last argument (the
/// concrete side) of its conclusion. Returns null for rules whose
/// conclusion is not an application — those are never head-indexed.
TermRef rulePattern(const TermRef &Prop) {
  std::vector<TermRef> Prems;
  TermRef Concl;
  stripImps(Prop, Prems, Concl);
  std::vector<TermRef> Args;
  stripApp(Concl, Args);
  return Args.empty() ? TermRef() : Args.back();
}

} // namespace

/// Handcrafted patterns: one per edge kind the trie distinguishes.
TEST(RuleIndex, EdgeKindsAndPruning) {
  TypeRef N = natTy();
  TermRef A = Term::mkFree("a", N);
  TermRef VarX = Term::mkVar("X", 0, N);
  TermRef VarF = Term::mkVar("F", 0, funTy(N, N));

  RuleIndex Idx;
  // 0: rigid const head, rigid arg          plus(a, a)
  Idx.add(mkPlus(A, A), 0);
  // 1: rigid const head, wildcard args      plus(?X, ?X)
  Idx.add(mkPlus(VarX, VarX), 1);
  // 2: bare wildcard                        ?X
  Idx.add(VarX, 2);
  // 3: higher-order pattern                 ?F a   (wildcard: flex head)
  Idx.add(Term::mkApp(VarF, A), 3);
  // 4: residual redex                       (%x. x) ?X — normalises to ?X
  Idx.add(Term::mkApp(Term::mkLam("x", N, Term::mkBound(0)), VarX), 4);
  // 5: numeral head                         plus(1, ?X)
  Idx.add(mkPlus(mkNumOf(N, 1), VarX), 5);
  // 6: lambda pattern                       %x. ?X
  Idx.add(Term::mkLam("x", N, VarX), 6);

  ASSERT_EQ(Idx.ruleCount(), 7u);
  std::vector<unsigned> Out;

  // Goal plus(a, a): everything plus-headed or wildcard, not the lambda.
  Idx.lookup(mkPlus(A, A), Out);
  EXPECT_EQ(Out, (std::vector<unsigned>{0, 1, 2, 3, 4}));

  // Goal plus(1, a): rule 0's rigid arg `a` prunes (1 is not a); 5 joins.
  Idx.lookup(mkPlus(mkNumOf(N, 1), A), Out);
  EXPECT_EQ(Out, (std::vector<unsigned>{1, 2, 3, 4, 5}));

  // A lambda goal: the wildcards (2, the flex-headed 3, the redex 4)
  // plus the lambda pattern.
  Idx.lookup(Term::mkLam("y", N, A), Out);
  EXPECT_EQ(Out, (std::vector<unsigned>{2, 3, 4, 6}));

  // A bare free: nothing rigid survives but the wildcards.
  Idx.lookup(Term::mkFree("z", N), Out);
  EXPECT_EQ(Out, (std::vector<unsigned>{2, 3, 4}));

  // Bypass: every id, still ascending.
  RuleIndex::setBypass(true);
  Idx.lookup(Term::mkFree("z", N), Out);
  RuleIndex::setBypass(false);
  EXPECT_EQ(Out, (std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6}));
}

/// The retrieval contract, checked exhaustively: over every goal the real
/// pipeline ever looked up, the candidate set contains every rule a
/// linear matchTerm scan of the basic simpset finds.
TEST(RuleIndex, SupersetOfLinearScanOnSimpset) {
  const std::vector<TermRef> &Goals = auditedGoals();
  // The normal-form memo legitimately shrinks the audit (memo hits
  // return before any candidate lookup), so the vacuity floor is set
  // well below the memo-warm goal count (~68), not the memo-free one.
  ASSERT_GT(Goals.size(), 40u)
      << "audit recorded suspiciously few goals; is the hook wired?";

  const Simpset &SS = basicSimpset();
  ASSERT_FALSE(SS.rules().empty());
  size_t Pruned = 0, Checked = 0;
  std::vector<unsigned> Cands;
  for (const TermRef &G : Goals) {
    SS.candidates(G, Cands);
    ASSERT_TRUE(std::is_sorted(Cands.begin(), Cands.end()));
    ASSERT_TRUE(std::adjacent_find(Cands.begin(), Cands.end()) ==
                Cands.end())
        << "duplicate candidate id";
    std::set<unsigned> CandSet(Cands.begin(), Cands.end());
    for (unsigned I = 0; I != SS.rules().size(); ++I) {
      ++Checked;
      if (matchTerm(SS.rules()[I].Lhs, G))
        ASSERT_TRUE(CandSet.count(I))
            << "index dropped matching simp rule " << I << " for a goal";
      else if (!CandSet.count(I))
        ++Pruned;
    }
  }
  // The index must actually prune, or it is dead weight.
  EXPECT_GT(Pruned, Checked / 4) << "index prunes almost nothing";
}

/// Same contract against every registered WA.* / HL.* rule head: index
/// all of their conclusion patterns, then replay the recorded goals.
TEST(RuleIndex, SupersetOfLinearScanOnWAHLRules) {
  wordabs::WordAbstraction::registerStandardRules();
  heapabs::HeapAbstraction::registerStandardRules();

  std::vector<TermRef> Patterns;
  RuleIndex Idx;
  for (const auto &[Name, Prop] : Inventory::instance().axioms()) {
    if (Name.rfind("WA.", 0) != 0 && Name.rfind("HL.", 0) != 0)
      continue;
    if (TermRef Pat = rulePattern(Prop)) {
      Idx.add(Pat, static_cast<unsigned>(Patterns.size()));
      Patterns.push_back(Pat);
    }
  }
  ASSERT_GT(Patterns.size(), 30u)
      << "expected the standard WA/HL rule families to be registered";

  const std::vector<TermRef> &Goals = auditedGoals();
  ASSERT_FALSE(Goals.empty());
  size_t Pruned = 0, Checked = 0;
  std::vector<unsigned> Cands;
  for (const TermRef &G : Goals) {
    Idx.lookup(G, Cands);
    std::set<unsigned> CandSet(Cands.begin(), Cands.end());
    for (unsigned I = 0; I != Patterns.size(); ++I) {
      ++Checked;
      if (matchTerm(Patterns[I], G))
        ASSERT_TRUE(CandSet.count(I))
            << "index dropped matching WA/HL rule pattern " << I;
      else if (!CandSet.count(I))
        ++Pruned;
    }
  }
  EXPECT_GT(Pruned, Checked / 4) << "index prunes almost nothing";
}

/// Whole-pipeline A/B: with the index bypassed (the linear-scan world),
/// the same program must produce byte-identical specs and an identical
/// per-rule fire/miss profile — proof that indexing changed retrieval
/// cost and nothing else.
TEST(RuleIndex, PipelineIdenticalUnderBypass) {
  ASSERT_FALSE(RuleIndex::bypassed());

  support::RuleProfile::setEnabled(true);
  support::RuleProfile::reset();
  Rendered WithIndex = runPipeline();
  auto ProfIndexed = support::RuleProfile::snapshot();

  RuleIndex::setBypass(true);
  support::RuleProfile::reset();
  Rendered Bypassed = runPipeline();
  auto ProfLinear = support::RuleProfile::snapshot();
  RuleIndex::setBypass(false);
  support::RuleProfile::setEnabled(false);

  ASSERT_EQ(WithIndex.Names, Bypassed.Names);
  for (size_t I = 0; I != WithIndex.Names.size(); ++I) {
    EXPECT_EQ(WithIndex.Specs[I], Bypassed.Specs[I])
        << "spec diverged under bypass: " << WithIndex.Names[I];
    EXPECT_EQ(WithIndex.Keys[I], Bypassed.Keys[I]);
  }

  // Identical fired/missed counts per rule. (Self-times differ, and
  // preregistration of zero-fire names depends on mint warmth — compare
  // the rules that actually ran.)
  std::map<std::string, std::pair<uint64_t, uint64_t>> A, B;
  for (const auto &[Name, S] : ProfIndexed)
    if (S.Fires || S.Misses)
      A[Name] = {S.Fires, S.Misses};
  for (const auto &[Name, S] : ProfLinear)
    if (S.Fires || S.Misses)
      B[Name] = {S.Fires, S.Misses};
  EXPECT_EQ(A, B) << "rule firing profile changed under index bypass";
}
