//===- SimpTest.cpp - Kernel-backed simplifier -----------------------------===//

#include "hol/Simp.h"

#include "hol/Print.h"

#include <gtest/gtest.h>

using namespace ac::hol;

TEST(Simp, IfTrue) {
  TermRef A = Term::mkFree("a", natTy());
  TermRef B = Term::mkFree("b", natTy());
  TermRef T = mkIte(mkTrue(), A, B);
  SimpResult R = simplify(basicSimpset(), T);
  EXPECT_TRUE(termEq(R.Result, A));
  TermRef L, Rr;
  ASSERT_TRUE(destEq(R.Eq.prop(), L, Rr));
  EXPECT_TRUE(termEq(L, T));
  EXPECT_TRUE(termEq(Rr, A));
}

TEST(Simp, GroundFoldsViaOracle) {
  TermRef T = mkPlus(mkNumOf(natTy(), 2), mkNumOf(natTy(), 3));
  SimpResult R = simplify(basicSimpset(), T);
  EXPECT_TRUE(termEq(R.Result, mkNumOf(natTy(), 5)));
  std::set<std::string> Axs, Oracles;
  collectLeaves(R.Eq, Axs, Oracles);
  EXPECT_TRUE(Oracles.count("ground_eval"));
}

TEST(Simp, ConjunctionUnits) {
  TermRef P = Term::mkFree("p", boolTy());
  TermRef T = mkConj(mkTrue(), mkConj(P, mkTrue()));
  SimpResult R = simplify(basicSimpset(), T);
  EXPECT_TRUE(termEq(R.Result, P));
}

TEST(Simp, UnderBinders) {
  // %x. if True then x else 0  -->  %x. x
  TermRef X = Term::mkFree("x", natTy());
  TermRef T = lambdaFree(
      "x", natTy(), mkIte(mkTrue(), X, mkNumOf(natTy(), 0)));
  SimpResult R = simplify(basicSimpset(), T);
  ASSERT_TRUE(R.Result->isLam());
  EXPECT_TRUE(R.Result->body()->isBound());
}

TEST(Simp, FunUpdApply) {
  // (f(x := v)) x  simplifies to v (the condition x = x folds to True).
  TypeRef N = natTy();
  TermRef F = Term::mkFree("f", funTy(N, N));
  TermRef X = Term::mkFree("x", N);
  TermRef V = Term::mkFree("v", N);
  TermRef FunUpd = Term::mkConst(
      "fun_upd", funTys({funTy(N, N), N, N}, funTy(N, N)));
  TermRef T = Term::mkApp(mkApps(FunUpd, {F, X, V}), X);
  SimpResult R = simplify(basicSimpset(), T);
  EXPECT_TRUE(termEq(R.Result, V)) << printTerm(R.Result);
}

TEST(Simp, ProveByRewriting) {
  // the (Some 5) = 5 proves by rewriting to True.
  TermRef T = mkEq(mkThe(mkSome(mkNumOf(natTy(), 5))),
                   mkNumOf(natTy(), 5));
  auto P = simpProve(basicSimpset(), T);
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(termEq(P->prop(), T));
}

TEST(Simp, SolverHookIsUsed) {
  // A simpset with a solver that proves a marked proposition.
  TermRef Marker = Term::mkConst("simpTest.marker", boolTy());
  Simpset SS = basicSimpset();
  SS.addSolver([&](const TermRef &G) -> std::optional<Thm> {
    if (G->isConst("simpTest.marker"))
      return Kernel::oracle("simpTest.solver", G);
    return std::nullopt;
  });
  auto P = simpProve(SS, Marker);
  ASSERT_TRUE(P.has_value());
}

TEST(Simp, ConditionalRule) {
  // A conditional rewrite: 0 < n --> min n 0 = 0 ... expressed directly.
  TypeRef N = natTy();
  TermRef NV = Term::mkVar("n", 0, N);
  Thm Rule = Kernel::axiom(
      "test.min_zero_cond",
      mkImp(mkLess(mkNumOf(N, 0), NV),
            mkEq(mkBinop("min", N, NV, mkNumOf(N, 0)), mkNumOf(N, 0))));
  Simpset SS = basicSimpset();
  SS.addRule(Rule);
  // Condition holds (ground): rewrite fires.
  TermRef T = mkBinop("min", N, mkNumOf(N, 3), mkNumOf(N, 0));
  SimpResult R = simplify(SS, T);
  EXPECT_TRUE(termEq(R.Result, mkNumOf(N, 0)));
}
