//===- TermTest.cpp - Terms, types, printing ------------------------------===//

#include "hol/Builder.h"
#include "hol/GroundEval.h"
#include "hol/Print.h"

#include <gtest/gtest.h>

using namespace ac::hol;

TEST(Types, Basics) {
  EXPECT_TRUE(typeEq(wordTy(32), wordTy(32)));
  EXPECT_FALSE(typeEq(wordTy(32), swordTy(32)));
  EXPECT_TRUE(isWordTy(wordTy(8)));
  EXPECT_TRUE(isSwordTy(swordTy(64)));
  EXPECT_EQ(wordBits(wordTy(16)), 16u);
  TypeRef F = funTy(natTy(), boolTy());
  EXPECT_TRUE(isFunTy(F));
  EXPECT_TRUE(typeEq(domTy(F), natTy()));
  EXPECT_TRUE(typeEq(ranTy(F), boolTy()));
  EXPECT_EQ(typeStr(funTy(ptrTy(wordTy(32)), boolTy())),
            "word32 ptr => bool");
}

TEST(Terms, BetaAndSubst) {
  // (%x. x + 1) 41  -->  41 + 1
  TermRef One = mkNumOf(natTy(), 1);
  TermRef X = Term::mkFree("x", natTy());
  TermRef Lam = lambdaFree("x", natTy(), mkPlus(X, One));
  TermRef App = Term::mkApp(Lam, mkNumOf(natTy(), 41));
  TermRef Norm = betaNorm(App);
  EXPECT_TRUE(termEq(Norm, mkPlus(mkNumOf(natTy(), 41), One)));
}

TEST(Terms, SizeMetric) {
  TermRef A = Term::mkFree("a", natTy());
  TermRef T = mkPlus(A, A); // plus, a, a plus two Apps
  EXPECT_EQ(termSize(T), 5u);
}

TEST(Terms, LambdaFreeRoundTrip) {
  TermRef A = Term::mkFree("a", natTy());
  TermRef B = Term::mkFree("b", natTy());
  TermRef T = mkPlus(A, B);
  TermRef L = lambdaFree("a", natTy(), T);
  EXPECT_EQ(L->kind(), Term::Kind::Lam);
  // Applying to a again gives back the original.
  TermRef Back = betaNorm(Term::mkApp(L, A));
  EXPECT_TRUE(termEq(Back, T));
  // Applying to something else substitutes.
  TermRef Zero = mkNumOf(natTy(), 0);
  TermRef Sub = betaNorm(Term::mkApp(L, Zero));
  EXPECT_TRUE(termEq(Sub, mkPlus(Zero, B)));
}

TEST(Terms, FreeVars) {
  TermRef A = Term::mkFree("a", natTy());
  TermRef B = Term::mkFree("b", natTy());
  TermRef T = mkPlus(A, mkPlus(B, A));
  std::vector<std::string> FV = freeVars(T);
  ASSERT_EQ(FV.size(), 2u);
  EXPECT_EQ(FV[0], "a");
  EXPECT_EQ(FV[1], "b");
  EXPECT_TRUE(occursFree(T, "a"));
  EXPECT_FALSE(occursFree(T, "c"));
}

TEST(GroundEval, IdealArithmetic) {
  // nat subtraction truncates.
  TermRef T = mkMinus(mkNumOf(natTy(), 3), mkNumOf(natTy(), 5));
  auto V = groundEval(T);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(static_cast<long long>(V->N), 0);
  // int subtraction does not.
  TermRef T2 = mkMinus(mkNumOf(intTy(), 3), mkNumOf(intTy(), 5));
  auto V2 = groundEval(T2);
  ASSERT_TRUE(V2.has_value());
  EXPECT_EQ(static_cast<long long>(V2->N), -2);
  // div by zero is zero (Isabelle convention).
  TermRef T3 = mkDiv(mkNumOf(natTy(), 7), mkNumOf(natTy(), 0));
  EXPECT_EQ(static_cast<long long>(groundEval(T3)->N), 0);
}

TEST(GroundEval, WordWraparound) {
  // Table 2 row 3: u + 1 > u fails at u = 2^32 - 1.
  TypeRef W = wordTy(32);
  TermRef U = mkNumOf(W, wordMaxVal(32));
  TermRef Sum = mkPlus(U, mkNumOf(W, 1));
  auto V = groundEval(Sum);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(static_cast<long long>(V->N), 0);
  // Signed wrap: INT_MAX + 1 = INT_MIN in the two's complement carrier.
  TypeRef S = swordTy(32);
  TermRef M = mkPlus(mkNumOf(S, swordMaxVal(32)), mkNumOf(S, 1));
  EXPECT_EQ(static_cast<long long>(groundEval(M)->N),
            static_cast<long long>(swordMinVal(32)));
}

TEST(GroundEval, ProveGround) {
  TermRef Goal = mkLess(mkNumOf(natTy(), 3), mkNumOf(natTy(), 5));
  auto Thm = proveGround(Goal);
  ASSERT_TRUE(Thm.has_value());
  EXPECT_TRUE(termEq(Thm->prop(), Goal));
  TermRef Bad = mkLess(mkNumOf(natTy(), 5), mkNumOf(natTy(), 3));
  EXPECT_FALSE(proveGround(Bad).has_value());
}

TEST(Print, InfixAndWordSubscripts) {
  TermRef A = Term::mkFree("a", wordTy(32));
  TermRef B = Term::mkFree("b", wordTy(32));
  EXPECT_EQ(printTerm(mkPlus(A, B)), "a +w b");
  TermRef AS = Term::mkFree("a", swordTy(32));
  TermRef BS = Term::mkFree("b", swordTy(32));
  EXPECT_EQ(printTerm(mkLess(AS, BS)), "a <s b");
  TermRef AN = Term::mkFree("a", natTy());
  TermRef BN = Term::mkFree("b", natTy());
  EXPECT_EQ(printTerm(mkPlus(AN, BN)), "a + b");
}

TEST(Print, DoNotation) {
  TypeRef S = recordTy("st");
  TermRef M = mkGets(S, unitTy(),
                     Term::mkLam("s", S, mkNumOf(natTy(), 1)));
  TermRef V = Term::mkFree("v", natTy());
  TermRef Prog = mkBind(
      M, lambdaFree("v", natTy(), mkReturn(S, unitTy(), V)));
  std::string Out = printTerm(Prog);
  EXPECT_NE(Out.find("do "), std::string::npos);
  EXPECT_NE(Out.find("od"), std::string::npos);
  EXPECT_NE(Out.find("←"), std::string::npos);
}

TEST(Print, SpecLines) {
  TermRef A = Term::mkFree("a", natTy());
  EXPECT_EQ(specLines(A), 1u);
}
