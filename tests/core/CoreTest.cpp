//===- CoreTest.cpp - The AutoCorres driver ---------------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the top-level driver: pipeline composition and its derivation
/// tree, per-function abstraction options (Secs 3.2 / 4.6), the rendered
/// output, statistics, and error handling.
///
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Print.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ac;
using namespace ac::hol;

namespace {

std::unique_ptr<core::AutoCorres> runAC(const std::string &Src,
                                        core::ACOptions Opts = {}) {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  EXPECT_TRUE(AC) << Diags.str();
  return AC;
}

const char *TwoFnSrc = "unsigned add(unsigned a, unsigned b) {\n"
                       "  return a + b;\n"
                       "}\n"
                       "unsigned twice(unsigned a) {\n"
                       "  return add(a, a);\n"
                       "}\n";

//===----------------------------------------------------------------------===//
// Pipeline theorem structure.
//===----------------------------------------------------------------------===//

TEST(Driver, PipelineConclusionIsAcCorres) {
  auto AC = runAC(corpus::maxSource());
  ASSERT_TRUE(AC);
  const core::FuncOutput *F = AC->func("max");
  ASSERT_NE(F, nullptr);
  // |- ac_corres <final body> <simpl const>.
  ASSERT_TRUE(F->Pipeline.isValid());
  TermRef Prop = F->Pipeline.prop();
  ASSERT_TRUE(Prop->isApp());
  TermRef Head = Prop;
  unsigned Args = 0;
  while (Head->isApp()) {
    Head = Head->fun();
    ++Args;
  }
  EXPECT_EQ(Args, 2u);
  ASSERT_TRUE(Head->isConst());
  EXPECT_EQ(Head->name(), "ac_corres");
}

TEST(Driver, PipelineDerivationContainsEveryPhase) {
  auto AC = runAC(corpus::maxSource());
  ASSERT_TRUE(AC);
  const core::FuncOutput *F = AC->func("max");
  std::set<std::string> Axioms, Oracles;
  collectLeaves(F->Pipeline, Axioms, Oracles);
  // max is heap-trivial but word-abstracted: the composed tree must
  // contain the L1, L2 and WA phase oracles plus the composition step.
  EXPECT_TRUE(Oracles.count("monadic_conversion"));
  EXPECT_TRUE(Oracles.count("local_var_lifting"));
  EXPECT_TRUE(Oracles.count("refinement_composition"));
  EXPECT_GT(derivSize(F->Pipeline), 4u);
}

TEST(Driver, PhaseTheoremsArePerPhase) {
  auto AC = runAC(corpus::swapSource());
  ASSERT_TRUE(AC);
  const core::FuncOutput *F = AC->func("swap");
  ASSERT_TRUE(F->HeapLifted);
  EXPECT_TRUE(F->L1Corres.isValid());
  EXPECT_TRUE(F->L2Corres.isValid());
  EXPECT_TRUE(F->HLCorres.isValid());
}

//===----------------------------------------------------------------------===//
// Per-function abstraction options (Secs 3.2 / 4.6).
//===----------------------------------------------------------------------===//

TEST(Driver, NoHeapAbsKeepsByteLevelHeap) {
  core::ACOptions Opts;
  Opts.NoHeapAbs.insert("swap");
  auto AC = runAC(corpus::swapSource(), Opts);
  ASSERT_TRUE(AC);
  const core::FuncOutput *F = AC->func("swap");
  EXPECT_FALSE(F->HeapLifted);
  EXPECT_FALSE(F->HLBody);
  // The rendered spec mentions the raw heap operations.
  std::string R = AC->render("swap");
  EXPECT_NE(R.find("heap"), std::string::npos);
}

TEST(Driver, NoWordAbsKeepsMachineWords) {
  core::ACOptions Opts;
  Opts.NoWordAbs.insert("max");
  auto AC = runAC(corpus::maxSource(), Opts);
  ASSERT_TRUE(AC);
  const core::FuncOutput *F = AC->func("max");
  EXPECT_FALSE(F->WordAbstracted);
  EXPECT_FALSE(F->WABody);
  for (const TypeRef &T : F->FinalArgTys)
    EXPECT_TRUE(isWordTy(T) || isSwordTy(T));
}

TEST(Driver, OptionsApplyPerFunctionNotGlobally) {
  core::ACOptions Opts;
  Opts.NoWordAbs.insert("add");
  auto AC = runAC(TwoFnSrc, Opts);
  ASSERT_TRUE(AC);
  EXPECT_FALSE(AC->func("add")->WordAbstracted);
  EXPECT_TRUE(AC->func("twice")->WordAbstracted);
}

TEST(Driver, DefaultRunAbstractsEverything) {
  auto AC = runAC(TwoFnSrc);
  ASSERT_TRUE(AC);
  for (const std::string &Fn : AC->order()) {
    const core::FuncOutput *F = AC->func(Fn);
    EXPECT_TRUE(F->WordAbstracted) << Fn;
    // Arg types are the ideal ones.
    for (const TypeRef &T : F->FinalArgTys)
      EXPECT_TRUE(T->isCon("nat") || T->isCon("int") || isPtrTy(T)) << Fn;
  }
}

//===----------------------------------------------------------------------===//
// Rendering, statistics, ordering, errors.
//===----------------------------------------------------------------------===//

TEST(Driver, RenderShowsPrimedDefinition) {
  auto AC = runAC(corpus::maxSource());
  ASSERT_TRUE(AC);
  std::string R = AC->render("max");
  EXPECT_NE(R.find("max'"), std::string::npos);
  EXPECT_NE(R.find("=="), std::string::npos);
}

TEST(Driver, OrderIsCallOrderBottomUp) {
  auto AC = runAC(TwoFnSrc);
  ASSERT_TRUE(AC);
  const std::vector<std::string> &O = AC->order();
  ASSERT_EQ(O.size(), 2u);
  // Callee precedes caller so its definition exists when needed.
  EXPECT_LT(std::find(O.begin(), O.end(), "add") - O.begin(),
            std::find(O.begin(), O.end(), "twice") - O.begin());
}

TEST(Driver, StatsAreFilledIn) {
  auto AC = runAC(TwoFnSrc);
  ASSERT_TRUE(AC);
  const core::ACStats &S = AC->stats();
  EXPECT_EQ(S.NumFunctions, 2u);
  EXPECT_GE(S.SourceLines, 5u);
  EXPECT_GT(S.ParserSpecLines, 0u);
  EXPECT_GT(S.ACSpecLines, 0u);
  EXPECT_GT(S.parserAvgTermSize(), 0.0);
  EXPECT_GT(S.acAvgTermSize(), 0.0);
  // Real CPU clocks, not wall time: both phases did actual work.
  EXPECT_GT(S.ParserCpuSeconds, 0.0);
  EXPECT_GT(S.AutoCorresSeconds, 0.0);
}

TEST(Driver, RunLocalTraceCarriesWholeRunSpanAndLeavesNoResidue) {
  // A run-local trace (Opts.TracePath without ambient AC_TRACE) must
  // flush the whole-run `ac.run` span into its own file and leave the
  // ring buffers empty — a span recorded after the reset would pollute
  // the next traced run in this process.
  if (!ac::support::Trace::envPath().empty())
    GTEST_SKIP() << "ambient AC_TRACE changes run-local semantics";
  std::string Path = ::testing::TempDir() + "ac-runlocal-trace.json";
  core::ACOptions Opts;
  Opts.TracePath = Path;
  auto AC = runAC(corpus::maxSource(), Opts);
  ASSERT_TRUE(AC);
  EXPECT_EQ(ac::support::Trace::eventCount(), 0u)
      << "run-local trace left stale events behind";

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  ac::support::Json J;
  std::string Err;
  ASSERT_TRUE(ac::support::Json::parse(SS.str(), J, Err)) << Err;
  unsigned Runs = 0;
  for (const ac::support::Json &E : J.get("traceEvents").items())
    if (E.get("name").asString() == "ac.run")
      ++Runs;
  EXPECT_EQ(Runs, 1u) << "flushed trace lacks the ac.run span";
  std::filesystem::remove(Path);
}

TEST(Driver, UnknownFunctionIsNull) {
  auto AC = runAC(TwoFnSrc);
  ASSERT_TRUE(AC);
  EXPECT_EQ(AC->func("nope"), nullptr);
}

TEST(Driver, ParseErrorReturnsNullWithDiagnostics) {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run("int f( {", Diags);
  EXPECT_EQ(AC, nullptr);
  EXPECT_FALSE(Diags.str().empty());
}

TEST(Driver, UnsupportedConstructIsRejectedNotMistranslated) {
  // goto is outside the supported subset: must fail loudly.
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(
      "int f(int a) { if (a) goto l; l: return 1; }", Diags);
  EXPECT_EQ(AC, nullptr);
  EXPECT_FALSE(Diags.str().empty());
}

TEST(Driver, RecursiveFunctionsGetMeasureParameter) {
  auto AC = runAC("unsigned fact(unsigned n) {\n"
                  "  if (n == 0) return 1;\n"
                  "  return n * fact(n - 1);\n"
                  "}\n");
  ASSERT_TRUE(AC);
  // The rendered recursive definition exists and calls itself.
  std::string R = AC->render("fact");
  EXPECT_NE(R.find("fact'"), std::string::npos);
}

} // namespace
