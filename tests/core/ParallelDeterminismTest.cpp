//===- ParallelDeterminismTest.cpp - Jobs=N == Jobs=1 -----------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The acceptance gate of the parallel abstraction pipeline: running the
/// synthetic Table 5 corpus at Jobs=1 and Jobs=N must produce
/// byte-identical rendered specifications, identical finalKey()s, and
/// identical pipeline-theorem conclusions per function. A second Jobs=N
/// run guards against run-to-run scheduling nondeterminism.
///
/// The corpus defaults to sel4Scale(); AC_DET_CORPUS selects a smaller
/// preset (e.g. "echronos") so the ThreadSanitizer tier-1 pass stays
/// within budget.
///
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Synthetic.h"
#include "hol/Print.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace ac;

namespace {

corpus::SyntheticSpec detCorpus() {
  const char *E = std::getenv("AC_DET_CORPUS");
  std::string Name = E ? E : "sel4";
  if (Name == "capdl")
    return corpus::capdlScale();
  if (Name == "piccolo")
    return corpus::piccoloScale();
  if (Name == "echronos")
    return corpus::echronosScale();
  return corpus::sel4Scale();
}

/// Everything the determinism gate compares, per function.
struct Snapshot {
  std::vector<std::string> Names;
  std::vector<std::string> Rendered;
  std::vector<std::string> FinalKeys;
  std::vector<std::string> PipelineConcls;
  std::vector<std::string> Diags;
};

Snapshot runAt(const std::string &Src, unsigned Jobs) {
  DiagEngine Diags;
  core::ACOptions Opts;
  Opts.Jobs = Jobs;
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  EXPECT_TRUE(AC) << Diags.str();
  Snapshot S;
  if (!AC)
    return S;
  EXPECT_EQ(AC->stats().Jobs, Jobs);
  for (const std::string &Name : AC->order()) {
    const core::FuncOutput *F = AC->func(Name);
    if (!F) {
      ADD_FAILURE() << "no output for " << Name;
      continue;
    }
    S.Names.push_back(Name);
    S.Rendered.push_back(AC->render(Name));
    S.FinalKeys.push_back(F->finalKey());
    S.PipelineConcls.push_back(hol::printTerm(F->Pipeline.prop()));
  }
  for (const Diagnostic &D : Diags.diagnostics())
    S.Diags.push_back(D.str());
  return S;
}

void expectIdentical(const Snapshot &A, const Snapshot &B,
                     const std::string &What) {
  ASSERT_EQ(A.Names.size(), B.Names.size()) << What;
  for (size_t I = 0; I != A.Names.size(); ++I) {
    ASSERT_EQ(A.Names[I], B.Names[I]) << What;
    EXPECT_EQ(A.FinalKeys[I], B.FinalKeys[I])
        << What << ": finalKey diverged for " << A.Names[I];
    EXPECT_EQ(A.Rendered[I], B.Rendered[I])
        << What << ": rendered spec diverged for " << A.Names[I];
    EXPECT_EQ(A.PipelineConcls[I], B.PipelineConcls[I])
        << What << ": pipeline conclusion diverged for " << A.Names[I];
  }
  EXPECT_EQ(A.Diags, B.Diags) << What << ": diagnostic stream diverged";
}

} // namespace

TEST(ParallelDeterminism, ParallelMatchesSerialAndItself) {
  std::string Src = corpus::generateSyntheticProgram(detCorpus());

  Snapshot Serial = runAt(Src, 1);
  ASSERT_FALSE(Serial.Names.empty());

  Snapshot Par = runAt(Src, 4);
  expectIdentical(Serial, Par, "Jobs=1 vs Jobs=4");

  // Again at the same job count: no run-to-run schedule sensitivity.
  Snapshot Par2 = runAt(Src, 4);
  expectIdentical(Par, Par2, "Jobs=4 vs Jobs=4 (rerun)");
}

TEST(ParallelDeterminism, OddJobCountAndSmallCorpus) {
  // A second shape: job count that does not divide the SCC count evenly,
  // on the smallest preset (cheap enough to always run).
  std::string Src =
      corpus::generateSyntheticProgram(corpus::echronosScale());
  Snapshot Serial = runAt(Src, 1);
  Snapshot Par = runAt(Src, 3);
  expectIdentical(Serial, Par, "Jobs=1 vs Jobs=3");
}
