//===- GoldenSpecTest.cpp - Golden-file snapshot suite ----------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the exact rendered output of the whole pipeline on the paper's
/// example programs against checked-in golden files (tests/golden/). Any
/// change to parsing, abstraction, simplification or printing that moves
/// a single byte of a final specification shows up as a readable diff
/// here — this is the guard rail the abstraction cache is validated
/// against, since cache hits replay exactly these rendered artefacts.
///
/// Regenerate after an intentional output change with
///
///   AC_UPDATE_GOLDEN=1 ./test_golden
///
/// and review the fixture diff like any other code change. The suite
/// honours $AC_CACHE_DIR / $AC_CACHE (see core/ResultCache.h) and prints
/// a `[cache] hits=N misses=M` line per run when the cache is enabled, so
/// the tier-1 script can assert a warm second run actually hits.
///
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"
#include "hol/Cert.h"

#include "../../tools/acpc_check.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ac;

// Certificate recording is process-sticky and must be live before a
// theorem is minted for its derivation to be replayable; enabling it at
// static-init keeps the GoldenCert suite below independent of test
// order (a memoised theorem minted by an earlier snapshot test stays
// exportable). Recording never changes rendered output — the
// differential suite pins that — so the snapshot tests are unaffected.
static const bool CertRecordingOn = [] {
  ac::hol::CertLog::enable();
  return true;
}();

#ifndef AC_GOLDEN_DIR
#error "AC_GOLDEN_DIR must point at the checked-in tests/golden directory"
#endif

namespace {

bool updateMode() {
  const char *E = std::getenv("AC_UPDATE_GOLDEN");
  return E && *E && std::string(E) != "0";
}

std::string goldenPath(const std::string &Name) {
  return std::string(AC_GOLDEN_DIR) + "/" + Name + ".expected";
}

/// One canonical dump of everything user-visible a run produces, in
/// FunctionOrder: per function its final-definition key, the rendered
/// spec, and the composed theorem's proposition; the diagnostic stream
/// at the end. The same accessors serve live terms and cache replays,
/// so golden comparisons hold verbatim for warm runs.
std::string snapshot(const std::string &Source) {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Source, Diags);
  EXPECT_TRUE(AC) << Diags.str();
  if (!AC)
    return "<run failed>\n" + Diags.str();

  std::ostringstream OS;
  for (const std::string &Name : AC->order()) {
    const core::FuncOutput *F = AC->func(Name);
    if (!F) {
      ADD_FAILURE() << "no output for " << Name;
      continue;
    }
    OS << "== function: " << Name << "\n";
    OS << "final: " << F->finalKey() << "\n";
    OS << "-- spec\n" << AC->render(Name) << "\n";
    OS << "-- theorem\n" << F->pipelineProp() << "\n";
  }
  OS << "== diagnostics\n";
  for (const Diagnostic &D : Diags.diagnostics())
    OS << D.str() << "\n";

  const core::ACStats &St = AC->stats();
  if (St.CacheEnabled)
    std::printf("[cache] hits=%u misses=%u\n", St.CacheHits,
                St.CacheMisses);
  return OS.str();
}

void checkGolden(const std::string &Name, const char *Source) {
  std::string Actual = snapshot(Source);
  std::string Path = goldenPath(Name);

  if (updateMode()) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    return;
  }

  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good())
      << "missing golden file " << Path
      << " (generate with AC_UPDATE_GOLDEN=1)";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "pipeline output diverged from " << Path
      << "; if intentional, regenerate with AC_UPDATE_GOLDEN=1 and "
         "review the fixture diff";
}

//===----------------------------------------------------------------------===//
// Golden proof certificates
//===----------------------------------------------------------------------===//

/// One pipeline run that exports a certificate. A private scratch cache
/// directory forces a cold run even under the tier-1 warm-cache replay
/// ($AC_CACHE_DIR): cache-replayed functions carry no live derivation
/// and would be skipped, and the fixture pins the *full* certificate.
std::string certBytes(const char *Source, unsigned Jobs,
                      const std::string &Scratch,
                      std::vector<std::string> &Order) {
  core::ACOptions Opts;
  Opts.Jobs = Jobs;
  Opts.CacheDir = Scratch + "/cache-j" + std::to_string(Jobs);
  Opts.CertPath = Scratch + "/out-j" + std::to_string(Jobs) + ".acpc";

  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Source, Diags, Opts);
  EXPECT_TRUE(AC) << Diags.str();
  if (!AC)
    return "";
  Order = AC->order();
  EXPECT_EQ(AC->stats().CertClaims, Order.size());
  EXPECT_EQ(AC->stats().CertSkipped, 0u);

  std::ifstream In(Opts.CertPath, std::ios::binary);
  EXPECT_TRUE(In.good()) << "certificate was not written: " << Opts.CertPath;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// The certificate analogue of checkGolden: emit at two job counts
/// (byte-identical by construction), re-check with the independent
/// checker, and pin the exact bytes against tests/golden/<name>.acpc.
void checkGoldenCert(const std::string &Name, const char *Source) {
  namespace fs = std::filesystem;
  std::string Scratch =
      (fs::temp_directory_path() /
       ("ac-goldencert-" + Name + "-" + std::to_string(getpid())))
          .string();
  std::error_code EC;
  fs::create_directories(Scratch, EC);
  ASSERT_FALSE(EC) << "cannot create scratch dir " << Scratch;

  std::vector<std::string> Order1, Order4;
  std::string C1 = certBytes(Source, /*Jobs=*/1, Scratch, Order1);
  std::string C4 = certBytes(Source, /*Jobs=*/4, Scratch, Order4);
  fs::remove_all(Scratch, EC);
  ASSERT_FALSE(C1.empty());
  EXPECT_EQ(C1, C4) << "certificate bytes depend on the job count";

  // Independent re-check: every pipeline theorem re-derives from the
  // leaves up, and the claims are exactly the run's functions in order.
  acpc::Result R = acpc::check(C1);
  ASSERT_TRUE(R.Ok) << Name << ": line " << R.Line << ": " << R.Error;
  ASSERT_EQ(R.Claims.size(), Order1.size());
  for (size_t I = 0; I != Order1.size(); ++I)
    EXPECT_EQ(R.Claims[I].first, Order1[I]);

  std::string Path = std::string(AC_GOLDEN_DIR) + "/" + Name + ".acpc";
  if (updateMode()) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << C1;
    return;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden certificate " << Path
                         << " (generate with AC_UPDATE_GOLDEN=1)";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), C1)
      << "certificate bytes diverged from " << Path
      << "; if intentional, regenerate with AC_UPDATE_GOLDEN=1 and "
         "review the fixture diff";
}

} // namespace

// The Sec 3.3 word-abstraction showcases.
TEST(GoldenSpec, Max) { checkGolden("max", corpus::maxSource()); }
TEST(GoldenSpec, Gcd) { checkGolden("gcd", corpus::gcdSource()); }

// The Sec 4 heap-abstraction showcases.
TEST(GoldenSpec, Swap) { checkGolden("swap", corpus::swapSource()); }
TEST(GoldenSpec, Midpoint) {
  checkGolden("midpoint", corpus::midpointSource());
}

// The Sec 5.2 case study: in-place linked-list reversal.
TEST(GoldenSpec, ListReversal) {
  checkGolden("reverse", corpus::reverseSource());
}

// Golden certificates over the same corpus: the exported derivation of
// every pipeline theorem is byte-stable across runs and job counts, and
// re-derives under the independent checker. Regenerate together with
// the snapshots via AC_UPDATE_GOLDEN=1.
TEST(GoldenCert, Max) { checkGoldenCert("max", corpus::maxSource()); }
TEST(GoldenCert, Gcd) { checkGoldenCert("gcd", corpus::gcdSource()); }
TEST(GoldenCert, Swap) { checkGoldenCert("swap", corpus::swapSource()); }
TEST(GoldenCert, Midpoint) {
  checkGoldenCert("midpoint", corpus::midpointSource());
}
TEST(GoldenCert, ListReversal) {
  checkGoldenCert("reverse", corpus::reverseSource());
}
