//===- GoldenSpecTest.cpp - Golden-file snapshot suite ----------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the exact rendered output of the whole pipeline on the paper's
/// example programs against checked-in golden files (tests/golden/). Any
/// change to parsing, abstraction, simplification or printing that moves
/// a single byte of a final specification shows up as a readable diff
/// here — this is the guard rail the abstraction cache is validated
/// against, since cache hits replay exactly these rendered artefacts.
///
/// Regenerate after an intentional output change with
///
///   AC_UPDATE_GOLDEN=1 ./test_golden
///
/// and review the fixture diff like any other code change. The suite
/// honours $AC_CACHE_DIR / $AC_CACHE (see core/ResultCache.h) and prints
/// a `[cache] hits=N misses=M` line per run when the cache is enabled, so
/// the tier-1 script can assert a warm second run actually hits.
///
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "corpus/Sources.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace ac;

#ifndef AC_GOLDEN_DIR
#error "AC_GOLDEN_DIR must point at the checked-in tests/golden directory"
#endif

namespace {

bool updateMode() {
  const char *E = std::getenv("AC_UPDATE_GOLDEN");
  return E && *E && std::string(E) != "0";
}

std::string goldenPath(const std::string &Name) {
  return std::string(AC_GOLDEN_DIR) + "/" + Name + ".expected";
}

/// One canonical dump of everything user-visible a run produces, in
/// FunctionOrder: per function its final-definition key, the rendered
/// spec, and the composed theorem's proposition; the diagnostic stream
/// at the end. The same accessors serve live terms and cache replays,
/// so golden comparisons hold verbatim for warm runs.
std::string snapshot(const std::string &Source) {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Source, Diags);
  EXPECT_TRUE(AC) << Diags.str();
  if (!AC)
    return "<run failed>\n" + Diags.str();

  std::ostringstream OS;
  for (const std::string &Name : AC->order()) {
    const core::FuncOutput *F = AC->func(Name);
    if (!F) {
      ADD_FAILURE() << "no output for " << Name;
      continue;
    }
    OS << "== function: " << Name << "\n";
    OS << "final: " << F->finalKey() << "\n";
    OS << "-- spec\n" << AC->render(Name) << "\n";
    OS << "-- theorem\n" << F->pipelineProp() << "\n";
  }
  OS << "== diagnostics\n";
  for (const Diagnostic &D : Diags.diagnostics())
    OS << D.str() << "\n";

  const core::ACStats &St = AC->stats();
  if (St.CacheEnabled)
    std::printf("[cache] hits=%u misses=%u\n", St.CacheHits,
                St.CacheMisses);
  return OS.str();
}

void checkGolden(const std::string &Name, const char *Source) {
  std::string Actual = snapshot(Source);
  std::string Path = goldenPath(Name);

  if (updateMode()) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    return;
  }

  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good())
      << "missing golden file " << Path
      << " (generate with AC_UPDATE_GOLDEN=1)";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "pipeline output diverged from " << Path
      << "; if intentional, regenerate with AC_UPDATE_GOLDEN=1 and "
         "review the fixture diff";
}

} // namespace

// The Sec 3.3 word-abstraction showcases.
TEST(GoldenSpec, Max) { checkGolden("max", corpus::maxSource()); }
TEST(GoldenSpec, Gcd) { checkGolden("gcd", corpus::gcdSource()); }

// The Sec 4 heap-abstraction showcases.
TEST(GoldenSpec, Swap) { checkGolden("swap", corpus::swapSource()); }
TEST(GoldenSpec, Midpoint) {
  checkGolden("midpoint", corpus::midpointSource());
}

// The Sec 5.2 case study: in-place linked-list reversal.
TEST(GoldenSpec, ListReversal) {
  checkGolden("reverse", corpus::reverseSource());
}
