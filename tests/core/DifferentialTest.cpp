//===- DifferentialTest.cpp - Randomized pipeline fuzzing -------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random C program generator feeding the full pipeline, with
/// every function cross-checked differentially: the Simpl interpreter
/// (ground truth) against the L1 monad, the L2 lifted function, and the
/// most abstract (HL/WA) output on random initial states. Any divergence
/// is a refinement bug — in the engines, the composition, or (since the
/// parallel scheduler reuses this machinery) the concurrency rework.
///
/// Reproduction workflow: a failing seed prints a self-contained command
///
///   AC_DIFF_SEED=<seed> ./tests/test_differential
///
/// which re-runs exactly that program with its source dumped and extra
/// trials per function.
///
//===----------------------------------------------------------------------===//

#include "../common/TestUtil.h"

#include "core/AutoCorres.h"
#include "heapabs/LiftedGlobals.h"
#include "wordabs/WordAbs.h"

#include "../../tools/acpc_check.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ac;
using namespace ac::hol;
using namespace ac::monad;
using namespace ac::test;
using namespace ac::wordabs;

namespace {

//===----------------------------------------------------------------------===//
// Program generator
//===----------------------------------------------------------------------===//

/// Emits one random translation unit: straight-line arithmetic, branches,
/// bounded loops, heap reads/writes on two struct types, and calls into
/// previously generated functions — every construct the C subset
/// supports and the guard machinery cares about.
class DiffGen {
public:
  explicit DiffGen(uint64_t Seed) : R(Seed) {}

  std::string run() {
    OS << "struct node { struct node *next; unsigned val; int w; };\n";
    OS << "struct box { unsigned a; unsigned b; };\n";
    OS << "unsigned g_acc = 0;\n";
    OS << "int g_sign = 0;\n";
    unsigned NumFns = 2 + static_cast<unsigned>(R.below(4));
    for (unsigned I = 0; I != NumFns; ++I)
      emitFunction(I);
    return OS.str();
  }

private:
  Rng R;
  std::ostringstream OS;
  std::vector<std::string> UnsignedFns; ///< name(unsigned, unsigned)

  unsigned pick(unsigned N) { return static_cast<unsigned>(R.below(N)); }

  void emitFunction(unsigned Idx) {
    switch (pick(6)) {
    case 0:
      emitArith(Idx);
      break;
    case 1:
      emitSigned(Idx);
      break;
    case 2:
      emitHeapNode(Idx);
      break;
    case 3:
      emitHeapBox(Idx);
      break;
    case 4:
      emitLoop(Idx);
      break;
    default:
      if (!UnsignedFns.empty())
        emitCaller(Idx);
      else
        emitArith(Idx);
      break;
    }
  }

  /// Straight-line unsigned arithmetic with branches.
  void emitArith(unsigned Idx) {
    std::string Name = "arith_" + std::to_string(Idx);
    OS << "unsigned " << Name << "(unsigned a, unsigned b) {\n";
    OS << "  unsigned acc = a;\n";
    unsigned Stmts = 2 + pick(5);
    for (unsigned I = 0; I != Stmts; ++I) {
      switch (pick(6)) {
      case 0:
        OS << "  acc = acc + (b % " << (2 + pick(29)) << "u);\n";
        break;
      case 1:
        OS << "  acc = acc * " << (1 + pick(5)) << "u;\n";
        break;
      case 2:
        OS << "  if (acc > " << (10 + pick(500)) << "u) acc = acc / "
           << (2 + pick(7)) << "u;\n";
        break;
      case 3:
        OS << "  acc = acc ^ (b << " << pick(8) << ");\n";
        break;
      case 4:
        OS << "  if (b < " << (1 + pick(100)) << "u) acc = acc - (acc % "
           << (2 + pick(9)) << "u);\n";
        break;
      default:
        OS << "  b = (b >> " << (1 + pick(4)) << ") + " << pick(10)
           << "u;\n";
        break;
      }
    }
    OS << "  return acc;\n}\n";
    UnsignedFns.push_back(Name);
  }

  /// Signed arithmetic: exercises sint abstraction and overflow guards.
  void emitSigned(unsigned Idx) {
    OS << "int sgn_" << Idx << "(int x, int y) {\n";
    OS << "  int r = 0;\n";
    unsigned Stmts = 2 + pick(3);
    for (unsigned I = 0; I != Stmts; ++I) {
      switch (pick(4)) {
      case 0:
        OS << "  if (x > y) r = r + " << (1 + pick(50))
           << "; else r = r - " << (1 + pick(50)) << ";\n";
        break;
      case 1:
        OS << "  if (x < " << (100 + pick(400)) << " && x > -"
           << (100 + pick(400)) << ") r = r + x / " << (2 + pick(5))
           << ";\n";
        break;
      case 2:
        OS << "  if (y != 0) r = x % " << (3 + pick(11)) << ";\n";
        break;
      default:
        OS << "  g_sign = r;\n";
        break;
      }
    }
    OS << "  return r;\n}\n";
  }

  /// Heap reads/writes on struct node behind a null check.
  void emitHeapNode(unsigned Idx) {
    OS << "unsigned node_" << Idx << "(struct node *p, unsigned v) {\n";
    OS << "  if (p == NULL)\n    return 0u;\n";
    unsigned Stmts = 2 + pick(4);
    for (unsigned I = 0; I != Stmts; ++I) {
      switch (pick(5)) {
      case 0:
        OS << "  p->val = p->val + (v % " << (2 + pick(30)) << "u);\n";
        break;
      case 1:
        OS << "  if (p->val > " << (10 + pick(200)) << "u) p->w = "
           << pick(64) << ";\n";
        break;
      case 2:
        OS << "  if (p->next != NULL) p->next->val = v;\n";
        break;
      case 3:
        OS << "  g_acc = g_acc + p->val;\n";
        break;
      default:
        OS << "  v = v + p->val;\n";
        break;
      }
    }
    OS << "  return v + p->val;\n}\n";
  }

  /// Heap reads/writes on the second struct type.
  void emitHeapBox(unsigned Idx) {
    OS << "unsigned box_" << Idx << "(struct box *p) {\n";
    OS << "  if (p == NULL)\n    return " << pick(16) << "u;\n";
    unsigned Stmts = 1 + pick(4);
    for (unsigned I = 0; I != Stmts; ++I) {
      switch (pick(4)) {
      case 0:
        OS << "  p->a = p->a + p->b;\n";
        break;
      case 1:
        OS << "  if (p->b > p->a) p->b = p->b - p->a;\n";
        break;
      case 2:
        OS << "  p->b = p->b ^ " << (1 + pick(255)) << "u;\n";
        break;
      default:
        OS << "  g_acc = p->a;\n";
        break;
      }
    }
    OS << "  return p->a + p->b;\n}\n";
  }

  /// Bounded while loop (always terminates within fuel).
  void emitLoop(unsigned Idx) {
    std::string Name = "loop_" + std::to_string(Idx);
    OS << "unsigned " << Name << "(unsigned a, unsigned b) {\n";
    OS << "  unsigned i = 0;\n";
    OS << "  unsigned acc = b % " << (5 + pick(20)) << "u;\n";
    OS << "  while (i < (a % " << (3 + pick(12)) << "u)) {\n";
    switch (pick(3)) {
    case 0:
      OS << "    acc = acc + i;\n";
      break;
    case 1:
      OS << "    acc = acc * 2u + 1u;\n";
      break;
    default:
      OS << "    if (acc > " << (20 + pick(100)) << "u) acc = acc - "
         << (1 + pick(20)) << "u;\n";
      break;
    }
    OS << "    i = i + 1u;\n";
    OS << "  }\n";
    OS << "  return acc;\n}\n";
    UnsignedFns.push_back(Name);
  }

  /// Calls previously generated unsigned functions.
  void emitCaller(unsigned Idx) {
    OS << "unsigned call_" << Idx << "(unsigned x, unsigned y) {\n";
    OS << "  unsigned r = 0;\n";
    unsigned Calls = 1 + pick(2);
    for (unsigned I = 0; I != Calls; ++I) {
      const std::string &Callee =
          UnsignedFns[pick(static_cast<unsigned>(UnsignedFns.size()))];
      OS << "  r = r + " << Callee << "(x % " << (3 + pick(17))
         << "u, y % " << (5 + pick(50)) << "u);\n";
    }
    OS << "  return r;\n}\n";
  }
};

//===----------------------------------------------------------------------===//
// Differential checks
//===----------------------------------------------------------------------===//

/// The rx image of a concrete runtime value (mirrors Sec 3.3's rx).
Value rxValue(const Value &V, const TypeRef &CTy) {
  switch (kindOf(CTy)) {
  case AbsKind::Nat:
    return Value::num(V.N, natTy()); // unsigned words are non-negative
  case AbsKind::Int:
    return Value::num(V.N, intTy()); // stored sign-extended
  case AbsKind::Pair:
    return Value::pair(rxValue(V.PairV->first, CTy->arg(0)),
                       rxValue(V.PairV->second, CTy->arg(1)));
  case AbsKind::Id:
    return V;
  }
  return V;
}

/// Observational equality of lifted states (same probing discipline as
/// the HL test suite): split heaps compared at world objects plus a few
/// invalid addresses, plain globals directly.
bool liftedEq(const Value &A, const Value &B,
              const heapabs::LiftedGlobals &LG, const TestWorld &W) {
  for (const TypeRef &T : LG.HeapTypes) {
    std::vector<uint32_t> Probes = {0, 2, 0xfffffffc};
    // Probe every known object of every type (cross-type aliasing).
    for (const auto &[Name, Addrs] : W.Objects) {
      (void)Name;
      Probes.insert(Probes.end(), Addrs.begin(), Addrs.end());
    }
    const Value &VA = A.Rec->at(heapabs::validFieldFor(T));
    const Value &VB = B.Rec->at(heapabs::validFieldFor(T));
    const Value &HA = A.Rec->at(heapabs::heapFieldFor(T));
    const Value &HB = B.Rec->at(heapabs::heapFieldFor(T));
    for (uint32_t P : Probes) {
      Value PV = Value::ptr(P, typeStr(T));
      Value ValidA = VA.Fun(PV);
      Value ValidB = VB.Fun(PV);
      if (ValidA.B != ValidB.B)
        return false;
      if (ValidA.B && !Value::equal(HA.Fun(PV), HB.Fun(PV)))
        return false;
    }
  }
  for (const auto &[Name, Ty] : LG.PlainGlobals) {
    (void)Ty;
    if (!Value::equal(A.Rec->at(Name), B.Rec->at(Name)))
      return false;
  }
  return true;
}

/// Simpl ground truth vs the most abstract (finalKey) monadic output.
/// Composed semantics: if the abstract run does not fail, the concrete
/// execution must not fault and its observations must abstract to the
/// abstract run's (rx on the return value, lift_global_heap on state).
Diff checkFinalOnce(core::AutoCorres &AC, const std::string &Fn, Rng &R) {
  const simpl::SimplProgram &Prog = AC.program();
  const simpl::SimplFunc *F = Prog.function(Fn);
  const core::FuncOutput *Out = AC.func(Fn);
  InterpCtx &Ctx = AC.ctx();

  TestWorld W = buildWorld(Prog, Ctx, R);
  std::vector<Value> Args, AbsArgs;
  for (const auto &[Name, Ty] : F->Params) {
    (void)Name;
    Value V = randomValue(Ty, W, R, Ctx);
    AbsArgs.push_back(Out->WordAbstracted ? rxValue(V, Ty) : V);
    Args.push_back(std::move(V));
  }
  Value Globals = randomGlobals(Prog, W, R, Ctx);

  Ctx.reset();
  SimplOutcome SO = runSimplFunction(*F, Args, Globals, Ctx);
  if (SO.K == SimplOutcome::Kind::Stuck)
    return Diff::Skip;

  Value State =
      Out->HeapLifted ? Ctx.LiftGlobalHeap(Globals, Ctx) : Globals;
  Ctx.reset();
  Value Fun = evalClosed(Ctx.FunDefs.at(Out->finalKey()), Ctx);
  for (const Value &A : AbsArgs)
    Fun = Fun.Fun(A);
  MonadResult AR = runMonad(Fun, State, Ctx);
  if (Ctx.OutOfFuel)
    return Diff::Skip;

  // The abstract program may fail more often than SIMPL (heap and
  // overflow guards); a failing abstract run makes the refinement
  // statement vacuous.
  if (AR.Failed)
    return Diff::Ok;
  if (SO.K == SimplOutcome::Kind::Fault)
    return Diff::Mismatch; // abstract succeeded; concrete must too
  if (AR.Results.size() != 1 || AR.Results[0].IsExn)
    return Diff::Mismatch;
  const MonadResult::Res &ARes = AR.Results[0];

  // Return value: the abstract result is the rx image of the concrete.
  if (F->RetTy) {
    Value CRet = SO.State.Rec->at(simpl::retVarName());
    Value Want = Out->WordAbstracted ? rxValue(CRet, F->RetTy) : CRet;
    if (!Value::equal(Want, ARes.V))
      return Diff::Mismatch;
  }

  // Final state: abstract against the lifted image of the concrete one.
  Value CGlobals = SO.State.Rec->at("globals");
  if (Out->HeapLifted) {
    Value LiftedFinal = Ctx.LiftGlobalHeap(CGlobals, Ctx);
    if (!liftedEq(LiftedFinal, ARes.State, AC.lifted(), W))
      return Diff::Mismatch;
  } else if (!Value::equal(ARes.State, CGlobals)) {
    return Diff::Mismatch;
  }
  return Diff::Ok;
}

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

struct Tally {
  unsigned Ok = 0;
  unsigned Skip = 0;
  std::vector<std::string> Failures;
};

void count(Diff D, const std::string &What, uint64_t Seed, Tally &T) {
  switch (D) {
  case Diff::Ok:
    ++T.Ok;
    break;
  case Diff::Skip:
    ++T.Skip;
    break;
  case Diff::Mismatch:
    T.Failures.push_back(
        What + " diverged\nreproduce with: AC_DIFF_SEED=" +
        std::to_string(Seed) + " ./tests/test_differential");
    break;
  }
}

/// Pipes one seeded program through the pipeline and checks every
/// function at every level. \p Verbose dumps source and per-function
/// detail (used by the AC_DIFF_SEED reproduction mode).
void checkProgram(uint64_t Seed, unsigned TrialsPerFn, Tally &T,
                  bool Verbose = false) {
  std::string Src = DiffGen(Seed).run();
  if (Verbose)
    std::fprintf(stderr, "=== seed %llu ===\n%s\n",
                 static_cast<unsigned long long>(Seed), Src.c_str());

  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Src, Diags);
  if (!AC) {
    T.Failures.push_back("pipeline failed (seed " + std::to_string(Seed) +
                         "):\n" + Diags.str() + "\nsource:\n" + Src);
    return;
  }

  for (const std::string &Fn : AC->order()) {
    if (Verbose) {
      const core::FuncOutput *O = AC->func(Fn);
      std::fprintf(stderr, "  %s -> %s  ret=%s\n%s\n", Fn.c_str(),
                   O->finalKey().c_str(),
                   O->FinalRetTy ? typeStr(O->FinalRetTy).c_str() : "void",
                   AC->render(Fn).c_str());
    }
    for (unsigned I = 0; I != TrialsPerFn; ++I) {
      uint64_t TrialSeed = Seed * 1000003 + I * 7919;
      {
        Rng R(TrialSeed);
        count(checkL1Once(AC->program(), Fn, AC->ctx(), R),
              "L1 vs Simpl [" + Fn + "]", Seed, T);
      }
      {
        Rng R(TrialSeed ^ 0x5bd1e995);
        count(checkL2Once(AC->program(), Fn, AC->ctx(), R),
              "L2 vs Simpl [" + Fn + "]", Seed, T);
      }
      {
        Rng R(TrialSeed ^ 0xc2b2ae35);
        count(checkFinalOnce(*AC, Fn, R),
              AC->func(Fn)->finalKey() + " vs Simpl [" + Fn + "]", Seed,
              T);
      }
    }
  }
}

void reportFailures(const Tally &T) {
  for (const std::string &F : T.Failures)
    ADD_FAILURE() << F;
}

} // namespace

TEST(Differential, RandomProgramSweep) {
  // AC_DIFF_SEED replays a single failing seed with its source dumped.
  if (const char *E = std::getenv("AC_DIFF_SEED")) {
    uint64_t Seed = std::strtoull(E, nullptr, 10);
    Tally T;
    checkProgram(Seed, /*TrialsPerFn=*/12, T, /*Verbose=*/true);
    reportFailures(T);
    EXPECT_GT(T.Ok, 0u) << "all trials inconclusive for seed " << Seed;
    return;
  }

  // Two disjoint seed banks: the original 220-program bank, and a second
  // bank added when the kernel representation moved to hash-consing —
  // fresh programs the interning, rule-index and memo fast paths have
  // never seen, summing to a 500-program sweep.
  constexpr unsigned BankAPrograms = 220;
  constexpr uint64_t BankABase = 0xd1ff0001;
  constexpr unsigned BankBPrograms = 280;
  constexpr uint64_t BankBBase = 0xd1ffba5e;
  Tally T;
  for (unsigned P = 0; P != BankAPrograms; ++P)
    checkProgram(BankABase + P, /*TrialsPerFn=*/4, T);
  for (unsigned P = 0; P != BankBPrograms; ++P)
    checkProgram(BankBBase + P, /*TrialsPerFn=*/4, T);
  reportFailures(T);
  // The sweep must be conclusive, not vacuously green: most trials run
  // three checks per function, so Ok counts should dwarf program count.
  EXPECT_GT(T.Ok, (BankAPrograms + BankBPrograms) * 3)
      << "sweep mostly inconclusive: Ok=" << T.Ok << " Skip=" << T.Skip;
}

/// Seeds that once surfaced a divergence (or exercised a then-new fast
/// path) are pinned here with extra trials, so the exact program that
/// broke an engine keeps guarding it after the sweep's banks move on.
/// Every entry records why it earned its place.
TEST(Differential, PinnedSeeds) {
  struct Pin {
    uint64_t Seed;
    const char *Why;
  };
  const Pin Pins[] = {
      // Bank boundaries of the 500-program sweep: first/last program of
      // each bank, replayed at triple trials. These pin the sweep's
      // endpoints against generator drift when banks are renumbered.
      {0xd1ff0001, "bank A first program"},
      {0xd1ff0001 + 219, "bank A last program"},
      {0xd1ffba5e, "bank B first program"},
      {0xd1ffba5e + 279, "bank B last program"},
  };
  Tally T;
  for (const Pin &P : Pins) {
    size_t Before = T.Failures.size();
    checkProgram(P.Seed, /*TrialsPerFn=*/12, T);
    for (size_t I = Before; I != T.Failures.size(); ++I)
      T.Failures[I] += std::string("\npinned because: ") + P.Why;
  }
  reportFailures(T);
  EXPECT_GT(T.Ok, 0u);
}

namespace {

/// The canonical user-visible image of one run, GoldenSpecTest-style:
/// per function the final-definition key, the rendered spec, and the
/// composed theorem; then the diagnostic stream.
std::string dumpRun(const std::string &Src, core::ACOptions Opts,
                    unsigned &CertClaims) {
  DiagEngine Diags;
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  if (!AC)
    return "<run failed>\n" + Diags.str();
  std::ostringstream OS;
  for (const std::string &Fn : AC->order()) {
    const core::FuncOutput *F = AC->func(Fn);
    OS << "== " << Fn << "\n";
    OS << F->finalKey() << "\n";
    OS << AC->render(Fn) << "\n";
    OS << F->pipelineProp() << "\n";
  }
  for (const Diagnostic &D : Diags.diagnostics())
    OS << D.str() << "\n";
  CertClaims = AC->stats().CertClaims;
  return OS.str();
}

} // namespace

/// Certificate recording must be a pure observer: over a pinned
/// 50-program subsample of bank A, every run's user-visible output is
/// byte-identical with and without a certificate being exported, and the
/// exported certificate re-derives under the independent checker with
/// one claim per function. Runs in two strict phases — all baselines
/// before the first cert run — because recording is process-sticky once
/// enabled; this test must therefore stay the last one registered in
/// this suite that cares about recording being off.
TEST(Differential, CertificateNonPerturbation) {
  constexpr unsigned Programs = 50;
  constexpr uint64_t Base = 0xd1ff0001; // bank A, stride 4 subsample
  namespace fs = std::filesystem;
  std::string Scratch =
      (fs::temp_directory_path() /
       ("ac-diffcert-" + std::to_string(getpid())))
          .string();
  std::error_code EC;
  fs::create_directories(Scratch, EC);
  ASSERT_FALSE(EC) << "cannot create scratch dir " << Scratch;

  // Phase 1: baselines, recording off. Private cold cache directories
  // keep the comparison honest under $AC_CACHE_DIR (a cache replay
  // never mints derivations, so a warm cert run would be vacuous).
  std::vector<std::string> Sources(Programs), Baselines(Programs);
  for (unsigned P = 0; P != Programs; ++P) {
    uint64_t Seed = Base + P * 4;
    Sources[P] = DiffGen(Seed).run();
    core::ACOptions Opts;
    Opts.CacheDir = Scratch + "/base-" + std::to_string(P);
    unsigned Claims = ~0u;
    Baselines[P] = dumpRun(Sources[P], Opts, Claims);
    EXPECT_EQ(Claims, 0u) << "baseline run claimed certificates";
  }

  // Phase 2: identical runs with a certificate exported.
  for (unsigned P = 0; P != Programs; ++P) {
    uint64_t Seed = Base + P * 4;
    core::ACOptions Opts;
    Opts.CacheDir = Scratch + "/cert-" + std::to_string(P);
    Opts.CertPath = Scratch + "/p" + std::to_string(P) + ".acpc";
    unsigned Claims = 0;
    std::string Dump = dumpRun(Sources[P], Opts, Claims);
    EXPECT_EQ(Dump, Baselines[P])
        << "recording perturbed pipeline output; reproduce with: "
           "AC_DIFF_SEED="
        << Seed << " ./tests/test_differential";
    EXPECT_GT(Claims, 0u);

    std::ifstream In(Opts.CertPath, std::ios::binary);
    ASSERT_TRUE(In.good()) << "certificate not written for seed " << Seed;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    acpc::Result R = acpc::check(Buf.str());
    EXPECT_TRUE(R.Ok) << "seed " << Seed << ": line " << R.Line << ": "
                      << R.Error;
    EXPECT_EQ(R.ClaimCount, Claims);
  }
  fs::remove_all(Scratch, EC);
}
