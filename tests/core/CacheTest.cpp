//===- CacheTest.cpp - Abstraction-cache equivalence gate -------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The acceptance gate of the content-addressed abstraction cache
/// (core/ResultCache.h): runs with the cache — cold, warm, and after a
/// source edit — must be byte-identical to runs without it, at every job
/// count. Invalidation must flow up the call graph: editing one function
/// recomputes exactly it and its transitive callers, while untouched
/// functions replay as hits. A corrupt or stale cache file must degrade
/// to a cold run, never to wrong output.
///
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "core/ResultCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ac;

namespace {

/// A five-function program with a diamond-free chain top -> mid -> leaf,
/// an unrelated pure function, and an unrelated pointer function (so the
/// heap-lifting path is exercised too).
///
///   top --> mid --> leaf        lone        bump
///     \------------^
const char *chainSource(const char *LeafExpr) {
  static std::string Buf;
  Buf = std::string("unsigned int leaf(unsigned int x) { return ") +
        LeafExpr +
        "; }\n"
        "unsigned int mid(unsigned int x) { return leaf(x) * 2u; }\n"
        "unsigned int top(unsigned int x) { return mid(x) + leaf(x); }\n"
        "unsigned int lone(unsigned int a, unsigned int b) {\n"
        "  if (a < b) { return a; }\n"
        "  return b;\n"
        "}\n"
        "void bump(unsigned int *p) { *p = *p + 1u; }\n";
  return Buf.c_str();
}

/// Everything the equivalence gate compares, per function, using the
/// accessors that are defined for both live and cache-replayed outputs.
struct Snapshot {
  std::vector<std::string> Names;
  std::vector<std::string> Rendered;
  std::vector<std::string> FinalKeys;
  std::vector<std::string> Pipelines;
  std::vector<std::string> Diags;
  core::ACStats Stats;
};

Snapshot runWith(const std::string &Src, const std::string &CacheDir,
                 unsigned Jobs = 1) {
  DiagEngine Diags;
  core::ACOptions Opts;
  Opts.Jobs = Jobs;
  Opts.CacheDir = CacheDir;
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  EXPECT_TRUE(AC) << Diags.str();
  Snapshot S;
  if (!AC)
    return S;
  for (const std::string &Name : AC->order()) {
    const core::FuncOutput *F = AC->func(Name);
    if (!F) {
      ADD_FAILURE() << "no output for " << Name;
      continue;
    }
    S.Names.push_back(Name);
    S.Rendered.push_back(AC->render(Name));
    S.FinalKeys.push_back(F->finalKey());
    S.Pipelines.push_back(F->pipelineProp());
  }
  for (const Diagnostic &D : Diags.diagnostics())
    S.Diags.push_back(D.str());
  S.Stats = AC->stats();
  return S;
}

void expectIdentical(const Snapshot &A, const Snapshot &B,
                     const std::string &What) {
  ASSERT_EQ(A.Names.size(), B.Names.size()) << What;
  for (size_t I = 0; I != A.Names.size(); ++I) {
    ASSERT_EQ(A.Names[I], B.Names[I]) << What;
    EXPECT_EQ(A.FinalKeys[I], B.FinalKeys[I])
        << What << ": finalKey diverged for " << A.Names[I];
    EXPECT_EQ(A.Rendered[I], B.Rendered[I])
        << What << ": rendered spec diverged for " << A.Names[I];
    EXPECT_EQ(A.Pipelines[I], B.Pipelines[I])
        << What << ": pipeline proposition diverged for " << A.Names[I];
  }
  EXPECT_EQ(A.Diags, B.Diags) << What << ": diagnostic stream diverged";
  // Table 5 output columns must not depend on cache warmth either.
  EXPECT_EQ(A.Stats.ACSpecLines, B.Stats.ACSpecLines) << What;
  EXPECT_EQ(A.Stats.ACTermSizeTotal, B.Stats.ACTermSizeTotal) << What;
}

/// Fresh empty directory under the test temp root.
class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    // The option-passed directory must govern regardless of the
    // environment the test runner happens to have.
    ::unsetenv("AC_CACHE");
    ::unsetenv("AC_CACHE_DIR");
    Dir = ::testing::TempDir() + "ac-cache-test/" +
          ::testing::UnitTest::GetInstance()
              ->current_test_info()
              ->name();
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  std::string cacheFilePath() const {
    return Dir + "/accache-v" +
           std::to_string(core::ResultCache::FormatVersion) + ".txt";
  }

  std::string Dir;
};

} // namespace

TEST_F(CacheTest, ColdAndWarmMatchUncachedRun) {
  std::string Src = chainSource("x + 1u");
  Snapshot Ref = runWith(Src, /*CacheDir=*/"");
  ASSERT_EQ(Ref.Names.size(), 5u);
  EXPECT_FALSE(Ref.Stats.CacheEnabled);

  Snapshot Cold = runWith(Src, Dir);
  EXPECT_TRUE(Cold.Stats.CacheEnabled);
  EXPECT_EQ(Cold.Stats.CacheHits, 0u);
  EXPECT_EQ(Cold.Stats.CacheMisses, 5u);
  EXPECT_EQ(Cold.Stats.CacheInvalidations, 0u);
  expectIdentical(Ref, Cold, "uncached vs cold");
  EXPECT_TRUE(std::filesystem::exists(cacheFilePath()));

  Snapshot Warm = runWith(Src, Dir);
  EXPECT_EQ(Warm.Stats.CacheHits, 5u);
  EXPECT_EQ(Warm.Stats.CacheMisses, 0u);
  expectIdentical(Ref, Warm, "uncached vs warm");
}

TEST_F(CacheTest, InvalidationFlowsUpTheCallGraphOnly) {
  std::string Before = chainSource("x + 1u");
  std::string After = chainSource("x + 2u");

  Snapshot Cold = runWith(Before, Dir);
  ASSERT_EQ(Cold.Stats.CacheMisses, 5u);

  // Editing leaf must recompute leaf, mid and top (its transitive
  // callers) while lone and bump stay warm.
  Snapshot Edited = runWith(After, Dir);
  EXPECT_EQ(Edited.Stats.CacheHits, 2u);
  EXPECT_EQ(Edited.Stats.CacheMisses, 3u);
  EXPECT_EQ(Edited.Stats.CacheInvalidations, 3u);
  expectIdentical(runWith(After, /*CacheDir=*/""), Edited,
                  "uncached vs partially-invalidated");

  // The edited results are stored too: a second run is fully warm.
  Snapshot Warm = runWith(After, Dir);
  EXPECT_EQ(Warm.Stats.CacheHits, 5u);
  EXPECT_EQ(Warm.Stats.CacheMisses, 0u);

  // And switching back revalidates nothing incorrectly: the old entries
  // were replaced under the same names, so the original source misses on
  // the chain again and still matches an uncached run byte for byte.
  Snapshot Back = runWith(Before, Dir);
  EXPECT_EQ(Back.Stats.CacheHits, 2u);
  EXPECT_EQ(Back.Stats.CacheInvalidations, 3u);
  expectIdentical(runWith(Before, /*CacheDir=*/""), Back,
                  "uncached vs reverted");
}

TEST_F(CacheTest, WarmReplayIsJobCountInvariant) {
  std::string Src = chainSource("x + 1u");
  Snapshot Ref = runWith(Src, /*CacheDir=*/"");

  // Populate at Jobs=4, replay at Jobs=1 and Jobs=4: identical output
  // and full hit coverage everywhere.
  Snapshot Cold4 = runWith(Src, Dir, /*Jobs=*/4);
  expectIdentical(Ref, Cold4, "uncached vs cold Jobs=4");

  Snapshot Warm1 = runWith(Src, Dir, /*Jobs=*/1);
  EXPECT_EQ(Warm1.Stats.CacheHits, 5u);
  expectIdentical(Ref, Warm1, "uncached vs warm Jobs=1");

  Snapshot Warm4 = runWith(Src, Dir, /*Jobs=*/4);
  EXPECT_EQ(Warm4.Stats.CacheHits, 5u);
  expectIdentical(Ref, Warm4, "uncached vs warm Jobs=4");
}

TEST_F(CacheTest, CorruptCacheFileIsACleanMiss) {
  std::string Src = chainSource("x + 1u");
  runWith(Src, Dir);
  ASSERT_TRUE(std::filesystem::exists(cacheFilePath()));

  {
    std::ofstream Out(cacheFilePath(), std::ios::binary | std::ios::trunc);
    Out << "ACCACHE 1\nentry zzzz-not-a-key\nname \x01\x02 garbage\n";
  }
  Snapshot AfterCorrupt = runWith(Src, Dir);
  EXPECT_EQ(AfterCorrupt.Stats.CacheHits, 0u);
  EXPECT_EQ(AfterCorrupt.Stats.CacheMisses, 5u);
  expectIdentical(runWith(Src, /*CacheDir=*/""), AfterCorrupt,
                  "uncached vs corrupt-cache");

  // The cold run rewrote the file: warmth is restored.
  Snapshot Warm = runWith(Src, Dir);
  EXPECT_EQ(Warm.Stats.CacheHits, 5u);
}

TEST_F(CacheTest, StaleFormatVersionIsACleanMiss) {
  std::string Src = chainSource("x + 1u");
  runWith(Src, Dir);

  // Pretend a future format wrote this file: the header mismatch must
  // discard every entry, not misparse them.
  std::string Contents;
  {
    std::ifstream In(cacheFilePath(), std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Contents = Buf.str();
  }
  const std::string Header =
      "ACCACHE " + std::to_string(core::ResultCache::FormatVersion);
  ASSERT_EQ(Contents.rfind(Header, 0), 0u);
  Contents.replace(0, Header.size(), "ACCACHE 9");
  {
    std::ofstream Out(cacheFilePath(), std::ios::binary | std::ios::trunc);
    Out << Contents;
  }

  Snapshot Stale = runWith(Src, Dir);
  EXPECT_EQ(Stale.Stats.CacheHits, 0u);
  EXPECT_EQ(Stale.Stats.CacheMisses, 5u);
  expectIdentical(runWith(Src, /*CacheDir=*/""), Stale,
                  "uncached vs stale-version");
}

TEST_F(CacheTest, OptionChangesInvalidate) {
  std::string Src = chainSource("x + 1u");
  Snapshot Cold = runWith(Src, Dir);
  ASSERT_EQ(Cold.Stats.CacheMisses, 5u);

  // Turning off word abstraction for one function changes its key (and
  // its callers'), so those entries miss; the cache must never serve a
  // result computed under different options.
  DiagEngine Diags;
  core::ACOptions Opts;
  Opts.CacheDir = Dir;
  Opts.NoWordAbs.insert("leaf");
  auto AC = core::AutoCorres::run(Src, Diags, Opts);
  ASSERT_TRUE(AC) << Diags.str();
  EXPECT_GE(AC->stats().CacheMisses, 3u);
  EXPECT_EQ(AC->stats().CacheHits, 2u);
}

//===----------------------------------------------------------------------===//
// Concurrent writers (the advisory file lock + merge-on-save path)
//===----------------------------------------------------------------------===//

TEST_F(CacheTest, SaveMergesWithAConcurrentWritersFile) {
  // Writer A loads (empty), then B loads, inserts and saves; A's later
  // save must keep B's entry rather than clobbering the file with its
  // own pre-B view — the read-merge-write under the exclusive lock.
  std::filesystem::create_directories(Dir);
  core::ResultCache A(Dir);
  {
    core::ResultCache B(Dir);
    core::CachedFunc E;
    E.Key = 0xB0B;
    E.Name = "from_b";
    E.Render = "render b";
    B.insert(std::move(E));
    ASSERT_TRUE(B.save());
  }
  core::CachedFunc E;
  E.Key = 0xA11CE;
  E.Name = "from_a";
  E.Render = "render a";
  A.insert(std::move(E));
  ASSERT_TRUE(A.save());

  core::ResultCache Final(Dir);
  EXPECT_EQ(Final.size(), 2u);
  EXPECT_TRUE(Final.knowsFunction("from_a"));
  EXPECT_TRUE(Final.knowsFunction("from_b"));
  EXPECT_TRUE(Final.lookup(0xB0B) != nullptr);
  EXPECT_TRUE(std::filesystem::exists(Dir + "/accache.lock"));
}

TEST_F(CacheTest, RecomputeSupersedesAConcurrentWritersEntry) {
  // Both writers computed `shared`, under different keys (say the
  // source changed between their loads). Whoever saves last wins for
  // that name — but there must be exactly one `shared` entry, never a
  // stale duplicate under the old key.
  std::filesystem::create_directories(Dir);
  auto makeEntry = [](uint64_t Key) {
    core::CachedFunc E;
    E.Key = Key;
    E.Name = "shared";
    E.Render = "render " + std::to_string(Key);
    return E;
  };
  core::ResultCache A(Dir), B(Dir);
  A.insert(makeEntry(111));
  ASSERT_TRUE(A.save());
  B.insert(makeEntry(222));
  ASSERT_TRUE(B.save());

  core::ResultCache Final(Dir);
  EXPECT_EQ(Final.size(), 1u);
  EXPECT_TRUE(Final.knowsFunction("shared"));
  EXPECT_EQ(Final.lookup(111), nullptr);
  ASSERT_TRUE(Final.lookup(222) != nullptr);
  EXPECT_EQ(Final.lookup(222)->Render, "render 222");
}

TEST_F(CacheTest, TwoWriterStressLosesNoEntries) {
  // Two threads hammer the same cache directory with interleaved
  // load/insert/save cycles (flock attaches to the open file
  // description, so two in-process instances genuinely contend). The
  // merge-on-save contract: no writer's entries are ever lost.
  std::filesystem::create_directories(Dir);
  constexpr int Rounds = 25;
  std::atomic<int> SaveFailures{0};
  auto Writer = [&](unsigned Id) {
    for (int R = 0; R != Rounds; ++R) {
      core::ResultCache C(Dir);
      core::CachedFunc E;
      E.Key = Id * 1000u + static_cast<unsigned>(R) + 1;
      E.Name =
          "fn_" + std::to_string(Id) + "_" + std::to_string(R);
      E.Render = "render " + E.Name;
      C.insert(std::move(E));
      if (!C.save())
        SaveFailures.fetch_add(1);
    }
  };
  std::thread T1(Writer, 1), T2(Writer, 2);
  T1.join();
  T2.join();
  EXPECT_EQ(SaveFailures.load(), 0);

  core::ResultCache Final(Dir);
  EXPECT_EQ(Final.size(), 2u * Rounds);
  for (unsigned Id = 1; Id <= 2; ++Id)
    for (int R = 0; R != Rounds; ++R)
      EXPECT_TRUE(Final.knowsFunction("fn_" + std::to_string(Id) + "_" +
                                      std::to_string(R)))
          << "lost entry of writer " << Id << " round " << R;
}
