//===- ProofTest.cpp - VCG + auto on the paper's examples ------------------===//
//
// Reproduces the paper's interactive-verification claims:
//  * Sec 4.5: swap's Hoare triple "automatically discharged by applying a
//    VCG and running auto";
//  * Sec 4.5: Suzuki's challenge solved the same way after lifting;
//  * footnote 2: the midpoint VC is automatic on nat but *not* at the
//    word level.
//
//===----------------------------------------------------------------------===//

#include "core/AutoCorres.h"
#include "hol/Print.h"
#include "proof/Auto.h"
#include "proof/Hoare.h"

#include <gtest/gtest.h>

using namespace ac;
using namespace ac::hol;
using namespace ac::core;
using namespace ac::proof;

namespace {

std::unique_ptr<AutoCorres> runAC(const std::string &Src,
                                  const ACOptions &Opts = ACOptions()) {
  DiagEngine Diags;
  auto AC = AutoCorres::run(Src, Diags, Opts);
  EXPECT_TRUE(AC != nullptr) << Diags.str();
  return AC;
}

/// Discharges every VC with auto; reports the first failure.
::testing::AssertionResult dischargeAll(AutoProver &P,
                                        const VCResult &VCs) {
  if (!VCs.Ok)
    return ::testing::AssertionFailure() << "VCG failed: " << VCs.Error;
  for (size_t I = 0; I != VCs.Goals.size(); ++I) {
    if (!P.prove(VCs.Goals[I]))
      return ::testing::AssertionFailure()
             << "auto failed on " << VCs.Labels[I] << ":\n"
             << printTerm(VCs.Goals[I]);
  }
  return ::testing::AssertionSuccess();
}

} // namespace

TEST(Linarith, Basics) {
  AutoProver P;
  TermRef A = Term::mkFree("a", natTy());
  TermRef B = Term::mkFree("b", natTy());
  // a < b --> a + 1 <= b (nat tightening).
  EXPECT_TRUE(P.prove(
      mkImp(mkLess(A, B), mkLessEq(mkPlus(A, mkNumOf(natTy(), 1)), B))));
  // Not valid: a <= b --> a < b.
  EXPECT_FALSE(P.prove(mkImp(mkLessEq(A, B), mkLess(A, B))));
  // int: a <= b & b <= a --> a = b.
  TermRef AI = Term::mkFree("a", intTy());
  TermRef BI = Term::mkFree("b", intTy());
  EXPECT_TRUE(P.prove(mkImp(mkConj(mkLessEq(AI, BI), mkLessEq(BI, AI)),
                            mkEq(AI, BI))));
}

TEST(Linarith, MidpointOnNatIsAutomatic) {
  // Footnote 2's challenge, on ideal naturals:
  //   l < r --> l <= (l + r) div 2  &  (l + r) div 2 < r.
  TermRef L = Term::mkFree("l", natTy());
  TermRef R = Term::mkFree("r", natTy());
  TermRef Mid = mkDiv(mkPlus(L, R), mkNumOf(natTy(), 2));
  TermRef Goal =
      mkImp(mkLess(L, R), mkConj(mkLessEq(L, Mid), mkLess(Mid, R)));
  AutoProver P;
  EXPECT_TRUE(P.prove(Goal).has_value());
}

TEST(Linarith, MidpointOnWordsIsNotAutomatic) {
  // The same statement on word32 is false without the no-overflow
  // precondition (Table 2) — auto must fail, and refute must find the
  // wrap-around counterexample.
  TypeRef W = wordTy(32);
  TermRef L = Term::mkFree("l", W);
  TermRef R = Term::mkFree("r", W);
  TermRef Mid = mkDiv(mkPlus(L, R), mkNumOf(W, 2));
  TermRef Goal =
      mkImp(mkLess(L, R), mkConj(mkLessEq(L, Mid), mkLess(Mid, R)));
  AutoProver P;
  EXPECT_FALSE(P.prove(Goal).has_value());
  monad::InterpCtx Ctx;
  TermRef Closed = mkAll("l", W, mkAll("r", W, Goal));
  EXPECT_TRUE(AutoProver::refute(Closed, Ctx, 2000, 5));
}

TEST(Refute, AcceptsValidRejectsInvalid) {
  monad::InterpCtx Ctx;
  TermRef A = Term::mkFree("a", natTy());
  TermRef Valid = mkAll("a", natTy(), mkLessEq(A, mkPlus(A, mkNumOf(natTy(), 1))));
  EXPECT_FALSE(AutoProver::refute(Valid, Ctx, 300, 3));
  TermRef Invalid = mkAll("a", natTy(), mkLess(mkPlus(A, mkNumOf(natTy(), 1)), A));
  EXPECT_TRUE(AutoProver::refute(Invalid, Ctx, 300, 3));
}

TEST(Hoare, SwapTripleAutoDischarged) {
  // Sec 4.5: the Fig 5 correctness statement, proved by VCG + auto.
  auto AC = runAC("void swap(unsigned *a, unsigned *b) {\n"
                  "  unsigned t = *a;\n"
                  "  *a = *b;\n"
                  "  *b = t;\n"
                  "}\n");
  const FuncOutput *F = AC->func("swap");
  ASSERT_NE(F, nullptr);
  ASSERT_TRUE(F->HeapLifted);

  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TypeRef W = wordTy(32);
  TermRef A = Term::mkFree("a", ptrTy(W));
  TermRef B = Term::mkFree("b", ptrTy(W));
  TermRef X = Term::mkFree("x", natTy());
  TermRef Y = Term::mkFree("y", natTy());
  TermRef SV = Term::mkFree("sv", S);

  // The WA-level body reads unat images; state values are words, so the
  // spec uses their unat images.
  auto HeapAt = [&](const TermRef &P) {
    return mkUnat(LG.heapVal(W, SV, P));
  };
  TermRef PreBody = mkConjs({LG.isValid(W, SV, A), LG.isValid(W, SV, B),
                             mkEq(HeapAt(A), X), mkEq(HeapAt(B), Y)});
  TermRef Pre = lambdaFree("sv", S, PreBody);
  TermRef RV = Term::mkFree("rv", unitTy());
  TermRef PostBody = mkConj(mkEq(HeapAt(A), Y), mkEq(HeapAt(B), X));
  TermRef Post =
      lambdaFree("rv", unitTy(), lambdaFree("sv", S, PostBody));

  VCResult VCs = generateVCs(F->finalBody(), Pre, Post);
  AutoProver P;
  EXPECT_TRUE(dischargeAll(P, VCs));
  EXPECT_TRUE(VCs.TotalCorrectness);
}

TEST(Hoare, SwapWithAliasedPointersStillCorrect) {
  // The paper notes swap stays correct when a = b; check a separate
  // triple with the aliasing hypothesis.
  auto AC = runAC("void swap(unsigned *a, unsigned *b) {\n"
                  "  unsigned t = *a;\n"
                  "  *a = *b;\n"
                  "  *b = t;\n"
                  "}\n");
  const FuncOutput *F = AC->func("swap");
  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TypeRef W = wordTy(32);
  TermRef A = Term::mkFree("a", ptrTy(W));
  TermRef X = Term::mkFree("x", natTy());
  TermRef SV = Term::mkFree("sv", S);
  auto HeapAt = [&](const TermRef &P) {
    return mkUnat(LG.heapVal(W, SV, P));
  };
  TermRef Pre = lambdaFree(
      "sv", S, mkConj(LG.isValid(W, SV, A), mkEq(HeapAt(A), X)));
  TermRef Post = lambdaFree(
      "rv", unitTy(), lambdaFree("sv", S, mkEq(HeapAt(A), X)));
  // swap a a: substitute b := a by building the body application.
  // The published definition is %a b. body; apply it to (a, a).
  monad::InterpCtx &Ctx = AC->ctx();
  (void)Ctx;
  TermRef Def;
  {
    // Reconstruct %args. body, then apply to a, a.
    TermRef Body = F->finalBody();
    Def = Body;
    for (size_t I = F->ArgNames.size(); I-- > 0;)
      Def = lambdaFree(F->ArgNames[I], F->FinalArgTys[I], Def);
  }
  TermRef Applied = betaNorm(mkApps(Def, {A, A}));
  VCResult VCs = generateVCs(Applied, Pre, Post);
  AutoProver P;
  EXPECT_TRUE(dischargeAll(P, VCs));
}

TEST(Hoare, SuzukiChallengeAutoDischarged) {
  // Sec 4.3/4.5: Suzuki's challenge — return 4 given distinct pointers.
  auto AC = runAC(
      "struct node { struct node *next; int data; };\n"
      "int suzuki(struct node *w, struct node *x, struct node *y,\n"
      "           struct node *z) {\n"
      "  w->next = x; x->next = y; y->next = z; x->next = z;\n"
      "  w->data = 1; x->data = 2; y->data = 3; z->data = 4;\n"
      "  return w->next->next->data;\n"
      "}\n");
  const FuncOutput *F = AC->func("suzuki");
  ASSERT_NE(F, nullptr);
  ASSERT_TRUE(F->HeapLifted);

  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TypeRef NodeTy = recordTy("node_C");
  TermRef SV = Term::mkFree("sv", S);
  std::vector<TermRef> Ptrs;
  for (const char *N : {"w", "x", "y", "z"})
    Ptrs.push_back(Term::mkFree(N, ptrTy(NodeTy)));
  std::vector<TermRef> PreParts;
  for (const TermRef &P : Ptrs)
    PreParts.push_back(LG.isValid(NodeTy, SV, P));
  for (size_t I = 0; I != Ptrs.size(); ++I)
    for (size_t J = I + 1; J != Ptrs.size(); ++J)
      PreParts.push_back(mkNot(mkEq(Ptrs[I], Ptrs[J])));
  TermRef Pre = lambdaFree("sv", S, mkConjs(PreParts));
  TermRef RV = Term::mkFree("rv", intTy());
  TermRef Post = lambdaFree(
      "rv", intTy(),
      lambdaFree("sv", S, mkEq(RV, mkNumOf(intTy(), 4))));
  VCResult VCs = generateVCs(F->finalBody(), Pre, Post);
  AutoProver P;
  EXPECT_TRUE(dischargeAll(P, VCs));
}

TEST(Hoare, MidpointTripleWithGeneratedGuard) {
  // The WA output of mid contains the UINT_MAX guard; the Hoare triple
  // needs the corresponding precondition and then discharges by auto.
  auto AC = runAC(
      "unsigned mid(unsigned l, unsigned r) { return (l + r) / 2; }\n");
  const FuncOutput *F = AC->func("mid");
  ASSERT_TRUE(F->WordAbstracted);
  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TermRef L = Term::mkFree("l", natTy());
  TermRef R = Term::mkFree("r", natTy());
  TermRef UMax = mkNumOf(natTy(), wordMaxVal(32));
  TermRef Pre = Term::mkLam(
      "sv", S, liftLoose(mkConj(mkLess(L, R),
                                mkLessEq(mkPlus(L, R), UMax)),
                         1));
  TermRef RV = Term::mkFree("rv", natTy());
  TermRef Post = lambdaFree(
      "rv", natTy(),
      Term::mkLam("sv", S,
                  liftLoose(mkConj(mkLessEq(L, RV), mkLess(RV, R)), 1)));
  VCResult VCs = generateVCs(F->finalBody(), Pre, Post);
  AutoProver P;
  EXPECT_TRUE(dischargeAll(P, VCs));
}

TEST(Hoare, GuardedFailureIsDetected) {
  // Without the no-overflow precondition the midpoint VC must NOT prove
  // (the guard becomes unprovable).
  auto AC = runAC(
      "unsigned mid(unsigned l, unsigned r) { return (l + r) / 2; }\n");
  const FuncOutput *F = AC->func("mid");
  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TermRef L = Term::mkFree("l", natTy());
  TermRef R = Term::mkFree("r", natTy());
  TermRef Pre = Term::mkLam("sv", S, liftLoose(mkLess(L, R), 1));
  TermRef Post = lambdaFree(
      "rv", natTy(),
      Term::mkLam("sv", S, liftLoose(mkLessEq(L, Term::mkFree("rv", natTy())), 1)));
  VCResult VCs = generateVCs(F->finalBody(), Pre, Post);
  ASSERT_TRUE(VCs.Ok);
  AutoProver P;
  EXPECT_FALSE(P.prove(VCs.Goals[0]).has_value());
}

TEST(Hoare, LoopWithInvariantAndMeasure) {
  // Total correctness of a counting loop via invariant + measure.
  auto AC = runAC("unsigned count(unsigned n) {\n"
                  "  unsigned i = 0;\n"
                  "  while (i < n % 64) {\n"
                  "    i = i + 1;\n"
                  "  }\n"
                  "  return i;\n"
                  "}\n");
  const FuncOutput *F = AC->func("count");
  ASSERT_TRUE(F->WordAbstracted);
  const heapabs::LiftedGlobals &LG = AC->lifted();
  TypeRef S = LG.LiftedTy;
  TermRef N = Term::mkFree("n", natTy());
  TermRef Bound = mkMod(N, mkNumOf(natTy(), 64));
  // Invariant: i <= n mod 64; measure: n mod 64 - i.
  TermRef IV = Term::mkFree("iv", natTy());
  TermRef SV = Term::mkFree("sv", S);
  LoopSpec Spec;
  Spec.Invariant = lambdaFree(
      "iv", natTy(), lambdaFree("sv", S, mkLessEq(IV, Bound)));
  Spec.Measure = lambdaFree(
      "iv", natTy(), lambdaFree("sv", S, mkMinus(Bound, IV)));
  (void)SV;
  TermRef Pre = Term::mkLam("sv", S, mkTrue());
  TermRef RV = Term::mkFree("rv", natTy());
  TermRef Post = lambdaFree(
      "rv", natTy(), Term::mkLam("sv", S, liftLoose(mkEq(RV, Bound), 1)));
  VCResult VCs = generateVCs(F->finalBody(), Pre, Post, {Spec});
  AutoProver P;
  EXPECT_TRUE(dischargeAll(P, VCs)) << printTerm(F->finalBody());
  EXPECT_TRUE(VCs.TotalCorrectness);
}

//===----------------------------------------------------------------------===//
// Tactic/countermodel consistency sweep: a family of goals, each either
// valid (auto must prove it AND refute must fail to kill it) or invalid
// (auto must NOT prove it AND refute must find a countermodel). Any
// disagreement between the two — a "proved" goal with a countermodel —
// would be a soundness bug in the auto oracle.
//===----------------------------------------------------------------------===//

namespace {

struct GoalCase {
  const char *Name;
  TermRef (*Build)();
  bool Valid;
};

TermRef natFree(const char *N) { return Term::mkFree(N, natTy()); }
TermRef intFree(const char *N) { return Term::mkFree(N, intTy()); }
TermRef nat(long long V) { return mkNumOf(natTy(), V); }
TermRef intl(long long V) { return mkNumOf(intTy(), V); }

class GoalSweepTest : public ::testing::TestWithParam<GoalCase> {};

TEST_P(GoalSweepTest, TacticAndCountermodelAgree) {
  TermRef Goal = GetParam().Build();
  AutoProver P;
  bool Proved = P.prove(Goal).has_value();
  monad::InterpCtx Ctx;
  bool Refuted = AutoProver::refute(Goal, Ctx, 1500, 17);
  // Soundness: never both.
  EXPECT_FALSE(Proved && Refuted) << "auto proved a refutable goal";
  if (GetParam().Valid) {
    EXPECT_TRUE(Proved) << "auto failed on a valid goal";
    EXPECT_FALSE(Refuted) << "refute killed a valid goal";
  } else {
    EXPECT_FALSE(Proved);
    EXPECT_TRUE(Refuted) << "refute missed the countermodel";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, GoalSweepTest,
    ::testing::Values(
        GoalCase{"nat_le_refl",
                 [] { return mkLessEq(natFree("a"), natFree("a")); },
                 true},
        GoalCase{"nat_lt_irrefl_wrong",
                 [] { return mkLess(natFree("a"), natFree("a")); },
                 false},
        GoalCase{"nat_plus_comm",
                 [] {
                   return mkEq(mkPlus(natFree("a"), natFree("b")),
                               mkPlus(natFree("b"), natFree("a")));
                 },
                 true},
        GoalCase{"nat_plus_mono",
                 [] {
                   return mkImp(
                       mkLessEq(natFree("a"), natFree("b")),
                       mkLessEq(mkPlus(natFree("a"), natFree("c")),
                                mkPlus(natFree("b"), natFree("c"))));
                 },
                 true},
        GoalCase{"nat_minus_not_cancel",
                 // nat subtraction truncates at 0: a - b + b = a is WRONG.
                 [] {
                   return mkEq(mkPlus(mkMinus(natFree("a"), natFree("b")),
                                      natFree("b")),
                               natFree("a"));
                 },
                 false},
        GoalCase{"nat_minus_cancel_guarded",
                 [] {
                   return mkImp(
                       mkLessEq(natFree("b"), natFree("a")),
                       mkEq(mkPlus(mkMinus(natFree("a"), natFree("b")),
                                   natFree("b")),
                            natFree("a")));
                 },
                 true},
        GoalCase{"int_neg_neg",
                 [] {
                   return mkEq(mkUMinus(mkUMinus(intFree("a"))),
                               intFree("a"));
                 },
                 true},
        GoalCase{"int_abs_wrong",
                 // a <= -a is false for positive a.
                 [] { return mkLessEq(intFree("a"), mkUMinus(intFree("a"))); },
                 false},
        GoalCase{"int_trichotomy_le",
                 [] {
                   return mkDisj(mkLessEq(intFree("a"), intFree("b")),
                                 mkLessEq(intFree("b"), intFree("a")));
                 },
                 true},
        GoalCase{"int_square_nonneg_times",
                 [] {
                   return mkImp(mkLessEq(intl(0), intFree("a")),
                                mkLessEq(intl(0),
                                         mkTimes(intFree("a"), intFree("a"))));
                 },
                 true}),
    [](const ::testing::TestParamInfo<GoalCase> &I) {
      return I.param.Name;
    });

INSTANTIATE_TEST_SUITE_P(
    DivMod, GoalSweepTest,
    ::testing::Values(
        GoalCase{"nat_div_le",
                 [] {
                   return mkLessEq(mkDiv(natFree("a"), nat(2)),
                                   natFree("a"));
                 },
                 true},
        GoalCase{"nat_div_lt_wrong",
                 // fails at a = 0.
                 [] {
                   return mkLess(mkDiv(natFree("a"), nat(2)), natFree("a"));
                 },
                 false},
        GoalCase{"nat_mod_bound",
                 [] {
                   return mkLess(mkMod(natFree("a"), nat(7)), nat(7));
                 },
                 true},
        GoalCase{"nat_div_mod_decompose",
                 [] {
                   return mkEq(mkPlus(mkTimes(mkDiv(natFree("a"), nat(5)),
                                              nat(5)),
                                      mkMod(natFree("a"), nat(5))),
                               natFree("a"));
                 },
                 true},
        GoalCase{"nat_mod_plus_wrong",
                 // (a + b) mod 4 = a mod 4 + b mod 4 overflows the bound.
                 [] {
                   return mkEq(
                       mkMod(mkPlus(natFree("a"), natFree("b")), nat(4)),
                       mkPlus(mkMod(natFree("a"), nat(4)),
                              mkMod(natFree("b"), nat(4))));
                 },
                 false}),
    [](const ::testing::TestParamInfo<GoalCase> &I) {
      return I.param.Name;
    });

INSTANTIATE_TEST_SUITE_P(
    Logic, GoalSweepTest,
    ::testing::Values(
        GoalCase{"excluded_middle_ite",
                 [] {
                   TermRef C = mkLess(natFree("a"), natFree("b"));
                   return mkLessEq(mkIte(C, natFree("a"), natFree("b")),
                                   mkIte(C, natFree("b"), natFree("a")));
                 },
                 true},
        GoalCase{"ite_wrong_branch",
                 [] {
                   TermRef C = mkLess(natFree("a"), natFree("b"));
                   return mkEq(mkIte(C, natFree("a"), natFree("b")),
                               natFree("a"));
                 },
                 false},
        GoalCase{"exists_witness",
                 [] {
                   TermRef X = Term::mkFree("x!", natTy());
                   return mkEx("x!", natTy(), mkEq(mkPlus(X, X), nat(10)));
                 },
                 true},
        GoalCase{"exists_no_witness",
                 [] {
                   // no nat x with x + x = 7.
                   TermRef X = Term::mkFree("x!", natTy());
                   return mkEx("x!", natTy(), mkEq(mkPlus(X, X), nat(7)));
                 },
                 false},
        GoalCase{"forall_instance",
                 [] {
                   TermRef X = Term::mkFree("x!", natTy());
                   TermRef All = mkAll("x!", natTy(),
                                       mkLessEq(X, mkPlus(X, nat(1))));
                   return mkImp(All, mkLessEq(nat(5), nat(6)));
                 },
                 true}),
    [](const ::testing::TestParamInfo<GoalCase> &I) {
      return I.param.Name;
    });

} // namespace
