//===- CertMutationTest.cpp - Adversarial certificate mutations -*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel-mutation suite for proof certificates: a pristine
/// certificate exercising every primitive inference rule is built through
/// the real kernel and writer, then one mutation operator per record kind
/// corrupts it — a flipped axiom hash, a swapped premise, a forged claim,
/// a spliced trailer — and the independent checker (tools/acpc_check.h)
/// must reject every mutant while still accepting the pristine bytes.
///
/// The suite is closed over hol::certRecordKinds() in the ChaosTest
/// site-registry style: a record kind registered by the format without a
/// mutation operator driving it fails the suite, as does an operator
/// naming a kind the format does not define. Growing the format forces
/// growing the adversarial coverage in the same commit.
///
/// Operator design is pinned by earlier no-op pitfalls: swapping the
/// premises of `trans` on P = P is accepted (both orders re-derive), and
/// flipping the side bit of `conjE` over identical conjuncts changes
/// nothing — so the pristine proof conjoins *distinct* propositions and
/// every operator below was chosen to guarantee a rejection, either at
/// the mutated line or at a downstream claim whose recorded proposition
/// can no longer be re-derived.
///
//===----------------------------------------------------------------------===//

#include "hol/Builder.h"
#include "hol/Cert.h"

#include "../../tools/acpc_check.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace ac::hol;

namespace {

//===----------------------------------------------------------------------===//
// Pristine certificate
//===----------------------------------------------------------------------===//

/// Builds one certificate through the live kernel covering every
/// derivation rule the format defines, with claims on each terminal
/// theorem so a corrupted intermediate conclusion is always observable.
std::string pristineCert() {
  CertLog::enable(); // before any theorem is minted below

  TypeRef B = boolTy();
  TermRef P = Term::mkFree("p", B);
  Thm T1 = Kernel::trivial(P); // p --> p
  Thm Ax = Kernel::axiom("test.ax", mkImp(mkTrue(), mkTrue()));
  Thm TrueThm = Kernel::eqTrueElim(Kernel::refl(mkTrue())); // |- True
  Thm T2 = Kernel::mp(Ax, TrueThm);                         // |- True

  Thm G = Kernel::generalize("p", B, T1); // All p. p --> p
  Thm Sp = Kernel::spec(G, mkTrue());     // True --> True

  TermRef Q = Term::mkVar("Q", 1, B);
  Thm Ax2 = Kernel::axiom("test.schema", mkImp(Q, Q));
  Subst S;
  S.bind("Q", 1, mkTrue());
  Thm Inst = Kernel::instantiate(Ax2, S); // True --> True

  Thm Refl = Kernel::refl(P);       // p = p
  Thm Sym = Kernel::sym(Refl);      // p = p
  Thm Tr = Kernel::trans(Refl, Sym);// p = p

  // Distinct conjuncts (True --> True /\ p = p): flipping the conjE side
  // bit must change the conclusion, and redirecting a conjI premise must
  // be visible downstream.
  Thm CI = Kernel::conjI(Sp, Tr);
  Thm CE = Kernel::conjE(CI, false); // True --> True

  TermRef Lam = Term::mkLam("x", B, Term::mkBound(0));
  Thm BC = Kernel::betaConv(Term::mkApp(Lam, P)); // (\x. x) p = p
  Thm Comb = Kernel::combination(Kernel::refl(Lam), Refl);
  Thm Abs = Kernel::abstract("p", B, Refl);
  Thm EI = Kernel::eqTrueIntro(Sp); // (True-->True) = True
  Thm EE = Kernel::eqTrueElim(EI);  // True --> True
  Thm EM = Kernel::eqMp(EI, Sp);    // |- True
  Thm Or = Kernel::oracle("test.oracle", mkTrue());

  CertWriter W;
  W.meta("purpose", "mutation-suite");
  auto cl = [&](const char *N, const Thm &T) {
    EXPECT_TRUE(W.claim(N, T)) << "unexportable derivation for " << N;
  };
  cl("t2", T2);
  cl("spec", Sp);
  cl("inst", Inst);
  cl("ce", CE);
  cl("trans", Tr);
  cl("bc", BC);
  cl("comb", Comb);
  cl("abs", Abs);
  cl("ee", EE);
  cl("em", EM);
  cl("oracle", Or);
  return W.str();
}

//===----------------------------------------------------------------------===//
// Line surgery
//===----------------------------------------------------------------------===//

std::vector<std::string> splitLines(const std::string &Cert) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Cert) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  EXPECT_TRUE(Cur.empty()) << "certificate must end in a newline";
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

std::vector<std::string> tokens(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream IS(Line);
  std::string T;
  while (IS >> T)
    Toks.push_back(T);
  return Toks;
}

std::string retok(const std::vector<std::string> &Toks) {
  std::string Out;
  for (size_t I = 0; I != Toks.size(); ++I) {
    if (I)
      Out += ' ';
    Out += Toks[I];
  }
  return Out;
}

/// Rewrites the first line whose tokens satisfy \p Pred through \p Edit.
/// Returns false when no line matches (a broken anchor, reported by the
/// driver as a suite bug rather than a silent skip).
bool editFirst(std::vector<std::string> &Lines,
               const std::function<bool(const std::vector<std::string> &)> &Pred,
               const std::function<void(std::vector<std::string> &)> &Edit) {
  for (std::string &L : Lines) {
    std::vector<std::string> T = tokens(L);
    if (T.empty() || !Pred(T))
      continue;
    Edit(T);
    L = retok(T);
    return true;
  }
  return false;
}

/// First line matching a derivation-rule record `d <id> <rule> ...`.
bool editRule(std::vector<std::string> &Lines, const std::string &Rule,
              const std::function<void(std::vector<std::string> &)> &Edit) {
  return editFirst(
      Lines,
      [&](const std::vector<std::string> &T) {
        return T[0] == "d" && T.size() > 2 && T[2] == Rule;
      },
      Edit);
}

/// The file id of the first term record satisfying \p Pred ("" if none).
std::string findTermId(
    const std::vector<std::string> &Lines,
    const std::function<bool(const std::vector<std::string> &)> &Pred) {
  for (const std::string &L : Lines) {
    std::vector<std::string> T = tokens(L);
    if (!T.empty() && T[0] == "t" && T.size() > 2 && Pred(T))
      return T[1];
  }
  return "";
}

/// The derivation id bound to claim \p Name ("" if none).
std::string findClaimDeriv(const std::vector<std::string> &Lines,
                           const std::string &Name) {
  for (const std::string &L : Lines) {
    std::vector<std::string> T = tokens(L);
    if (T.size() == 4 && T[0] == "q" && T[2] == ":" + Name)
      return T[1];
  }
  return "";
}

//===----------------------------------------------------------------------===//
// The operator registry
//===----------------------------------------------------------------------===//

struct Mutation {
  std::string Kind; ///< must name an entry of certRecordKinds()
  const char *Why;  ///< the rejection each operator banks on
  std::function<bool(std::vector<std::string> &)> Apply;
};

/// One operator per record kind. Anchor ids (a loose bound variable, the
/// True constant, the derivation behind the `trans` claim) are resolved
/// from the pristine text so the operators survive id renumbering.
std::vector<Mutation> buildOperators(const std::vector<std::string> &Pristine) {
  // A term that can never equal a closed, derivable conclusion: the
  // loose bound variable inside (\x. x).
  const std::string BoundId = findTermId(
      Pristine, [](const std::vector<std::string> &T) { return T[2] == "b"; });
  // The True constant's term record.
  const std::string TrueId =
      findTermId(Pristine, [](const std::vector<std::string> &T) {
        return T[2] == "c" && T.size() > 3 && T[3] == ":True";
      });
  // The derivation proving p = p (the `trans` claim): redirecting a
  // premise here changes a conclusion without tripping arity checks.
  const std::string TransDeriv = findClaimDeriv(Pristine, "trans");
  EXPECT_FALSE(BoundId.empty());
  EXPECT_FALSE(TrueId.empty());
  EXPECT_FALSE(TransDeriv.empty());

  auto first = [](const char *Tag) {
    std::string T(Tag);
    return [T](const std::vector<std::string> &Toks) { return Toks[0] == T; };
  };

  std::vector<Mutation> Ops;
  Ops.push_back({"header", "version gate",
                 [](std::vector<std::string> &L) {
                   if (L.empty() || L[0] != "acpc 1")
                     return false;
                   L[0] = "acpc 2";
                   return true;
                 }});
  Ops.push_back({"meta", "arity check",
                 [first](std::vector<std::string> &L) {
                   return editFirst(L, first("m"), [](auto &T) {
                     T.resize(2); // drop the value token
                   });
                 }});
  Ops.push_back({"type", "dense-sequential ids",
                 [first](std::vector<std::string> &L) {
                   return editFirst(L, first("y"),
                                    [](auto &T) { T[1] = "1"; });
                 }});
  Ops.push_back({"term", "no self/forward references",
                 [](std::vector<std::string> &L) {
                   return editFirst(
                       L,
                       [](const std::vector<std::string> &T) {
                         return T[0] == "t" && T.size() > 2 && T[2] == "a";
                       },
                       [](auto &T) { T[3] = T[1]; });
                 }});
  Ops.push_back({"claim", "claimed proposition must be the derived one",
                 [first, BoundId](std::vector<std::string> &L) {
                   return editFirst(L, first("q"),
                                    [BoundId](auto &T) { T[3] = BoundId; });
                 }});
  Ops.push_back({"trailer", "splice/truncation detection",
                 [first](std::vector<std::string> &L) {
                   return editFirst(L, first("end"), [](auto &T) {
                     T[1] = std::to_string(std::stoull(T[1]) + 1);
                   });
                 }});
  Ops.push_back({"axiom", "hash binds the leaf to the audited inventory",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "axiom", [](auto &T) {
                     char &C = T.back().back();
                     C = C == '0' ? '1' : '0';
                   });
                 }});
  Ops.push_back({"oracle", "leaf propositions must be closed",
                 [BoundId](std::vector<std::string> &L) {
                   return editRule(L, "oracle", [BoundId](auto &T) {
                     T.back() = BoundId;
                   });
                 }});
  Ops.push_back({"trivial", "exact payload shape",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "trivial",
                                   [](auto &T) { T.push_back("0"); });
                 }});
  Ops.push_back({"instantiate", "empty substitutions are rejected",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "instantiate", [](auto &T) {
                     T.resize(4);
                     T.push_back("0"); // no type bindings
                     T.push_back("0"); // no term bindings
                   });
                 }});
  Ops.push_back({"mp", "major premise must be an implication",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "mp",
                                   [](auto &T) { std::swap(T[3], T[4]); });
                 }});
  Ops.push_back({"generalize", "bound name is part of the conclusion",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "generalize",
                                   [](auto &T) { T[4] = ":zz"; });
                 }});
  Ops.push_back({"spec", "witness is part of the conclusion",
                 [BoundId](std::vector<std::string> &L) {
                   return editRule(L, "spec",
                                   [BoundId](auto &T) { T[4] = BoundId; });
                 }});
  Ops.push_back({"refl", "reflected term is part of the conclusion",
                 [BoundId](std::vector<std::string> &L) {
                   return editRule(L, "refl",
                                   [BoundId](auto &T) { T[3] = BoundId; });
                 }});
  Ops.push_back({"sym", "premise must be an equality",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "sym", [](auto &T) { T[3] = "0"; });
                 }});
  Ops.push_back({"trans", "premises must be equalities",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "trans", [](auto &T) { T[4] = "0"; });
                 }});
  Ops.push_back({"combination", "premises must be equalities",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "combination",
                                   [](auto &T) { T[4] = "0"; });
                 }});
  Ops.push_back({"abstract", "premise must be an equality",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "abstract", [](auto &T) { T[3] = "0"; });
                 }});
  Ops.push_back({"betaConv", "redex is part of the conclusion",
                 [TrueId](std::vector<std::string> &L) {
                   return editRule(L, "betaConv",
                                   [TrueId](auto &T) { T[3] = TrueId; });
                 }});
  Ops.push_back({"eqTrueIntro", "premise is part of the conclusion",
                 [TransDeriv](std::vector<std::string> &L) {
                   return editRule(L, "eqTrueIntro", [TransDeriv](auto &T) {
                     T[3] = TransDeriv;
                   });
                 }});
  Ops.push_back({"eqTrueElim", "premise must be an equality with True",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "eqTrueElim",
                                   [](auto &T) { T[3] = "0"; });
                 }});
  Ops.push_back({"eqMp", "first premise must be the equality",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "eqMp",
                                   [](auto &T) { std::swap(T[3], T[4]); });
                 }});
  // The conjuncts are distinct by construction, so swapping them moves
  // whichever side the downstream conjE selects — guaranteed regardless
  // of the side-bit convention.
  Ops.push_back({"conjI", "premise order is part of the conclusion",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "conjI",
                                   [](auto &T) { std::swap(T[3], T[4]); });
                 }});
  Ops.push_back({"conjE", "side bit selects the conjunct",
                 [](std::vector<std::string> &L) {
                   return editRule(L, "conjE", [](auto &T) {
                     T[4] = T[4] == "0" ? "1" : "0";
                   });
                 }});
  return Ops;
}

} // namespace

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

TEST(CertMutation, PristineCertificateChecks) {
  std::string Cert = pristineCert();
  acpc::Result R = acpc::check(Cert);
  ASSERT_TRUE(R.Ok) << "line " << R.Line << ": " << R.Error;
  EXPECT_EQ(R.ClaimCount, 11u);
  // The trusted base the checker reports: exactly the leaves we minted.
  ASSERT_EQ(R.AxiomLeaves.size(), 2u);
  EXPECT_EQ(R.AxiomLeaves[0].first, "test.ax");
  EXPECT_EQ(R.AxiomLeaves[1].first, "test.schema");
  ASSERT_EQ(R.OracleLeaves.size(), 1u);
  EXPECT_EQ(R.OracleLeaves[0], "test.oracle");
}

TEST(CertMutation, EveryOperatorIsRejected) {
  const std::string Cert = pristineCert();
  const std::vector<std::string> Pristine = splitLines(Cert);
  ASSERT_TRUE(acpc::check(Cert).Ok);

  size_t TotalLines = Pristine.size();
  for (const Mutation &M : buildOperators(Pristine)) {
    std::vector<std::string> Lines = Pristine;
    ASSERT_TRUE(M.Apply(Lines))
        << "operator '" << M.Kind << "' found no anchor record";
    std::string Mutant = joinLines(Lines);
    ASSERT_NE(Mutant, Cert)
        << "operator '" << M.Kind << "' did not change the certificate";

    acpc::Result R = acpc::check(Mutant);
    EXPECT_FALSE(R.Ok) << "mutant '" << M.Kind << "' (" << M.Why
                       << ") was accepted";
    if (!R.Ok) {
      EXPECT_FALSE(R.Error.empty()) << M.Kind;
      EXPECT_GE(R.Line, 1u) << M.Kind;
      EXPECT_LE(R.Line, TotalLines + 1) << M.Kind;
    }
  }
}

/// Registry closure (the ChaosTest pattern): the operator table and the
/// format's record-kind registry must be the same set — growing one
/// without the other fails here, naming the gap.
TEST(CertMutation, OperatorsCoverEveryRecordKind) {
  const std::vector<std::string> Pristine = splitLines(pristineCert());
  std::set<std::string> Covered;
  for (const Mutation &M : buildOperators(Pristine))
    EXPECT_TRUE(Covered.insert(M.Kind).second)
        << "duplicate operator for kind '" << M.Kind << "'";

  std::set<std::string> Registered(certRecordKinds().begin(),
                                   certRecordKinds().end());
  for (const std::string &K : Registered)
    EXPECT_TRUE(Covered.count(K))
        << "record kind '" << K << "' has no mutation operator";
  for (const std::string &K : Covered)
    EXPECT_TRUE(Registered.count(K))
        << "operator targets unknown record kind '" << K << "'";
  EXPECT_EQ(Covered, Registered);
}
