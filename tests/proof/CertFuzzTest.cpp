//===- CertFuzzTest.cpp - Certificate parser fuzzing ------------*- C++ -*-===//
//
// Part of the autocorres-cpp project, under the BSD 2-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fuzzing of the standalone certificate checker
/// (tools/acpc_check.h): a few hundred seeded mutants — truncations,
/// byte flips, line splices, duplicate and forward ids, oversized
/// payloads, raw control bytes, numeric overflow — are thrown at
/// acpc::check, which must return a clean verdict for every one of them:
/// never crash, never over-read, never loop. A mutant is allowed to
/// still be *valid* (a flipped byte inside a metadata value changes
/// nothing the checker cares about); what is not allowed is any outcome
/// other than a well-formed Result.
///
/// The suite carries the `chaos` ctest label, so the tier-1 script
/// replays exactly these inputs under AddressSanitizer — an over-read
/// that happens to return the right bytes in a plain build still fails
/// the pipeline there.
///
/// Everything is seeded (std::mt19937, fixed constants): a failure
/// reproduces by running the test again, no corpus files involved.
///
//===----------------------------------------------------------------------===//

#include "hol/Builder.h"
#include "hol/Cert.h"

#include "../../tools/acpc_check.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace ac::hol;

namespace {

/// A small but rule-diverse seed certificate (same shape as the
/// mutation suite's pristine proof: every primitive rule, two axioms,
/// one oracle).
std::string seedCert() {
  CertLog::enable();

  TypeRef B = boolTy();
  TermRef P = Term::mkFree("p", B);
  Thm T1 = Kernel::trivial(P);
  Thm Ax = Kernel::axiom("fuzz.ax", mkImp(mkTrue(), mkTrue()));
  Thm TrueThm = Kernel::eqTrueElim(Kernel::refl(mkTrue()));
  Thm T2 = Kernel::mp(Ax, TrueThm);
  Thm G = Kernel::generalize("p", B, T1);
  Thm Sp = Kernel::spec(G, mkTrue());
  TermRef Q = Term::mkVar("Q", 1, B);
  Thm Ax2 = Kernel::axiom("fuzz.schema", mkImp(Q, Q));
  Subst S;
  S.bind("Q", 1, mkTrue());
  Thm Inst = Kernel::instantiate(Ax2, S);
  Thm Refl = Kernel::refl(P);
  Thm Tr = Kernel::trans(Refl, Kernel::sym(Refl));
  Thm CI = Kernel::conjI(Sp, Tr);
  Thm CE = Kernel::conjE(CI, false);
  TermRef Lam = Term::mkLam("x", B, Term::mkBound(0));
  Thm BC = Kernel::betaConv(Term::mkApp(Lam, P));
  Thm Comb = Kernel::combination(Kernel::refl(Lam), Refl);
  Thm Abs = Kernel::abstract("p", B, Refl);
  Thm EI = Kernel::eqTrueIntro(Sp);
  Thm EM = Kernel::eqMp(EI, Sp);
  Thm Or = Kernel::oracle("fuzz.oracle", mkTrue());

  CertWriter W;
  W.meta("purpose", "fuzz-seed");
  for (auto [N, T] : {std::pair<const char *, const Thm *>{"t2", &T2},
                      {"inst", &Inst},
                      {"ce", &CE},
                      {"bc", &BC},
                      {"comb", &Comb},
                      {"abs", &Abs},
                      {"em", &EM},
                      {"oracle", &Or}})
    EXPECT_TRUE(W.claim(N, *T)) << N;
  return W.str();
}

std::vector<std::string> splitLines(const std::string &Cert) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Cert) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// The checker contract under fuzzing: a total function. Either Ok, or a
/// non-empty error pinned to a line number inside (or one past) the
/// input. Anything else — and any crash/sanitizer report on the way —
/// is a bug.
void expectTotal(const std::string &Mutant, const char *What, size_t Case) {
  acpc::Result R = acpc::check(Mutant);
  size_t MaxLine = 1;
  for (char C : Mutant)
    if (C == '\n')
      ++MaxLine;
  if (!R.Ok) {
    EXPECT_FALSE(R.Error.empty()) << What << " case " << Case;
    EXPECT_GE(R.Line, 1u) << What << " case " << Case;
    EXPECT_LE(R.Line, MaxLine + 1) << What << " case " << Case;
  }
}

} // namespace

TEST(CertFuzz, SeedIsValid) {
  acpc::Result R = acpc::check(seedCert());
  ASSERT_TRUE(R.Ok) << "line " << R.Line << ": " << R.Error;
  EXPECT_EQ(R.ClaimCount, 8u);
}

/// Byte-level truncation: every proper prefix that ends on a boundary we
/// care about, plus random cut points. All must be rejected (the trailer
/// or the final newline is gone), none may crash.
TEST(CertFuzz, Truncations) {
  const std::string Cert = seedCert();
  std::mt19937 Rng(0xacbc0001);
  std::uniform_int_distribution<size_t> Cut(0, Cert.size() - 1);
  for (size_t Case = 0; Case != 64; ++Case) {
    size_t N = Case < 4 ? Case : Cut(Rng); // include 0..3 explicitly
    std::string Mutant = Cert.substr(0, N);
    acpc::Result R = acpc::check(Mutant);
    EXPECT_FALSE(R.Ok) << "prefix of " << N << " bytes accepted";
    expectTotal(Mutant, "truncation", Case);
  }
  // Exactly the final newline missing.
  acpc::Result R = acpc::check(Cert.substr(0, Cert.size() - 1));
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("newline"), std::string::npos) << R.Error;
}

/// Random single-byte flips over the whole file. Flips may land in
/// metadata and stay valid; the checker just must stay total.
TEST(CertFuzz, ByteFlips) {
  const std::string Cert = seedCert();
  std::mt19937 Rng(0xacbc0002);
  std::uniform_int_distribution<size_t> Pos(0, Cert.size() - 1);
  std::uniform_int_distribution<int> Byte(0, 255);
  for (size_t Case = 0; Case != 96; ++Case) {
    std::string Mutant = Cert;
    Mutant[Pos(Rng)] = static_cast<char>(Byte(Rng));
    expectTotal(Mutant, "byte flip", Case);
  }
}

/// Raw control bytes (NUL, bell, DEL, 0xff) inserted at random offsets:
/// always rejected, since the format is printable-ASCII lines only.
TEST(CertFuzz, ControlBytes) {
  const std::string Cert = seedCert();
  std::mt19937 Rng(0xacbc0003);
  std::uniform_int_distribution<size_t> Pos(0, Cert.size());
  const char Bytes[] = {'\0', '\x01', '\x07', '\x7f', '\xff', '\r', '\t'};
  for (size_t Case = 0; Case != 28; ++Case) {
    std::string Mutant = Cert;
    Mutant.insert(Pos(Rng), 1, Bytes[Case % (sizeof(Bytes))]);
    acpc::Result R = acpc::check(Mutant);
    EXPECT_FALSE(R.Ok) << "control byte accepted, case " << Case;
    expectTotal(Mutant, "control byte", Case);
  }
}

/// Line-level splices: duplicate, delete, or swap whole records. A
/// duplicated id, a missing premise, or an out-of-order record must all
/// fall out of the dense-id / trailer-count discipline.
TEST(CertFuzz, LineSplices) {
  const std::string Cert = seedCert();
  const std::vector<std::string> Lines = splitLines(Cert);
  std::mt19937 Rng(0xacbc0004);
  std::uniform_int_distribution<size_t> Pick(0, Lines.size() - 1);
  for (size_t Case = 0; Case != 60; ++Case) {
    std::vector<std::string> L = Lines;
    size_t A = Pick(Rng), B = Pick(Rng);
    switch (Case % 3) {
    case 0: // duplicate record A
      L.insert(L.begin() + static_cast<long>(A), Lines[A]);
      break;
    case 1: // delete record A
      L.erase(L.begin() + static_cast<long>(A));
      break;
    default: // swap records A and B
      std::swap(L[A], L[B]);
      break;
    }
    std::string Mutant = joinLines(L);
    if (Mutant == Cert)
      continue; // swapped a line with itself
    expectTotal(Mutant, "line splice", Case);
    // Duplicating or deleting a counted record always breaks dense ids
    // or the trailer counts. Meta records are uncounted (duplicating or
    // dropping one is legal), and a swap can pair two identical lines —
    // those cases only assert totality above.
    bool MetaTouched = Lines[A].rfind("m ", 0) == 0;
    if (Case % 3 != 2 && !MetaTouched) {
      EXPECT_FALSE(acpc::check(Mutant).Ok)
          << "splice accepted, case " << Case;
    }
  }
}

/// Reference attacks: rewrite one numeric token to a forward id, a
/// huge id, an overflowing number, or a zero-padded one. The strict
/// parser must reject the record that carries it.
TEST(CertFuzz, BadReferences) {
  const std::string Cert = seedCert();
  const std::vector<std::string> Lines = splitLines(Cert);
  std::mt19937 Rng(0xacbc0005);
  const char *Poison[] = {"999999", "18446744073709551616", "007", "-1",
                          "0x10", "1e3"};
  size_t Case = 0;
  for (size_t LI = 1; LI + 1 < Lines.size(); ++LI) { // skip header/trailer
    // Rewrite the *last* token of every record once per poison value in
    // round-robin; the last token is a reference or payload on every
    // record kind.
    std::vector<std::string> L = Lines;
    size_t Sp = L[LI].rfind(' ');
    if (Sp == std::string::npos)
      continue;
    L[LI] = L[LI].substr(0, Sp + 1) + Poison[Case++ % 6];
    expectTotal(joinLines(L), "bad reference", Case);
  }
  EXPECT_GT(Case, 20u); // the sweep actually covered the file
}

/// Oversized payloads: thousands of trailing tokens, kilobyte-long
/// names, and very deep escape soup. The checker must reject on shape
/// without degenerating (these run under ASan via the chaos label, and
/// under the default depth/node budgets).
TEST(CertFuzz, OversizedPayloads) {
  const std::string Cert = seedCert();
  const std::vector<std::string> Lines = splitLines(Cert);
  std::mt19937 Rng(0xacbc0006);
  std::uniform_int_distribution<size_t> Pick(1, Lines.size() - 2);

  for (size_t Case = 0; Case != 12; ++Case) {
    std::vector<std::string> L = Lines;
    size_t LI = Pick(Rng);
    switch (Case % 3) {
    case 0: { // token bomb (`:x` parses nowhere: not a number, not a
              // reference, and every string context checks arity)
      std::string Extra;
      for (int I = 0; I != 4000; ++I)
        Extra += " :x";
      L[LI] += Extra;
      break;
    }
    case 1: { // name bomb
      L[LI] += " :" + std::string(64 * 1024, 'a');
      break;
    }
    default: { // escape soup
      std::string Esc = " :";
      for (int I = 0; I != 8000; ++I)
        Esc += "%41";
      L[LI] += Esc;
      break;
    }
    }
    std::string Mutant = joinLines(L);
    acpc::Result R = acpc::check(Mutant);
    EXPECT_FALSE(R.Ok) << "oversized payload accepted, case " << Case;
    expectTotal(Mutant, "oversized payload", Case);
  }
}
